#pragma once
// WAL replay: fold a crashed control plane's log back into resumable
// state.
//
// replay_wal() folds the record stream — snapshots reset the effective
// history to what they embed, recovery_begin markers sanitize it the
// same way the live recovery did — and decodes the result into a
// RecoveredControlPlane: the detector checkpoint + sample watermark to
// re-arm from, the detection decision, the queue / grant / in-flight
// state the scheduler resumes, and the sanitized effective history that
// seeds the next WAL generation (so its snapshots keep folding the
// pre-crash past).
//
// Sanitization implements the two no-duplicate rules recovery depends
// on:
//
//   * pre-decision detector tail — episode records written after the
//     last snapshot are dropped when no detection decision exists yet:
//     re-feeding samples from the watermark regenerates (and re-logs)
//     them identically, so keeping them would double-emit. Once a
//     decision exists the detector is never re-fed live and the records
//     are kept for re-emission instead.
//
//   * open-grant journal prefix — mig_* records of a grant with no
//     closing sched_finish / sched_requeue / sched_give_up are removed
//     from the effective history (the redo re-executes the grant and
//     re-logs them) and returned separately as `interrupted_prefix`:
//     the durable prefix the redone journal must extend byte-for-byte
//     (journal_prefix_consistent), which is exactly the
//     no-double-commit / no-lost-grant guarantee.
//
// reemit_events() streams the sanitized history back into an event log
// with field-for-field parity with the live emissions, in WAL append
// order (== live emission order), so a recovered run's events.jsonl is
// byte-identical to the uninterrupted run's under deterministic
// profiles.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/detector.h"
#include "obs/eventlog.h"
#include "recover/records.h"
#include "recover/wal.h"

namespace geomap::recover {

/// One durable grant and everything the log knows about it.
struct RecoveredGrant {
  SchedGrantRecord grant;
  /// Journal records, WAL order, with event times filled in. Empty for
  /// the interrupted grant (its durable prefix is extracted).
  std::vector<MigRecord> migs;
  bool finished = false;
  SchedFinishRecord finish;
  /// Closed by a requeue / give-up instead of a finish (the granted
  /// migration never ran to completion and was not charged).
  bool requeued = false;
};

struct RecoveredControlPlane {
  bool has_run = false;
  RunBeginRecord run;
  /// recovery_begin markers seen — how many times this run has already
  /// crashed and resumed.
  int recoveries = 0;
  bool run_complete = false;

  /// Latest snapshot's sample-stream watermark and detector state.
  std::size_t watermark = 0;
  bool has_detector = false;
  obs::DetectorCheckpoint detector;

  bool has_decision = false;
  DetectDecisionRecord decision;

  std::vector<SchedRequestRecord> requests;
  std::vector<SchedRequeueRecord> requeues;
  std::vector<SchedGiveUpRecord> give_ups;
  /// Grants in WAL (= real grant) order.
  std::vector<RecoveredGrant> grants;

  /// Last grant is open (sched_grant durable, no closing record) —
  /// resume must redo it.
  bool has_interrupted = false;
  /// The open grant's durable journal prefix, for the
  /// prefix-consistency check against the redo.
  std::vector<MigRecord> interrupted_prefix;

  /// Sanitized effective history: seed_history() this into the next
  /// generation's WAL, reemit_events() it into the fresh event log.
  std::vector<HistRecord> effective;
};

/// Fold a WAL record stream (read_wal output) into resumable state.
/// Throws WalCorrupt when a CRC-valid record fails to decode.
RecoveredControlPlane replay_wal(const std::vector<WalRecord>& records);

/// Re-emit the sanitized history's streamed events into `elog`,
/// field-for-field identical to the live emissions and in the same
/// order. Chunk records stay silent (live chunk journaling never
/// streamed either).
void reemit_events(const RecoveredControlPlane& rcp, obs::EventLog& elog);

/// True when `prefix` is an exact field-for-field prefix of the redone
/// journal `redone`. On mismatch, `why` (optional) gets a description.
bool journal_prefix_consistent(const std::vector<MigRecord>& prefix,
                               const std::vector<fault::MigrationEvent>& redone,
                               std::string* why = nullptr);

/// Post-hoc structural audit of a full WAL: decodes every record, folds
/// it, and checks the recovery invariants — attempts strictly
/// increasing per tenant, every grant closed exactly once (one trailing
/// open grant allowed only while the run is incomplete), at most one
/// commit per process per grant, journal records only inside an open
/// grant and tagged with its tenant, a complete run ends with run_end
/// and resolves every request (no lost grants). Returns human-readable
/// violations; empty = clean.
std::vector<std::string> check_recovery_invariants(
    const std::vector<WalRecord>& records);

}  // namespace geomap::recover
