#pragma once
// Checksummed, fsync-disciplined write-ahead log for the control plane.
//
// The observe→detect→schedule→migrate loop survives its own process
// dying by writing every durable fact — detector episode onsets/clears,
// the detection decision, scheduler requests/grants/requeues/give-ups/
// finishes, every migration protocol transition — to an append-only log
// before (or atomically with) acting on it, and by periodically folding
// the log into a compacting snapshot. Recovery (src/recover/recovery.h)
// replays snapshot + tail and resumes the loop.
//
// Format: one record per line,
//
//   g1 <crc32-hex8> <lsn> <type> <t> <payload-json>
//
// where the checksum covers everything after it. Records live in
// numbered segment files (`wal-000001.log`, ...); a snapshot starts a
// fresh segment whose first record is the snapshot itself (state +
// embedded effective history), after which older segments are deleted.
//
// Durability model (deliberately faithful to a real fsync discipline):
// append() only *buffers* a record; sync() writes the buffer to the
// segment and fsyncs it. A crash — modeled by fault::CrashTriggered
// thrown from an armed crash point, after which the Wal object is
// abandoned — loses every appended-but-unsynced record, and an armed
// `wal.sync.torn` point additionally leaves the last record half-written
// (its CRC fails on replay and it is dropped as a torn tail). The
// destructor never flushes: dropping a Wal with a non-empty buffer is
// exactly "the process died".
//
// Every append/sync/snapshot boundary is a named crash point
// (`wal.append.<type>.before/after`, `wal.sync.torn/after`,
// `wal.compact.before/after`) — crash_point_catalog() enumerates them
// for the exhaustive kill-at-every-point soak.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace geomap::recover {

enum class WalRecordType {
  kRunBegin,
  kDetectorOnset,
  kDetectorClear,
  kDetectDecision,
  kSchedRequest,
  kSchedGrant,
  kSchedRequeue,
  kSchedGiveUp,
  kSchedFinish,
  kMigReserve,
  kMigRelease,
  kMigChunk,
  kMigCommit,
  kMigRollback,
  kMigReplan,
  kSnapshot,
  kRecoveryBegin,
  kRunEnd,
};

const char* to_string(WalRecordType type);
bool parse_record_type(const std::string& name, WalRecordType* out);

/// One decoded log record.
struct WalRecord {
  std::uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kRunBegin;
  Seconds t = 0;
  std::string payload;  // single-line JSON object
};

/// A (type, t, payload) triple without an lsn — the unit of the
/// *effective history* a snapshot embeds and recovery replays.
struct HistRecord {
  WalRecordType type = WalRecordType::kRunBegin;
  Seconds t = 0;
  std::string payload;
};

/// Structural corruption beyond a tolerable torn tail: a bad checksum or
/// unparseable line anywhere but the last line of a segment, or a
/// non-monotonic lsn.
class WalCorrupt : public Error {
 public:
  using Error::Error;
};

struct WalOptions {
  /// fsync(2) the segment on every sync(). Off still fflushes (tests
  /// that hammer thousands of tiny WALs); the crash *model* is
  /// unchanged either way because in-process crashes never lose OS
  /// buffers.
  bool fsync = true;
};

class Wal {
 public:
  /// Opens (creating the directory if needed) and positions after the
  /// highest durable lsn. Always starts a fresh segment, so a torn tail
  /// from a previous generation stays quarantined at its segment's end.
  explicit Wal(std::string dir, WalOptions options = {});
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Buffer one record; durable only after the next sync(). Returns the
  /// assigned lsn.
  std::uint64_t append(WalRecordType type, Seconds t, std::string payload);

  /// Write buffered records to the current segment and fsync it.
  void sync();

  /// sync(), rotate to a fresh segment, write a snapshot record whose
  /// payload is {"state": <state_payload>, "history": [...]} with the
  /// full effective history, fsync, then delete the older segments.
  void snapshot(Seconds t, const std::string& state_payload);

  /// Seed the effective history with the records a RecoveryManager
  /// replayed, so the next snapshot folds the pre-crash past too. Call
  /// once, before any append.
  void seed_history(std::vector<HistRecord> history);

  const std::string& dir() const { return dir_; }
  std::uint64_t next_lsn() const { return next_lsn_; }
  std::uint64_t appended() const { return appended_; }
  std::uint64_t synced() const { return synced_; }
  std::uint64_t snapshots() const { return snapshots_; }

 private:
  void open_segment();
  void flush_lines(const std::vector<std::string>& lines);

  std::string dir_;
  WalOptions options_;
  std::uint64_t next_lsn_ = 1;
  int segment_ = 1;
  std::FILE* file_ = nullptr;
  std::vector<std::string> buffered_;     // encoded lines awaiting sync
  std::vector<HistRecord> history_;       // effective history for snapshots
  std::uint64_t appended_ = 0;
  std::uint64_t synced_ = 0;
  std::uint64_t snapshots_ = 0;
};

/// What read_wal found on disk.
struct WalRecovery {
  /// Every valid record, in (segment, line) order. Snapshot records
  /// appear in place; recovery folds them.
  std::vector<WalRecord> records;
  std::uint64_t next_lsn = 1;
  int next_segment = 1;
  int segments_read = 0;
  /// Invalid *final* lines of segments, dropped as torn tails.
  int dropped_torn = 0;
};

/// Read a WAL directory. A bad line at the very end of a segment is a
/// torn tail (dropped, counted); anywhere else it throws WalCorrupt.
/// A missing or empty directory yields an empty recovery.
WalRecovery read_wal(const std::string& dir);

/// Every crash point the WAL can die at — the exhaustive soak's matrix.
std::vector<std::string> crash_point_catalog();

/// Encode one record line (exposed for tests that corrupt records).
std::string encode_wal_line(std::uint64_t lsn, WalRecordType type, Seconds t,
                            const std::string& payload);

}  // namespace geomap::recover
