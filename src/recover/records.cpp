#include "recover/records.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/json_reader.h"
#include "common/json_writer.h"

namespace geomap::recover {

namespace {

constexpr Seconds kInf = std::numeric_limits<double>::infinity();

/// Parse a payload that already passed its line CRC — failure here is
/// corruption, never a torn tail.
JsonValue parse_payload(const std::string& payload, const char* what) {
  try {
    return parse_json(payload);
  } catch (const InvalidArgument& e) {
    throw WalCorrupt(std::string(what) + " payload does not parse: " +
                     e.what());
  }
}

double num(const JsonValue& v, const char* key, const char* what) {
  const JsonValue* m = v.find(key);
  if (m == nullptr || !m->is_number()) {
    throw WalCorrupt(std::string(what) + " payload missing number \"" + key +
                     "\"");
  }
  return m->as_number();
}

int num_int(const JsonValue& v, const char* key, const char* what) {
  return static_cast<int>(num(v, key, what));
}

bool flag(const JsonValue& v, const char* key, const char* what) {
  const JsonValue* m = v.find(key);
  if (m == nullptr || !m->is_bool()) {
    throw WalCorrupt(std::string(what) + " payload missing bool \"" + key +
                     "\"");
  }
  return m->as_bool();
}

std::string str(const JsonValue& v, const char* key, const char* what) {
  const JsonValue* m = v.find(key);
  if (m == nullptr || !m->is_string()) {
    throw WalCorrupt(std::string(what) + " payload missing string \"" + key +
                     "\"");
  }
  return m->as_string();
}

const std::vector<JsonValue>& arr(const JsonValue& v, const char* key,
                                  const char* what) {
  const JsonValue* m = v.find(key);
  if (m == nullptr || !m->is_array()) {
    throw WalCorrupt(std::string(what) + " payload missing array \"" + key +
                     "\"");
  }
  return m->items();
}

Mapping int_array(const JsonValue& v, const char* key, const char* what) {
  Mapping out;
  for (const JsonValue& item : arr(v, key, what)) {
    if (!item.is_number()) {
      throw WalCorrupt(std::string(what) + " array \"" + key +
                       "\" holds a non-number");
    }
    out.push_back(static_cast<SiteId>(item.as_number()));
  }
  return out;
}

std::vector<double> double_array(const JsonValue& v, const char* key,
                                 const char* what) {
  std::vector<double> out;
  for (const JsonValue& item : arr(v, key, what)) {
    if (!item.is_number()) {
      throw WalCorrupt(std::string(what) + " array \"" + key +
                       "\" holds a non-number");
    }
    out.push_back(item.as_number());
  }
  return out;
}

void write_mapping(JsonWriter& w, const char* key, const Mapping& m) {
  w.key(key).begin_array();
  for (SiteId s : m) w.value(s);
  w.end_array();
}

obs::DegradationKind parse_kind(const std::string& name, const char* what) {
  if (name == "latency") return obs::DegradationKind::kLatency;
  if (name == "down") return obs::DegradationKind::kDown;
  throw WalCorrupt(std::string(what) + " payload has unknown kind \"" + name +
                   "\"");
}

/// Must stay byte-identical to episode_payload in obs/detector.cpp —
/// the round-trip test in tests/recover_test.cpp pins them together.
void write_episode(JsonWriter& w, const obs::DegradationEvent& e,
                   Seconds end) {
  w.begin_object();
  w.field("src", e.src);
  w.field("dst", e.dst);
  w.field("kind", obs::to_string(e.kind));
  w.field("onset", e.onset_vtime);
  w.field("detect", e.detect_vtime);
  if (std::isfinite(end)) w.field("end", end);
  w.field("severity", e.severity);
  w.field("confidence", e.confidence);
  w.end_object();
}

obs::DegradationEvent read_episode(const JsonValue& v, const char* what) {
  obs::DegradationEvent e;
  e.src = num_int(v, "src", what);
  e.dst = num_int(v, "dst", what);
  e.kind = parse_kind(str(v, "kind", what), what);
  e.onset_vtime = num(v, "onset", what);
  e.detect_vtime = num(v, "detect", what);
  const JsonValue* end = v.find("end");
  e.end_vtime = (end != nullptr && end->is_number()) ? end->as_number() : kInf;
  e.severity = num(v, "severity", what);
  e.confidence = num(v, "confidence", what);
  return e;
}

void write_checkpoint(JsonWriter& w, const obs::DetectorCheckpoint& ckpt) {
  w.begin_object();
  w.key("events").begin_array();
  for (const obs::DegradationEvent& e : ckpt.events) {
    write_episode(w, e, e.end_vtime);
  }
  w.end_array();
  w.key("links").begin_array();
  for (const obs::DetectorLinkState& ls : ckpt.links) {
    w.begin_object();
    w.field("src", ls.src);
    w.field("dst", ls.dst);
    w.field("cusum", ls.cusum);
    w.field("ewma", ls.ewma);
    w.field("ewma_primed", ls.ewma_primed);
    w.field("excursion_start", ls.excursion_start);
    w.field("open_latency", static_cast<std::int64_t>(ls.open_latency));
    w.key("recent_retries").begin_array();
    for (const auto& [t, count] : ls.recent_retries) {
      w.begin_array();
      w.value(t);
      w.value(count);
      w.end_array();
    }
    w.end_array();
    w.field("open_down", static_cast<std::int64_t>(ls.open_down));
    w.field("last_down_signal", ls.last_down_signal);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

obs::DetectorCheckpoint read_checkpoint(const JsonValue& v) {
  const char* what = "detector checkpoint";
  obs::DetectorCheckpoint ckpt;
  for (const JsonValue& item : arr(v, "events", what)) {
    ckpt.events.push_back(read_episode(item, what));
  }
  for (const JsonValue& item : arr(v, "links", what)) {
    obs::DetectorLinkState ls;
    ls.src = num_int(item, "src", what);
    ls.dst = num_int(item, "dst", what);
    ls.cusum = num(item, "cusum", what);
    ls.ewma = num(item, "ewma", what);
    ls.ewma_primed = flag(item, "ewma_primed", what);
    ls.excursion_start = num(item, "excursion_start", what);
    ls.open_latency =
        static_cast<std::ptrdiff_t>(num(item, "open_latency", what));
    for (const JsonValue& pair : arr(item, "recent_retries", what)) {
      if (!pair.is_array() || pair.items().size() != 2 ||
          !pair.items()[0].is_number() || !pair.items()[1].is_number()) {
        throw WalCorrupt("detector checkpoint recent_retries entry is not a "
                         "[t, count] pair");
      }
      ls.recent_retries.emplace_back(pair.items()[0].as_number(),
                                     pair.items()[1].as_number());
    }
    ls.open_down = static_cast<std::ptrdiff_t>(num(item, "open_down", what));
    ls.last_down_signal = num(item, "last_down_signal", what);
    ckpt.links.push_back(std::move(ls));
  }
  return ckpt;
}

}  // namespace

std::string encode_run_begin(const RunBeginRecord& r) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("seed", static_cast<std::uint64_t>(r.seed));
  w.field("tenants", r.tenants);
  w.field("sites", r.sites);
  w.field("policy", r.policy);
  w.end_object();
  return os.str();
}

RunBeginRecord decode_run_begin(const std::string& payload) {
  const char* what = "run_begin";
  const JsonValue v = parse_payload(payload, what);
  RunBeginRecord r;
  r.seed = static_cast<std::uint64_t>(num(v, "seed", what));
  r.tenants = num_int(v, "tenants", what);
  r.sites = num_int(v, "sites", what);
  r.policy = str(v, "policy", what);
  return r;
}

std::string encode_detector_episode(const obs::DegradationEvent& e,
                                    Seconds end) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  write_episode(w, e, end);
  return os.str();
}

DetectorEpisodeRecord decode_detector_episode(const std::string& payload) {
  const char* what = "detector episode";
  const JsonValue v = parse_payload(payload, what);
  DetectorEpisodeRecord r;
  r.event = read_episode(v, what);
  return r;
}

std::string encode_detect_decision(const DetectDecisionRecord& r) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("detected", r.detected);
  w.field("suspected_correct", r.suspected_correct);
  w.field("suspect", r.suspect);
  w.field("failed_site", r.failed_site);
  w.field("outage_time", r.outage_time);
  w.field("detect_time", r.detect_time);
  w.end_object();
  return os.str();
}

DetectDecisionRecord decode_detect_decision(const std::string& payload) {
  const char* what = "detect_decision";
  const JsonValue v = parse_payload(payload, what);
  DetectDecisionRecord r;
  r.detected = flag(v, "detected", what);
  r.suspected_correct = flag(v, "suspected_correct", what);
  r.suspect = num_int(v, "suspect", what);
  r.failed_site = num_int(v, "failed_site", what);
  r.outage_time = num(v, "outage_time", what);
  r.detect_time = num(v, "detect_time", what);
  return r;
}

std::string encode_sched_request(const SchedRequestRecord& r) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("tenant", r.tenant);
  w.field("request_time", r.request_time);
  w.field("severity", r.severity);
  w.end_object();
  return os.str();
}

SchedRequestRecord decode_sched_request(const std::string& payload) {
  const char* what = "sched_request";
  const JsonValue v = parse_payload(payload, what);
  SchedRequestRecord r;
  r.tenant = num_int(v, "tenant", what);
  r.request_time = num(v, "request_time", what);
  r.severity = num(v, "severity", what);
  return r;
}

std::string encode_sched_grant(const SchedGrantRecord& r) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("tenant", r.tenant);
  w.field("granted_at", r.granted_at);
  w.field("attempts", r.attempts);
  write_mapping(w, "current", r.current);
  write_mapping(w, "target", r.target);
  w.key("view_capacities").begin_array();
  for (double c : r.view_capacities) w.value(c);
  w.end_array();
  w.end_object();
  return os.str();
}

SchedGrantRecord decode_sched_grant(const std::string& payload) {
  const char* what = "sched_grant";
  const JsonValue v = parse_payload(payload, what);
  SchedGrantRecord r;
  r.tenant = num_int(v, "tenant", what);
  r.granted_at = num(v, "granted_at", what);
  r.attempts = num_int(v, "attempts", what);
  r.current = int_array(v, "current", what);
  r.target = int_array(v, "target", what);
  r.view_capacities = double_array(v, "view_capacities", what);
  return r;
}

std::string encode_sched_requeue(const SchedRequeueRecord& r) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("tenant", r.tenant);
  w.field("t", r.t);
  w.field("attempts", r.attempts);
  w.field("next_eligible", r.next_eligible);
  w.end_object();
  return os.str();
}

SchedRequeueRecord decode_sched_requeue(const std::string& payload) {
  const char* what = "sched_requeue";
  const JsonValue v = parse_payload(payload, what);
  SchedRequeueRecord r;
  r.tenant = num_int(v, "tenant", what);
  r.t = num(v, "t", what);
  r.attempts = num_int(v, "attempts", what);
  r.next_eligible = num(v, "next_eligible", what);
  return r;
}

std::string encode_sched_give_up(const SchedGiveUpRecord& r) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("tenant", r.tenant);
  w.field("t", r.t);
  w.field("attempts", r.attempts);
  w.end_object();
  return os.str();
}

SchedGiveUpRecord decode_sched_give_up(const std::string& payload) {
  const char* what = "sched_give_up";
  const JsonValue v = parse_payload(payload, what);
  SchedGiveUpRecord r;
  r.tenant = num_int(v, "tenant", what);
  r.t = num(v, "t", what);
  r.attempts = num_int(v, "attempts", what);
  return r;
}

std::string encode_sched_finish(const SchedFinishRecord& r) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("tenant", r.tenant);
  w.field("granted_at", r.granted_at);
  w.field("finish_time", r.finish_time);
  w.field("migration_seconds", r.migration_seconds);
  w.field("queue_wait", r.queue_wait);
  w.field("attempts", r.attempts);
  write_mapping(w, "final_mapping", r.final_mapping);
  w.end_object();
  return os.str();
}

SchedFinishRecord decode_sched_finish(const std::string& payload) {
  const char* what = "sched_finish";
  const JsonValue v = parse_payload(payload, what);
  SchedFinishRecord r;
  r.tenant = num_int(v, "tenant", what);
  r.granted_at = num(v, "granted_at", what);
  r.finish_time = num(v, "finish_time", what);
  r.migration_seconds = num(v, "migration_seconds", what);
  r.queue_wait = num(v, "queue_wait", what);
  r.attempts = num_int(v, "attempts", what);
  r.final_mapping = int_array(v, "final_mapping", what);
  return r;
}

std::string encode_mig(const MigRecord& r) {
  // Must stay byte-identical to wal_journal in migrate/executor.cpp.
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("tenant", r.tenant);
  w.field("process", static_cast<std::int64_t>(r.event.process));
  w.field("from", r.event.site_from);
  w.field("to", r.event.site_to);
  w.field("bytes", r.event.bytes);
  if (r.event.kind == fault::MigrationEventKind::kCommit) {
    w.field("downtime", r.downtime);
  }
  w.end_object();
  return os.str();
}

MigRecord decode_mig(WalRecordType type, const std::string& payload) {
  const char* what = to_string(type);
  const JsonValue v = parse_payload(payload, what);
  MigRecord r;
  switch (type) {
    case WalRecordType::kMigReserve:
      r.event.kind = fault::MigrationEventKind::kReserve;
      break;
    case WalRecordType::kMigRelease:
      r.event.kind = fault::MigrationEventKind::kRelease;
      break;
    case WalRecordType::kMigChunk:
      r.event.kind = fault::MigrationEventKind::kChunk;
      break;
    case WalRecordType::kMigCommit:
      r.event.kind = fault::MigrationEventKind::kCommit;
      break;
    case WalRecordType::kMigRollback:
      r.event.kind = fault::MigrationEventKind::kRollback;
      break;
    case WalRecordType::kMigReplan:
      r.event.kind = fault::MigrationEventKind::kReplan;
      break;
    default:
      throw WalCorrupt(std::string("record type ") + what +
                       " is not a migration record");
  }
  r.tenant = num_int(v, "tenant", what);
  r.event.process = static_cast<ProcessId>(num(v, "process", what));
  r.event.site_from = num_int(v, "from", what);
  r.event.site_to = num_int(v, "to", what);
  r.event.bytes = num(v, "bytes", what);
  if (r.event.kind == fault::MigrationEventKind::kCommit) {
    r.downtime = num(v, "downtime", what);
  }
  return r;
}

std::string encode_snapshot_state(const SnapshotStateRecord& r) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("watermark", static_cast<std::uint64_t>(r.watermark));
  if (r.has_detector) {
    w.key("detector");
    write_checkpoint(w, r.detector);
  }
  w.end_object();
  return os.str();
}

SnapshotStateRecord decode_snapshot_state(const std::string& payload) {
  const char* what = "snapshot state";
  const JsonValue v = parse_payload(payload, what);
  SnapshotStateRecord r;
  r.watermark = static_cast<std::size_t>(num(v, "watermark", what));
  const JsonValue* det = v.find("detector");
  if (det != nullptr) {
    r.has_detector = true;
    r.detector = read_checkpoint(*det);
  }
  return r;
}

SnapshotRecord decode_snapshot(const std::string& payload) {
  const char* what = "snapshot";
  const JsonValue v = parse_payload(payload, what);
  const JsonValue* state = v.find("state");
  if (state == nullptr) throw WalCorrupt("snapshot payload missing \"state\"");
  SnapshotRecord r;
  {
    // Re-serialize the state subtree through its own decoder so both
    // halves share one strict schema.
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.field("watermark", num(*state, "watermark", what));
    const JsonValue* det = state->find("detector");
    if (det != nullptr) {
      w.key("detector");
      write_checkpoint(w, read_checkpoint(*det));
    }
    w.end_object();
    r.state = decode_snapshot_state(os.str());
  }
  for (const JsonValue& item : arr(v, "history", what)) {
    HistRecord h;
    WalRecordType type;
    if (!parse_record_type(str(item, "type", what), &type)) {
      throw WalCorrupt("snapshot history entry has unknown record type");
    }
    h.type = type;
    h.t = num(item, "t", what);
    const JsonValue* p = item.find("payload");
    if (p == nullptr || !p->is_string()) {
      throw WalCorrupt("snapshot history entry missing payload string");
    }
    h.payload = p->as_string();
    r.history.push_back(std::move(h));
  }
  return r;
}

migrate::MigrationReport rebuild_migration_report(
    const std::vector<MigRecord>& records, const Mapping& at_grant,
    const Mapping& target, Seconds granted_at, Seconds finish_time) {
  migrate::MigrationReport rep;
  rep.final_mapping = at_grant;
  rep.start_time = granted_at;
  rep.finish_time = finish_time;
  for (std::size_t p = 0; p < at_grant.size() && p < target.size(); ++p) {
    if (target[p] != at_grant[p]) rep.processes_planned += 1;
  }
  // WAL order is emission order; the executor's journal is time-sorted
  // (stable). Rebuild in the same order so the recovered report feeds
  // the invariant checkers exactly like a live one.
  std::vector<MigRecord> sorted = records;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const MigRecord& a, const MigRecord& b) {
                     return a.event.t < b.event.t;
                   });
  Seconds last_activity = granted_at;
  for (const MigRecord& r : sorted) {
    const fault::MigrationEvent& e = r.event;
    rep.events.push_back(e);
    last_activity = std::max(last_activity, e.t);
    switch (e.kind) {
      case fault::MigrationEventKind::kCommit:
        if (e.process >= 0 &&
            e.process < static_cast<ProcessId>(rep.final_mapping.size())) {
          rep.final_mapping[static_cast<std::size_t>(e.process)] = e.site_to;
        }
        if (e.site_from != e.site_to) rep.processes_committed += 1;
        rep.max_downtime = std::max(rep.max_downtime, r.downtime);
        rep.total_downtime += r.downtime;
        break;
      case fault::MigrationEventKind::kRollback:
        rep.rollbacks += 1;
        break;
      case fault::MigrationEventKind::kReplan:
        rep.replans += 1;
        break;
      case fault::MigrationEventKind::kChunk:
        rep.bytes_sent += e.bytes;
        break;
      case fault::MigrationEventKind::kReserve:
      case fault::MigrationEventKind::kRelease:
        break;
    }
  }
  rep.migration_seconds = std::max(0.0, last_activity - granted_at);
  return rep;
}

}  // namespace geomap::recover
