#pragma once
// Typed payload codecs for the control-plane WAL.
//
// Producers that sit *below* geomap_recover in the link graph encode
// their payloads locally with JsonWriter (obs/detector.cpp for episode
// records, migrate/executor.cpp for migration protocol records) — the
// decoders here are the single source of truth for what those payloads
// mean, and the round-trip tests in tests/recover_test.cpp pin the two
// sides together. Producers that link geomap_recover (the scheduler,
// the recoverable driver) use the encoders here directly.
//
// Every decoder throws WalCorrupt on a structurally broken payload: a
// record that passed its line CRC but does not decode is corruption,
// not a torn tail, and recovery must refuse to guess.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "fault/chaos.h"
#include "migrate/executor.h"
#include "obs/detector.h"
#include "recover/wal.h"

namespace geomap::recover {

/// run_begin — identity of the case this WAL belongs to; recovery
/// refuses to resume a WAL whose identity does not match the caller's.
struct RunBeginRecord {
  std::uint64_t seed = 0;
  int tenants = 0;
  int sites = 0;
  std::string policy;
};

/// detector_onset / detector_clear — the episode exactly as announced
/// (onset carries at-detect severity/confidence, clear the final ones).
struct DetectorEpisodeRecord {
  obs::DegradationEvent event;
};

/// detect_decision — the detector vote the storm acted on.
struct DetectDecisionRecord {
  bool detected = false;
  bool suspected_correct = false;
  SiteId suspect = -1;
  SiteId failed_site = -1;
  Seconds outage_time = 0;
  Seconds detect_time = 0;
};

/// sched_request — one tenant's remap request as enqueued.
struct SchedRequestRecord {
  int tenant = -1;
  Seconds request_time = 0;
  double severity = 0;
};

/// sched_grant — the full decision input, durable *before* the grant
/// executes: redo re-runs execute_migration deterministically from it.
struct SchedGrantRecord {
  int tenant = -1;
  Seconds granted_at = 0;
  int attempts = 0;
  Mapping current;
  Mapping target;
  std::vector<double> view_capacities;
};

struct SchedRequeueRecord {
  int tenant = -1;
  Seconds t = 0;
  int attempts = 0;
  Seconds next_eligible = 0;
};

struct SchedGiveUpRecord {
  int tenant = -1;
  Seconds t = 0;
  int attempts = 0;
};

/// sched_finish — the grant's outcome; closes the matching sched_grant
/// and carries everything the streamed scheduler/grant event needs for
/// re-emission.
struct SchedFinishRecord {
  int tenant = -1;
  Seconds granted_at = 0;
  Seconds finish_time = 0;
  Seconds migration_seconds = 0;
  Seconds queue_wait = 0;
  int attempts = 0;
  Mapping final_mapping;
};

/// mig_* — one migration protocol transition, tagged with the owning
/// tenant. `downtime` is meaningful for commits only.
struct MigRecord {
  int tenant = -1;
  fault::MigrationEvent event;
  Seconds downtime = 0;
};

/// The "state" half of a snapshot payload: the sample-stream watermark
/// plus the detector's complete re-armable state.
struct SnapshotStateRecord {
  std::size_t watermark = 0;
  bool has_detector = false;
  obs::DetectorCheckpoint detector;
};

// -- Encoders (single-line JSON payloads) --
std::string encode_run_begin(const RunBeginRecord& r);
std::string encode_detector_episode(const obs::DegradationEvent& e,
                                    Seconds end);
std::string encode_detect_decision(const DetectDecisionRecord& r);
std::string encode_sched_request(const SchedRequestRecord& r);
std::string encode_sched_grant(const SchedGrantRecord& r);
std::string encode_sched_requeue(const SchedRequeueRecord& r);
std::string encode_sched_give_up(const SchedGiveUpRecord& r);
std::string encode_sched_finish(const SchedFinishRecord& r);
std::string encode_mig(const MigRecord& r);
std::string encode_snapshot_state(const SnapshotStateRecord& r);

// -- Decoders --
RunBeginRecord decode_run_begin(const std::string& payload);
DetectorEpisodeRecord decode_detector_episode(const std::string& payload);
DetectDecisionRecord decode_detect_decision(const std::string& payload);
SchedRequestRecord decode_sched_request(const std::string& payload);
SchedGrantRecord decode_sched_grant(const std::string& payload);
SchedRequeueRecord decode_sched_requeue(const std::string& payload);
SchedGiveUpRecord decode_sched_give_up(const std::string& payload);
SchedFinishRecord decode_sched_finish(const std::string& payload);
MigRecord decode_mig(WalRecordType type, const std::string& payload);
SnapshotStateRecord decode_snapshot_state(const std::string& payload);

/// Split a kSnapshot payload {"state": ..., "history": [...]} into the
/// decoded state and the embedded effective history.
struct SnapshotRecord {
  SnapshotStateRecord state;
  std::vector<HistRecord> history;
};
SnapshotRecord decode_snapshot(const std::string& payload);

/// Rebuild the MigrationReport-shaped summary of a finished grant from
/// its durable records: journal events in WAL order, final mapping from
/// the commits applied to the at-grant mapping, counters folded from
/// the events. Per-process forensics (copy attempts, byte counts) are
/// not recoverable from the journal alone and stay zeroed — the
/// recovered report is for invariant checking and re-emission, not
/// byte-level report equality.
migrate::MigrationReport rebuild_migration_report(
    const std::vector<MigRecord>& records, const Mapping& at_grant,
    const Mapping& target, Seconds granted_at, Seconds finish_time);

}  // namespace geomap::recover
