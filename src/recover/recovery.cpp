#include "recover/recovery.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/error.h"

namespace geomap::recover {

namespace {

bool is_detector_record(WalRecordType t) {
  return t == WalRecordType::kDetectorOnset ||
         t == WalRecordType::kDetectorClear;
}

bool is_mig_record(WalRecordType t) {
  switch (t) {
    case WalRecordType::kMigReserve:
    case WalRecordType::kMigRelease:
    case WalRecordType::kMigChunk:
    case WalRecordType::kMigCommit:
    case WalRecordType::kMigRollback:
    case WalRecordType::kMigReplan:
      return true;
    default:
      return false;
  }
}

/// Tenant a queue-path record names; -1 when the type carries none.
int record_tenant(const HistRecord& h) {
  switch (h.type) {
    case WalRecordType::kSchedFinish:
      return decode_sched_finish(h.payload).tenant;
    case WalRecordType::kSchedRequeue:
      return decode_sched_requeue(h.payload).tenant;
    case WalRecordType::kSchedGiveUp:
      return decode_sched_give_up(h.payload).tenant;
    default:
      return -1;
  }
}

struct SanitizeResult {
  std::vector<HistRecord> history;
  std::vector<MigRecord> extracted;  // open grant's journal prefix
  bool had_open_grant = false;
  /// Index shift of the snapshot boundary after removals below it.
  std::size_t removed_below_snap = 0;
};

/// Apply the recovery sanitization rules to an effective history (see
/// the header comment). `snap_len` is the length of the prefix that
/// came from the last snapshot (0: none).
SanitizeResult sanitize(const std::vector<HistRecord>& in,
                        std::size_t snap_len) {
  bool has_decision = false;
  for (const HistRecord& h : in) {
    if (h.type == WalRecordType::kDetectDecision) has_decision = true;
  }

  // Locate the trailing open grant, if any.
  std::ptrdiff_t open_grant = -1;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i].type != WalRecordType::kSchedGrant) continue;
    const int tenant = decode_sched_grant(in[i].payload).tenant;
    bool closed = false;
    for (std::size_t j = i + 1; j < in.size(); ++j) {
      if (record_tenant(in[j]) == tenant) {
        closed = true;
        break;
      }
    }
    open_grant = closed ? -1 : static_cast<std::ptrdiff_t>(i);
  }

  SanitizeResult out;
  out.had_open_grant = open_grant >= 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const HistRecord& h = in[i];
    const bool stale_detector = !has_decision && i >= snap_len &&
                                is_detector_record(h.type);
    const bool open_mig = open_grant >= 0 &&
                          i > static_cast<std::size_t>(open_grant) &&
                          is_mig_record(h.type);
    if (stale_detector) continue;
    if (open_mig) {
      MigRecord m = decode_mig(h.type, h.payload);
      m.event.t = h.t;
      out.extracted.push_back(std::move(m));
      if (i < snap_len) out.removed_below_snap += 1;
      continue;
    }
    out.history.push_back(h);
  }
  return out;
}

}  // namespace

RecoveredControlPlane replay_wal(const std::vector<WalRecord>& records) {
  // Fold the stream: snapshots reset the effective history, each
  // recovery_begin re-applies the sanitization the live recovery did at
  // that boundary.
  std::vector<HistRecord> effective;
  std::size_t snap_len = 0;
  RecoveredControlPlane rcp;
  for (const WalRecord& r : records) {
    switch (r.type) {
      case WalRecordType::kSnapshot: {
        SnapshotRecord snap = decode_snapshot(r.payload);
        effective = std::move(snap.history);
        snap_len = effective.size();
        rcp.watermark = snap.state.watermark;
        rcp.has_detector = snap.state.has_detector;
        rcp.detector = snap.state.detector;
        break;
      }
      case WalRecordType::kRecoveryBegin: {
        rcp.recoveries += 1;
        SanitizeResult s = sanitize(effective, snap_len);
        snap_len -= s.removed_below_snap;
        effective = std::move(s.history);
        break;
      }
      default:
        effective.push_back(HistRecord{r.type, r.t, r.payload});
        break;
    }
  }

  SanitizeResult fin = sanitize(effective, snap_len);
  rcp.has_interrupted = fin.had_open_grant;
  rcp.interrupted_prefix = std::move(fin.extracted);
  rcp.effective = std::move(fin.history);

  // Decode the sanitized history into resumable state. The open grant
  // (if any) is the last one and ends up with empty migs.
  const auto open_grant_for = [&rcp](int tenant) -> RecoveredGrant* {
    for (auto it = rcp.grants.rbegin(); it != rcp.grants.rend(); ++it) {
      if (it->grant.tenant == tenant && !it->finished && !it->requeued)
        return &*it;
    }
    return nullptr;
  };
  for (const HistRecord& h : rcp.effective) {
    switch (h.type) {
      case WalRecordType::kRunBegin:
        rcp.has_run = true;
        rcp.run = decode_run_begin(h.payload);
        break;
      case WalRecordType::kDetectDecision:
        rcp.has_decision = true;
        rcp.decision = decode_detect_decision(h.payload);
        break;
      case WalRecordType::kSchedRequest:
        rcp.requests.push_back(decode_sched_request(h.payload));
        break;
      case WalRecordType::kSchedGrant: {
        RecoveredGrant g;
        g.grant = decode_sched_grant(h.payload);
        rcp.grants.push_back(std::move(g));
        break;
      }
      case WalRecordType::kSchedFinish: {
        const SchedFinishRecord fin2 = decode_sched_finish(h.payload);
        RecoveredGrant* g = open_grant_for(fin2.tenant);
        if (g != nullptr) {
          g->finished = true;
          g->finish = fin2;
        }
        break;
      }
      case WalRecordType::kSchedRequeue: {
        const SchedRequeueRecord rq = decode_sched_requeue(h.payload);
        RecoveredGrant* g = open_grant_for(rq.tenant);
        if (g != nullptr) g->requeued = true;
        rcp.requeues.push_back(rq);
        break;
      }
      case WalRecordType::kSchedGiveUp: {
        const SchedGiveUpRecord gu = decode_sched_give_up(h.payload);
        RecoveredGrant* g = open_grant_for(gu.tenant);
        if (g != nullptr) g->requeued = true;
        rcp.give_ups.push_back(gu);
        break;
      }
      case WalRecordType::kRunEnd:
        rcp.run_complete = true;
        break;
      default:
        if (is_mig_record(h.type)) {
          MigRecord m = decode_mig(h.type, h.payload);
          m.event.t = h.t;
          RecoveredGrant* g = open_grant_for(m.tenant);
          if (g != nullptr) g->migs.push_back(std::move(m));
        }
        break;
    }
  }
  return rcp;
}

void reemit_events(const RecoveredControlPlane& rcp, obs::EventLog& elog) {
  using obs::EventSeverity;
  using obs::field;
  for (const HistRecord& h : rcp.effective) {
    switch (h.type) {
      case WalRecordType::kDetectorOnset: {
        const obs::DegradationEvent e =
            decode_detector_episode(h.payload).event;
        elog.emit(e.detect_vtime, EventSeverity::kWarn, "detector", "onset",
                  {field("src", e.src), field("dst", e.dst),
                   field("kind", obs::to_string(e.kind)),
                   field("onset", e.onset_vtime),
                   field("latency",
                         std::max(0.0, e.detect_vtime - e.onset_vtime)),
                   field("severity", e.severity),
                   field("confidence", e.confidence)});
        break;
      }
      case WalRecordType::kDetectorClear: {
        const obs::DegradationEvent e =
            decode_detector_episode(h.payload).event;
        elog.emit(h.t, EventSeverity::kInfo, "detector", "clear",
                  {field("src", e.src), field("dst", e.dst),
                   field("kind", obs::to_string(e.kind)),
                   field("duration", std::max(0.0, h.t - e.onset_vtime)),
                   field("severity", e.severity),
                   field("confidence", e.confidence)});
        break;
      }
      case WalRecordType::kDetectDecision: {
        const DetectDecisionRecord d = decode_detect_decision(h.payload);
        elog.emit(h.t,
                  d.suspected_correct ? EventSeverity::kInfo
                                      : EventSeverity::kWarn,
                  "soak", "detect",
                  {field("detected", d.detected),
                   field("suspected_correct", d.suspected_correct),
                   field("suspect", d.suspect),
                   field("failed_site", d.failed_site),
                   field("outage_time", d.outage_time)});
        break;
      }
      case WalRecordType::kSchedRequest: {
        const SchedRequestRecord r = decode_sched_request(h.payload);
        elog.emit(r.request_time, EventSeverity::kInfo, "scheduler", "queue",
                  {field("tenant", r.tenant), field("severity", r.severity)});
        break;
      }
      case WalRecordType::kSchedFinish: {
        const SchedFinishRecord f = decode_sched_finish(h.payload);
        elog.emit(f.granted_at, EventSeverity::kInfo, "scheduler", "grant",
                  {field("tenant", f.tenant),
                   field("queue_wait", f.queue_wait),
                   field("attempts", f.attempts),
                   field("migration_seconds", f.migration_seconds)});
        break;
      }
      case WalRecordType::kSchedRequeue: {
        const SchedRequeueRecord r = decode_sched_requeue(h.payload);
        elog.emit(r.t, EventSeverity::kWarn, "scheduler", "requeue",
                  {field("tenant", r.tenant), field("attempts", r.attempts),
                   field("next_eligible", r.next_eligible)});
        break;
      }
      case WalRecordType::kSchedGiveUp: {
        const SchedGiveUpRecord r = decode_sched_give_up(h.payload);
        elog.emit(r.t, EventSeverity::kError, "scheduler", "give_up",
                  {field("tenant", r.tenant), field("attempts", r.attempts)});
        break;
      }
      case WalRecordType::kMigReserve:
      case WalRecordType::kMigRelease:
      case WalRecordType::kMigCommit:
      case WalRecordType::kMigRollback:
      case WalRecordType::kMigReplan: {
        const MigRecord m = decode_mig(h.type, h.payload);
        const fault::MigrationEventKind kind = m.event.kind;
        const bool trouble = kind == fault::MigrationEventKind::kRollback ||
                             kind == fault::MigrationEventKind::kReplan;
        std::vector<obs::EventField> fields;
        fields.reserve(4);
        fields.push_back(field("process", m.event.process));
        fields.push_back(field("from", m.event.site_from));
        fields.push_back(field("to", m.event.site_to));
        if (kind == fault::MigrationEventKind::kCommit &&
            m.event.process >= 0)
          fields.push_back(field("downtime", m.downtime));
        elog.emit(h.t,
                  trouble ? EventSeverity::kWarn : EventSeverity::kInfo,
                  "migrate", fault::to_string(kind), std::move(fields));
        break;
      }
      case WalRecordType::kMigChunk:  // never streamed live either
      case WalRecordType::kRunBegin:
      case WalRecordType::kSchedGrant:
      case WalRecordType::kRunEnd:
      case WalRecordType::kSnapshot:
      case WalRecordType::kRecoveryBegin:
        break;
    }
  }
}

bool journal_prefix_consistent(const std::vector<MigRecord>& prefix,
                               const std::vector<fault::MigrationEvent>& redone,
                               std::string* why) {
  const auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (prefix.size() > redone.size()) {
    return fail("durable journal prefix (" + std::to_string(prefix.size()) +
                " events) is longer than the redone journal (" +
                std::to_string(redone.size()) + ")");
  }
  // The WAL holds the prefix in *emission* order; the redone report is
  // time-sorted (the executor stable-sorts its journal on finish). Sort
  // the prefix the same way, then require it to be an ordered
  // sub-multiset of the redone journal: every durable event must
  // reappear, field-for-field — a dropped one is a lost transition, and
  // a re-executed commit shows up as a count mismatch here or as a
  // double commit in the WAL audit.
  std::vector<MigRecord> sorted = prefix;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const MigRecord& a, const MigRecord& b) {
                     return a.event.t < b.event.t;
                   });
  std::size_t j = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const fault::MigrationEvent& a = sorted[i].event;
    bool found = false;
    for (; j < redone.size(); ++j) {
      const fault::MigrationEvent& b = redone[j];
      if (a.kind == b.kind && a.t == b.t && a.process == b.process &&
          a.site_from == b.site_from && a.site_to == b.site_to &&
          a.bytes == b.bytes) {
        found = true;
        ++j;
        break;
      }
    }
    if (!found) {
      std::ostringstream os;
      os << "redone journal lost durable event " << i << ": "
         << fault::to_string(a.kind) << " t=" << a.t << " p=" << a.process
         << " " << a.site_from << "->" << a.site_to;
      return fail(os.str());
    }
  }
  return true;
}

std::vector<std::string> check_recovery_invariants(
    const std::vector<WalRecord>& records) {
  std::vector<std::string> violations;
  const auto flag = [&violations](const std::string& msg) {
    violations.push_back(msg);
  };

  if (records.empty()) {
    flag("WAL is empty: no run_begin record");
    return violations;
  }
  if (records.front().type != WalRecordType::kRunBegin &&
      records.front().type != WalRecordType::kSnapshot) {
    flag(std::string("WAL starts with ") + to_string(records.front().type) +
         ", expected run_begin or snapshot");
  }

  RecoveredControlPlane rcp;
  try {
    rcp = replay_wal(records);
  } catch (const WalCorrupt& e) {
    flag(std::string("WAL does not replay: ") + e.what());
    return violations;
  }
  if (!rcp.has_run) flag("effective history has no run_begin record");

  // Attempts strictly increasing per tenant across the retry path.
  std::map<int, int> attempts_seen;
  const auto check_attempts = [&](int tenant, int attempts,
                                  const char* what) {
    int& prev = attempts_seen[tenant];
    if (attempts <= prev) {
      flag("tenant " + std::to_string(tenant) + ": " + what + " attempt " +
           std::to_string(attempts) + " does not exceed previous attempt " +
           std::to_string(prev) + " (a retry timer fired twice?)");
    }
    prev = attempts;
  };
  for (const HistRecord& h : rcp.effective) {
    if (h.type == WalRecordType::kSchedGrant) {
      const SchedGrantRecord g = decode_sched_grant(h.payload);
      check_attempts(g.tenant, g.attempts, "grant");
    } else if (h.type == WalRecordType::kSchedRequeue) {
      const SchedRequeueRecord r = decode_sched_requeue(h.payload);
      check_attempts(r.tenant, r.attempts, "requeue");
    } else if (h.type == WalRecordType::kSchedGiveUp) {
      // Give-up happens at the attempt that failed — same count as the
      // requeue path would have logged, not a new attempt.
      const SchedGiveUpRecord r = decode_sched_give_up(h.payload);
      if (r.attempts < attempts_seen[r.tenant]) {
        flag("tenant " + std::to_string(r.tenant) +
             ": give_up attempt count went backwards");
      }
      attempts_seen[r.tenant] = r.attempts;
    }
  }

  // Grants: one closing record each, at most one trailing open grant,
  // journal sanity per grant.
  std::map<int, int> grants_per_tenant;
  for (std::size_t i = 0; i < rcp.grants.size(); ++i) {
    const RecoveredGrant& g = rcp.grants[i];
    grants_per_tenant[g.grant.tenant] += 1;
    const bool open = !g.finished && !g.requeued;
    if (open && (i + 1 != rcp.grants.size() || !rcp.has_interrupted)) {
      flag("tenant " + std::to_string(g.grant.tenant) +
           ": grant never closed by a finish/requeue/give_up record");
    }
    std::map<ProcessId, int> commits;
    for (const MigRecord& m : g.migs) {
      if (m.tenant != g.grant.tenant) {
        flag("tenant " + std::to_string(g.grant.tenant) +
             ": journal record tagged for tenant " + std::to_string(m.tenant));
      }
      if (m.event.kind == fault::MigrationEventKind::kCommit &&
          m.event.process >= 0) {
        if (++commits[m.event.process] > 1) {
          flag("tenant " + std::to_string(g.grant.tenant) + ": process " +
               std::to_string(m.event.process) +
               " committed twice in one grant (double commit)");
        }
      }
    }
    if (g.finished && g.finish.granted_at != g.grant.granted_at) {
      flag("tenant " + std::to_string(g.grant.tenant) +
           ": finish record grant time " +
           std::to_string(g.finish.granted_at) +
           " does not match the grant record's " +
           std::to_string(g.grant.granted_at));
    }
  }
  for (const auto& [tenant, n] : grants_per_tenant) {
    (void)n;  // requeued grants legitimately re-enter the queue
    int completed = 0;
    for (const RecoveredGrant& g : rcp.grants) {
      if (g.grant.tenant == tenant && g.finished) completed += 1;
    }
    if (completed > 1) {
      flag("tenant " + std::to_string(tenant) + " finished " +
           std::to_string(completed) + " grants (lost-grant bookkeeping)");
    }
  }

  // Journal records are only legal inside an open grant of their tenant.
  {
    std::set<int> open_tenants;
    for (const HistRecord& h : rcp.effective) {
      if (h.type == WalRecordType::kSchedGrant) {
        open_tenants.insert(decode_sched_grant(h.payload).tenant);
      } else if (h.type == WalRecordType::kSchedFinish ||
                 h.type == WalRecordType::kSchedRequeue ||
                 h.type == WalRecordType::kSchedGiveUp) {
        open_tenants.erase(record_tenant(h));
      } else if (is_mig_record(h.type)) {
        const MigRecord m2 = decode_mig(h.type, h.payload);
        if (open_tenants.count(m2.tenant) == 0) {
          flag(std::string("journal record ") + to_string(h.type) +
               " for tenant " + std::to_string(m2.tenant) +
               " outside any open grant");
        }
      }
    }
  }

  // The interrupted grant's durable prefix obeys the same per-grant rules
  // (it is exactly the journal the redo must extend).
  if (rcp.has_interrupted && !rcp.grants.empty()) {
    const RecoveredGrant& og = rcp.grants.back();
    std::map<ProcessId, int> commits;
    for (const MigRecord& m2 : rcp.interrupted_prefix) {
      if (m2.tenant != og.grant.tenant) {
        flag("tenant " + std::to_string(og.grant.tenant) +
             ": durable journal prefix tagged for tenant " +
             std::to_string(m2.tenant));
      }
      if (m2.event.kind == fault::MigrationEventKind::kCommit &&
          m2.event.process >= 0 && ++commits[m2.event.process] > 1) {
        flag("tenant " + std::to_string(og.grant.tenant) + ": process " +
             std::to_string(m2.event.process) +
             " committed twice in the durable prefix (double commit)");
      }
    }
  }

  if (rcp.has_interrupted && rcp.run_complete) {
    flag("run_end present but the last grant is still open");
  }

  // A complete run resolves every request: granted to completion or
  // given up — a request that vanished is a lost grant.
  if (rcp.run_complete) {
    for (const SchedRequestRecord& r : rcp.requests) {
      bool resolved = false;
      for (const RecoveredGrant& g : rcp.grants) {
        if (g.grant.tenant == r.tenant && g.finished) resolved = true;
      }
      for (const SchedGiveUpRecord& g : rcp.give_ups) {
        if (g.tenant == r.tenant) resolved = true;
      }
      if (!resolved) {
        flag("tenant " + std::to_string(r.tenant) +
             " requested a remap but the completed run never granted or "
             "gave it up (lost grant)");
      }
    }
    // A restart on an already-sealed WAL legitimately appends a trailing
    // recovery_begin marker; the last *state-bearing* record must still
    // be the run_end.
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      if (it->type == WalRecordType::kRecoveryBegin) continue;
      if (it->type != WalRecordType::kRunEnd) {
        flag(std::string("run is complete but the WAL ends with ") +
             to_string(it->type) + ", expected run_end");
      }
      break;
    }
  }

  // Every grant must trace back to a durable request.
  for (const RecoveredGrant& g : rcp.grants) {
    bool requested = false;
    for (const SchedRequestRecord& r : rcp.requests) {
      if (r.tenant == g.grant.tenant) requested = true;
    }
    if (!requested) {
      flag("tenant " + std::to_string(g.grant.tenant) +
           " was granted without a durable sched_request record");
    }
  }

  return violations;
}

}  // namespace geomap::recover
