#include "recover/driver.h"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>

#include "common/crc32.h"
#include "common/error.h"
#include "common/json_writer.h"
#include "common/timer.h"
#include "core/remap.h"
#include "fault/attribution.h"
#include "fault/crash.h"
#include "fault/degraded_network.h"
#include "fault/fault_plan.h"
#include "obs/collector.h"
#include "obs/detector.h"
#include "obs/incident.h"
#include "recover/recovery.h"
#include "sim/netsim.h"

namespace geomap::recover {

void RecoverableSoakOptions::validate() const {
  soak.validate();
  GEOMAP_CHECK_ARG(!wal_dir.empty(), "wal_dir must be set");
  GEOMAP_CHECK_ARG(snapshot_every_samples >= 0,
                   "snapshot_every_samples must be >= 0, got "
                       << snapshot_every_samples);
}

void CrashMatrixOptions::validate() const {
  base.validate();
  GEOMAP_CHECK_ARG(max_attempts >= 2,
                   "max_attempts must be >= 2 (one kill, one recovery), got "
                       << max_attempts);
}

namespace {

std::vector<sim::TenantFlow> flows_of(const tenancy::Substrate& substrate) {
  std::vector<sim::TenantFlow> flows;
  flows.reserve(substrate.tenants.size());
  for (const tenancy::Tenant& t : substrate.tenants) {
    flows.push_back({&t.problem.comm, &t.mapping});
  }
  return flows;
}

/// Canonical outcome digest: everything the WAL promises to preserve
/// across a crash. Timeline series are deliberately excluded (a resumed
/// run does not rebuild pre-crash executor series; the contract covers
/// events, incidents, and the storm outcome).
std::uint32_t case_digest(const tenancy::MultiTenantSoakCase& c,
                          const std::vector<obs::Event>& events) {
  std::ostringstream os;
  const auto d = [](double v) { return JsonWriter::format_double(v); };
  os << "seed " << c.seed << " tenants " << c.tenants << '\n';
  os << "decision " << c.detected << ' ' << c.suspected_correct << ' '
     << c.primary_site << ' ' << d(c.detect_time) << '\n';
  for (const tenancy::TenantRecovery& r : c.storm.recoveries) {
    os << "req " << r.tenant << ' ' << r.granted << ' ' << r.gave_up << ' '
       << r.attempts << ' ' << d(r.granted_at) << ' ' << d(r.finish_time)
       << '\n';
    if (r.granted) {
      os << "map " << r.tenant;
      for (const SiteId s : r.report.final_mapping) os << ' ' << s;
      os << '\n';
    }
  }
  os << "grants";
  for (const int t : c.storm.grant_order) os << ' ' << t;
  os << '\n';
  os << "requeues " << c.storm.requeues << " gave_up " << c.storm.gave_up
     << " drain " << d(c.storm.storm_drain_seconds) << '\n';
  os << "violations " << c.violations.size() << '\n';
  for (const fault::InvariantViolation& v : c.violations) {
    os << d(v.t) << ' ' << v.message << '\n';
  }
  os << "fairness " << d(c.fairness.jain_index) << ' '
     << d(c.fairness.mean_stretch) << ' ' << d(c.fairness.p99_stretch) << '\n';
  os << "incidents " << c.incidents.size() << '\n';
  // Events in canonical order with sequence numbers zeroed: emission
  // interleaving differs between a live run and re-emission + resume,
  // the content must not.
  std::vector<std::string> lines;
  lines.reserve(events.size());
  for (obs::Event e : events) {
    e.seq = 0;
    lines.push_back(obs::event_to_json(e));
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& line : lines) os << line << '\n';
  return crc32(os.str());
}

}  // namespace

tenancy::StormResume build_storm_resume(
    const RecoveredControlPlane& rcp,
    const std::vector<tenancy::RemapRequest>& requests) {
  tenancy::StormResume sr;
  Seconds last = 0;
  sr.pending.reserve(requests.size());
  for (const tenancy::RemapRequest& r : requests) {
    tenancy::ResumePending rp;
    rp.tenant = r.tenant;
    rp.next_eligible = r.request_time;
    sr.pending.push_back(rp);
    last = std::max(last, r.request_time);
  }
  const auto pending_of = [&sr](int tenant) -> tenancy::ResumePending& {
    for (tenancy::ResumePending& p : sr.pending) {
      if (p.tenant == tenant) return p;
    }
    GEOMAP_CHECK_ARG(false, "WAL names tenant " << tenant
                                                << " that filed no request");
    return sr.pending.front();  // unreachable
  };
  // A requeue both counts and re-arms the backoff timer: the pending
  // timer fires exactly once after recovery, at the recorded instant.
  for (const SchedRequeueRecord& rq : rcp.requeues) {
    tenancy::ResumePending& p = pending_of(rq.tenant);
    p.attempts = rq.attempts;
    p.next_eligible = rq.next_eligible;
    last = std::max(last, rq.t);
  }
  for (const SchedGiveUpRecord& gu : rcp.give_ups) {
    tenancy::ResumePending& p = pending_of(gu.tenant);
    p.attempts = gu.attempts;
    p.done = true;
    p.gave_up = true;
    last = std::max(last, gu.t);
  }
  for (const RecoveredGrant& g : rcp.grants) {
    last = std::max(last, g.grant.granted_at);
    if (g.finished) {
      tenancy::ResumePending& p = pending_of(g.grant.tenant);
      p.attempts = g.grant.attempts;
      p.done = true;
      tenancy::ResumeFinished rf;
      rf.tenant = g.grant.tenant;
      rf.granted_at = g.grant.granted_at;
      rf.attempts = g.grant.attempts;
      rf.at_grant = g.grant.current;
      rf.report = rebuild_migration_report(g.migs, g.grant.current,
                                           g.grant.target, g.grant.granted_at,
                                           g.finish.finish_time);
      // The finish record is authoritative where the journal alone is
      // lossy (idle grants, rounding).
      rf.report.migration_seconds = g.finish.migration_seconds;
      rf.report.final_mapping = g.finish.final_mapping;
      sr.finished.push_back(std::move(rf));
      last = std::max(last, g.finish.finish_time);
    } else if (!g.requeued) {
      tenancy::ResumeInterrupted& ri = sr.interrupted;
      ri.active = true;
      ri.tenant = g.grant.tenant;
      ri.granted_at = g.grant.granted_at;
      ri.attempts = g.grant.attempts;
      ri.at_grant = g.grant.current;
      ri.target = g.grant.target;
      ri.view_capacities.clear();
      ri.view_capacities.reserve(g.grant.view_capacities.size());
      for (const double v : g.grant.view_capacities) {
        ri.view_capacities.push_back(static_cast<int>(v));
      }
      tenancy::ResumePending& p = pending_of(g.grant.tenant);
      p.attempts = g.grant.attempts;
    }
  }
  sr.requeues = static_cast<int>(rcp.requeues.size());
  sr.gave_up = static_cast<int>(rcp.give_ups.size());
  sr.last_activity = last;
  return sr;
}

RecoverableCaseResult run_recoverable_case(
    std::uint64_t seed, const RecoverableSoakOptions& options) {
  options.validate();
  GEOMAP_CHECK_ARG(options.soak.collector != nullptr,
                   "recoverable soak requires a collector");
  obs::Collector& collector = *options.soak.collector;
  obs::EventLog* elog = &collector.events();
  const std::uint64_t seq0 = elog->total();

  RecoverableCaseResult result;
  tenancy::MultiTenantSoakCase& cse = result.soak_case;
  cse.seed = seed;

  // Replay whatever a crashed predecessor made durable.
  Timer replay_timer;
  const WalRecovery prior = read_wal(options.wal_dir);
  RecoveredControlPlane rcp;
  if (!prior.records.empty()) rcp = replay_wal(prior.records);
  result.wal_replay_seconds = replay_timer.elapsed_seconds();
  result.wal_records_replayed = prior.records.size();
  result.resumed = rcp.has_run;
  result.recoveries = result.resumed ? rcp.recoveries + 1 : 0;

  // 1. Substrate + solo baselines (deterministic recompute, both modes).
  tenancy::Substrate substrate = make_substrate(seed, options.soak.substrate);
  cse.tenants = substrate.num_tenants();
  const std::string policy = tenancy::to_string(options.soak.scheduler.policy);
  if (result.resumed) {
    GEOMAP_CHECK_ARG(
        rcp.run.seed == seed && rcp.run.tenants == substrate.num_tenants() &&
            rcp.run.sites == substrate.num_sites() && rcp.run.policy == policy,
        "WAL at " << options.wal_dir << " belongs to a different run (seed "
                  << rcp.run.seed << ", " << rcp.run.tenants << " tenants, "
                  << rcp.run.sites << " sites, policy " << rcp.run.policy
                  << ")");
  }

  Wal wal(options.wal_dir, options.wal);
  Timer recovery_timer;
  if (result.resumed) {
    // New generation: seed the sanitized past so this generation's
    // snapshots keep folding it, mark the boundary, re-announce what the
    // dead process already announced.
    wal.seed_history(rcp.effective);
    std::ostringstream os;
    {
      JsonWriter w(os, /*pretty=*/false);
      w.begin_object();
      w.field("generation", result.recoveries);
      w.field("replayed", static_cast<std::uint64_t>(prior.records.size()));
      w.end_object();
    }
    wal.append(WalRecordType::kRecoveryBegin, 0, os.str());
    wal.sync();
  } else {
    RunBeginRecord rb;
    rb.seed = seed;
    rb.tenants = substrate.num_tenants();
    rb.sites = substrate.num_sites();
    rb.policy = policy;
    wal.append(WalRecordType::kRunBegin, 0, encode_run_begin(rb));
    wal.sync();
  }
  // case_start first, THEN the re-emitted history: incident building
  // segments the stream at case_start markers, so the recovered stream
  // must keep the live stream's order (case_start leads).
  elog->emit(0, obs::EventSeverity::kInfo, "soak", "case_start",
             {obs::field("seed", seed), obs::field("tenants", cse.tenants)});
  if (result.resumed) reemit_events(rcp, *elog);
  result.recovery_seconds = recovery_timer.elapsed_seconds();
  const net::NetworkModel& network = substrate.tenants.front().problem.network;

  // 2. Healthy calibration + chaos plan (deterministic recompute).
  const fault::FaultPlan no_faults;
  const fault::DegradedNetworkModel healthy(network, no_faults);
  sim::MultiTenantReplayOptions calibrate;
  calibrate.rounds = options.soak.app_rounds;
  const Seconds healthy_makespan =
      sim::replay_multitenant(flows_of(substrate), healthy, calibrate)
          .makespan;

  fault::ChaosOptions chaos = options.soak.chaos;
  chaos.num_sites = substrate.num_sites();
  chaos.horizon = healthy_makespan;
  if (chaos.migration_window_length <= 0) {
    chaos.migration_window_length = 1.5 * healthy_makespan;
    if (chaos.migration_window_faults == 0) chaos.migration_window_faults = 2;
  }
  const fault::ChaosPlan chaos_plan = fault::make_chaos_plan(seed, chaos);
  cse.primary_site = chaos_plan.primary_site;
  cse.outage_time = chaos_plan.primary_outage_time;
  const fault::DegradedNetworkModel degraded(network, chaos_plan.plan);

  // 3. Observation replay (deterministic recompute — the sample stream a
  //    resumed detector is re-fed from is identical to the one the dead
  //    process saw).
  obs::Collector telemetry;
  sim::MultiTenantReplayOptions observe;
  observe.rounds = options.soak.app_rounds;
  observe.collector = &telemetry;
  sim::replay_multitenant(flows_of(substrate), degraded, observe);

  // 4. Detect — incrementally, with compacting snapshots at the sample
  //    watermark; or adopt the durable decision after a post-decision
  //    crash (the detector's verdict is already law, re-deciding could
  //    only disagree with what the storm acted on).
  const std::vector<obs::LinkSample> samples =
      obs::collect_link_samples(telemetry.timeline());
  DetectDecisionRecord decision;
  if (result.resumed && rcp.has_decision) {
    decision = rcp.decision;
  } else {
    obs::DegradationDetector detector;
    std::size_t start = 0;
    if (result.resumed) {
      if (rcp.has_detector) detector.restore(rcp.detector);
      GEOMAP_CHECK_ARG(rcp.watermark <= samples.size(),
                       "WAL snapshot watermark " << rcp.watermark
                                                 << " exceeds the recomputed "
                                                 << samples.size()
                                                 << "-sample stream");
      start = rcp.watermark;
    }
    detector.set_event_log(elog);
    detector.set_wal(&wal);
    for (std::size_t i = start; i < samples.size(); ++i) {
      obs::feed_sample(detector, samples[i]);
      if (options.snapshot_every_samples > 0 &&
          (i + 1) % static_cast<std::size_t>(options.snapshot_every_samples) ==
              0 &&
          i + 1 < samples.size()) {
        SnapshotStateRecord state;
        state.watermark = i + 1;
        state.has_detector = true;
        state.detector = detector.checkpoint();
        wal.snapshot(samples[i].t, encode_snapshot_state(state));
      }
    }
    const core::SuspectVote vote =
        core::vote_suspected_site(detector.events());
    decision.detected = vote.site != -1;
    decision.suspected_correct = vote.site == chaos_plan.primary_site;
    decision.suspect = vote.site;
    decision.failed_site = chaos_plan.primary_site;
    decision.outage_time = chaos_plan.primary_outage_time;
    const bool usable = decision.detected && decision.suspected_correct;
    decision.detect_time =
        usable ? vote.detection_time : chaos_plan.primary_outage_time;
    // Decision durable before anyone acts on it, then announced, then a
    // snapshot closes the detector phase (recovery after this point
    // never re-feeds the detector).
    wal.append(WalRecordType::kDetectDecision, decision.detect_time,
               encode_detect_decision(decision));
    wal.sync();
    elog->emit(decision.detect_time,
               decision.suspected_correct ? obs::EventSeverity::kInfo
                                          : obs::EventSeverity::kWarn,
               "soak", "detect",
               {obs::field("detected", decision.detected),
                obs::field("suspected_correct", decision.suspected_correct),
                obs::field("suspect", decision.suspect),
                obs::field("failed_site", decision.failed_site),
                obs::field("outage_time", decision.outage_time)});
    SnapshotStateRecord state;
    state.watermark = samples.size();
    state.has_detector = true;
    state.detector = detector.checkpoint();
    wal.snapshot(decision.detect_time, encode_snapshot_state(state));
  }
  cse.detected = decision.detected;
  cse.suspected_correct = decision.suspected_correct;
  cse.detect_time = decision.detect_time;
  const SiteId failed = chaos_plan.primary_site;

  // 5. Requests (deterministic recompute from pre-storm placements).
  std::vector<tenancy::RemapRequest> requests;
  for (const tenancy::Tenant& t : substrate.tenants) {
    int stranded = 0;
    for (const SiteId s : t.mapping) {
      if (s == failed) stranded += 1;
    }
    if (stranded == 0) continue;
    tenancy::RemapRequest r;
    r.tenant = t.id;
    r.request_time = cse.detect_time;
    r.severity = static_cast<double>(stranded) /
                 static_cast<double>(t.mapping.size());
    requests.push_back(r);
  }
  cse.requests = static_cast<int>(requests.size());

  tenancy::SchedulerOptions sched = options.soak.scheduler;
  sched.migrate.bytes_per_process = options.soak.bytes_per_process;
  sched.migrate.chunk_bytes = options.soak.chunk_bytes;
  sched.remap.bytes_per_process = options.soak.bytes_per_process;
  if (sched.collector == nullptr) sched.collector = &collector;
  sched.wal = &wal;

  std::vector<Mapping> initial;
  initial.reserve(substrate.tenants.size());
  for (const tenancy::Tenant& t : substrate.tenants) {
    initial.push_back(t.mapping);
  }

  tenancy::StormResume storm_resume;
  if (result.resumed) {
    // The durable request tail must be a prefix of the recomputed queue;
    // requests the dead process never made durable are appended (and
    // announced) now, exactly once.
    GEOMAP_CHECK_ARG(rcp.requests.size() <= requests.size(),
                     "WAL holds " << rcp.requests.size()
                                  << " remap requests, the recomputed case "
                                  << "produces only " << requests.size());
    for (std::size_t i = 0; i < rcp.requests.size(); ++i) {
      GEOMAP_CHECK_ARG(rcp.requests[i].tenant == requests[i].tenant,
                       "WAL request " << i << " names tenant "
                                      << rcp.requests[i].tenant
                                      << ", recomputed case expects "
                                      << requests[i].tenant);
    }
    for (std::size_t i = rcp.requests.size(); i < requests.size(); ++i) {
      SchedRequestRecord r;
      r.tenant = requests[i].tenant;
      r.request_time = requests[i].request_time;
      r.severity = requests[i].severity;
      wal.append(WalRecordType::kSchedRequest, r.request_time,
                 encode_sched_request(r));
    }
    if (rcp.requests.size() < requests.size()) wal.sync();
    for (std::size_t i = rcp.requests.size(); i < requests.size(); ++i) {
      elog->emit(requests[i].request_time, obs::EventSeverity::kInfo,
                 "scheduler", "queue",
                 {obs::field("tenant", requests[i].tenant),
                  obs::field("severity", requests[i].severity)});
    }
    storm_resume = build_storm_resume(rcp, requests);
  }

  cse.storm = run_remap_storm(substrate, chaos_plan.plan, failed, requests,
                              sched, result.resumed ? &storm_resume : nullptr);

  // The redone journal must extend the durable prefix field-for-field —
  // the no-double-commit / no-lost-grant certificate.
  if (result.resumed && rcp.has_interrupted) {
    const int tenant = storm_resume.interrupted.tenant;
    const std::vector<fault::MigrationEvent>* redone = nullptr;
    for (const tenancy::TenantRecovery& rec : cse.storm.recoveries) {
      if (rec.tenant == tenant) redone = &rec.report.events;
    }
    std::string why;
    if (redone == nullptr) {
      result.recovery_violations.push_back(
          "interrupted tenant " + std::to_string(tenant) +
          " missing from the resumed storm report");
    } else if (!journal_prefix_consistent(rcp.interrupted_prefix, *redone,
                                          &why)) {
      result.recovery_violations.push_back("tenant " + std::to_string(tenant) +
                                           ": " + why);
    }
  }

  // 6. Certify journals + cross-tenant view (as the plain soak does).
  fault::MigrationInvariantOptions inv;
  inv.planned_bytes_per_process = options.soak.bytes_per_process;
  inv.chunk_bytes = options.soak.chunk_bytes;
  inv.max_retries = sched.migrate.retry.max_retries;
  inv.max_copy_attempts = sched.migrate.max_copy_attempts +
                          sched.migrate.max_replans +
                          sched.migrate.max_emergency_attempts;

  std::vector<fault::TenantJournal> journals(
      static_cast<std::size_t>(substrate.num_tenants()));
  for (int k = 0; k < substrate.num_tenants(); ++k) {
    journals[static_cast<std::size_t>(k)].initial_mapping =
        initial[static_cast<std::size_t>(k)];
    journals[static_cast<std::size_t>(k)].options = inv;
  }
  for (const tenancy::TenantRecovery& rec : cse.storm.recoveries) {
    if (!rec.granted) continue;
    journals[static_cast<std::size_t>(rec.tenant)].events = rec.report.events;
    fault::MigrationInvariantOptions tenant_inv = inv;
    tenant_inv.horizon = rec.report.finish_time;
    const std::vector<fault::InvariantViolation> v =
        fault::check_migration_invariants(
            rec.report.events, initial[static_cast<std::size_t>(rec.tenant)],
            substrate.site_capacities, chaos_plan.plan, tenant_inv);
    cse.invariants_checked += 1;
    for (const fault::InvariantViolation& viol : v) {
      cse.violations.push_back(
          {viol.t,
           "tenant " + std::to_string(rec.tenant) + ": " + viol.message});
    }
  }
  const std::vector<fault::InvariantViolation> cross =
      fault::check_cross_tenant_invariants(journals, substrate.site_capacities,
                                           chaos_plan.plan);
  cse.invariants_checked += 1;
  for (const fault::InvariantViolation& viol : cross) {
    cse.violations.push_back({viol.t, "cross-tenant: " + viol.message});
  }

  // Post-recovery stretch + case_done + incidents (as the plain soak).
  Seconds recovery_end = cse.detect_time;
  for (const tenancy::TenantRecovery& rec : cse.storm.recoveries) {
    if (rec.granted) recovery_end = std::max(recovery_end, rec.finish_time);
  }
  sim::MultiTenantReplayOptions post;
  post.start_time = recovery_end;
  const sim::MultiTenantReplayResult shared =
      sim::replay_multitenant(flows_of(substrate), degraded, post);
  std::vector<double> stretch;
  stretch.reserve(substrate.tenants.size());
  for (int k = 0; k < substrate.num_tenants(); ++k) {
    const tenancy::Tenant& t = substrate.tenants[static_cast<std::size_t>(k)];
    const Seconds solo = t.solo_makespan > 0 ? t.solo_makespan : 1.0;
    stretch.push_back(shared.tenants[static_cast<std::size_t>(k)].makespan /
                      solo);
  }
  cse.fairness = tenancy::fairness_from_stretch(stretch);
  const bool clean = cse.violations.empty();
  elog->emit(recovery_end,
             clean ? obs::EventSeverity::kInfo : obs::EventSeverity::kError,
             "soak", "case_done",
             {obs::field("seed", seed), obs::field("requests", cse.requests),
              obs::field("gave_up", cse.storm.gave_up),
              obs::field("requeues", cse.storm.requeues),
              obs::field("storm_drain", cse.storm.storm_drain_seconds),
              obs::field("violations", cse.violations.size()),
              obs::field("jain_index", cse.fairness.jain_index),
              obs::field("mean_stretch", cse.fairness.mean_stretch),
              obs::field("p99_stretch", cse.fairness.p99_stretch)});

  cse.incidents = obs::build_incidents(elog->events_since(seq0));
  fault::AttributionScoreOptions sopt;
  std::vector<bool> used(static_cast<std::size_t>(substrate.num_sites()),
                         false);
  for (const Mapping& mp : initial) {
    for (const SiteId s : mp) {
      if (s >= 0) used[static_cast<std::size_t>(s)] = true;
    }
  }
  for (SiteId a = 0; a < substrate.num_sites(); ++a) {
    for (SiteId b = a + 1; b < substrate.num_sites(); ++b) {
      if (used[static_cast<std::size_t>(a)] &&
          used[static_cast<std::size_t>(b)]) {
        sopt.observable_links.push_back({a, b});
      }
    }
  }
  cse.attribution = fault::score_attribution(
      cse.incidents, chaos_plan.plan.truth_windows(substrate.num_sites()),
      sopt);
  cse.attribution_scored = true;
  collector.incidents().add(cse.incidents);
  collector.incidents().add_totals(cse.attribution);

  // Seal the run (idempotent: a predecessor that died after sealing
  // already has the record).
  if (!rcp.run_complete) {
    wal.append(WalRecordType::kRunEnd, recovery_end, "{}");
    wal.sync();
  }

  // Post-hoc audit: the whole surviving WAL must satisfy the recovery
  // invariants — double commits, lost grants, and twice-fired timers all
  // surface here.
  const WalRecovery audit = read_wal(options.wal_dir);
  for (std::string& v : check_recovery_invariants(audit.records)) {
    result.recovery_violations.push_back(std::move(v));
  }

  result.digest = case_digest(cse, elog->events_since(seq0));
  return result;
}

CrashMatrixReport run_crash_matrix(const CrashMatrixOptions& options) {
  options.validate();
  fault::CrashInjector& inj = fault::CrashInjector::instance();
  GEOMAP_CHECK_ARG(!inj.armed(),
                   "crash matrix needs the injector to itself (currently "
                   "armed at " << inj.armed_point() << ")");
  const std::vector<std::string> points =
      options.points.empty() ? crash_point_catalog() : options.points;

  const auto attempt = [&options]() {
    obs::Collector fresh;
    RecoverableSoakOptions opts = options.base;
    opts.soak.collector = &fresh;
    return run_recoverable_case(options.seed, opts);
  };
  const auto wipe = [&options]() {
    std::error_code ec;
    std::filesystem::remove_all(options.base.wal_dir, ec);
  };

  CrashMatrixReport report;
  wipe();
  report.baseline_digest = attempt().digest;

  for (const std::string& point : points) {
    wipe();
    CrashMatrixCase c;
    c.point = point;
    // recovery_begin boundaries only exist inside a recovery: kill the
    // run some other way first so there is a recovery to die in.
    if (point.rfind("wal.append.recovery_begin", 0) == 0) {
      inj.arm("wal.append.sched_finish.before");
      try {
        attempt();
      } catch (const fault::CrashTriggered&) {
        c.recoveries += 1;
      }
      inj.disarm();
    }
    inj.arm(point);
    for (int a = 0; a < options.max_attempts && !c.completed; ++a) {
      try {
        const RecoverableCaseResult r = attempt();
        c.completed = true;
        c.recoveries = std::max(c.recoveries, r.recoveries);
        c.digest = r.digest;
        c.digest_match = r.digest == report.baseline_digest;
        c.wal_records_replayed = r.wal_records_replayed;
        c.wal_replay_seconds = r.wal_replay_seconds;
        c.recovery_seconds = r.recovery_seconds;
        c.recovery_violations = r.recovery_violations;
      } catch (const fault::CrashTriggered&) {
        c.fired = true;
        c.recoveries += 1;
      }
    }
    inj.disarm();
    if (c.fired) report.points_fired += 1;
    if (c.clean()) {
      report.points_clean += 1;
    } else {
      report.all_clean = false;
    }
    report.cases.push_back(std::move(c));
  }
  return report;
}

}  // namespace geomap::recover
