#include "recover/wal.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "common/json_writer.h"
#include "fault/crash.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define GEOMAP_HAVE_FSYNC 1
#endif

namespace geomap::recover {

namespace {

constexpr const char* kTypeNames[] = {
    "run_begin",     "detector_onset", "detector_clear", "detect_decision",
    "sched_request", "sched_grant",    "sched_requeue",  "sched_give_up",
    "sched_finish",  "mig_reserve",    "mig_release",    "mig_chunk",
    "mig_commit",    "mig_rollback",   "mig_replan",     "snapshot",
    "recovery_begin", "run_end",
};
constexpr int kNumTypes = 18;

std::string segment_name(int index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06d.log", index);
  return buf;
}

std::string hex8(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

/// Parse "g1 <crc8> <lsn> <type> <t> <payload>". Returns false on any
/// structural or checksum failure.
bool parse_wal_line(const std::string& line, WalRecord* out) {
  if (line.size() < 14 || line.compare(0, 3, "g1 ") != 0) return false;
  if (line[11] != ' ') return false;
  const std::string crc_hex = line.substr(3, 8);
  std::uint32_t crc = 0;
  for (const char c : crc_hex) {
    crc <<= 4;
    if (c >= '0' && c <= '9') {
      crc |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      crc |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  const std::string body = line.substr(12);
  if (crc32(body) != crc) return false;
  std::istringstream is(body);
  std::uint64_t lsn = 0;
  std::string type_name;
  std::string t_str;
  if (!(is >> lsn >> type_name >> t_str)) return false;
  WalRecordType type;
  if (!parse_record_type(type_name, &type)) return false;
  char* end = nullptr;
  const double t = std::strtod(t_str.c_str(), &end);
  if (end == t_str.c_str() || *end != '\0') return false;
  std::string payload;
  std::getline(is, payload);
  if (!payload.empty() && payload.front() == ' ') payload.erase(0, 1);
  out->lsn = lsn;
  out->type = type;
  out->t = t;
  out->payload = std::move(payload);
  return true;
}

}  // namespace

const char* to_string(WalRecordType type) {
  const int i = static_cast<int>(type);
  return (i >= 0 && i < kNumTypes) ? kTypeNames[i] : "?";
}

bool parse_record_type(const std::string& name, WalRecordType* out) {
  for (int i = 0; i < kNumTypes; ++i) {
    if (name == kTypeNames[i]) {
      *out = static_cast<WalRecordType>(i);
      return true;
    }
  }
  return false;
}

std::string encode_wal_line(std::uint64_t lsn, WalRecordType type, Seconds t,
                            const std::string& payload) {
  GEOMAP_CHECK_ARG(payload.find('\n') == std::string::npos,
                   "WAL payload must be single-line");
  std::string body = std::to_string(lsn);
  body += ' ';
  body += to_string(type);
  body += ' ';
  body += JsonWriter::format_double(t);
  body += ' ';
  body += payload;
  std::string line = "g1 ";
  line += hex8(crc32(body));
  line += ' ';
  line += body;
  line += '\n';
  return line;
}

Wal::Wal(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {
  std::filesystem::create_directories(dir_);
  const WalRecovery existing = read_wal(dir_);
  next_lsn_ = existing.next_lsn;
  segment_ = existing.next_segment;
}

Wal::~Wal() {
  // Deliberately no flush: buffered records die with the process.
  if (file_ != nullptr) std::fclose(file_);
}

void Wal::open_segment() {
  if (file_ != nullptr) return;
  const std::string path =
      (std::filesystem::path(dir_) / segment_name(segment_)).string();
  file_ = std::fopen(path.c_str(), "ab");
  GEOMAP_CHECK_MSG(file_ != nullptr, "cannot open WAL segment " << path);
}

std::uint64_t Wal::append(WalRecordType type, Seconds t, std::string payload) {
  fault::CrashInjector& inj = fault::CrashInjector::instance();
  const std::string name = to_string(type);
  inj.hit("wal.append." + name + ".before");
  const std::uint64_t lsn = next_lsn_++;
  buffered_.push_back(encode_wal_line(lsn, type, t, payload));
  // Snapshots ARE the folded history; recovery_begin marks a generation
  // boundary, not control-plane state — neither belongs in the
  // effective history a later snapshot embeds.
  if (type != WalRecordType::kSnapshot &&
      type != WalRecordType::kRecoveryBegin) {
    history_.push_back(HistRecord{type, t, std::move(payload)});
  }
  appended_ += 1;
  inj.hit("wal.append." + name + ".after");
  return lsn;
}

void Wal::flush_lines(const std::vector<std::string>& lines) {
  open_segment();
  for (const std::string& line : lines) {
    const std::size_t n = std::fwrite(line.data(), 1, line.size(), file_);
    GEOMAP_CHECK_MSG(n == line.size(), "short write to WAL segment");
  }
  GEOMAP_CHECK_MSG(std::fflush(file_) == 0, "WAL flush failed");
#if GEOMAP_HAVE_FSYNC
  if (options_.fsync) ::fsync(::fileno(file_));
#endif
}

void Wal::sync() {
  fault::CrashInjector& inj = fault::CrashInjector::instance();
  if (!buffered_.empty()) {
    if (inj.would_crash("wal.sync.torn")) {
      // The process dies mid-write: every earlier buffered record lands
      // whole, the last lands half-written with no newline. Its CRC
      // fails on replay and read_wal drops it as a torn tail.
      std::vector<std::string> partial(buffered_.begin(), buffered_.end() - 1);
      partial.push_back(buffered_.back().substr(0, buffered_.back().size() / 2));
      flush_lines(partial);
      inj.hit("wal.sync.torn");  // throws
    }
    flush_lines(buffered_);
    synced_ += buffered_.size();
    buffered_.clear();
  }
  inj.hit("wal.sync.after");
}

void Wal::snapshot(Seconds t, const std::string& state_payload) {
  fault::CrashInjector& inj = fault::CrashInjector::instance();
  sync();  // predecessors first: a snapshot never outruns its history
  // Rotate: the snapshot opens a fresh segment.
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  segment_ += 1;
  std::ostringstream os;
  {
    JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.key("state").raw(state_payload);
    w.key("history").begin_array();
    for (const HistRecord& h : history_) {
      w.begin_object();
      w.field("type", to_string(h.type));
      w.field("t", h.t);
      // As an escaped string, not raw: decode must recover the payload
      // byte-exactly for re-emission and re-seeding.
      w.field("payload", h.payload);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  append(WalRecordType::kSnapshot, t, os.str());
  sync();
  snapshots_ += 1;
  // Compact: everything before the snapshot segment is now redundant.
  inj.hit("wal.compact.before");
  for (int i = 1; i < segment_; ++i) {
    std::error_code ec;
    std::filesystem::remove(std::filesystem::path(dir_) / segment_name(i), ec);
  }
  inj.hit("wal.compact.after");
}

void Wal::seed_history(std::vector<HistRecord> history) {
  GEOMAP_CHECK_MSG(history_.empty() && appended_ == 0,
               "seed_history must run before any append");
  history_ = std::move(history);
}

WalRecovery read_wal(const std::string& dir) {
  WalRecovery out;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return out;

  std::vector<std::pair<int, std::filesystem::path>> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    int index = 0;
    if (std::sscanf(name.c_str(), "wal-%d.log", &index) == 1) {
      segments.emplace_back(index, entry.path());
    }
  }
  std::sort(segments.begin(), segments.end());

  std::uint64_t last_lsn = 0;
  for (const auto& [index, path] : segments) {
    out.segments_read += 1;
    out.next_segment = std::max(out.next_segment, index + 1);
    std::ifstream is(path);
    GEOMAP_CHECK_MSG(is.good(), "cannot read WAL segment " << path.string());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      WalRecord rec;
      if (!parse_wal_line(lines[i], &rec)) {
        if (i + 1 == lines.size()) {
          out.dropped_torn += 1;  // torn tail of a crashed generation
          continue;
        }
        throw WalCorrupt("corrupt WAL record at " + path.string() + ":" +
                         std::to_string(i + 1));
      }
      if (rec.lsn <= last_lsn) {
        throw WalCorrupt("non-monotonic lsn " + std::to_string(rec.lsn) +
                         " at " + path.string() + ":" + std::to_string(i + 1));
      }
      last_lsn = rec.lsn;
      out.records.push_back(std::move(rec));
    }
  }
  out.next_lsn = last_lsn + 1;
  return out;
}

std::vector<std::string> crash_point_catalog() {
  std::vector<std::string> points;
  for (int i = 0; i < kNumTypes; ++i) {
    points.push_back(std::string("wal.append.") + kTypeNames[i] + ".before");
    points.push_back(std::string("wal.append.") + kTypeNames[i] + ".after");
  }
  points.push_back("wal.sync.torn");
  points.push_back("wal.sync.after");
  points.push_back("wal.compact.before");
  points.push_back("wal.compact.after");
  return points;
}

}  // namespace geomap::recover
