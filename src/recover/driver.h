#pragma once
// Crash-consistent soak driver: the multi-tenant soak case rebuilt on
// top of the control-plane WAL, plus the exhaustive crash-matrix soak.
//
// run_recoverable_case runs one observe → detect → storm → certify case
// (mirroring tenancy::run_multitenant_soak_case stage for stage) with
// every control-plane decision written ahead to a WAL in `wal_dir`.
// When the directory already holds a crashed run's log the case
// *resumes* instead of restarting:
//
//   * the WAL is replayed (recover::replay_wal), the sanitized history
//     seeds a new WAL generation behind a recovery_begin marker, and the
//     already-announced events are re-emitted into the fresh event log;
//   * the detector is restored from the latest snapshot's checkpoint and
//     re-fed from its sample watermark (pre-decision crashes) or skipped
//     entirely in favour of the durable decision record (post-decision);
//   * the storm continues via tenancy::StormResume: finished grants are
//     replayed into the ledgers, an interrupted grant is redone
//     idempotently from its recorded decision inputs, and the redone
//     journal is checked to extend the durable prefix field-for-field
//     (no double commit, no lost grant);
//   * everything deterministic (substrate, calibration, chaos plan,
//     telemetry) is recomputed from the seed, so the resumed case's
//     final events / incidents / fairness match the uninterrupted run's.
//
// The caller supplies a *fresh* collector per process generation (a real
// restart starts with an empty event log); re-emission fills it.
//
// run_crash_matrix is the acceptance harness: for every registered crash
// point it arms the injector, runs the case until the point kills it,
// recovers in a fresh "process" (new collector, same WAL dir), and
// asserts the recovered digest — detection outcome, request outcomes,
// grant order, final mappings, violations, fairness, and the canonical
// event stream — equals the uninterrupted baseline's.

#include <cstdint>
#include <string>
#include <vector>

#include "recover/recovery.h"
#include "tenancy/soak.h"

namespace geomap::recover {

struct RecoverableSoakOptions {
  /// The underlying soak shape. `soak.collector` must be non-null — the
  /// driver streams and re-emits through it.
  tenancy::MultiTenantSoakOptions soak;
  /// WAL directory; created if missing, resumed if it holds records.
  std::string wal_dir;
  /// Forwarded to the Wal (tests that hammer hundreds of tiny WALs turn
  /// fsync off; the in-process crash model is unchanged either way).
  WalOptions wal;
  /// Detector-phase snapshot cadence (samples between compacting
  /// snapshots). 0 disables mid-feed snapshots; the post-decision
  /// snapshot is always taken.
  int snapshot_every_samples = 64;

  void validate() const;
};

struct RecoverableCaseResult {
  tenancy::MultiTenantSoakCase soak_case;

  /// This generation continued a crashed predecessor's WAL.
  bool resumed = false;
  /// Recoveries performed so far including this one (0 for a fresh run).
  int recoveries = 0;
  std::size_t wal_records_replayed = 0;
  double wal_replay_seconds = 0;
  /// Resume-specific work: seeding, re-emission, detector re-arm.
  double recovery_seconds = 0;

  /// Prefix-consistency and post-run WAL audit failures
  /// (check_recovery_invariants). Empty = crash-consistent.
  std::vector<std::string> recovery_violations;

  /// CRC32 of the case's canonical outcome (decision, request outcomes,
  /// grant order, final mappings, violations, fairness, incident count,
  /// canonically-sorted events without sequence numbers). Identical for
  /// an uninterrupted run and any crash+recover execution of the same
  /// (seed, options).
  std::uint32_t digest = 0;
};

RecoverableCaseResult run_recoverable_case(std::uint64_t seed,
                                           const RecoverableSoakOptions& options);

/// Shape a replayed control plane into tenancy::run_remap_storm's resume
/// input: per-request queue state (attempts consumed, pending backoff
/// timers — a timer pending at the crash fires exactly once after
/// recovery), finished grants in WAL order with rebuilt reports, and the
/// interrupted grant's recorded decision inputs. `requests` must be the
/// deterministically recomputed request list; the WAL's durable
/// sched_request records are validated to be a prefix of it by the
/// caller.
tenancy::StormResume build_storm_resume(
    const RecoveredControlPlane& rcp,
    const std::vector<tenancy::RemapRequest>& requests);

struct CrashMatrixOptions {
  /// Per-attempt `soak.collector` is overridden with a fresh collector;
  /// `wal_dir` is wiped between points.
  RecoverableSoakOptions base;
  std::uint64_t seed = 1;
  /// Crash points to exercise; empty = the full registered catalog.
  std::vector<std::string> points;
  /// Kill → recover attempts per point before giving up.
  int max_attempts = 4;

  void validate() const;
};

struct CrashMatrixCase {
  std::string point;
  /// The armed point actually fired (a point a given workload never
  /// reaches completes on the first attempt and is reported honestly).
  bool fired = false;
  bool completed = false;
  int recoveries = 0;
  bool digest_match = false;
  std::uint32_t digest = 0;
  std::size_t wal_records_replayed = 0;
  double wal_replay_seconds = 0;
  double recovery_seconds = 0;
  std::vector<std::string> recovery_violations;

  bool clean() const {
    return completed && digest_match && recovery_violations.empty();
  }
};

struct CrashMatrixReport {
  std::uint32_t baseline_digest = 0;
  std::vector<CrashMatrixCase> cases;
  int points_fired = 0;
  int points_clean = 0;
  bool all_clean = true;
};

CrashMatrixReport run_crash_matrix(const CrashMatrixOptions& options);

}  // namespace geomap::recover
