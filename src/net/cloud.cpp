#include "net/cloud.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace geomap::net {

namespace {

constexpr double kMBps = 1e6;  // bandwidth tables are in MB/s (10^6 B/s)

/// Deterministic per-ordered-pair perturbation in [-1, 1] used to make the
/// ground-truth LT/BT matrices asymmetric without a global RNG.
double pair_hash_unit(SiteId k, SiteId l) {
  std::uint64_t x = (static_cast<std::uint64_t>(k) << 32) |
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(l));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<double>(x >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

}  // namespace

CloudTopology::CloudTopology(CloudProfile profile)
    : profile_(std::move(profile)), sites_(profile_.sites) {
  GEOMAP_CHECK_MSG(!sites_.empty(), "topology needs at least one site");
  const auto m = sites_.size();
  latency_s_ = Matrix::square(m);
  bandwidth_bps_ = Matrix::square(m);

  const InstanceType& inst = profile_.instance;
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t l = 0; l < m; ++l) {
      double lat_ms = 0.0;
      double bw_mbps = 0.0;
      if (k == l) {
        lat_ms = inst.intra_latency_ms;
        bw_mbps = inst.intra_bandwidth_mbps * sites_[k].intra_bandwidth_factor;
      } else {
        const double d = haversine_km(sites_[k].coord, sites_[l].coord);
        lat_ms = inst.intra_latency_ms + d / profile_.latency_km_per_ms;
        bw_mbps = profile_.cross_bw_mbps_at_1000km *
                  std::pow(1000.0 / std::max(d, 100.0),
                           profile_.cross_bw_exponent);
        // Cross-region traffic rides the shared WAN: even adjacent
        // regions see only a fraction of the NIC-limited intra-region
        // bandwidth (paper Observation 1: intra is >10x cross for every
        // measured pair).
        bw_mbps = std::min(
            bw_mbps,
            profile_.cross_bw_ceiling_fraction * inst.intra_bandwidth_mbps *
                sites_[k].intra_bandwidth_factor);
        // Directional asymmetry (paper: LT and BT are asymmetric).
        const double wobble =
            1.0 + profile_.asymmetry * pair_hash_unit(static_cast<SiteId>(k),
                                                      static_cast<SiteId>(l));
        lat_ms *= wobble;
        bw_mbps /= wobble;
      }
      latency_s_(k, l) = lat_ms * 1e-3;
      bandwidth_bps_(k, l) = bw_mbps * kMBps;
    }
  }
}

CloudTopology CloudTopology::merge(
    const std::vector<const CloudTopology*>& parts, double peering_bw_factor,
    double peering_latency_ms) {
  GEOMAP_CHECK_MSG(!parts.empty(), "merge needs at least one topology");
  GEOMAP_CHECK_MSG(peering_bw_factor > 0 && peering_bw_factor <= 1.0,
                   "peering_bw_factor=" << peering_bw_factor);

  std::vector<Site> sites;
  std::vector<int> part_of_site;  // provenance per merged site
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (const Site& s : parts[p]->sites()) {
      Site tagged = s;
      tagged.name = parts[p]->profile().provider + "/" + s.name;
      sites.push_back(std::move(tagged));
      part_of_site.push_back(static_cast<int>(p));
    }
  }

  // Cross-provider link model: evaluate both providers' distance models
  // and take the pessimistic one, then degrade for public peering.
  auto cross_bw_mbps = [](const CloudProfile& prof, double d_km) {
    return prof.cross_bw_mbps_at_1000km *
           std::pow(1000.0 / std::max(d_km, 100.0), prof.cross_bw_exponent);
  };
  auto cross_lat_ms = [](const CloudProfile& prof, double d_km) {
    return prof.instance.intra_latency_ms + d_km / prof.latency_km_per_ms;
  };

  const std::size_t m = sites.size();
  Matrix lat = Matrix::square(m);
  Matrix bw = Matrix::square(m);
  std::vector<int> offsets(parts.size() + 1, 0);
  for (std::size_t p = 0; p < parts.size(); ++p)
    offsets[p + 1] = offsets[p] + parts[p]->num_sites();

  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t l = 0; l < m; ++l) {
      const int pk = part_of_site[k];
      const int pl = part_of_site[l];
      if (pk == pl) {
        const auto local_k = static_cast<SiteId>(static_cast<int>(k) -
                                                 offsets[static_cast<std::size_t>(pk)]);
        const auto local_l = static_cast<SiteId>(static_cast<int>(l) -
                                                 offsets[static_cast<std::size_t>(pk)]);
        lat(k, l) = parts[static_cast<std::size_t>(pk)]->true_latency(local_k, local_l);
        bw(k, l) = parts[static_cast<std::size_t>(pk)]->true_bandwidth(local_k, local_l);
      } else {
        const double d = haversine_km(sites[k].coord, sites[l].coord);
        const CloudProfile& prof_k = parts[static_cast<std::size_t>(pk)]->profile();
        const CloudProfile& prof_l = parts[static_cast<std::size_t>(pl)]->profile();
        // Same WAN ceiling as single-provider cross links (Observation 1),
        // taken over both providers' NICs.
        const double ceiling =
            std::min(prof_k.cross_bw_ceiling_fraction *
                         prof_k.instance.intra_bandwidth_mbps *
                         sites[k].intra_bandwidth_factor,
                     prof_l.cross_bw_ceiling_fraction *
                         prof_l.instance.intra_bandwidth_mbps *
                         sites[l].intra_bandwidth_factor);
        const double bw_mbps =
            std::min({cross_bw_mbps(prof_k, d), cross_bw_mbps(prof_l, d),
                      ceiling}) *
            peering_bw_factor;
        const double lat_ms =
            std::max(cross_lat_ms(prof_k, d), cross_lat_ms(prof_l, d)) +
            peering_latency_ms;
        const double wobble =
            1.0 + 0.02 * pair_hash_unit(static_cast<SiteId>(k),
                                        static_cast<SiteId>(l));
        lat(k, l) = lat_ms * wobble * 1e-3;
        bw(k, l) = bw_mbps / wobble * 1e6;
      }
    }
  }

  CloudProfile merged = parts[0]->profile();
  merged.provider = "MultiCloud";
  merged.sites = sites;
  return CloudTopology(std::move(merged), std::move(sites), std::move(lat),
                       std::move(bw));
}

const Site& CloudTopology::site(SiteId s) const {
  GEOMAP_CHECK_MSG(s >= 0 && s < num_sites(), "site " << s << " out of range");
  return sites_[static_cast<std::size_t>(s)];
}

std::vector<int> CloudTopology::capacities() const {
  std::vector<int> caps;
  caps.reserve(sites_.size());
  for (const auto& s : sites_) caps.push_back(s.node_count);
  return caps;
}

int CloudTopology::total_nodes() const {
  int total = 0;
  for (const auto& s : sites_) total += s.node_count;
  return total;
}

std::vector<GeoCoordinate> CloudTopology::coordinates() const {
  std::vector<GeoCoordinate> pc;
  pc.reserve(sites_.size());
  for (const auto& s : sites_) pc.push_back(s.coord);
  return pc;
}

double CloudTopology::distance_km(SiteId k, SiteId l) const {
  return haversine_km(site(k).coord, site(l).coord);
}

namespace {

std::vector<Site> aws_regions(int nodes_per_site) {
  // The 11 EC2 regions of paper Figure 1 (Nov 2015). Intra-bandwidth
  // factors reflect Table 1's US East vs Singapore spread.
  return {
      {"us-east-1 (N. Virginia)", {38.9, -77.4}, nodes_per_site, 1.00},
      {"us-west-1 (N. California)", {37.4, -121.9}, nodes_per_site, 1.02},
      {"us-west-2 (Oregon)", {45.9, -119.3}, nodes_per_site, 1.03},
      {"eu-west-1 (Ireland)", {53.3, -6.3}, nodes_per_site, 0.98},
      {"eu-central-1 (Frankfurt)", {50.1, 8.7}, nodes_per_site, 1.01},
      {"ap-northeast-1 (Tokyo)", {35.6, 139.7}, nodes_per_site, 1.05},
      {"ap-southeast-1 (Singapore)", {1.35, 103.8}, nodes_per_site, 1.18},
      {"ap-southeast-2 (Sydney)", {-33.9, 151.2}, nodes_per_site, 1.00},
      {"sa-east-1 (Sao Paulo)", {-23.5, -46.6}, nodes_per_site, 0.95},
      {"us-gov-west-1", {45.6, -121.2}, nodes_per_site, 1.00},
      {"cn-north-1 (Beijing)", {39.9, 116.4}, nodes_per_site, 0.97},
  };
}

}  // namespace

CloudProfile aws2016_profile(const std::string& instance_type,
                             int nodes_per_site) {
  CloudProfile p;
  p.provider = "AmazonEC2";
  p.instance = ec2_instance(instance_type);
  p.sites = aws_regions(nodes_per_site);
  // Power law fitted to paper Table 2 (c3.8xlarge, from US East):
  //   21 MB/s @ ~3900 km (US West), 6.6 MB/s @ ~15500 km (Singapore).
  // Other instance types scale by their Table 1 cross-region cap.
  p.cross_bw_mbps_at_1000km = 65.8 * (p.instance.cross_bandwidth_cap_mbps / 6.6);
  p.cross_bw_exponent = 0.84;
  // The paper's measured EC2 latencies are sub-millisecond even across
  // continents (Table 2: 0.16 / 0.17 / 0.35 ms) — whatever their probe
  // measured, the operative consequence is that the alpha term is small
  // against n/beta for multi-KB messages. We honour that measured trace:
  // the slope is fitted to Table 2 (0.41 ms at Singapore's 15500 km).
  p.latency_km_per_ms = 50000.0;
  return p;
}

CloudProfile aws_experiment_profile(int nodes_per_site) {
  CloudProfile p = aws2016_profile("m4.xlarge", nodes_per_site);
  std::vector<Site> chosen;
  for (const auto& s : p.sites) {
    if (s.name.rfind("us-east-1", 0) == 0 || s.name.rfind("us-west-1", 0) == 0 ||
        s.name.rfind("eu-west-1", 0) == 0 ||
        s.name.rfind("ap-southeast-1", 0) == 0) {
      chosen.push_back(s);
    }
  }
  p.sites = std::move(chosen);
  GEOMAP_CHECK(p.sites.size() == 4);
  return p;
}

CloudProfile azure2016_profile(int nodes_per_site) {
  CloudProfile p;
  p.provider = "WindowsAzure";
  p.instance = azure_standard_d2();
  p.sites = {
      {"East US (Virginia)", {36.7, -78.4}, nodes_per_site, 1.0},
      {"West US (California)", {37.8, -122.4}, nodes_per_site, 1.0},
      {"North Europe (Ireland)", {53.3, -6.3}, nodes_per_site, 1.0},
      {"West Europe (Netherlands)", {52.3, 4.9}, nodes_per_site, 1.0},
      {"Japan East (Tokyo)", {35.6, 139.7}, nodes_per_site, 1.0},
      {"Southeast Asia (Singapore)", {1.35, 103.8}, nodes_per_site, 1.0},
      {"Brazil South (Sao Paulo)", {-23.5, -46.6}, nodes_per_site, 1.0},
      {"Australia East (Sydney)", {-33.9, 151.2}, nodes_per_site, 1.0},
  };
  // Fitted to paper Table 3 (Standard D2, from East US): 2.9 MB/s @
  // ~6300 km (West Europe), 1.3 MB/s @ ~10900 km (Japan East).
  p.cross_bw_mbps_at_1000km = 38.0;
  p.cross_bw_exponent = 1.40;
  p.latency_km_per_ms = 150.0;
  return p;
}

CloudProfile synthetic_profile(int num_sites, int nodes_per_site,
                               std::uint64_t seed) {
  GEOMAP_CHECK_MSG(num_sites >= 1, "num_sites=" << num_sites);
  CloudProfile p = aws2016_profile("m4.xlarge", nodes_per_site);
  p.provider = "Synthetic";
  p.sites.clear();
  Rng rng(seed);
  for (int i = 0; i < num_sites; ++i) {
    Site s;
    s.name = "site-" + std::to_string(i);
    // Populated latitude band; longitude spans the globe.
    s.coord = {rng.uniform(-45.0, 60.0), rng.uniform(-180.0, 180.0)};
    s.node_count = nodes_per_site;
    s.intra_bandwidth_factor = rng.uniform(0.9, 1.2);
    p.sites.push_back(std::move(s));
  }
  return p;
}

}  // namespace geomap::net
