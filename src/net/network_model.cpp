#include "net/network_model.h"

#include "common/error.h"
#include "net/cloud.h"

namespace geomap::net {

NetworkModel::NetworkModel(Matrix latency_s, Matrix bandwidth_bps)
    : latency_s_(std::move(latency_s)), bandwidth_bps_(std::move(bandwidth_bps)) {
  GEOMAP_CHECK(latency_s_.rows() == latency_s_.cols());
  GEOMAP_CHECK(bandwidth_bps_.rows() == bandwidth_bps_.cols());
  GEOMAP_CHECK_MSG(latency_s_.rows() == bandwidth_bps_.rows(),
                   "LT and BT must have identical dimensions");
  for (std::size_t k = 0; k < bandwidth_bps_.rows(); ++k) {
    for (std::size_t l = 0; l < bandwidth_bps_.cols(); ++l) {
      GEOMAP_CHECK_MSG(bandwidth_bps_(k, l) > 0.0,
                       "non-positive bandwidth at (" << k << "," << l << ")");
      GEOMAP_CHECK_MSG(latency_s_(k, l) >= 0.0,
                       "negative latency at (" << k << "," << l << ")");
    }
  }
}

NetworkModel NetworkModel::from_ground_truth(const CloudTopology& topo) {
  const auto m = static_cast<std::size_t>(topo.num_sites());
  Matrix lat = Matrix::square(m);
  Matrix bw = Matrix::square(m);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t l = 0; l < m; ++l) {
      lat(k, l) = topo.true_latency(static_cast<SiteId>(k),
                                    static_cast<SiteId>(l));
      bw(k, l) = topo.true_bandwidth(static_cast<SiteId>(k),
                                     static_cast<SiteId>(l));
    }
  }
  return NetworkModel(std::move(lat), std::move(bw));
}

}  // namespace geomap::net
