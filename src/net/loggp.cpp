#include "net/loggp.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/cloud.h"

namespace geomap::net {

LogGPModel::LogGPModel(Matrix latency_s, Matrix overhead_s, Matrix gap_s,
                       Matrix gap_per_byte_s)
    : latency_s_(std::move(latency_s)),
      overhead_s_(std::move(overhead_s)),
      gap_s_(std::move(gap_s)),
      gap_per_byte_s_(std::move(gap_per_byte_s)) {
  const std::size_t m = latency_s_.rows();
  GEOMAP_CHECK(latency_s_.cols() == m && overhead_s_.rows() == m &&
               overhead_s_.cols() == m && gap_s_.rows() == m &&
               gap_s_.cols() == m && gap_per_byte_s_.rows() == m &&
               gap_per_byte_s_.cols() == m);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t l = 0; l < m; ++l) {
      GEOMAP_CHECK_MSG(gap_per_byte_s_(k, l) > 0,
                       "non-positive G at (" << k << "," << l << ")");
      GEOMAP_CHECK_MSG(latency_s_(k, l) >= 0 && overhead_s_(k, l) >= 0 &&
                           gap_s_(k, l) >= 0,
                       "negative LogGP parameter at (" << k << "," << l << ")");
    }
  }
}

NetworkModel LogGPModel::to_alpha_beta() const {
  const auto m = static_cast<std::size_t>(num_sites());
  Matrix alpha = Matrix::square(m);
  Matrix beta = Matrix::square(m);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t l = 0; l < m; ++l) {
      const auto sk = static_cast<SiteId>(k);
      const auto sl = static_cast<SiteId>(l);
      alpha(k, l) = 2 * overhead(sk, sl) + latency(sk, sl);
      beta(k, l) = 1.0 / gap_per_byte(sk, sl);
    }
  }
  return NetworkModel(std::move(alpha), std::move(beta));
}

LogGPCalibrationResult calibrate_loggp(const CloudTopology& topo,
                                       const LogGPCalibrationOptions& options) {
  GEOMAP_CHECK_MSG(options.rounds >= 1 && options.samples_per_round >= 1 &&
                       options.rate_probe_messages >= 2,
                   "bad LogGP calibration options");
  const int m = topo.num_sites();
  const InstanceType& inst = topo.instance();

  // Ground truth: the CPU-side per-message costs scale inversely with the
  // instance's compute rating; the gap floor tracks the NIC.
  const Seconds true_o = 2e-6 * (50.0 / std::max(1.0, inst.gflops));
  auto true_g = [&](SiteId k, SiteId l) {
    return std::max(2.0 * true_o, 4096.0 / topo.true_bandwidth(k, l));
  };

  Matrix lat = Matrix::square(static_cast<std::size_t>(m));
  Matrix ovh = Matrix::square(static_cast<std::size_t>(m));
  Matrix gap = Matrix::square(static_cast<std::size_t>(m));
  Matrix gpb = Matrix::square(static_cast<std::size_t>(m));
  Rng rng(options.seed ^ 0x10c09f1ccd1ULL);

  std::int64_t measurements = 0;
  for (SiteId k = 0; k < m; ++k) {
    for (SiteId l = 0; l < m; ++l) {
      const double noise =
          (k == l) ? options.intra_site_noise : options.inter_site_noise;
      RunningStats lat_s, ovh_s, gap_s, gpb_s;
      for (int round = 0; round < options.rounds; ++round) {
        for (int s = 0; s < options.samples_per_round; ++s) {
          auto jitter = [&] {
            return std::max(0.1,
                            1.0 + noise * std::clamp(rng.normal(), -3.0, 3.0));
          };
          // Probe 1 — pingpong of 1 byte: 2o + L.
          const Seconds ping =
              (2 * true_o + topo.true_latency(k, l)) * jitter();
          // Probe 2 — large message: 2o + L + n G.
          const Seconds big =
              (2 * true_o + topo.true_latency(k, l) +
               options.bandwidth_probe_bytes / topo.true_bandwidth(k, l)) *
              jitter();
          // Probe 3 — message-rate: R back-to-back 1-byte messages; the
          // issue rate is gap-limited: (R-1) g + 2o + L.
          const int rate_n = options.rate_probe_messages;
          const Seconds burst =
              ((rate_n - 1) * true_g(k, l) + 2 * true_o +
               topo.true_latency(k, l)) *
              jitter();

          // Parameter extraction as a real harness would do it.
          const Seconds g_est =
              std::max(1e-12, (burst - ping) / (rate_n - 1));
          const Seconds gpb_est = std::max(
              1e-15, (big - ping) / options.bandwidth_probe_bytes);
          // o is not separable from L by these probes alone; attribute
          // the instance-documented share (standard practice).
          const Seconds o_est = std::min(ping / 2.0, true_o * jitter());
          lat_s.add(std::max(0.0, ping - 2 * o_est));
          ovh_s.add(o_est);
          gap_s.add(g_est);
          gpb_s.add(gpb_est);
        }
        measurements += 3;  // three probes per pair per round
      }
      const auto sk = static_cast<std::size_t>(k);
      const auto sl = static_cast<std::size_t>(l);
      lat(sk, sl) = lat_s.mean();
      ovh(sk, sl) = ovh_s.mean();
      gap(sk, sl) = gap_s.mean();
      gpb(sk, sl) = gpb_s.mean();
    }
  }
  return LogGPCalibrationResult{
      LogGPModel(std::move(lat), std::move(ovh), std::move(gap),
                 std::move(gpb)),
      measurements};
}

}  // namespace geomap::net
