#pragma once
// Geo-distributed cloud substrate: sites (regions) with physical
// coordinates and a ground-truth pairwise link model.
//
// This replaces the paper's Amazon EC2 / Windows Azure testbeds. The
// ground truth reproduces the paper's empirical observations:
//   1. intra-region bandwidth is ~10-20x cross-region bandwidth (Table 1);
//   2. cross-region bandwidth decays and latency grows with geographic
//      distance (Tables 2-3), modeled as a power law fitted to the paper's
//      measured values.
// Experiments never read the ground truth directly; they consume the LT/BT
// matrices produced by the calibrator (net/calibration.h), mirroring the
// paper's pipeline.

#include <string>
#include <vector>

#include "common/dense_matrix.h"
#include "common/types.h"
#include "net/geo.h"
#include "net/instance.h"

namespace geomap::net {

struct Site {
  std::string name;
  GeoCoordinate coord;
  int node_count = 1;
  /// Region-local multiplier on the instance's intra-region bandwidth
  /// (paper Table 1: Singapore's intra bandwidth differs from US East's).
  double intra_bandwidth_factor = 1.0;
};

/// Parameters of a provider's ground-truth link model.
struct CloudProfile {
  std::string provider;
  InstanceType instance;
  std::vector<Site> sites;

  /// Cross-region bandwidth (MB/s) this instance type would see between
  /// two regions 1000 km apart; decays as (1000/d)^exponent.
  double cross_bw_mbps_at_1000km = 65.8;
  double cross_bw_exponent = 0.84;

  /// WAN ceiling: cross-region bandwidth never exceeds this fraction of
  /// the intra-region bandwidth, however close the regions (paper
  /// Observation 1).
  double cross_bw_ceiling_fraction = 0.25;

  /// Cross-region one-way latency slope: lat_ms = intra + d_km / slope.
  double latency_km_per_ms = 150.0;

  /// Deterministic relative asymmetry applied to (k,l) vs (l,k) links;
  /// the paper notes LT and BT are asymmetric matrices.
  double asymmetry = 0.02;
};

/// Ground-truth network of one provider deployment. Immutable once built.
class CloudTopology {
 public:
  explicit CloudTopology(CloudProfile profile);

  /// Extension (paper future work: "the more complicated geo-distributed
  /// environment with multiple cloud providers"): merge several
  /// single-provider deployments into one topology. Intra-provider links
  /// keep their ground truth; cross-provider links traverse public
  /// peering — bandwidth is the *more pessimistic* provider's
  /// distance-model value scaled by `peering_bw_factor`, latency the more
  /// pessimistic latency plus `peering_latency_ms`. The merged
  /// deployment keeps the first part's instance type (the paper assumes
  /// a uniform instance type across the job).
  static CloudTopology merge(const std::vector<const CloudTopology*>& parts,
                             double peering_bw_factor = 0.7,
                             double peering_latency_ms = 2.0);

  int num_sites() const { return static_cast<int>(sites_.size()); }
  const std::vector<Site>& sites() const { return sites_; }
  const Site& site(SiteId s) const;
  const InstanceType& instance() const { return profile_.instance; }
  const CloudProfile& profile() const { return profile_; }

  /// Number of physical nodes per site (paper vector I).
  std::vector<int> capacities() const;
  int total_nodes() const;

  /// Physical coordinates per site (paper matrix PC).
  std::vector<GeoCoordinate> coordinates() const;

  /// Ground-truth one-way latency in seconds between sites k and l
  /// (diagonal = intra-site).
  Seconds true_latency(SiteId k, SiteId l) const {
    return latency_s_(static_cast<std::size_t>(k),
                      static_cast<std::size_t>(l));
  }

  /// Ground-truth bandwidth in bytes/second between sites k and l.
  BytesPerSecond true_bandwidth(SiteId k, SiteId l) const {
    return bandwidth_bps_(static_cast<std::size_t>(k),
                          static_cast<std::size_t>(l));
  }

  /// Ground-truth alpha-beta transfer time of an n-byte message k -> l.
  Seconds true_transfer_time(SiteId k, SiteId l, Bytes bytes) const {
    return true_latency(k, l) + bytes / true_bandwidth(k, l);
  }

  double distance_km(SiteId k, SiteId l) const;

 private:
  CloudTopology(CloudProfile profile, std::vector<Site> sites,
                Matrix latency_s, Matrix bandwidth_bps)
      : profile_(std::move(profile)),
        sites_(std::move(sites)),
        latency_s_(std::move(latency_s)),
        bandwidth_bps_(std::move(bandwidth_bps)) {}

  CloudProfile profile_;
  std::vector<Site> sites_;
  Matrix latency_s_;
  Matrix bandwidth_bps_;
};

/// All 11 Amazon EC2 regions as of Nov 2015 (paper Figure 1), with the
/// given instance type and nodes per site.
CloudProfile aws2016_profile(const std::string& instance_type = "c3.8xlarge",
                             int nodes_per_site = 16);

/// The paper's EC2 experiment deployment (Section 5.1): 4 regions —
/// US East, US West, Ireland, Singapore — 16 m4.xlarge instances each.
CloudProfile aws_experiment_profile(int nodes_per_site = 16);

/// Windows Azure regions with Standard D2 instances (paper Table 3).
CloudProfile azure2016_profile(int nodes_per_site = 16);

/// Synthetic world for scale studies: `num_sites` regions at pseudo-random
/// coordinates (deterministic in `seed`), AWS-like link parameters.
CloudProfile synthetic_profile(int num_sites, int nodes_per_site,
                               std::uint64_t seed = 42);

}  // namespace geomap::net
