#pragma once
// Geographic coordinates and great-circle distances.
//
// The paper's Observation 2 — cross-region network performance is highly
// related to geographic distance — makes physical coordinates a first-class
// input: the grouping optimization clusters sites by (latitude, longitude)
// and the synthetic ground-truth link model derives latency/bandwidth from
// great-circle distance.

namespace geomap::net {

struct GeoCoordinate {
  double latitude_deg = 0.0;   // [-90, 90]
  double longitude_deg = 0.0;  // [-180, 180]
};

/// Great-circle distance between two coordinates (haversine), in km.
double haversine_km(const GeoCoordinate& a, const GeoCoordinate& b);

/// Squared Euclidean distance in (lat, lon) degree space. This is what the
/// paper's k-means grouping uses ("the Euclidean distance" over physical
/// coordinates); adequate for clustering nearby sites.
double euclidean_deg_sq(const GeoCoordinate& a, const GeoCoordinate& b);

}  // namespace geomap::net
