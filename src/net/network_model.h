#pragma once
// The calibrated site-level network model: the paper's LT (latency) and BT
// (bandwidth) M×M matrices plus the alpha-beta transfer-time formula
//
//   t(n bytes, k -> l) = LT(k,l) + n / BT(k,l)
//
// This is the only view of the network the mapping algorithms see;
// replacing the O(N^2) all-pairs interconnection graph with these O(M^2)
// matrices is the paper's Section 3.1 measurement-overhead reduction.

#include "common/dense_matrix.h"
#include "common/types.h"

namespace geomap::net {

class CloudTopology;

class NetworkModel {
 public:
  NetworkModel() = default;

  /// Takes ownership of calibrated latency (seconds) and bandwidth
  /// (bytes/second) matrices; both must be square and of equal size with
  /// strictly positive bandwidths.
  NetworkModel(Matrix latency_s, Matrix bandwidth_bps);

  /// Exact model read straight from the ground truth (zero calibration
  /// error); used by tests and by the simulator's oracle runs.
  static NetworkModel from_ground_truth(const CloudTopology& topo);

  int num_sites() const { return static_cast<int>(latency_s_.rows()); }

  Seconds latency(SiteId k, SiteId l) const {
    return latency_s_.at_unchecked(static_cast<std::size_t>(k),
                                   static_cast<std::size_t>(l));
  }

  BytesPerSecond bandwidth(SiteId k, SiteId l) const {
    return bandwidth_bps_.at_unchecked(static_cast<std::size_t>(k),
                                       static_cast<std::size_t>(l));
  }

  /// Alpha-beta time for one n-byte message from site k to site l.
  Seconds transfer_time(SiteId k, SiteId l, Bytes bytes) const {
    return latency(k, l) + bytes / bandwidth(k, l);
  }

  /// Paper Equation (3): cost of `count` messages totaling `volume` bytes.
  Seconds message_cost(SiteId k, SiteId l, double count, Bytes volume) const {
    return count * latency(k, l) + volume / bandwidth(k, l);
  }

  const Matrix& latency_matrix() const { return latency_s_; }
  const Matrix& bandwidth_matrix() const { return bandwidth_bps_; }

 private:
  Matrix latency_s_;
  Matrix bandwidth_bps_;
};

}  // namespace geomap::net
