#pragma once
// Text serialization of calibrated network models and deployment
// metadata, so downstream users can bring their own measurements to the
// mapping tool (and archive calibrations for reproducibility).
//
// Format (whitespace-separated, '#' comments allowed at line starts):
//
//   geomap-network 1
//   sites <M>
//   latency-seconds
//   <M x M values, row-major>
//   bandwidth-bytes-per-second
//   <M x M values>
//   capacities            # optional section
//   <M integers>
//   coordinates           # optional section
//   <M "lat lon" pairs>
//   names                 # optional section
//   <M quoted names>

#include <string>
#include <vector>

#include "net/cloud.h"
#include "net/geo.h"
#include "net/network_model.h"

namespace geomap::net {

/// Everything the mapping pipeline needs to know about a deployment.
struct NetworkSpec {
  NetworkModel model;
  std::vector<int> capacities;          // empty = caller decides
  std::vector<GeoCoordinate> coords;    // empty = latency-based grouping
  std::vector<std::string> site_names;  // empty = "site-<k>"
};

/// Serialize a spec (all sections that are present).
std::string to_text(const NetworkSpec& spec);

/// Convenience: snapshot a topology's ground truth (or a calibrated
/// model) together with its capacities/coordinates/names.
NetworkSpec make_spec(const CloudTopology& topo, const NetworkModel& model);

/// Parse; throws InvalidArgument on malformed input.
NetworkSpec network_spec_from_text(const std::string& text);

}  // namespace geomap::net
