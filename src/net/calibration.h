#pragma once
// Simulated SKaMPI-style network calibration (paper Section 4.2).
//
// The paper measures each site pair with Pingpong_Send_Recv: the latency
// LT(k,l) is the elapsed time of a 1-byte message, the bandwidth BT(k,l)
// is derived from sending 8 MB. Measurements repeat over several days and
// are averaged; observed variation is below 5%.
//
// Here the "wire" is the CloudTopology ground truth; each pingpong sample
// applies multiplicative noise to emulate that variation. The calibrator
// also keeps a measurement budget so the O(M^2) site-pair scheme can be
// compared against the O(N^2) all-node-pairs scheme of prior work
// (paper's 12 minutes vs 180 days example).

#include <cstdint>

#include "net/cloud.h"
#include "net/network_model.h"

namespace geomap::net {

struct CalibrationOptions {
  /// Calibration rounds ("days" in the paper).
  int rounds = 5;
  /// Pingpong repetitions averaged per pair per round.
  int samples_per_round = 4;
  /// Message size used for the bandwidth probe.
  Bytes bandwidth_probe_bytes = 8.0 * 1024 * 1024;
  /// Relative noise of one sample (paper: variation < 5% inter-site).
  double inter_site_noise = 0.03;
  /// Intra-site variation is relatively larger (paper Section 4.2).
  double intra_site_noise = 0.08;
  /// Wall-clock cost charged per node-pair measurement, for overhead
  /// accounting (paper example: one minute per pair).
  Seconds seconds_per_measurement = 60.0;
  std::uint64_t seed = 2016;
};

struct CalibrationResult {
  NetworkModel model;
  /// Number of point-to-point measurements performed (M^2 pairs x rounds).
  std::int64_t measurements = 0;
  /// Modeled calibration wall-clock = pairs * seconds_per_measurement
  /// (rounds run on different days and are not charged to the critical
  /// path, matching the paper's 12-minute figure for 4 sites).
  Seconds modeled_overhead_seconds = 0;
};

class Calibrator {
 public:
  explicit Calibrator(CalibrationOptions options = {});

  /// Measure every (ordered) site pair of `topo` and average into a
  /// NetworkModel.
  CalibrationResult calibrate(const CloudTopology& topo) const;

  /// Measurement count of the site-pair scheme for a deployment of M
  /// sites: M^2 ordered pairs.
  static std::int64_t site_pair_measurements(int num_sites);

  /// Measurement count of the traditional all-node-pairs scheme
  /// (e.g. Gong et al. SC'14) for N total nodes: N*(N-1)/2.
  static std::int64_t node_pair_measurements(int num_nodes);

 private:
  CalibrationOptions options_;
};

}  // namespace geomap::net
