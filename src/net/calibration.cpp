#include "net/calibration.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace geomap::net {

Calibrator::Calibrator(CalibrationOptions options) : options_(options) {
  GEOMAP_CHECK_MSG(options_.rounds >= 1, "rounds=" << options_.rounds);
  GEOMAP_CHECK_MSG(options_.samples_per_round >= 1,
                   "samples_per_round=" << options_.samples_per_round);
  GEOMAP_CHECK_MSG(options_.bandwidth_probe_bytes > 0, "probe size");
}

CalibrationResult Calibrator::calibrate(const CloudTopology& topo) const {
  const int m = topo.num_sites();
  Matrix lat = Matrix::square(static_cast<std::size_t>(m));
  Matrix bw = Matrix::square(static_cast<std::size_t>(m));
  Rng rng(options_.seed);

  std::int64_t measurements = 0;
  for (SiteId k = 0; k < m; ++k) {
    for (SiteId l = 0; l < m; ++l) {
      const double noise_frac =
          (k == l) ? options_.intra_site_noise : options_.inter_site_noise;
      RunningStats lat_stats;
      RunningStats bw_stats;
      for (int round = 0; round < options_.rounds; ++round) {
        for (int s = 0; s < options_.samples_per_round; ++s) {
          // One pingpong = a 1-byte probe (latency) and an 8 MB probe
          // (bandwidth), both jittered multiplicatively.
          const double jitter_lat =
              1.0 + noise_frac * std::clamp(rng.normal(), -3.0, 3.0);
          const double jitter_bw =
              1.0 + noise_frac * std::clamp(rng.normal(), -3.0, 3.0);
          const Seconds lat_sample =
              topo.true_transfer_time(k, l, 1.0) * std::max(0.1, jitter_lat);
          const Seconds big_sample =
              topo.true_transfer_time(k, l, options_.bandwidth_probe_bytes) *
              std::max(0.1, jitter_bw);
          // SKaMPI-style reduction: bandwidth from the large-message time
          // after subtracting the measured latency.
          const Seconds net = std::max(big_sample - lat_sample, 1e-9);
          lat_stats.add(lat_sample);
          bw_stats.add(options_.bandwidth_probe_bytes / net);
        }
        ++measurements;
      }
      lat(static_cast<std::size_t>(k), static_cast<std::size_t>(l)) =
          lat_stats.mean();
      bw(static_cast<std::size_t>(k), static_cast<std::size_t>(l)) =
          bw_stats.mean();
    }
  }

  CalibrationResult result{NetworkModel(std::move(lat), std::move(bw)),
                           measurements, 0.0};
  // One instance per site runs the probes toward all its peers in
  // sequence, so the critical path is M pair-measurements of
  // seconds_per_measurement each (rounds happen across days and are not
  // on the critical path); with M=4 sites and 1 min/pair this reproduces
  // the paper's ~12-minute overhead example.
  result.modeled_overhead_seconds =
      static_cast<double>(m) * options_.seconds_per_measurement;
  return result;
}

std::int64_t Calibrator::site_pair_measurements(int num_sites) {
  return static_cast<std::int64_t>(num_sites) * num_sites;
}

std::int64_t Calibrator::node_pair_measurements(int num_nodes) {
  return static_cast<std::int64_t>(num_nodes) * (num_nodes - 1) / 2;
}

}  // namespace geomap::net
