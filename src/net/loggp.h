#pragma once
// LogGP network model (Alexandrov et al., SPAA'95) — the "more
// sophisticated" alternative the paper's Section 3.1 declines in favour
// of alpha-beta because it "involves more parameters and thus has higher
// calibration cost". We build it anyway so that trade-off is measurable:
// per site pair the model carries L (wire latency), o (per-message CPU
// overhead), g (gap between messages) and G (gap per byte), calibrated
// with an extra message-rate probe on top of the pingpongs.
//
// A LogGP model projects onto the alpha-beta form the mapping cost
// function consumes — alpha = 2o + L, beta = 1/G — so the experiments
// can quantify both the calibration overhead delta and the (near-zero)
// mapping-quality delta, which is exactly the paper's argument.

#include "common/dense_matrix.h"
#include "common/types.h"
#include "net/network_model.h"

namespace geomap::net {

class CloudTopology;

class LogGPModel {
 public:
  LogGPModel() = default;

  /// All matrices M x M, seconds (G: seconds per byte).
  LogGPModel(Matrix latency_s, Matrix overhead_s, Matrix gap_s,
             Matrix gap_per_byte_s);

  int num_sites() const { return static_cast<int>(latency_s_.rows()); }

  Seconds latency(SiteId k, SiteId l) const {
    return latency_s_.at_unchecked(static_cast<std::size_t>(k),
                                   static_cast<std::size_t>(l));
  }
  Seconds overhead(SiteId k, SiteId l) const {
    return overhead_s_.at_unchecked(static_cast<std::size_t>(k),
                                    static_cast<std::size_t>(l));
  }
  Seconds gap(SiteId k, SiteId l) const {
    return gap_s_.at_unchecked(static_cast<std::size_t>(k),
                               static_cast<std::size_t>(l));
  }
  Seconds gap_per_byte(SiteId k, SiteId l) const {
    return gap_per_byte_s_.at_unchecked(static_cast<std::size_t>(k),
                                        static_cast<std::size_t>(l));
  }

  /// End-to-end time of one n-byte message: o + (n-1)G + L + o.
  Seconds transfer_time(SiteId k, SiteId l, Bytes bytes) const {
    const Bytes extra = bytes > 1 ? bytes - 1 : 0;
    return 2 * overhead(k, l) + latency(k, l) + extra * gap_per_byte(k, l);
  }

  /// Cost of `count` back-to-back messages of total `volume` bytes: the
  /// sender is gap-limited between messages, each pays overheads+wire.
  Seconds message_cost(SiteId k, SiteId l, double count, Bytes volume) const {
    if (count <= 0) return 0;
    return count * (2 * overhead(k, l) + latency(k, l)) +
           (count - 1) * gap(k, l) + volume * gap_per_byte(k, l);
  }

  /// Projection onto the alpha-beta form used by the mapping cost
  /// function: alpha = 2o + L (per-message), beta = 1/G (bandwidth).
  NetworkModel to_alpha_beta() const;

 private:
  Matrix latency_s_;
  Matrix overhead_s_;
  Matrix gap_s_;
  Matrix gap_per_byte_s_;
};

struct LogGPCalibrationOptions {
  int rounds = 5;
  int samples_per_round = 4;
  /// Messages fired in the message-rate (gap) probe per pair per sample.
  int rate_probe_messages = 64;
  Bytes bandwidth_probe_bytes = 8.0 * 1024 * 1024;
  double inter_site_noise = 0.03;
  double intra_site_noise = 0.08;
  std::uint64_t seed = 2016;
};

struct LogGPCalibrationResult {
  LogGPModel model;
  /// Probes performed: pingpong (latency) + large-message (G) + message-
  /// rate (o, g) per ordered pair per round — 1.5x the alpha-beta
  /// calibrator's budget, the paper's "higher calibration cost".
  std::int64_t measurements = 0;
};

/// Calibrate a LogGP model against the ground truth (simulated probes
/// with the same noise model as net::Calibrator). The ground truth
/// assigns o and g from the instance type (per-message CPU costs), L and
/// G from the link.
LogGPCalibrationResult calibrate_loggp(
    const CloudTopology& topo, const LogGPCalibrationOptions& options = {});

}  // namespace geomap::net
