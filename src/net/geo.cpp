#include "net/geo.h"

#include <cmath>

namespace geomap::net {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double haversine_km(const GeoCoordinate& a, const GeoCoordinate& b) {
  const double lat1 = a.latitude_deg * kDegToRad;
  const double lat2 = b.latitude_deg * kDegToRad;
  const double dlat = (b.latitude_deg - a.latitude_deg) * kDegToRad;
  const double dlon = (b.longitude_deg - a.longitude_deg) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double euclidean_deg_sq(const GeoCoordinate& a, const GeoCoordinate& b) {
  const double dlat = a.latitude_deg - b.latitude_deg;
  // Wrap longitude difference into [-180, 180] so clusters spanning the
  // antimeridian (e.g. Tokyo vs. Oregon) measure their true separation.
  double dlon = a.longitude_deg - b.longitude_deg;
  while (dlon > 180.0) dlon -= 360.0;
  while (dlon < -180.0) dlon += 360.0;
  return dlat * dlat + dlon * dlon;
}

}  // namespace geomap::net
