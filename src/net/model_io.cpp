#include "net/model_io.h"

#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace geomap::net {

std::string to_text(const NetworkSpec& spec) {
  const int m = spec.model.num_sites();
  std::ostringstream os;
  os << std::setprecision(17);
  os << "geomap-network 1\n";
  os << "sites " << m << "\n";
  os << "latency-seconds\n";
  for (SiteId k = 0; k < m; ++k) {
    for (SiteId l = 0; l < m; ++l) os << spec.model.latency(k, l) << ' ';
    os << '\n';
  }
  os << "bandwidth-bytes-per-second\n";
  for (SiteId k = 0; k < m; ++k) {
    for (SiteId l = 0; l < m; ++l) os << spec.model.bandwidth(k, l) << ' ';
    os << '\n';
  }
  if (!spec.capacities.empty()) {
    os << "capacities\n";
    for (const int c : spec.capacities) os << c << ' ';
    os << '\n';
  }
  if (!spec.coords.empty()) {
    os << "coordinates\n";
    for (const GeoCoordinate& c : spec.coords)
      os << c.latitude_deg << ' ' << c.longitude_deg << '\n';
  }
  if (!spec.site_names.empty()) {
    os << "names\n";
    for (const std::string& name : spec.site_names)
      os << std::quoted(name) << '\n';
  }
  return os.str();
}

NetworkSpec make_spec(const CloudTopology& topo, const NetworkModel& model) {
  GEOMAP_CHECK_MSG(model.num_sites() == topo.num_sites(),
                   "model/topology site count mismatch");
  NetworkSpec spec;
  spec.model = model;
  spec.capacities = topo.capacities();
  spec.coords = topo.coordinates();
  for (const Site& s : topo.sites()) spec.site_names.push_back(s.name);
  return spec;
}

namespace {

/// Skip comment lines; read the next non-comment token.
class TokenReader {
 public:
  explicit TokenReader(const std::string& text) : in_(text) {}

  std::string next() {
    std::string token;
    while (in_ >> token) {
      if (token[0] == '#') {
        std::string rest;
        std::getline(in_, rest);
        continue;
      }
      return token;
    }
    throw InvalidArgument("network spec: unexpected end of input");
  }

  bool try_next(std::string& token) {
    try {
      token = next();
      return true;
    } catch (const InvalidArgument&) {
      return false;
    }
  }

  double next_double() {
    const std::string t = next();
    try {
      return std::stod(t);
    } catch (const std::exception&) {
      throw InvalidArgument("network spec: expected a number, got '" + t + "'");
    }
  }

  std::string next_quoted() {
    // Names were written with std::quoted; re-read via stream extraction.
    std::string name;
    in_ >> std::ws;
    in_ >> std::quoted(name);
    GEOMAP_CHECK_MSG(static_cast<bool>(in_), "network spec: bad quoted name");
    return name;
  }

 private:
  std::istringstream in_;
};

}  // namespace

NetworkSpec network_spec_from_text(const std::string& text) {
  TokenReader reader(text);
  if (reader.next() != "geomap-network")
    throw InvalidArgument("network spec: missing 'geomap-network' header");
  if (reader.next() != "1")
    throw InvalidArgument("network spec: unsupported version");
  if (reader.next() != "sites")
    throw InvalidArgument("network spec: expected 'sites'");
  const int m = static_cast<int>(reader.next_double());
  GEOMAP_CHECK_MSG(m > 0 && m < 100000, "network spec: bad site count " << m);

  Matrix lat, bw;
  NetworkSpec spec;
  std::string section;
  bool have_lat = false, have_bw = false;
  while (reader.try_next(section)) {
    if (section == "latency-seconds") {
      lat = Matrix::square(static_cast<std::size_t>(m));
      for (std::size_t k = 0; k < static_cast<std::size_t>(m); ++k)
        for (std::size_t l = 0; l < static_cast<std::size_t>(m); ++l)
          lat(k, l) = reader.next_double();
      have_lat = true;
    } else if (section == "bandwidth-bytes-per-second") {
      bw = Matrix::square(static_cast<std::size_t>(m));
      for (std::size_t k = 0; k < static_cast<std::size_t>(m); ++k)
        for (std::size_t l = 0; l < static_cast<std::size_t>(m); ++l)
          bw(k, l) = reader.next_double();
      have_bw = true;
    } else if (section == "capacities") {
      spec.capacities.resize(static_cast<std::size_t>(m));
      for (int k = 0; k < m; ++k)
        spec.capacities[static_cast<std::size_t>(k)] =
            static_cast<int>(reader.next_double());
    } else if (section == "coordinates") {
      spec.coords.resize(static_cast<std::size_t>(m));
      for (int k = 0; k < m; ++k) {
        spec.coords[static_cast<std::size_t>(k)].latitude_deg =
            reader.next_double();
        spec.coords[static_cast<std::size_t>(k)].longitude_deg =
            reader.next_double();
      }
    } else if (section == "names") {
      spec.site_names.resize(static_cast<std::size_t>(m));
      for (int k = 0; k < m; ++k)
        spec.site_names[static_cast<std::size_t>(k)] = reader.next_quoted();
    } else {
      throw InvalidArgument("network spec: unknown section '" + section + "'");
    }
  }
  if (!have_lat || !have_bw)
    throw InvalidArgument(
        "network spec: latency-seconds and bandwidth-bytes-per-second "
        "sections are required");
  spec.model = NetworkModel(std::move(lat), std::move(bw));
  return spec;
}

}  // namespace geomap::net
