#pragma once
// Cloud instance (VM) types.
//
// The paper's Table 1 shows intra-region bandwidth varying by an order of
// magnitude across EC2 instance types while cross-region bandwidth stays
// almost flat (the WAN, not the NIC, is the bottleneck). Instance types
// therefore carry an intra-region bandwidth, a cross-region cap, and a
// compute rate used by the performance model.

#include <string>
#include <vector>

namespace geomap::net {

struct InstanceType {
  std::string name;

  /// Intra-region point-to-point bandwidth in MB/s (paper Table 1 columns
  /// "US East" / "Singapore"; region-dependent wobble is produced by the
  /// per-region factor in CloudProfile).
  double intra_bandwidth_mbps = 100.0;

  /// Ceiling on cross-region bandwidth in MB/s (paper Table 1
  /// "Cross-region" column: 5.4-6.6 MB/s regardless of type).
  double cross_bandwidth_cap_mbps = 6.6;

  /// Intra-region one-way latency in ms.
  double intra_latency_ms = 0.25;

  /// Sustained compute rate in GFLOP/s, used to model computation time in
  /// the EC2-like total-time experiments (Figure 5).
  double gflops = 50.0;
};

/// The five EC2 instance types measured in paper Table 1. Values embed the
/// table's US East column; the Singapore column is reproduced through the
/// region factor (see aws2016_profile).
const std::vector<InstanceType>& ec2_instance_types();

/// Look up an EC2 instance type by name (e.g. "c3.8xlarge", "m4.xlarge").
const InstanceType& ec2_instance(const std::string& name);

/// Azure "Standard D2" from paper Table 3.
const InstanceType& azure_standard_d2();

}  // namespace geomap::net
