#include "net/instance.h"

#include "common/error.h"

namespace geomap::net {

const std::vector<InstanceType>& ec2_instance_types() {
  // Intra-region bandwidths are the US East column of paper Table 1;
  // cross-region caps are its "Cross-region" column. Latency and compute
  // ratings are representative of the 2015-era instances.
  static const std::vector<InstanceType> kTypes = {
      {"m1.small", 15.0, 5.4, 0.40, 4.0},
      {"m1.medium", 80.0, 6.3, 0.30, 8.0},
      {"m1.large", 84.0, 6.3, 0.30, 16.0},
      {"m1.xlarge", 102.0, 6.4, 0.25, 32.0},
      {"c3.8xlarge", 148.0, 6.6, 0.15, 230.0},
      // m4.xlarge: the type used in the paper's EC2 experiments (Sec 5.1).
      {"m4.xlarge", 95.0, 6.4, 0.25, 45.0},
  };
  return kTypes;
}

const InstanceType& ec2_instance(const std::string& name) {
  for (const auto& t : ec2_instance_types()) {
    if (t.name == name) return t;
  }
  throw InvalidArgument("unknown EC2 instance type: " + name);
}

const InstanceType& azure_standard_d2() {
  // Paper Table 3: intra East US bandwidth 62 MB/s, latency 0.82 ms;
  // cross-region bandwidth 1.3-2.9 MB/s.
  static const InstanceType kD2{"Standard_D2", 62.0, 2.9, 0.82, 25.0};
  return kD2;
}

}  // namespace geomap::net
