#pragma once
// Chaos engineering for the recovery loop.
//
// A hand-written FaultPlan exercises one failure mode; a chaos plan
// exercises the interactions — overlapping brownouts, cascades that
// follow a site's death, message loss storms, and (the case the
// migration executor exists for) faults that land *while a migration is
// already in flight*. make_chaos_plan draws a reproducible plan from a
// seed so a soak over many seeds covers the space deterministically.
//
// The second half is the referee: the migration executor journals every
// protocol transition as a MigrationEvent, and check_migration_invariants
// replays that journal against the safety properties the two-phase
// protocol promises:
//
//   * single home    — every process has exactly one committed home at
//                      every instant (commits move it atomically, and
//                      only from the current home);
//   * capacity       — residents + reservations never exceed a site's
//                      capacity, and never go negative;
//   * liveness homes — when the journal ends, no committed home is on a
//                      permanently dead site (transient outages are fair
//                      game — the site comes back);
//   * byte budget    — per-process bytes on the wire never exceed the
//                      planned state size times the chunk/retry/attempt
//                      bound (runaway copy loops cannot hide).
//
// The checker is deliberately independent of the executor: it sees only
// the journal, the initial placement, the capacities, and the plan. It
// lives in src/fault (not src/migrate) so the fault layer defines the
// contract and the executor merely satisfies it.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "fault/fault_plan.h"

namespace geomap::fault {

// ---------------------------------------------------------------------------
// Seeded chaos-plan generation

struct ChaosOptions {
  int num_sites = 4;
  /// Virtual horizon the faults are scattered over.
  Seconds horizon = 60.0;

  /// Every chaos plan contains one *primary* permanent site outage — the
  /// fault the detect→remap→migrate loop must recover from — at a
  /// uniform time inside [primary_lo, primary_hi] · horizon.
  double primary_lo = 0.25;
  double primary_hi = 0.55;
  /// With this probability the primary outage is preceded by a brownout
  /// precursor on the same site (the realistic "degrade, then die"
  /// cascade the detector sees as escalating severity).
  double cascade_probability = 0.5;
  /// Total permanent site outages (>= 1; the primary counts). Keep below
  /// the capacity slack or every remap is infeasible by construction.
  int max_permanent_outages = 1;

  /// Background noise: transient site outages and link brownouts drawn
  /// over the whole horizon (they may overlap each other and the
  /// primary).
  int transient_outages = 2;
  int brownouts = 3;
  int loss_events = 2;

  /// Faults aimed into an active migration window: when
  /// migration_window_length > 0, this many extra transient faults
  /// (brownouts / short outages of *surviving* sites) start inside
  /// [migration_window_start, migration_window_start +
  /// migration_window_length). The soak driver sets the window to where
  /// it expects the executor to be copying; a negative start means
  /// "begin at the primary outage" — recovery starts there, so that is
  /// where migrations are in flight.
  Seconds migration_window_start = -1.0;
  Seconds migration_window_length = 0.0;
  int migration_window_faults = 0;

  /// Severity ranges for generated degradations.
  double min_bandwidth_factor = 0.15;
  double max_latency_factor = 6.0;
  double max_loss_probability = 0.4;

  void validate() const;
};

/// A generated plan plus the ground truth a soak driver needs: which site
/// the primary outage kills and when, and every permanently dead site.
struct ChaosPlan {
  FaultPlan plan;
  SiteId primary_site = -1;
  Seconds primary_outage_time = 0;
  std::vector<SiteId> permanently_dead;  // sorted ascending
};

/// Draw a reproducible chaos plan. Pure in (seed, options): the same pair
/// always yields an identical event schedule.
ChaosPlan make_chaos_plan(std::uint64_t seed, const ChaosOptions& options);

// ---------------------------------------------------------------------------
// Migration journal + invariant checking

/// Protocol transitions the migration executor journals. The checker
/// consumes exactly these; the executor's internal states do not matter.
enum class MigrationEventKind {
  kReserve,   // prepare granted: one slot reserved on site_to
  kRelease,   // reservation on site_to given back (rollback / abort)
  kCommit,    // atomic cutover: home moves site_from -> site_to
  kChunk,     // `bytes` of state landed on the wire site_from -> site_to
  kRollback,  // copy abandoned, process stays at site_from (informational)
  kReplan,    // mapper re-invoked at t (informational)
};

const char* to_string(MigrationEventKind kind);

struct MigrationEvent {
  MigrationEventKind kind = MigrationEventKind::kChunk;
  Seconds t = 0;
  ProcessId process = -1;  // -1 for process-less events (kReplan)
  SiteId site_from = -1;
  SiteId site_to = -1;
  Bytes bytes = 0;  // kChunk only
};

struct MigrationInvariantOptions {
  /// Planned state size per process and the chunk size it is shipped in
  /// (the byte-budget bound rounds the plan up to whole chunks).
  Bytes planned_bytes_per_process = 0;
  Bytes chunk_bytes = 0;
  /// Retry/attempt bounds the executor ran with: every chunk may be
  /// re-sent up to 1 + max_retries times, and a whole copy restarted up
  /// to max_copy_attempts times (fresh attempts after rollback/replan
  /// resend everything).
  int max_retries = 8;
  int max_copy_attempts = 4;
  /// Journal end time for the dead-home check; < 0 uses the last event's
  /// timestamp.
  Seconds horizon = -1.0;

  void validate() const;
};

struct InvariantViolation {
  Seconds t = 0;
  std::string message;
};

/// Replay `events` (time-ordered) from `initial_mapping` and report every
/// violated safety property. An empty result is the executor's
/// certificate of crash consistency for this run.
std::vector<InvariantViolation> check_migration_invariants(
    const std::vector<MigrationEvent>& events, const Mapping& initial_mapping,
    const std::vector<int>& capacities, const FaultPlan& plan,
    const MigrationInvariantOptions& options);

// ---------------------------------------------------------------------------
// Cross-tenant invariants
//
// Each tenant's journal certifies its own protocol (run it through
// check_migration_invariants with the tenant's own view). The shared
// substrate makes promises no single journal can certify: the *sum* of
// every tenant's residents and reservations stays within each site's
// physical capacity at every instant (two tenants reserving the same last
// slot is double-booking, even though each journal is individually
// clean), and each ordered inter-site link carries no more bytes than the
// sum of every tenant's chunk/retry budget. check_cross_tenant_invariants
// merges the journals into one time-ordered stream (ties break by tenant
// index, then per-tenant event order — deterministic) and replays the
// aggregate ledger.

/// One tenant's contribution to the shared-substrate replay.
struct TenantJournal {
  /// Time-ordered protocol events, as handed to the per-tenant checker.
  std::vector<MigrationEvent> events;
  /// Committed homes when the tenant arrived on the substrate.
  Mapping initial_mapping;
  /// The byte bounds this tenant's executor ran with (horizon is taken
  /// from the merged stream, not per tenant). Tenants with zero
  /// planned_bytes_per_process or chunk_bytes disable the per-link byte
  /// bound for the whole check — an unbounded tenant makes the summed
  /// bound meaningless.
  MigrationInvariantOptions options;
};

/// Replay all journals against the shared `site_capacities` and report
/// aggregate violations: over-capacity instants (residents + reservations
/// summed over tenants), negative aggregate accounting, tenants ending
/// homed on permanently dead sites, and per-ordered-link wire bytes above
/// the summed per-tenant chunk/retry bound. Violation messages name the
/// offending tenant by index. Per-tenant protocol errors (stale commits,
/// leaked reservations) are the per-tenant checker's job and are not
/// re-reported here.
std::vector<InvariantViolation> check_cross_tenant_invariants(
    const std::vector<TenantJournal>& journals,
    const std::vector<int>& site_capacities, const FaultPlan& plan);

}  // namespace geomap::fault
