#include "fault/degraded_network.h"

namespace geomap::fault {

net::NetworkModel DegradedNetworkModel::snapshot(Seconds t) const {
  const auto m = static_cast<std::size_t>(num_sites());
  Matrix lat = Matrix::square(m);
  Matrix bw = Matrix::square(m);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t l = 0; l < m; ++l) {
      lat(k, l) = latency(static_cast<SiteId>(k), static_cast<SiteId>(l), t);
      bw(k, l) = bandwidth(static_cast<SiteId>(k), static_cast<SiteId>(l), t);
    }
  }
  return net::NetworkModel(std::move(lat), std::move(bw));
}

}  // namespace geomap::fault
