#include "fault/fault_plan.h"

#include <algorithm>

#include "common/error.h"

namespace geomap::fault {

namespace {
bool active(const FaultEvent& e, Seconds t) {
  return t >= e.start && t < e.end;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void check_window(Seconds start, Seconds end) {
  GEOMAP_CHECK_MSG(start >= 0, "fault event start " << start << " < 0");
  GEOMAP_CHECK_MSG(end > start,
                   "fault event window [" << start << ", " << end << ") empty");
}

// Link endpoints must be a real site id or the -1 wildcard; anything more
// negative is a caller bug that would otherwise silently match every link.
void check_endpoints(SiteId src, SiteId dst) {
  GEOMAP_CHECK_MSG(src >= -1,
                   "link event src " << src << " is neither a site id nor the "
                                        "-1 wildcard");
  GEOMAP_CHECK_MSG(dst >= -1,
                   "link event dst " << dst << " is neither a site id nor the "
                                        "-1 wildcard");
}
}  // namespace

Seconds RetryPolicy::backoff(int attempt) const {
  Seconds delay = backoff_base;
  for (int k = 0; k < attempt; ++k) delay *= backoff_multiplier;
  return delay;
}

FaultPlan& FaultPlan::add_site_outage(SiteId site, Seconds start, Seconds end) {
  GEOMAP_CHECK_MSG(site >= 0, "outage of invalid site " << site);
  check_window(start, end);
  FaultEvent e;
  e.kind = FaultKind::kSiteOutage;
  e.site = site;
  e.start = start;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::add_link_degradation(SiteId src, SiteId dst,
                                           Seconds start, Seconds end,
                                           double bandwidth_factor,
                                           double latency_factor) {
  check_endpoints(src, dst);
  check_window(start, end);
  GEOMAP_CHECK_MSG(bandwidth_factor > 0 && bandwidth_factor <= 1.0,
                   "bandwidth factor " << bandwidth_factor << " not in (0, 1]");
  GEOMAP_CHECK_MSG(latency_factor >= 1.0,
                   "latency factor " << latency_factor << " < 1");
  FaultEvent e;
  e.kind = FaultKind::kLinkDegradation;
  e.src = src;
  e.dst = dst;
  e.start = start;
  e.end = end;
  e.bandwidth_factor = bandwidth_factor;
  e.latency_factor = latency_factor;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::add_site_degradation(SiteId site, Seconds start,
                                           Seconds end,
                                           double bandwidth_factor,
                                           double latency_factor) {
  GEOMAP_CHECK_MSG(site >= 0, "degradation of invalid site " << site);
  add_link_degradation(-1, -1, start, end, bandwidth_factor, latency_factor);
  events_.back().site = site;
  return *this;
}

FaultPlan& FaultPlan::add_message_loss(SiteId src, SiteId dst, Seconds start,
                                       Seconds end, double probability) {
  check_endpoints(src, dst);
  check_window(start, end);
  GEOMAP_CHECK_MSG(probability >= 0.0 && probability <= 1.0,
                   "loss probability " << probability << " not in [0, 1]");
  FaultEvent e;
  e.kind = FaultKind::kMessageLoss;
  e.src = src;
  e.dst = dst;
  e.start = start;
  e.end = end;
  e.loss_probability = probability;
  events_.push_back(e);
  return *this;
}

bool FaultPlan::site_down(SiteId site, Seconds t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kSiteOutage && e.site == site && active(e, t))
      return true;
  }
  return false;
}

Seconds FaultPlan::next_site_up(SiteId site, Seconds t) const {
  // Chase overlapping outage windows forward until none covers t.
  Seconds up = t;
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (const FaultEvent& e : events_) {
      if (e.kind != FaultKind::kSiteOutage || e.site != site) continue;
      if (active(e, up)) {
        if (e.end == kNoEnd) return kNoEnd;
        up = e.end;
        advanced = true;
      }
    }
  }
  return up;
}

bool FaultPlan::link_event_matches(const FaultEvent& e, SiteId src,
                                   SiteId dst) const {
  if (e.site >= 0) return src == e.site || dst == e.site;
  return (e.src < 0 || e.src == src) && (e.dst < 0 || e.dst == dst);
}

LinkCondition FaultPlan::link_condition(SiteId src, SiteId dst,
                                        Seconds t) const {
  LinkCondition cond;
  for (const FaultEvent& e : events_) {
    if (!active(e, t)) continue;
    switch (e.kind) {
      case FaultKind::kSiteOutage:
        if (e.site == src || e.site == dst) cond.down = true;
        break;
      case FaultKind::kLinkDegradation:
        if (link_event_matches(e, src, dst)) {
          cond.latency_factor *= e.latency_factor;
          cond.bandwidth_factor *= e.bandwidth_factor;
        }
        break;
      case FaultKind::kMessageLoss:
        if (link_event_matches(e, src, dst)) {
          cond.loss_probability =
              1.0 - (1.0 - cond.loss_probability) * (1.0 - e.loss_probability);
        }
        break;
    }
  }
  return cond;
}

bool FaultPlan::message_lost(SiteId src, SiteId dst, Seconds t,
                             std::uint64_t stream,
                             std::uint64_t attempt) const {
  const double p = link_condition(src, dst, t).loss_probability;
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::uint64_t h = seed_;
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
                      static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))));
  h = splitmix64(h ^ stream);
  h = splitmix64(h ^ attempt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p;
}

std::vector<obs::TruthWindow> FaultPlan::truth_windows(int num_sites) const {
  GEOMAP_CHECK_ARG(num_sites > 0,
                   "num_sites must be positive, got " << num_sites);
  std::vector<obs::TruthWindow> windows;
  const auto add = [&windows](SiteId src, SiteId dst, const FaultEvent& e,
                              bool down) {
    obs::TruthWindow w;
    w.src = src;
    w.dst = dst;
    w.start = e.start;
    w.end = e.end;
    w.down = down;
    windows.push_back(w);
  };
  for (const FaultEvent& e : events_) {
    switch (e.kind) {
      case FaultKind::kSiteOutage:
        if (e.site >= num_sites) break;
        for (SiteId other = 0; other < num_sites; ++other) {
          if (other == e.site) continue;
          add(e.site, other, e, /*down=*/true);
          add(other, e.site, e, /*down=*/true);
        }
        break;
      case FaultKind::kLinkDegradation:
        if (e.latency_factor == 1.0 && e.bandwidth_factor == 1.0) break;
        [[fallthrough]];
      case FaultKind::kMessageLoss:
        if (e.kind == FaultKind::kMessageLoss && e.loss_probability <= 0.0)
          break;
        for (SiteId src = 0; src < num_sites; ++src) {
          for (SiteId dst = 0; dst < num_sites; ++dst) {
            if (src == dst) continue;
            if (link_event_matches(e, src, dst)) add(src, dst, e, false);
          }
        }
        break;
    }
  }
  std::sort(windows.begin(), windows.end(),
            [](const obs::TruthWindow& a, const obs::TruthWindow& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              if (a.end != b.end) return a.end < b.end;
              return a.down < b.down;
            });
  return windows;
}

Seconds FaultPlan::outage_start(SiteId site) const {
  Seconds earliest = kNoEnd;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kSiteOutage && e.site == site)
      earliest = std::min(earliest, e.start);
  }
  return earliest;
}

}  // namespace geomap::fault
