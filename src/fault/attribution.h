#pragma once
// Attribution scoring: grade the incident engine's blame verdicts
// (obs/incident.h) against the seeded fault truth — the same move PR 4's
// detection scoring made for onsets, lifted from "did we notice" to
// "did we accuse the right site, and how late".
//
// Precision walks incidents: a verdict is correct when the blamed site
// is an endpoint of at least one hard-down truth window overlapping the
// incident (with `match_slack` grace before the fault's start — an
// incident can only begin once the detector aggregates evidence, never
// before the fault, but float comparisons deserve the slack both ways).
// Incidents that reached no verdict (blame.site == -1) are counted but
// not penalized — an honest "unknown" is not a misattribution.
//
// Recall walks the truth side: down windows sharing an identical
// (start, end) span are grouped into one *episode* (a site outage emits
// one window per incident link; the episode's site is the endpoint
// common to all of them), and an episode is attributed when some
// incident blames its site within the overlap window. Only *permanent*
// episodes (end == kNoEnd) are scored: they are the outages the
// recovery loop must answer for, and — unlike transient blips, which
// force-through delivery can legitimately ride out unobserved — a
// permanent outage always leaves journal evidence.
//
// The latency leg: for each attributed episode, the earliest correctly
// blaming incident's start is compared against the episode's true start;
// the absolute gap accumulates into the totals' mean onset error.

#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/detector.h"
#include "obs/incident.h"

namespace geomap::fault {

struct AttributionScoreOptions {
  /// Temporal grace when matching an incident against a truth window.
  Seconds match_slack = 0.5;
  /// When non-empty, truth windows on links outside this set are
  /// invisible to the detector and are excluded from scoring (same
  /// contract as DetectionScoreOptions::observable_links).
  std::vector<std::pair<SiteId, SiteId>> observable_links;
};

/// Score one case's incidents against that case's truth windows.
/// Returns totals with cases == 1; accumulate across a soak with
/// AttributionTotals::merge (or IncidentLog::add_totals).
obs::AttributionTotals score_attribution(
    const std::vector<obs::Incident>& incidents,
    const std::vector<obs::TruthWindow>& truth,
    const AttributionScoreOptions& options = {});

}  // namespace geomap::fault
