#pragma once
// Deterministic fault injection for the geo-distributed substrate.
//
// The paper's evaluation assumes every site and WAN link stays healthy
// for the whole run; production geo-distributed deployments do not. A
// FaultPlan is a seeded, reproducible schedule of fault events against
// which the runtime, the simulator, and the remapping policy can all be
// exercised:
//
//   * site outage      — a region goes dark for [start, end);
//   * link degradation — LT inflates and/or BT deflates by constant
//                        factors on a link, a site's links, or all links;
//   * message loss     — inter-site messages are dropped with probability
//                        p; the drop decision is a pure hash of
//                        (plan seed, link, message stream, attempt), so
//                        replays are bit-identical across runs.
//
// All times are *virtual* seconds on the runtime's clocks. A plan with no
// events is inert: consumers are required to reproduce the fault-free
// execution exactly (asserted by tests).

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.h"
#include "obs/detector.h"

namespace geomap::fault {

inline constexpr Seconds kNoEnd = std::numeric_limits<double>::infinity();

enum class FaultKind { kSiteOutage, kLinkDegradation, kMessageLoss };

/// One scheduled event, active over the half-open window [start, end).
/// Link events select their links by, in precedence order:
///   site >= 0            — every inter-site link touching `site`;
///   src/dst (-1 = any)   — the ordered pairs matching the wildcards.
struct FaultEvent {
  FaultKind kind = FaultKind::kLinkDegradation;
  Seconds start = 0;
  Seconds end = kNoEnd;
  SiteId site = -1;
  SiteId src = -1;
  SiteId dst = -1;
  /// kLinkDegradation: multiplies LT (>= 1 slows the link down).
  double latency_factor = 1.0;
  /// kLinkDegradation: multiplies BT (in (0, 1] — 0.25 = quarter speed).
  double bandwidth_factor = 1.0;
  /// kMessageLoss: per-message drop probability in [0, 1].
  double loss_probability = 0.0;
};

/// The health of one ordered site pair as of a virtual timestamp:
/// overlapping degradations compose multiplicatively, loss probabilities
/// compose as independent drops.
struct LinkCondition {
  double latency_factor = 1.0;
  double bandwidth_factor = 1.0;
  double loss_probability = 0.0;
  bool down = false;  // either endpoint site is out

  bool degraded() const {
    return down || latency_factor != 1.0 || bandwidth_factor != 1.0 ||
           loss_probability > 0.0;
  }
};

/// Retry behaviour for lost messages, all in virtual time: a loss costs
/// `detect_timeout` to notice, then exponential backoff before each
/// reattempt. After `max_retries` failed attempts the transfer is forced
/// through (and accounted as a timeout) so runs always terminate.
struct RetryPolicy {
  int max_retries = 8;
  Seconds detect_timeout = 0.2;
  Seconds backoff_base = 0.05;
  double backoff_multiplier = 2.0;

  Seconds backoff(int attempt) const;  // delay before reattempt `attempt`
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }
  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  // -- Schedule construction (fluent; validates arguments) --
  FaultPlan& add_site_outage(SiteId site, Seconds start, Seconds end = kNoEnd);
  FaultPlan& add_link_degradation(SiteId src, SiteId dst, Seconds start,
                                  Seconds end, double bandwidth_factor,
                                  double latency_factor = 1.0);
  /// Degrade every inter-site link touching `site` (brownout).
  FaultPlan& add_site_degradation(SiteId site, Seconds start, Seconds end,
                                  double bandwidth_factor,
                                  double latency_factor = 1.0);
  FaultPlan& add_message_loss(SiteId src, SiteId dst, Seconds start,
                              Seconds end, double probability);

  // -- Queries as of a virtual timestamp --
  bool site_down(SiteId site, Seconds t) const;

  /// Earliest time >= t at which `site` has no active outage; +inf when a
  /// permanent outage covers t.
  Seconds next_site_up(SiteId site, Seconds t) const;

  /// Combined condition of ordered link (src, dst) at time t.
  LinkCondition link_condition(SiteId src, SiteId dst, Seconds t) const;

  /// Deterministic drop decision for attempt `attempt` of the message
  /// identified by `stream` (any caller-stable sequence key) on link
  /// (src, dst) at time t. Pure in all arguments and the plan seed.
  bool message_lost(SiteId src, SiteId dst, Seconds t, std::uint64_t stream,
                    std::uint64_t attempt) const;

  /// Start of the earliest outage of `site`, or +inf if none scheduled.
  Seconds outage_start(SiteId site) const;

  /// Expand the schedule into per-ordered-link ground-truth windows for
  /// scoring a degradation detector (obs::score_detections) — evaluation
  /// only, never an input to detection. Site outages become `down`
  /// windows on every inter-site link touching the site; link
  /// degradations and message loss become non-down windows on the links
  /// they match. Sorted by (start, src, dst, end, down).
  std::vector<obs::TruthWindow> truth_windows(int num_sites) const;

 private:
  bool link_event_matches(const FaultEvent& e, SiteId src, SiteId dst) const;

  std::uint64_t seed_ = 0x5eedfa41u;
  std::vector<FaultEvent> events_;
};

}  // namespace geomap::fault
