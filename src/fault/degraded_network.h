#pragma once
// Time-varying decorator over net::NetworkModel: answers LT/BT and
// alpha-beta queries *as of a virtual timestamp*, applying whatever
// degradation the FaultPlan schedules at that instant. Outside every
// event window (and for an empty plan) it returns the base model's values
// bit-for-bit, so fault-free behaviour is unchanged.
//
// Holds non-owning references: both the base model and the plan must
// outlive the decorator.

#include "common/types.h"
#include "fault/fault_plan.h"
#include "net/network_model.h"

namespace geomap::fault {

class DegradedNetworkModel {
 public:
  DegradedNetworkModel(const net::NetworkModel& base, const FaultPlan& plan)
      : base_(&base), plan_(&plan) {}

  int num_sites() const { return base_->num_sites(); }
  const net::NetworkModel& base() const { return *base_; }
  const FaultPlan& plan() const { return *plan_; }

  /// False when either endpoint site is out at time t.
  bool available(SiteId k, SiteId l, Seconds t) const {
    return !plan_->site_down(k, t) && !plan_->site_down(l, t);
  }

  Seconds latency(SiteId k, SiteId l, Seconds t) const {
    const LinkCondition c = plan_->link_condition(k, l, t);
    return c.latency_factor == 1.0 ? base_->latency(k, l)
                                   : base_->latency(k, l) * c.latency_factor;
  }

  BytesPerSecond bandwidth(SiteId k, SiteId l, Seconds t) const {
    const LinkCondition c = plan_->link_condition(k, l, t);
    return c.bandwidth_factor == 1.0
               ? base_->bandwidth(k, l)
               : base_->bandwidth(k, l) * c.bandwidth_factor;
  }

  /// Alpha-beta time of one n-byte message on link (k, l) at time t.
  Seconds transfer_time(SiteId k, SiteId l, Bytes bytes, Seconds t) const {
    const LinkCondition c = plan_->link_condition(k, l, t);
    if (c.latency_factor == 1.0 && c.bandwidth_factor == 1.0)
      return base_->transfer_time(k, l, bytes);
    return base_->latency(k, l) * c.latency_factor +
           bytes / (base_->bandwidth(k, l) * c.bandwidth_factor);
  }

  /// Paper Equation (3) under the condition at time t.
  Seconds message_cost(SiteId k, SiteId l, double count, Bytes volume,
                       Seconds t) const {
    const LinkCondition c = plan_->link_condition(k, l, t);
    if (c.latency_factor == 1.0 && c.bandwidth_factor == 1.0)
      return base_->message_cost(k, l, count, volume);
    return count * base_->latency(k, l) * c.latency_factor +
           volume / (base_->bandwidth(k, l) * c.bandwidth_factor);
  }

  /// Materialize the degraded LT/BT matrices as of time t into a plain
  /// NetworkModel — the view the remap-on-outage policy optimizes
  /// against. Outage status is not baked into the matrices (a dead site
  /// is excluded by zeroing its capacity in the rebuilt problem, not by
  /// poisoning its links).
  net::NetworkModel snapshot(Seconds t) const;

 private:
  const net::NetworkModel* base_;
  const FaultPlan* plan_;
};

}  // namespace geomap::fault
