#include "fault/attribution.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "fault/fault_plan.h"

namespace geomap::fault {

namespace {

bool observable(const AttributionScoreOptions& options, SiteId src,
                SiteId dst) {
  if (options.observable_links.empty()) return true;
  for (const auto& [a, b] : options.observable_links) {
    if ((a == src && b == dst) || (a == dst && b == src)) return true;
  }
  return false;
}

/// True when [a0, a1] and [b0, b1] overlap, with `slack` grace.
bool overlaps(Seconds a0, Seconds a1, Seconds b0, Seconds b1, Seconds slack) {
  return a0 <= b1 + slack && b0 <= a1 + slack;
}

struct Episode {
  Seconds start = 0;
  Seconds end = 0;
  SiteId site = -1;  // endpoint common to every window of the span
};

}  // namespace

obs::AttributionTotals score_attribution(
    const std::vector<obs::Incident>& incidents,
    const std::vector<obs::TruthWindow>& truth,
    const AttributionScoreOptions& options) {
  obs::AttributionTotals totals;
  totals.cases = 1;
  totals.incidents = incidents.size();

  std::vector<obs::TruthWindow> down;
  for (const obs::TruthWindow& w : truth) {
    if (w.down && observable(options, w.src, w.dst)) down.push_back(w);
  }

  // Group identical (start, end) spans into site episodes: a site outage
  // puts every incident link down over exactly the same span, so the
  // site is the endpoint every window of the span shares.
  std::map<std::pair<Seconds, Seconds>, std::vector<const obs::TruthWindow*>>
      spans;
  for (const obs::TruthWindow& w : down) spans[{w.start, w.end}].push_back(&w);
  std::vector<Episode> episodes;
  for (const auto& [span, windows] : spans) {
    std::map<SiteId, std::size_t> endpoint_count;
    for (const obs::TruthWindow* w : windows) {
      endpoint_count[w->src] += 1;
      endpoint_count[w->dst] += 1;
    }
    Episode ep;
    ep.start = span.first;
    ep.end = span.second;
    std::size_t best = 0;
    for (const auto& [site, n] : endpoint_count) {
      if (n > best) {  // ties -> lower site id (map order)
        best = n;
        ep.site = site;
      }
    }
    // A single down link (a link fault, not a site outage) has no
    // majority endpoint; both ends count as acceptable blame, which the
    // dominant-endpoint rule already yields for either choice. Permanent
    // episodes only — transient blips may legitimately pass unobserved.
    if (std::isinf(ep.end)) episodes.push_back(ep);
  }
  totals.episodes = episodes.size();

  // Precision: every verdict must be corroborated by some down window
  // touching the blamed site over the incident's span.
  for (const obs::Incident& inc : incidents) {
    if (inc.blame.site < 0) continue;
    totals.blamed += 1;
    bool corroborated = false;
    for (const obs::TruthWindow& w : down) {
      if (w.src != inc.blame.site && w.dst != inc.blame.site) continue;
      if (overlaps(inc.start, inc.end, w.start, w.end, options.match_slack)) {
        corroborated = true;
        break;
      }
    }
    (corroborated ? totals.correctly_blamed : totals.misblamed) += 1;
  }

  // Recall + onset error: each permanent episode wants the earliest
  // incident that blames its site during the outage.
  for (const Episode& ep : episodes) {
    const obs::Incident* earliest = nullptr;
    for (const obs::Incident& inc : incidents) {
      if (inc.blame.site != ep.site) continue;
      if (!overlaps(inc.start, inc.end, ep.start, ep.end, options.match_slack))
        continue;
      if (earliest == nullptr || inc.start < earliest->start) earliest = &inc;
    }
    if (earliest != nullptr) {
      totals.attributed += 1;
      totals.onset_error_sum += std::abs(earliest->start - ep.start);
      totals.onset_error_samples += 1;
    } else {
      totals.missed += 1;
    }
  }
  return totals;
}

}  // namespace geomap::fault
