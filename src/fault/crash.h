#pragma once
// Named crash points for kill-at-any-point testing, FoundationDB-style.
//
// Durable code (the WAL in src/recover) calls
// CrashInjector::instance().hit("wal.append.sched_grant.before") at every
// boundary where a real process could die. Normally a hit is free. When a
// point is *armed* — programmatically (crash-matrix soak) or via
// GEOMAP_CRASHPOINT=<name> in the environment — the matching hit throws
// CrashTriggered, which models the process dying at exactly that
// instruction: everything not yet fsynced is lost (the WAL's destructor
// discards its buffer), and recovery must reconstruct the rest.
//
// Arming is one-shot: the armed point disarms as it fires, so the
// recovered run sails through the same boundary. GEOMAP_CRASHPOINT_SKIP=n
// arms the (n+1)-th hit instead of the first — skip past the first
// recovery's redo to test crash-during-recovery.
//
// This is deliberately below the observability stack (links only
// geomap_common) so the WAL — which obs/detector itself logs to — can
// depend on it without a cycle.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace geomap::fault {

/// The armed crash point fired: the control plane is dead. Carries the
/// point name; deliberately NOT a geomap::Error subclass so generic
/// error handling cannot swallow a simulated process death.
class CrashTriggered {
 public:
  explicit CrashTriggered(std::string point) : point_(std::move(point)) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

class CrashInjector {
 public:
  /// Process-wide singleton. On first use arms from GEOMAP_CRASHPOINT /
  /// GEOMAP_CRASHPOINT_SKIP when set.
  static CrashInjector& instance();

  /// Arm `point`: the (skip+1)-th hit of it throws CrashTriggered, then
  /// the injector disarms. Re-arming resets the hit counter.
  void arm(const std::string& point, int skip = 0);
  void disarm();
  bool armed() const;
  std::string armed_point() const;

  /// Declare-and-maybe-die. Every call records the point in the registry
  /// and bumps its hit counter; if `point` is armed and this is the
  /// armed occurrence, disarms and throws CrashTriggered.
  void hit(const std::string& point);

  /// True when the *next* hit("point") would throw. Lets the WAL write a
  /// deliberately torn record before dying at a `.torn` point.
  bool would_crash(const std::string& point) const;

  /// Hits observed for `point` since the last reset (0 if never hit).
  std::uint64_t hits(const std::string& point) const;

  /// Every point name hit at least once since the last reset_counts().
  std::vector<std::string> points_seen() const;

  /// Forget hit counters and seen points (armed state is untouched).
  void reset_counts();

 private:
  CrashInjector();

  mutable std::mutex mutex_;
  bool armed_ = false;
  std::string point_;
  std::uint64_t fire_at_ = 1;  // hit ordinal that fires (skip + 1)
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace geomap::fault
