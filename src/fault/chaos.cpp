#include "fault/chaos.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"

namespace geomap::fault {

void ChaosOptions::validate() const {
  GEOMAP_CHECK_ARG(num_sites >= 2, "chaos needs >= 2 sites, got " << num_sites);
  GEOMAP_CHECK_ARG(horizon > 0, "horizon must be positive, got " << horizon);
  GEOMAP_CHECK_ARG(primary_lo >= 0 && primary_hi <= 1 && primary_lo <= primary_hi,
                   "primary window [" << primary_lo << ", " << primary_hi
                                      << "] must be inside [0, 1]");
  GEOMAP_CHECK_ARG(cascade_probability >= 0 && cascade_probability <= 1,
                   "cascade_probability must be in [0, 1]");
  GEOMAP_CHECK_ARG(max_permanent_outages >= 1 &&
                       max_permanent_outages < num_sites,
                   "max_permanent_outages must be in [1, num_sites), got "
                       << max_permanent_outages);
  GEOMAP_CHECK_ARG(transient_outages >= 0 && brownouts >= 0 &&
                       loss_events >= 0 && migration_window_faults >= 0,
                   "event counts must be non-negative");
  GEOMAP_CHECK_ARG(min_bandwidth_factor > 0 && min_bandwidth_factor <= 1,
                   "min_bandwidth_factor must be in (0, 1], got "
                       << min_bandwidth_factor);
  GEOMAP_CHECK_ARG(max_latency_factor >= 1,
                   "max_latency_factor must be >= 1, got " << max_latency_factor);
  GEOMAP_CHECK_ARG(max_loss_probability >= 0 && max_loss_probability <= 1,
                   "max_loss_probability must be in [0, 1]");
}

namespace {

/// A transient degradation or outage drawn in [lo, hi); returns [start,
/// end) clamped so end stays finite and past start.
std::pair<Seconds, Seconds> draw_window(Rng& rng, Seconds lo, Seconds hi,
                                        Seconds min_len, Seconds max_len) {
  const Seconds start = rng.uniform(lo, hi);
  const Seconds len = rng.uniform(min_len, max_len);
  return {start, start + len};
}

SiteId draw_site(Rng& rng, int num_sites) {
  return static_cast<SiteId>(rng.uniform_index(
      static_cast<std::uint64_t>(num_sites)));
}

/// A site not in `exclude` (assumes one exists).
SiteId draw_surviving_site(Rng& rng, int num_sites,
                           const std::set<SiteId>& exclude) {
  for (;;) {
    const SiteId s = draw_site(rng, num_sites);
    if (exclude.count(s) == 0) return s;
  }
}

void add_brownout(FaultPlan& plan, Rng& rng, SiteId site, Seconds start,
                  Seconds end, const ChaosOptions& options) {
  const double bw = rng.uniform(options.min_bandwidth_factor, 1.0);
  const double lat = rng.uniform(1.0, options.max_latency_factor);
  plan.add_site_degradation(site, start, end, bw, lat);
}

}  // namespace

ChaosPlan make_chaos_plan(std::uint64_t seed, const ChaosOptions& options) {
  options.validate();
  Rng rng(seed ^ 0xc4a05c0ffee5ULL);

  ChaosPlan result;
  result.plan = FaultPlan(seed);
  FaultPlan& plan = result.plan;
  const Seconds h = options.horizon;
  const int m = options.num_sites;

  // Primary permanent outage, optionally preceded by a brownout cascade
  // on the doomed site (degrade, then die).
  result.primary_site = draw_site(rng, m);
  result.primary_outage_time =
      rng.uniform(options.primary_lo * h, options.primary_hi * h);
  std::set<SiteId> dead = {result.primary_site};
  if (rng.uniform() < options.cascade_probability) {
    const Seconds precursor = rng.uniform(0.02 * h, 0.15 * h);
    add_brownout(plan, rng,
                 result.primary_site,
                 std::max(0.0, result.primary_outage_time - precursor),
                 result.primary_outage_time, options);
  }
  plan.add_site_outage(result.primary_site, result.primary_outage_time);

  // Additional permanent outages (off by default): later than the
  // primary, distinct sites, capped below num_sites so survivors exist.
  for (int k = 1; k < options.max_permanent_outages; ++k) {
    const SiteId site = draw_surviving_site(rng, m, dead);
    const Seconds at =
        rng.uniform(result.primary_outage_time, std::max(result.primary_outage_time, 0.9 * h));
    plan.add_site_outage(site, at);
    dead.insert(site);
  }

  // Background noise over the whole horizon. Transient outages avoid the
  // permanently dead sites (an extra outage there is unobservable).
  for (int k = 0; k < options.transient_outages; ++k) {
    const SiteId site = draw_surviving_site(rng, m, dead);
    const auto [start, end] = draw_window(rng, 0.0, h, 0.02 * h, 0.12 * h);
    plan.add_site_outage(site, start, end);
  }
  for (int k = 0; k < options.brownouts; ++k) {
    const SiteId site = draw_site(rng, m);
    const auto [start, end] = draw_window(rng, 0.0, h, 0.05 * h, 0.3 * h);
    add_brownout(plan, rng, site, start, end, options);
  }
  for (int k = 0; k < options.loss_events; ++k) {
    const SiteId src = draw_site(rng, m);
    SiteId dst = draw_site(rng, m);
    if (dst == src) dst = static_cast<SiteId>((dst + 1) % m);
    const auto [start, end] = draw_window(rng, 0.0, h, 0.03 * h, 0.2 * h);
    plan.add_message_loss(src, dst, start, end,
                          rng.uniform(0.05, options.max_loss_probability));
  }

  // Faults aimed into the expected migration window: transient trouble
  // on *surviving* sites, which is exactly what forces rollbacks and
  // re-prepares mid-copy.
  if (options.migration_window_length > 0) {
    const Seconds w0 = options.migration_window_start >= 0
                           ? options.migration_window_start
                           : result.primary_outage_time;
    const Seconds w1 = w0 + options.migration_window_length;
    for (int k = 0; k < options.migration_window_faults; ++k) {
      const SiteId site = draw_surviving_site(rng, m, dead);
      const auto [start, end] = draw_window(
          rng, w0, w1, 0.05 * options.migration_window_length,
          0.35 * options.migration_window_length);
      if (rng.uniform() < 0.5) {
        plan.add_site_outage(site, start, end);
      } else {
        add_brownout(plan, rng, site, start, end, options);
      }
    }
  }

  result.permanently_dead.assign(dead.begin(), dead.end());
  return result;
}

// ---------------------------------------------------------------------------

const char* to_string(MigrationEventKind kind) {
  switch (kind) {
    case MigrationEventKind::kReserve:
      return "reserve";
    case MigrationEventKind::kRelease:
      return "release";
    case MigrationEventKind::kCommit:
      return "commit";
    case MigrationEventKind::kChunk:
      return "chunk";
    case MigrationEventKind::kRollback:
      return "rollback";
    case MigrationEventKind::kReplan:
      return "replan";
  }
  return "?";
}

void MigrationInvariantOptions::validate() const {
  GEOMAP_CHECK_ARG(planned_bytes_per_process >= 0 && chunk_bytes >= 0,
                   "byte sizes must be non-negative");
  GEOMAP_CHECK_ARG(max_retries >= 0 && max_copy_attempts >= 1,
                   "retry/attempt bounds must be positive");
}

namespace {

bool permanently_down(const FaultPlan& plan, SiteId site, Seconds t) {
  return plan.site_down(site, t) && plan.next_site_up(site, t) == kNoEnd;
}

std::string at(Seconds t) {
  std::ostringstream os;
  os << "t=" << t << ": ";
  return os.str();
}

}  // namespace

std::vector<InvariantViolation> check_migration_invariants(
    const std::vector<MigrationEvent>& events, const Mapping& initial_mapping,
    const std::vector<int>& capacities, const FaultPlan& plan,
    const MigrationInvariantOptions& options) {
  options.validate();
  const int m = static_cast<int>(capacities.size());
  const int n = static_cast<int>(initial_mapping.size());

  std::vector<InvariantViolation> violations;
  const auto flag = [&](Seconds t, const std::string& msg) {
    violations.push_back({t, at(t) + msg});
  };

  // Replayed state: committed home of each process, per-site residents
  // and reservations, per-process reservation ownership and wire bytes.
  Mapping home = initial_mapping;
  std::vector<int> resident(static_cast<std::size_t>(m), 0);
  std::vector<int> reserved(static_cast<std::size_t>(m), 0);
  std::vector<SiteId> reserved_site(static_cast<std::size_t>(n), -1);
  std::vector<Bytes> wire_bytes(static_cast<std::size_t>(n), 0.0);

  for (ProcessId p = 0; p < n; ++p) {
    const SiteId s = home[static_cast<std::size_t>(p)];
    GEOMAP_CHECK_ARG(s >= 0 && s < m,
                     "initial mapping places process " << p << " on invalid site "
                                                       << s);
    resident[static_cast<std::size_t>(s)] += 1;
  }
  for (SiteId s = 0; s < m; ++s) {
    if (resident[static_cast<std::size_t>(s)] > capacities[static_cast<std::size_t>(s)])
      flag(0, "initial placement already exceeds capacity of site " +
                  std::to_string(s));
  }

  const auto check_capacity = [&](Seconds t, SiteId s) {
    const std::size_t i = static_cast<std::size_t>(s);
    if (resident[i] + reserved[i] > capacities[i]) {
      std::ostringstream os;
      os << "site " << s << " over capacity: " << resident[i] << " residents + "
         << reserved[i] << " reserved > " << capacities[i];
      flag(t, os.str());
    }
    if (resident[i] < 0 || reserved[i] < 0) {
      std::ostringstream os;
      os << "site " << s << " accounting went negative (" << resident[i]
         << " residents, " << reserved[i] << " reserved)";
      flag(t, os.str());
    }
  };

  Seconds last_t = 0;
  bool first = true;
  for (const MigrationEvent& e : events) {
    if (!first && e.t < last_t) {
      std::ostringstream os;
      os << to_string(e.kind) << " event out of order (previous t=" << last_t
         << ")";
      flag(e.t, os.str());
    }
    first = false;
    last_t = std::max(last_t, e.t);

    const bool needs_process = e.kind != MigrationEventKind::kReplan;
    if (needs_process && (e.process < 0 || e.process >= n)) {
      flag(e.t, "event names invalid process " + std::to_string(e.process));
      continue;
    }
    const std::size_t p = static_cast<std::size_t>(std::max<ProcessId>(e.process, 0));

    switch (e.kind) {
      case MigrationEventKind::kReserve: {
        if (e.site_to < 0 || e.site_to >= m) {
          flag(e.t, "reserve on invalid site " + std::to_string(e.site_to));
          break;
        }
        if (reserved_site[p] != -1) {
          std::ostringstream os;
          os << "process " << e.process << " reserves site " << e.site_to
             << " while already holding a reservation on site "
             << reserved_site[p];
          flag(e.t, os.str());
          break;
        }
        reserved[static_cast<std::size_t>(e.site_to)] += 1;
        reserved_site[p] = e.site_to;
        check_capacity(e.t, e.site_to);
        break;
      }
      case MigrationEventKind::kRelease: {
        if (reserved_site[p] != e.site_to) {
          std::ostringstream os;
          os << "process " << e.process << " releases site " << e.site_to
             << " but holds "
             << (reserved_site[p] == -1 ? std::string("no reservation")
                                        : "site " + std::to_string(reserved_site[p]));
          flag(e.t, os.str());
          break;
        }
        reserved[static_cast<std::size_t>(e.site_to)] -= 1;
        reserved_site[p] = -1;
        check_capacity(e.t, e.site_to);
        break;
      }
      case MigrationEventKind::kCommit: {
        const SiteId cur = home[p];
        if (e.site_from != cur) {
          std::ostringstream os;
          os << "process " << e.process << " commits from site " << e.site_from
             << " but its committed home is site " << cur
             << " — two homes, or a stale commit";
          flag(e.t, os.str());
        }
        if (reserved_site[p] != e.site_to) {
          std::ostringstream os;
          os << "process " << e.process << " commits onto site " << e.site_to
             << " without a reservation there";
          flag(e.t, os.str());
        }
        if (e.site_to < 0 || e.site_to >= m) {
          flag(e.t, "commit onto invalid site " + std::to_string(e.site_to));
          break;
        }
        if (cur >= 0 && cur < m) resident[static_cast<std::size_t>(cur)] -= 1;
        if (reserved_site[p] == e.site_to)
          reserved[static_cast<std::size_t>(e.site_to)] -= 1;
        resident[static_cast<std::size_t>(e.site_to)] += 1;
        reserved_site[p] = -1;
        home[p] = e.site_to;
        check_capacity(e.t, e.site_to);
        if (cur >= 0 && cur < m) check_capacity(e.t, cur);
        break;
      }
      case MigrationEventKind::kChunk: {
        if (e.bytes < 0) {
          flag(e.t, "chunk with negative bytes");
          break;
        }
        wire_bytes[p] += e.bytes;
        break;
      }
      case MigrationEventKind::kRollback:
      case MigrationEventKind::kReplan:
        break;  // informational
    }
  }

  const Seconds horizon = options.horizon >= 0 ? options.horizon : last_t;

  // End-state properties.
  for (ProcessId p = 0; p < n; ++p) {
    const std::size_t i = static_cast<std::size_t>(p);
    if (reserved_site[i] != -1) {
      std::ostringstream os;
      os << "process " << p << " ends holding a leaked reservation on site "
         << reserved_site[i];
      flag(horizon, os.str());
    }
    if (permanently_down(plan, home[i], horizon)) {
      std::ostringstream os;
      os << "process " << p << " ends committed to site " << home[i]
         << ", which is permanently dead";
      flag(horizon, os.str());
    }
  }

  if (options.planned_bytes_per_process > 0 && options.chunk_bytes > 0) {
    const double chunks =
        std::ceil(options.planned_bytes_per_process / options.chunk_bytes);
    const Bytes bound = chunks * options.chunk_bytes *
                        (1.0 + options.max_retries) * options.max_copy_attempts;
    for (ProcessId p = 0; p < n; ++p) {
      const std::size_t i = static_cast<std::size_t>(p);
      if (wire_bytes[i] > bound) {
        std::ostringstream os;
        os << "process " << p << " shipped " << wire_bytes[i]
           << " bytes, over the retry bound " << bound;
        flag(horizon, os.str());
      }
    }
  }

  std::stable_sort(violations.begin(), violations.end(),
                   [](const InvariantViolation& a, const InvariantViolation& b) {
                     return a.t < b.t;
                   });
  return violations;
}

std::vector<InvariantViolation> check_cross_tenant_invariants(
    const std::vector<TenantJournal>& journals,
    const std::vector<int>& site_capacities, const FaultPlan& plan) {
  const int m = static_cast<int>(site_capacities.size());
  const int num_tenants = static_cast<int>(journals.size());

  std::vector<InvariantViolation> violations;
  const auto flag = [&](Seconds t, const std::string& msg) {
    violations.push_back({t, at(t) + msg});
  };

  // Aggregate ledger across all tenants, plus per-tenant home/reservation
  // shadows so commits and releases mutate it correctly even when a
  // tenant's own journal is sloppy (the per-tenant checker reports that;
  // here we only keep the sums honest).
  std::vector<int> resident(static_cast<std::size_t>(m), 0);
  std::vector<int> reserved(static_cast<std::size_t>(m), 0);
  std::vector<Mapping> home(static_cast<std::size_t>(num_tenants));
  std::vector<std::vector<SiteId>> reserved_site(
      static_cast<std::size_t>(num_tenants));

  for (int k = 0; k < num_tenants; ++k) {
    const TenantJournal& j = journals[static_cast<std::size_t>(k)];
    home[static_cast<std::size_t>(k)] = j.initial_mapping;
    reserved_site[static_cast<std::size_t>(k)]
        .assign(j.initial_mapping.size(), -1);
    for (const SiteId s : j.initial_mapping) {
      GEOMAP_CHECK_ARG(s >= 0 && s < m, "tenant " << k
                                                  << " initially homed on "
                                                     "invalid site "
                                                  << s);
      resident[static_cast<std::size_t>(s)] += 1;
    }
  }
  for (SiteId s = 0; s < m; ++s) {
    const std::size_t i = static_cast<std::size_t>(s);
    if (resident[i] > site_capacities[i]) {
      std::ostringstream os;
      os << "initial placements oversubscribe site " << s << ": " << resident[i]
         << " residents across tenants > capacity " << site_capacities[i];
      flag(0, os.str());
    }
  }

  // Merge: stable sort by time over (tenant, index) refs. Ties keep the
  // original order — tenant-major, then per-tenant journal order — so the
  // merged replay is deterministic for identical inputs.
  struct Ref {
    Seconds t;
    int tenant;
    std::size_t idx;
  };
  std::vector<Ref> merged;
  for (int k = 0; k < num_tenants; ++k) {
    const auto& events = journals[static_cast<std::size_t>(k)].events;
    for (std::size_t i = 0; i < events.size(); ++i) {
      merged.push_back({events[i].t, k, i});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Ref& a, const Ref& b) { return a.t < b.t; });

  const auto check_capacity = [&](Seconds t, SiteId s, int tenant) {
    const std::size_t i = static_cast<std::size_t>(s);
    if (resident[i] + reserved[i] > site_capacities[i]) {
      std::ostringstream os;
      os << "site " << s << " oversubscribed across tenants (tenant " << tenant
         << "'s event tipped it): " << resident[i] << " residents + "
         << reserved[i] << " reserved > " << site_capacities[i];
      flag(t, os.str());
    }
    if (resident[i] < 0 || reserved[i] < 0) {
      std::ostringstream os;
      os << "aggregate accounting for site " << s << " went negative ("
         << resident[i] << " residents, " << reserved[i] << " reserved)";
      flag(t, os.str());
    }
  };

  // Per-ordered-link wire bytes, summed over tenants.
  std::map<std::pair<SiteId, SiteId>, Bytes> link_bytes;

  Seconds last_t = 0;
  for (const Ref& ref : merged) {
    const TenantJournal& j = journals[static_cast<std::size_t>(ref.tenant)];
    const MigrationEvent& e = j.events[ref.idx];
    last_t = std::max(last_t, e.t);
    const int n = static_cast<int>(home[static_cast<std::size_t>(ref.tenant)]
                                       .size());
    if (e.kind != MigrationEventKind::kReplan &&
        (e.process < 0 || e.process >= n)) {
      continue;  // per-tenant checker reports the malformed event
    }
    auto& t_home = home[static_cast<std::size_t>(ref.tenant)];
    auto& t_res = reserved_site[static_cast<std::size_t>(ref.tenant)];
    const std::size_t p =
        static_cast<std::size_t>(std::max<ProcessId>(e.process, 0));

    switch (e.kind) {
      case MigrationEventKind::kReserve: {
        if (e.site_to < 0 || e.site_to >= m || t_res[p] != -1) break;
        reserved[static_cast<std::size_t>(e.site_to)] += 1;
        t_res[p] = e.site_to;
        check_capacity(e.t, e.site_to, ref.tenant);
        break;
      }
      case MigrationEventKind::kRelease: {
        if (t_res[p] != e.site_to) break;
        reserved[static_cast<std::size_t>(e.site_to)] -= 1;
        t_res[p] = -1;
        check_capacity(e.t, e.site_to, ref.tenant);
        break;
      }
      case MigrationEventKind::kCommit: {
        if (e.site_to < 0 || e.site_to >= m) break;
        const SiteId cur = t_home[p];
        if (cur >= 0 && cur < m) resident[static_cast<std::size_t>(cur)] -= 1;
        if (t_res[p] == e.site_to) {
          reserved[static_cast<std::size_t>(e.site_to)] -= 1;
          t_res[p] = -1;
        }
        resident[static_cast<std::size_t>(e.site_to)] += 1;
        t_home[p] = e.site_to;
        check_capacity(e.t, e.site_to, ref.tenant);
        if (cur >= 0 && cur < m) check_capacity(e.t, cur, ref.tenant);
        break;
      }
      case MigrationEventKind::kChunk: {
        if (e.bytes < 0) break;
        link_bytes[{e.site_from, e.site_to}] += e.bytes;
        break;
      }
      case MigrationEventKind::kRollback:
      case MigrationEventKind::kReplan:
        break;
    }
  }

  // End state: every tenant's committed homes must be off the permanently
  // dead sites. Probed far in the future, not at last_t: a permanent
  // outage is forever, and the stranded tenant whose every remap attempt
  // failed has an *empty* journal — its doom must still be reported even
  // when the outage starts after the last recorded event.
  const Seconds far_future = std::numeric_limits<double>::max() / 2;
  for (int k = 0; k < num_tenants; ++k) {
    const auto& t_home = home[static_cast<std::size_t>(k)];
    for (std::size_t p = 0; p < t_home.size(); ++p) {
      if (permanently_down(plan, t_home[p], far_future)) {
        std::ostringstream os;
        os << "tenant " << k << " process " << p
           << " ends committed to permanently dead site " << t_home[p];
        flag(last_t, os.str());
      }
    }
  }

  // Per-link byte bound: each ordered link may carry at most the sum of
  // every tenant's (processes × per-process chunk/retry bound). Skipped
  // when any tenant ran without byte bounds — the sum is meaningless then.
  bool bounded = num_tenants > 0;
  Bytes summed_bound = 0;
  for (const TenantJournal& j : journals) {
    if (j.options.planned_bytes_per_process <= 0 || j.options.chunk_bytes <= 0) {
      bounded = false;
      break;
    }
    const double chunks = std::ceil(j.options.planned_bytes_per_process /
                                    j.options.chunk_bytes);
    const Bytes per_process = chunks * j.options.chunk_bytes *
                              (1.0 + j.options.max_retries) *
                              j.options.max_copy_attempts;
    summed_bound +=
        per_process * static_cast<double>(j.initial_mapping.size());
  }
  if (bounded) {
    for (const auto& [link, bytes] : link_bytes) {
      if (bytes > summed_bound) {
        std::ostringstream os;
        os << "link " << link.first << "->" << link.second << " carried "
           << bytes << " bytes, over the summed cross-tenant bound "
           << summed_bound;
        flag(last_t, os.str());
      }
    }
  }

  std::stable_sort(violations.begin(), violations.end(),
                   [](const InvariantViolation& a, const InvariantViolation& b) {
                     return a.t < b.t;
                   });
  return violations;
}

}  // namespace geomap::fault
