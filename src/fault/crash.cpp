#include "fault/crash.h"

#include <cstdlib>

namespace geomap::fault {

CrashInjector& CrashInjector::instance() {
  static CrashInjector injector;
  return injector;
}

CrashInjector::CrashInjector() {
  const char* point = std::getenv("GEOMAP_CRASHPOINT");
  if (point == nullptr || point[0] == '\0') return;
  int skip = 0;
  if (const char* s = std::getenv("GEOMAP_CRASHPOINT_SKIP")) {
    skip = std::atoi(s);
    if (skip < 0) skip = 0;
  }
  armed_ = true;
  point_ = point;
  fire_at_ = static_cast<std::uint64_t>(skip) + 1;
}

void CrashInjector::arm(const std::string& point, int skip) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = true;
  point_ = point;
  fire_at_ = static_cast<std::uint64_t>(skip < 0 ? 0 : skip) + 1;
  counts_.erase(point);
}

void CrashInjector::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  point_.clear();
}

bool CrashInjector::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

std::string CrashInjector::armed_point() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return point_;
}

void CrashInjector::hit(const std::string& point) {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t n = ++counts_[point];
    if (armed_ && point == point_ && n == fire_at_) {
      armed_ = false;
      point_.clear();
      fire = true;
    }
  }
  if (fire) throw CrashTriggered(point);
}

bool CrashInjector::would_crash(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_ || point != point_) return false;
  const auto it = counts_.find(point);
  const std::uint64_t n = it == counts_.end() ? 0 : it->second;
  return n + 1 == fire_at_;
}

std::uint64_t CrashInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counts_.find(point);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::string> CrashInjector::points_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(counts_.size());
  for (const auto& [name, count] : counts_) out.push_back(name);
  return out;
}

void CrashInjector::reset_counts() {
  std::lock_guard<std::mutex> lock(mutex_);
  counts_.clear();
}

}  // namespace geomap::fault
