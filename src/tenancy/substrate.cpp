#include "tenancy/substrate.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/geodist_mapper.h"
#include "net/cloud.h"
#include "net/network_model.h"
#include "sim/netsim.h"
#include "trace/comm_matrix.h"

namespace geomap::tenancy {

void SubstrateOptions::validate() const {
  GEOMAP_CHECK_ARG(num_sites >= 3,
                   "substrate needs >= 3 sites (one dies and remaps must "
                   "still have a choice), got "
                       << num_sites);
  GEOMAP_CHECK_ARG(num_tenants >= 1,
                   "substrate needs >= 1 tenant, got " << num_tenants);
  GEOMAP_CHECK_ARG(min_ranks >= 2 && max_ranks >= min_ranks,
                   "rank range [" << min_ranks << ", " << max_ranks
                                  << "] must satisfy 2 <= min <= max");
  GEOMAP_CHECK_ARG(headroom >= 0, "headroom must be >= 0, got " << headroom);
  GEOMAP_CHECK_ARG(constraint_ratio >= 0.0 && constraint_ratio < 1.0,
                   "constraint_ratio must be in [0, 1), got "
                       << constraint_ratio);
}

namespace {

/// A tenant's communication graph: ring plus sparse random extras, the
/// same shape the single-tenant soak uses, drawn from the tenant's own
/// stream so tenant k's graph is independent of the tenant count.
trace::CommMatrix make_tenant_comm(Rng& rng, int ranks) {
  trace::CommMatrix::Builder b(ranks);
  for (ProcessId i = 0; i < ranks; ++i) {
    const auto ring = static_cast<ProcessId>((i + 1) % ranks);
    b.add_message(i, ring, rng.uniform(64.0 * 1024, 512.0 * 1024),
                  static_cast<double>(rng.uniform_int(2, 20)));
    const auto j = static_cast<ProcessId>(
        rng.uniform_index(static_cast<std::size_t>(ranks)));
    if (j != i) {
      b.add_message(i, j, rng.uniform(16.0 * 1024, 256.0 * 1024),
                    static_cast<double>(rng.uniform_int(1, 10)));
    }
  }
  return b.build();
}

}  // namespace

std::vector<int> Substrate::residents() const {
  std::vector<int> r(site_capacities.size(), 0);
  for (const Tenant& t : tenants) {
    for (const SiteId s : t.mapping) r[static_cast<std::size_t>(s)] += 1;
  }
  return r;
}

Substrate make_substrate(std::uint64_t seed, const SubstrateOptions& options) {
  options.validate();
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x7e4a);

  // Draw tenant sizes first so capacity can be sized to fit them all on
  // the survivors of one site death, with headroom for remap freedom.
  std::vector<int> ranks(static_cast<std::size_t>(options.num_tenants));
  int total_ranks = 0;
  for (int& r : ranks) {
    r = static_cast<int>(rng.uniform_int(options.min_ranks, options.max_ranks));
    total_ranks += r;
  }
  const int survivors = options.num_sites - 1;
  const int needed = static_cast<int>(
      std::ceil(total_ranks * (1.0 + options.headroom)));
  const int nodes_per_site = (needed + survivors - 1) / survivors;
  const net::CloudTopology topo(
      net::synthetic_profile(options.num_sites, nodes_per_site, seed));
  const net::NetworkModel network = net::NetworkModel::from_ground_truth(topo);

  Substrate sub;
  sub.site_capacities = topo.capacities();

  // Sequential capacity-aware placement: tenant k maps into the slots
  // tenants 0..k-1 left free, so the shared ledger starts consistent.
  std::vector<int> used(sub.site_capacities.size(), 0);
  core::GeoDistMapper mapper;
  for (int k = 0; k < options.num_tenants; ++k) {
    Tenant t;
    t.id = k;
    t.problem.comm = make_tenant_comm(rng, ranks[static_cast<std::size_t>(k)]);
    t.problem.network = network;
    t.problem.site_coords = topo.coordinates();
    t.problem.capacities.resize(sub.site_capacities.size());
    for (std::size_t s = 0; s < used.size(); ++s) {
      t.problem.capacities[s] = sub.site_capacities[s] - used[s];
    }
    if (options.constraint_ratio > 0) {
      t.problem.constraints = mapping::make_random_constraints(
          ranks[static_cast<std::size_t>(k)], t.problem.capacities,
          options.constraint_ratio, rng);
    }
    t.problem.validate();
    t.mapping = mapper.map(t.problem);
    for (const SiteId s : t.mapping) used[static_cast<std::size_t>(s)] += 1;

    t.solo_makespan =
        sim::replay_with_contention(t.problem.comm, network, t.mapping)
            .makespan;
    sub.tenants.push_back(std::move(t));
  }
  return sub;
}

FairnessReport fairness_from_stretch(const std::vector<double>& stretch) {
  GEOMAP_CHECK_ARG(!stretch.empty(), "fairness needs >= 1 stretch value");
  FairnessReport report;
  report.stretch = stretch;

  double sum_share = 0;
  double sum_share_sq = 0;
  double sum_stretch = 0;
  report.max_stretch = 0;
  for (const double s : stretch) {
    GEOMAP_CHECK_ARG(s > 0, "stretch must be positive, got " << s);
    const double share = 1.0 / s;
    sum_share += share;
    sum_share_sq += share * share;
    sum_stretch += s;
    report.max_stretch = std::max(report.max_stretch, s);
  }
  const double n = static_cast<double>(stretch.size());
  report.jain_index = (sum_share * sum_share) / (n * sum_share_sq);
  report.mean_stretch = sum_stretch / n;
  report.p99_stretch = percentile(stretch, 99.0);
  return report;
}

}  // namespace geomap::tenancy
