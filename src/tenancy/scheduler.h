#pragma once
// Remap/migration scheduler: who migrates first when a region dies under
// K tenants.
//
// A regional outage makes every affected tenant want to remap at once —
// a migration storm. Letting them all go simultaneously oversubscribes
// the surviving sites (every remap sees the same free slots) and floods
// the links; making RemapInfeasible fatal aborts tenants that would have
// fit five virtual seconds later, after someone else's copy committed.
// The scheduler turns the storm into a drain:
//
//   * tenants queue RemapRequests; at most `max_concurrent` migrations
//     are in flight at a time;
//   * a grant carves the tenant a *conservative capacity view*: the
//     shared capacities minus every other tenant's committed residents
//     minus every in-flight tenant's peak (residents + reservations)
//     ledger — so concurrently running executors can never collectively
//     oversubscribe a site, by construction;
//   * RemapInfeasible is a queue-and-retry signal: the request re-enters
//     the queue with exponential virtual-time backoff
//     (core::RemapRetryPolicy) and gives up only after max_attempts —
//     the storm drains instead of aborting;
//   * the grant order is a documented *total* order per policy, so
//     identical seeds + policy produce byte-identical journals:
//       - kFifo:      (request_time, tenant id)
//       - kSeverity:  (higher severity first, then tenant id)
//       - kFairShare: (more tokens remaining first, then higher
//                      severity, then tenant id); a grant costs one
//                      token per process the tenant maps, budgets refill
//                      at token_refill_per_second, and a tenant that
//                      cannot afford its grant waits until refill makes
//                      it affordable.

#include <vector>

#include "common/types.h"
#include "core/remap.h"
#include "fault/chaos.h"
#include "migrate/executor.h"
#include "tenancy/substrate.h"

namespace geomap::obs {
class Collector;
}

namespace geomap::recover {
class Wal;
}

namespace geomap::tenancy {

enum class SchedulerPolicy {
  kFifo,
  kSeverity,
  kFairShare,
};

const char* to_string(SchedulerPolicy policy);

struct SchedulerOptions {
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  /// Migrations in flight at once. 1 fully serializes the storm.
  int max_concurrent = 2;
  /// Backoff/give-up schedule for infeasible grants (the queue-and-retry
  /// path). max_attempts counts grant attempts per request.
  core::RemapRetryPolicy retry;
  /// Fair-share token budget each tenant starts with and the refill
  /// rate. A grant costs one token per process the tenant maps.
  double fair_share_tokens = 16.0;
  double token_refill_per_second = 0.5;
  /// Remap knobs (mapper, bytes priced per process).
  core::RemapOptions remap;
  /// Executor knobs for the granted migrations. The scheduler overrides
  /// collector and timeline_label_prefix per tenant ("t<k>:") when
  /// `collector` below is set, and always records events.
  migrate::MigrationOptions migrate;
  /// Observability (opt-in, not owned): tenant.* series (queue_wait,
  /// attempts) plus tenant-labeled executor lanes on one shared timeline.
  obs::Collector* collector = nullptr;

  /// Crash consistency (opt-in, not owned): with a WAL attached the
  /// scheduler appends sched_request records for the queue, a
  /// sched_grant record (decision inputs: at-grant mapping, remap
  /// target, capacity view) durable *before* each granted migration
  /// executes, a sched_finish record after it, and sched_requeue /
  /// sched_give_up records on the retry path — each synced before the
  /// scheduler proceeds. The executor inherits the handle for its mig_*
  /// journal. nullptr keeps the exact unlogged path bit-identical.
  recover::Wal* wal = nullptr;

  void validate() const;
};

/// One tenant asking to leave the dead region.
struct RemapRequest {
  int tenant = -1;
  Seconds request_time = 0;
  /// Caller-defined urgency (the soak uses the fraction of the tenant's
  /// processes homed on the dead site). Only the relative order matters.
  double severity = 0;
};

struct TenantRecovery {
  int tenant = -1;
  Seconds request_time = 0;
  double severity = 0;
  /// Grant attempts consumed (> 1 means RemapInfeasible requeues).
  int attempts = 0;
  bool granted = false;
  /// Every attempt came back infeasible — the tenant stays put, homed on
  /// the dead site (a cross-tenant invariant violation the soak surfaces
  /// honestly rather than hiding).
  bool gave_up = false;
  Seconds granted_at = -1;
  /// Migration activity end (granted_at when nothing moved).
  Seconds finish_time = -1;
  migrate::MigrationReport report;
};

struct StormReport {
  /// Indexed by request order (not tenant id).
  std::vector<TenantRecovery> recoveries;
  /// Tenant ids in grant order — the object of the determinism tests.
  std::vector<int> grant_order;
  /// Last migration finish minus earliest request: how long the storm
  /// took to drain.
  Seconds storm_drain_seconds = 0;
  /// RemapInfeasible requeues across all requests.
  int requeues = 0;
  int gave_up = 0;
};

// -- Crash recovery: resuming a half-drained storm --------------------------

/// Recovered queue state of one original request (same order as the
/// `requests` argument).
struct ResumePending {
  int tenant = -1;
  /// Grant attempts already consumed (redo does not re-increment).
  int attempts = 0;
  /// Pending backoff timer: the request becomes grantable again at this
  /// instant — a timer pending at the crash fires exactly once after
  /// recovery, never twice.
  Seconds next_eligible = 0;
  bool done = false;
  bool gave_up = false;
};

/// A grant whose sched_finish record is durable: replayed into the
/// storm's bookkeeping (grant order, in-flight ledger, fair-share
/// spend) without re-executing the migration.
struct ResumeFinished {
  int tenant = -1;
  Seconds granted_at = 0;
  int attempts = 0;
  /// Mapping the grant started from (the sched_grant record's
  /// `current`) — seeds the in-flight peak ledger.
  Mapping at_grant;
  /// Journal + outcome rebuilt from the durable mig_*/sched_finish
  /// records (recover::rebuild_migration_report).
  migrate::MigrationReport report;
};

/// A grant that was durable (sched_grant written) but unfinished at the
/// crash: the storm redoes it first, deterministically, from the
/// recorded decision inputs — same grant time, same attempt count, no
/// new sched_grant record.
struct ResumeInterrupted {
  bool active = false;
  int tenant = -1;
  Seconds granted_at = 0;
  int attempts = 0;
  Mapping at_grant;
  Mapping target;
  /// The conservative capacity view the original grant carved.
  std::vector<int> view_capacities;
};

struct StormResume {
  /// One entry per original request, in request order.
  std::vector<ResumePending> pending;
  /// Finished grants in WAL (= grant) order.
  std::vector<ResumeFinished> finished;
  ResumeInterrupted interrupted;
  /// Requeues / give-ups already counted before the crash.
  int requeues = 0;
  int gave_up = 0;
  /// Latest scheduler activity before the crash (grants, finishes,
  /// requeues) — keeps storm_drain_seconds equal to the uninterrupted
  /// run's.
  Seconds last_activity = 0;
};

/// Drain a remap storm: grant requests per the policy, execute each
/// granted migration under `plan` with a conservative capacity view, and
/// commit the resulting mappings back into `substrate`. Deterministic:
/// identical (substrate, plan, requests, options) produce byte-identical
/// reports and journals. Requests must name distinct valid tenants.
///
/// With `resume` non-null the storm continues a crashed predecessor:
/// finished grants are replayed into the ledgers (their migrations are
/// NOT re-executed and no queue events are re-emitted — recovery
/// re-emits them from the WAL), an interrupted grant is redone
/// idempotently, and the remaining queue drains normally. The resumed
/// report is equal to the uninterrupted run's wherever the WAL recorded
/// the outcome (grant order, attempts, finish times, final mappings).
StormReport run_remap_storm(Substrate& substrate, const fault::FaultPlan& plan,
                            SiteId failed_site,
                            const std::vector<RemapRequest>& requests,
                            const SchedulerOptions& options,
                            const StormResume* resume = nullptr);

}  // namespace geomap::tenancy
