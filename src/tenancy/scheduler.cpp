#include "tenancy/scheduler.h"

#include <algorithm>
#include <limits>
#include <set>
#include <string>

#include "common/error.h"
#include "obs/collector.h"

namespace geomap::tenancy {

const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo:
      return "fifo";
    case SchedulerPolicy::kSeverity:
      return "severity";
    case SchedulerPolicy::kFairShare:
      return "fair_share";
  }
  return "?";
}

void SchedulerOptions::validate() const {
  GEOMAP_CHECK_ARG(max_concurrent >= 1,
                   "max_concurrent must be >= 1, got " << max_concurrent);
  retry.validate();
  if (policy == SchedulerPolicy::kFairShare) {
    GEOMAP_CHECK_ARG(fair_share_tokens >= 0,
                     "fair_share_tokens must be >= 0, got "
                         << fair_share_tokens);
    GEOMAP_CHECK_ARG(token_refill_per_second > 0,
                     "fair-share needs token_refill_per_second > 0 (a tenant "
                     "costing more than the initial budget must eventually "
                     "afford its grant), got "
                         << token_refill_per_second);
  }
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<int> residents_of(const Mapping& mapping, int num_sites) {
  std::vector<int> r(static_cast<std::size_t>(num_sites), 0);
  for (const SiteId s : mapping) r[static_cast<std::size_t>(s)] += 1;
  return r;
}

/// Per-site peak of residents + reservations over a migration journal,
/// starting from the at-grant mapping. This is the capacity charge other
/// tenants must see while the migration is in flight: the executor never
/// exceeds it, so summed charges never exceed the granted views.
std::vector<int> journal_peaks(const std::vector<fault::MigrationEvent>& events,
                               const Mapping& at_grant, int num_sites) {
  std::vector<int> occ = residents_of(at_grant, num_sites);
  std::vector<int> peak = occ;
  Mapping home = at_grant;
  std::vector<SiteId> rsv(home.size(), -1);
  const auto bump = [&](SiteId s) {
    const std::size_t i = static_cast<std::size_t>(s);
    peak[i] = std::max(peak[i], occ[i]);
  };
  for (const fault::MigrationEvent& e : events) {
    if (e.kind == fault::MigrationEventKind::kReplan || e.process < 0 ||
        e.process >= static_cast<ProcessId>(home.size())) {
      continue;
    }
    const std::size_t p = static_cast<std::size_t>(e.process);
    switch (e.kind) {
      case fault::MigrationEventKind::kReserve:
        occ[static_cast<std::size_t>(e.site_to)] += 1;
        rsv[p] = e.site_to;
        bump(e.site_to);
        break;
      case fault::MigrationEventKind::kRelease:
        occ[static_cast<std::size_t>(e.site_to)] -= 1;
        rsv[p] = -1;
        break;
      case fault::MigrationEventKind::kCommit: {
        const SiteId cur = home[p];
        occ[static_cast<std::size_t>(cur)] -= 1;
        if (rsv[p] == e.site_to) rsv[p] = -1;
        // Reservation slot becomes the resident slot: net zero on site_to.
        home[p] = e.site_to;
        break;
      }
      default:
        break;
    }
  }
  return peak;
}

struct PendingRequest {
  RemapRequest request;
  int attempts = 0;
  Seconds next_eligible = 0;
  std::size_t slot = 0;  // index into StormReport::recoveries
  bool done = false;
};

struct InFlight {
  int tenant = -1;
  Seconds finish = 0;
  std::vector<int> peak;   // capacity charge while in flight
  Mapping final_mapping;   // committed into the substrate at retirement
};

}  // namespace

StormReport run_remap_storm(Substrate& substrate, const fault::FaultPlan& plan,
                            SiteId failed_site,
                            const std::vector<RemapRequest>& requests,
                            const SchedulerOptions& options) {
  options.validate();
  const int m = substrate.num_sites();
  GEOMAP_CHECK_ARG(failed_site >= 0 && failed_site < m,
                   "failed site " << failed_site << " out of range");

  StormReport report;
  std::vector<PendingRequest> pending;
  std::set<int> seen;
  Seconds t0 = kInf;
  for (const RemapRequest& r : requests) {
    GEOMAP_CHECK_ARG(r.tenant >= 0 && r.tenant < substrate.num_tenants(),
                     "request names invalid tenant " << r.tenant);
    GEOMAP_CHECK_ARG(seen.insert(r.tenant).second,
                     "tenant " << r.tenant << " requested twice");
    PendingRequest p;
    p.request = r;
    p.next_eligible = r.request_time;
    p.slot = report.recoveries.size();
    pending.push_back(p);
    TenantRecovery rec;
    rec.tenant = r.tenant;
    rec.request_time = r.request_time;
    rec.severity = r.severity;
    report.recoveries.push_back(std::move(rec));
    t0 = std::min(t0, r.request_time);
  }
  if (pending.empty()) return report;

  obs::TimeSeriesRegistry* timeline =
      options.collector != nullptr ? &options.collector->timeline() : nullptr;
  obs::EventLog* elog =
      options.collector != nullptr ? &options.collector->events() : nullptr;
  if (elog != nullptr) {
    for (const PendingRequest& p : pending) {
      elog->emit(p.request.request_time, obs::EventSeverity::kInfo, "scheduler",
                 "queue",
                 {obs::field("tenant", p.request.tenant),
                  obs::field("severity", p.request.severity)});
    }
  }

  std::vector<double> consumed(
      static_cast<std::size_t>(substrate.num_tenants()), 0.0);
  const auto tokens_at = [&](int tenant, Seconds t) {
    return options.fair_share_tokens +
           options.token_refill_per_second * (t - t0) -
           consumed[static_cast<std::size_t>(tenant)];
  };
  const auto grant_cost = [&](int tenant) {
    return static_cast<double>(
        substrate.tenants[static_cast<std::size_t>(tenant)]
            .problem.num_processes());
  };
  // Earliest instant the request is allowed to be granted: its backoff
  // eligibility, and under fair-share additionally when the refill makes
  // its grant affordable.
  const auto eligible_at = [&](const PendingRequest& p) {
    Seconds t = p.next_eligible;
    if (options.policy == SchedulerPolicy::kFairShare) {
      const double cost = grant_cost(p.request.tenant);
      const double deficit = cost - tokens_at(p.request.tenant, t);
      if (deficit > 0) t += deficit / options.token_refill_per_second;
    }
    return t;
  };

  std::vector<InFlight> inflight;
  Seconds now = t0;
  Seconds last_activity = t0;

  const auto retire_until = [&](Seconds t) {
    // Retire in finish order (ties by tenant id) so the committed-mapping
    // updates land deterministically.
    for (;;) {
      int best = -1;
      for (int i = 0; i < static_cast<int>(inflight.size()); ++i) {
        if (inflight[static_cast<std::size_t>(i)].finish > t) continue;
        if (best == -1 ||
            inflight[static_cast<std::size_t>(i)].finish <
                inflight[static_cast<std::size_t>(best)].finish ||
            (inflight[static_cast<std::size_t>(i)].finish ==
                 inflight[static_cast<std::size_t>(best)].finish &&
             inflight[static_cast<std::size_t>(i)].tenant <
                 inflight[static_cast<std::size_t>(best)].tenant)) {
          best = i;
        }
      }
      if (best == -1) return;
      const InFlight f = inflight[static_cast<std::size_t>(best)];
      inflight.erase(inflight.begin() + best);
      substrate.tenants[static_cast<std::size_t>(f.tenant)].mapping =
          f.final_mapping;
    }
  };

  while (true) {
    bool any_pending = false;
    Seconds t_grant = kInf;
    for (const PendingRequest& p : pending) {
      if (p.done) continue;
      any_pending = true;
      t_grant = std::min(t_grant, eligible_at(p));
    }
    if (!any_pending && inflight.empty()) break;

    Seconds t_finish = kInf;
    for (const InFlight& f : inflight) t_finish = std::min(t_finish, f.finish);

    const bool slot_free =
        static_cast<int>(inflight.size()) < options.max_concurrent;
    Seconds t = (any_pending && slot_free) ? std::min(t_grant, t_finish)
                                           : t_finish;
    if (t == kInf) t = t_grant;  // nothing in flight, pending only
    now = std::max(now, t);
    retire_until(now);
    if (!any_pending) continue;
    if (static_cast<int>(inflight.size()) >= options.max_concurrent) continue;

    // Pick among requests eligible now by the policy's total order.
    int pick = -1;
    const auto better = [&](const PendingRequest& a, const PendingRequest& b) {
      switch (options.policy) {
        case SchedulerPolicy::kFifo:
          if (a.request.request_time != b.request.request_time)
            return a.request.request_time < b.request.request_time;
          break;
        case SchedulerPolicy::kSeverity:
          if (a.request.severity != b.request.severity)
            return a.request.severity > b.request.severity;
          break;
        case SchedulerPolicy::kFairShare: {
          const double ta = tokens_at(a.request.tenant, now);
          const double tb = tokens_at(b.request.tenant, now);
          if (ta != tb) return ta > tb;
          if (a.request.severity != b.request.severity)
            return a.request.severity > b.request.severity;
          break;
        }
      }
      return a.request.tenant < b.request.tenant;
    };
    for (int i = 0; i < static_cast<int>(pending.size()); ++i) {
      PendingRequest& p = pending[static_cast<std::size_t>(i)];
      if (p.done || eligible_at(p) > now) continue;
      if (pick == -1 || better(p, pending[static_cast<std::size_t>(pick)]))
        pick = i;
    }
    if (pick == -1) continue;  // eligible instant is later; loop advances

    PendingRequest& p = pending[static_cast<std::size_t>(pick)];
    const int k = p.request.tenant;
    Tenant& tenant = substrate.tenants[static_cast<std::size_t>(k)];
    TenantRecovery& rec = report.recoveries[p.slot];
    p.attempts += 1;
    rec.attempts = p.attempts;
    last_activity = std::max(last_activity, now);

    // Conservative capacity view: shared capacity minus every other
    // tenant's committed residents, minus every in-flight tenant's peak
    // charge. The tenant's own residents stay included (the remap core
    // validates its current mapping against the view).
    mapping::MappingProblem view = tenant.problem;
    view.capacities = substrate.site_capacities;
    for (int j = 0; j < substrate.num_tenants(); ++j) {
      if (j == k) continue;
      bool in_flight = false;
      for (const InFlight& f : inflight) {
        if (f.tenant == j) {
          in_flight = true;
          for (std::size_t s = 0; s < view.capacities.size(); ++s)
            view.capacities[s] -= f.peak[s];
          break;
        }
      }
      if (in_flight) continue;
      for (const SiteId s :
           substrate.tenants[static_cast<std::size_t>(j)].mapping) {
        view.capacities[static_cast<std::size_t>(s)] -= 1;
      }
    }

    try {
      const core::RemapResult remap = core::remap_on_outage(
          view, tenant.mapping, plan, failed_site, now, options.remap);

      migrate::MigrationOptions mopts = options.migrate;
      mopts.record_events = true;
      mopts.collector = options.collector;
      if (options.collector != nullptr)
        mopts.timeline_label_prefix = "t" + std::to_string(k) + ":";
      // The executor gets the *view* (failed site's capacity intact —
      // residents legitimately still live there while leaving), not the
      // remap's rebuilt problem, which zeroes it.
      rec.report = execute_migration(view, tenant.mapping, remap.mapping,
                                     plan, now, mopts);
      rec.granted = true;
      rec.granted_at = now;
      rec.finish_time = now + rec.report.migration_seconds;
      p.done = true;
      report.grant_order.push_back(k);
      last_activity = std::max(last_activity, rec.finish_time);
      if (options.policy == SchedulerPolicy::kFairShare)
        consumed[static_cast<std::size_t>(k)] += grant_cost(k);

      InFlight f;
      f.tenant = k;
      f.finish = rec.finish_time;
      f.peak = journal_peaks(rec.report.events, tenant.mapping, m);
      f.final_mapping = rec.report.final_mapping;
      inflight.push_back(std::move(f));

      if (timeline != nullptr) {
        const std::string label = "t" + std::to_string(k);
        timeline->series("tenant.queue_wait", label)
            .record(now, now - p.request.request_time);
        timeline->series("tenant.grant_attempts", label)
            .record(now, static_cast<double>(p.attempts));
      }
      if (elog != nullptr) {
        elog->emit(now, obs::EventSeverity::kInfo, "scheduler", "grant",
                   {obs::field("tenant", k),
                    obs::field("queue_wait", now - p.request.request_time),
                    obs::field("attempts", p.attempts),
                    obs::field("migration_seconds",
                               rec.report.migration_seconds)});
      }
    } catch (const core::RemapInfeasible&) {
      if (p.attempts >= options.retry.max_attempts) {
        p.done = true;
        rec.gave_up = true;
        report.gave_up += 1;
        if (options.collector != nullptr)
          options.collector->metrics().counter("tenant.gave_up").add();
        if (elog != nullptr) {
          elog->emit(now, obs::EventSeverity::kError, "scheduler", "give_up",
                     {obs::field("tenant", k),
                      obs::field("attempts", p.attempts)});
        }
      } else {
        p.next_eligible = now + options.retry.backoff(p.attempts);
        report.requeues += 1;
        if (options.collector != nullptr)
          options.collector->metrics().counter("tenant.requeues").add();
        if (elog != nullptr) {
          elog->emit(now, obs::EventSeverity::kWarn, "scheduler", "requeue",
                     {obs::field("tenant", k),
                      obs::field("attempts", p.attempts),
                      obs::field("next_eligible", p.next_eligible)});
        }
      }
    }
  }

  report.storm_drain_seconds = last_activity - t0;
  return report;
}

}  // namespace geomap::tenancy
