#include "tenancy/scheduler.h"

#include <algorithm>
#include <limits>
#include <set>
#include <string>

#include "common/error.h"
#include "obs/collector.h"
#include "recover/records.h"
#include "recover/wal.h"

namespace geomap::tenancy {

const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo:
      return "fifo";
    case SchedulerPolicy::kSeverity:
      return "severity";
    case SchedulerPolicy::kFairShare:
      return "fair_share";
  }
  return "?";
}

void SchedulerOptions::validate() const {
  GEOMAP_CHECK_ARG(max_concurrent >= 1,
                   "max_concurrent must be >= 1, got " << max_concurrent);
  retry.validate();
  if (policy == SchedulerPolicy::kFairShare) {
    GEOMAP_CHECK_ARG(fair_share_tokens >= 0,
                     "fair_share_tokens must be >= 0, got "
                         << fair_share_tokens);
    GEOMAP_CHECK_ARG(token_refill_per_second > 0,
                     "fair-share needs token_refill_per_second > 0 (a tenant "
                     "costing more than the initial budget must eventually "
                     "afford its grant), got "
                         << token_refill_per_second);
  }
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<int> residents_of(const Mapping& mapping, int num_sites) {
  std::vector<int> r(static_cast<std::size_t>(num_sites), 0);
  for (const SiteId s : mapping) r[static_cast<std::size_t>(s)] += 1;
  return r;
}

/// Per-site peak of residents + reservations over a migration journal,
/// starting from the at-grant mapping. This is the capacity charge other
/// tenants must see while the migration is in flight: the executor never
/// exceeds it, so summed charges never exceed the granted views.
std::vector<int> journal_peaks(const std::vector<fault::MigrationEvent>& events,
                               const Mapping& at_grant, int num_sites) {
  std::vector<int> occ = residents_of(at_grant, num_sites);
  std::vector<int> peak = occ;
  Mapping home = at_grant;
  std::vector<SiteId> rsv(home.size(), -1);
  const auto bump = [&](SiteId s) {
    const std::size_t i = static_cast<std::size_t>(s);
    peak[i] = std::max(peak[i], occ[i]);
  };
  for (const fault::MigrationEvent& e : events) {
    if (e.kind == fault::MigrationEventKind::kReplan || e.process < 0 ||
        e.process >= static_cast<ProcessId>(home.size())) {
      continue;
    }
    const std::size_t p = static_cast<std::size_t>(e.process);
    switch (e.kind) {
      case fault::MigrationEventKind::kReserve:
        occ[static_cast<std::size_t>(e.site_to)] += 1;
        rsv[p] = e.site_to;
        bump(e.site_to);
        break;
      case fault::MigrationEventKind::kRelease:
        occ[static_cast<std::size_t>(e.site_to)] -= 1;
        rsv[p] = -1;
        break;
      case fault::MigrationEventKind::kCommit: {
        const SiteId cur = home[p];
        occ[static_cast<std::size_t>(cur)] -= 1;
        if (rsv[p] == e.site_to) rsv[p] = -1;
        // Reservation slot becomes the resident slot: net zero on site_to.
        home[p] = e.site_to;
        break;
      }
      default:
        break;
    }
  }
  return peak;
}

struct PendingRequest {
  RemapRequest request;
  int attempts = 0;
  Seconds next_eligible = 0;
  std::size_t slot = 0;  // index into StormReport::recoveries
  bool done = false;
};

struct InFlight {
  int tenant = -1;
  Seconds finish = 0;
  std::vector<int> peak;   // capacity charge while in flight
  Mapping final_mapping;   // committed into the substrate at retirement
};

}  // namespace

StormReport run_remap_storm(Substrate& substrate, const fault::FaultPlan& plan,
                            SiteId failed_site,
                            const std::vector<RemapRequest>& requests,
                            const SchedulerOptions& options,
                            const StormResume* resume) {
  options.validate();
  const int m = substrate.num_sites();
  GEOMAP_CHECK_ARG(failed_site >= 0 && failed_site < m,
                   "failed site " << failed_site << " out of range");

  StormReport report;
  std::vector<PendingRequest> pending;
  std::set<int> seen;
  Seconds t0 = kInf;
  for (const RemapRequest& r : requests) {
    GEOMAP_CHECK_ARG(r.tenant >= 0 && r.tenant < substrate.num_tenants(),
                     "request names invalid tenant " << r.tenant);
    GEOMAP_CHECK_ARG(seen.insert(r.tenant).second,
                     "tenant " << r.tenant << " requested twice");
    PendingRequest p;
    p.request = r;
    p.next_eligible = r.request_time;
    p.slot = report.recoveries.size();
    pending.push_back(p);
    TenantRecovery rec;
    rec.tenant = r.tenant;
    rec.request_time = r.request_time;
    rec.severity = r.severity;
    report.recoveries.push_back(std::move(rec));
    t0 = std::min(t0, r.request_time);
  }
  if (pending.empty()) return report;

  obs::TimeSeriesRegistry* timeline =
      options.collector != nullptr ? &options.collector->timeline() : nullptr;
  obs::EventLog* elog =
      options.collector != nullptr ? &options.collector->events() : nullptr;
  if (options.wal != nullptr && resume == nullptr) {
    for (const PendingRequest& p : pending) {
      recover::SchedRequestRecord r;
      r.tenant = p.request.tenant;
      r.request_time = p.request.request_time;
      r.severity = p.request.severity;
      options.wal->append(recover::WalRecordType::kSchedRequest,
                          r.request_time, recover::encode_sched_request(r));
    }
    options.wal->sync();
  }
  // A resumed storm emits no queue events: recovery re-emits them from
  // the durable sched_request records, in the original order.
  if (elog != nullptr && resume == nullptr) {
    for (const PendingRequest& p : pending) {
      elog->emit(p.request.request_time, obs::EventSeverity::kInfo, "scheduler",
                 "queue",
                 {obs::field("tenant", p.request.tenant),
                  obs::field("severity", p.request.severity)});
    }
  }

  if (resume != nullptr) {
    GEOMAP_CHECK_ARG(resume->pending.size() == pending.size(),
                     "storm resume has " << resume->pending.size()
                                         << " queue entries for "
                                         << pending.size() << " requests");
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const ResumePending& rp = resume->pending[i];
      PendingRequest& p = pending[i];
      GEOMAP_CHECK_ARG(rp.tenant == p.request.tenant,
                       "storm resume queue entry " << i << " names tenant "
                                                   << rp.tenant << ", expected "
                                                   << p.request.tenant);
      p.attempts = rp.attempts;
      p.next_eligible = std::max(p.next_eligible, rp.next_eligible);
      p.done = rp.done;
      TenantRecovery& rec = report.recoveries[p.slot];
      rec.attempts = rp.attempts;
      if (rp.gave_up) rec.gave_up = true;
    }
    report.requeues = resume->requeues;
    report.gave_up = resume->gave_up;
    if (options.collector != nullptr) {
      for (int i = 0; i < resume->requeues; ++i)
        options.collector->metrics().counter("tenant.requeues").add();
      for (int i = 0; i < resume->gave_up; ++i)
        options.collector->metrics().counter("tenant.gave_up").add();
    }
  }

  std::vector<double> consumed(
      static_cast<std::size_t>(substrate.num_tenants()), 0.0);
  const auto tokens_at = [&](int tenant, Seconds t) {
    return options.fair_share_tokens +
           options.token_refill_per_second * (t - t0) -
           consumed[static_cast<std::size_t>(tenant)];
  };
  const auto grant_cost = [&](int tenant) {
    return static_cast<double>(
        substrate.tenants[static_cast<std::size_t>(tenant)]
            .problem.num_processes());
  };
  // Earliest instant the request is allowed to be granted: its backoff
  // eligibility, and under fair-share additionally when the refill makes
  // its grant affordable.
  const auto eligible_at = [&](const PendingRequest& p) {
    Seconds t = p.next_eligible;
    if (options.policy == SchedulerPolicy::kFairShare) {
      const double cost = grant_cost(p.request.tenant);
      const double deficit = cost - tokens_at(p.request.tenant, t);
      if (deficit > 0) t += deficit / options.token_refill_per_second;
    }
    return t;
  };

  std::vector<InFlight> inflight;
  Seconds now = t0;
  Seconds last_activity = t0;

  const auto retire_until = [&](Seconds t) {
    // Retire in finish order (ties by tenant id) so the committed-mapping
    // updates land deterministically.
    for (;;) {
      int best = -1;
      for (int i = 0; i < static_cast<int>(inflight.size()); ++i) {
        if (inflight[static_cast<std::size_t>(i)].finish > t) continue;
        if (best == -1 ||
            inflight[static_cast<std::size_t>(i)].finish <
                inflight[static_cast<std::size_t>(best)].finish ||
            (inflight[static_cast<std::size_t>(i)].finish ==
                 inflight[static_cast<std::size_t>(best)].finish &&
             inflight[static_cast<std::size_t>(i)].tenant <
                 inflight[static_cast<std::size_t>(best)].tenant)) {
          best = i;
        }
      }
      if (best == -1) return;
      const InFlight f = inflight[static_cast<std::size_t>(best)];
      inflight.erase(inflight.begin() + best);
      substrate.tenants[static_cast<std::size_t>(f.tenant)].mapping =
          f.final_mapping;
    }
  };

  const auto pending_of = [&](int tenant) -> PendingRequest& {
    for (PendingRequest& p : pending) {
      if (p.request.tenant == tenant) return p;
    }
    GEOMAP_CHECK_ARG(false, "storm resume names tenant "
                                << tenant << " that filed no request");
    return pending.front();  // unreachable
  };

  if (resume != nullptr) {
    last_activity = std::max(last_activity, resume->last_activity);

    // Replay finished grants into the ledgers — grant order, fair-share
    // spend, and the in-flight capacity charges with their real finish
    // times, so the remaining queue sees exactly the occupancy the
    // uninterrupted run would have at every instant. Their migrations
    // are not re-executed; retire_until commits the recorded final
    // mappings as virtual time passes.
    for (const ResumeFinished& rf : resume->finished) {
      PendingRequest& p = pending_of(rf.tenant);
      GEOMAP_CHECK_ARG(p.done, "storm resume finished grant for tenant "
                                   << rf.tenant
                                   << " whose queue entry is not done");
      p.attempts = rf.attempts;
      TenantRecovery& rec = report.recoveries[p.slot];
      rec.attempts = rf.attempts;
      rec.granted = true;
      rec.granted_at = rf.granted_at;
      rec.report = rf.report;
      rec.finish_time = rf.granted_at + rf.report.migration_seconds;
      report.grant_order.push_back(rf.tenant);
      if (options.policy == SchedulerPolicy::kFairShare)
        consumed[static_cast<std::size_t>(rf.tenant)] += grant_cost(rf.tenant);
      InFlight f;
      f.tenant = rf.tenant;
      f.finish = rec.finish_time;
      f.peak = journal_peaks(rf.report.events, rf.at_grant, m);
      f.final_mapping = rf.report.final_mapping;
      inflight.push_back(std::move(f));
      if (timeline != nullptr) {
        const std::string label = "t" + std::to_string(rf.tenant);
        timeline->series("tenant.queue_wait", label)
            .record(rf.granted_at, rf.granted_at - p.request.request_time);
        timeline->series("tenant.grant_attempts", label)
            .record(rf.granted_at, static_cast<double>(rf.attempts));
      }
    }

    // Redo the interrupted grant idempotently: same grant instant, same
    // attempt count, the recorded capacity view and remap target — the
    // executor is deterministic, so the redone journal extends the
    // durable prefix instead of double-committing. No new sched_grant
    // record is written (the original is durable); the finish record and
    // the streamed grant event land now.
    if (resume->interrupted.active) {
      const ResumeInterrupted& ri = resume->interrupted;
      const int k = ri.tenant;
      PendingRequest& p = pending_of(k);
      GEOMAP_CHECK_ARG(!p.done, "storm resume interrupted grant for tenant "
                                    << k << " whose queue entry is done");
      p.attempts = ri.attempts;
      TenantRecovery& rec = report.recoveries[p.slot];
      rec.attempts = ri.attempts;
      now = std::max(now, ri.granted_at);
      last_activity = std::max(last_activity, ri.granted_at);

      mapping::MappingProblem view =
          substrate.tenants[static_cast<std::size_t>(k)].problem;
      view.capacities = ri.view_capacities;
      migrate::MigrationOptions mopts = options.migrate;
      mopts.record_events = true;
      mopts.collector = options.collector;
      if (options.collector != nullptr)
        mopts.timeline_label_prefix = "t" + std::to_string(k) + ":";
      mopts.wal = options.wal;
      mopts.wal_tenant = k;
      rec.report = execute_migration(view, ri.at_grant, ri.target, plan,
                                     ri.granted_at, mopts);
      rec.granted = true;
      rec.granted_at = ri.granted_at;
      rec.finish_time = ri.granted_at + rec.report.migration_seconds;
      p.done = true;
      report.grant_order.push_back(k);
      last_activity = std::max(last_activity, rec.finish_time);
      if (options.policy == SchedulerPolicy::kFairShare)
        consumed[static_cast<std::size_t>(k)] += grant_cost(k);

      InFlight f;
      f.tenant = k;
      f.finish = rec.finish_time;
      f.peak = journal_peaks(rec.report.events, ri.at_grant, m);
      f.final_mapping = rec.report.final_mapping;
      inflight.push_back(std::move(f));

      if (timeline != nullptr) {
        const std::string label = "t" + std::to_string(k);
        timeline->series("tenant.queue_wait", label)
            .record(ri.granted_at, ri.granted_at - p.request.request_time);
        timeline->series("tenant.grant_attempts", label)
            .record(ri.granted_at, static_cast<double>(ri.attempts));
      }
      if (elog != nullptr) {
        elog->emit(ri.granted_at, obs::EventSeverity::kInfo, "scheduler",
                   "grant",
                   {obs::field("tenant", k),
                    obs::field("queue_wait",
                               ri.granted_at - p.request.request_time),
                    obs::field("attempts", ri.attempts),
                    obs::field("migration_seconds",
                               rec.report.migration_seconds)});
      }
      if (options.wal != nullptr) {
        recover::SchedFinishRecord fin;
        fin.tenant = k;
        fin.granted_at = ri.granted_at;
        fin.finish_time = rec.finish_time;
        fin.migration_seconds = rec.report.migration_seconds;
        fin.queue_wait = ri.granted_at - p.request.request_time;
        fin.attempts = ri.attempts;
        fin.final_mapping = rec.report.final_mapping;
        options.wal->append(recover::WalRecordType::kSchedFinish,
                            rec.finish_time,
                            recover::encode_sched_finish(fin));
        options.wal->sync();
      }
    }
  }

  while (true) {
    bool any_pending = false;
    Seconds t_grant = kInf;
    for (const PendingRequest& p : pending) {
      if (p.done) continue;
      any_pending = true;
      t_grant = std::min(t_grant, eligible_at(p));
    }
    if (!any_pending && inflight.empty()) break;

    Seconds t_finish = kInf;
    for (const InFlight& f : inflight) t_finish = std::min(t_finish, f.finish);

    const bool slot_free =
        static_cast<int>(inflight.size()) < options.max_concurrent;
    Seconds t = (any_pending && slot_free) ? std::min(t_grant, t_finish)
                                           : t_finish;
    if (t == kInf) t = t_grant;  // nothing in flight, pending only
    now = std::max(now, t);
    retire_until(now);
    if (!any_pending) continue;
    if (static_cast<int>(inflight.size()) >= options.max_concurrent) continue;

    // Pick among requests eligible now by the policy's total order.
    int pick = -1;
    const auto better = [&](const PendingRequest& a, const PendingRequest& b) {
      switch (options.policy) {
        case SchedulerPolicy::kFifo:
          if (a.request.request_time != b.request.request_time)
            return a.request.request_time < b.request.request_time;
          break;
        case SchedulerPolicy::kSeverity:
          if (a.request.severity != b.request.severity)
            return a.request.severity > b.request.severity;
          break;
        case SchedulerPolicy::kFairShare: {
          const double ta = tokens_at(a.request.tenant, now);
          const double tb = tokens_at(b.request.tenant, now);
          if (ta != tb) return ta > tb;
          if (a.request.severity != b.request.severity)
            return a.request.severity > b.request.severity;
          break;
        }
      }
      return a.request.tenant < b.request.tenant;
    };
    for (int i = 0; i < static_cast<int>(pending.size()); ++i) {
      PendingRequest& p = pending[static_cast<std::size_t>(i)];
      if (p.done || eligible_at(p) > now) continue;
      if (pick == -1 || better(p, pending[static_cast<std::size_t>(pick)]))
        pick = i;
    }
    if (pick == -1) continue;  // eligible instant is later; loop advances

    PendingRequest& p = pending[static_cast<std::size_t>(pick)];
    const int k = p.request.tenant;
    Tenant& tenant = substrate.tenants[static_cast<std::size_t>(k)];
    TenantRecovery& rec = report.recoveries[p.slot];
    p.attempts += 1;
    rec.attempts = p.attempts;
    last_activity = std::max(last_activity, now);

    // Conservative capacity view: shared capacity minus every other
    // tenant's committed residents, minus every in-flight tenant's peak
    // charge. The tenant's own residents stay included (the remap core
    // validates its current mapping against the view).
    mapping::MappingProblem view = tenant.problem;
    view.capacities = substrate.site_capacities;
    for (int j = 0; j < substrate.num_tenants(); ++j) {
      if (j == k) continue;
      bool in_flight = false;
      for (const InFlight& f : inflight) {
        if (f.tenant == j) {
          in_flight = true;
          for (std::size_t s = 0; s < view.capacities.size(); ++s)
            view.capacities[s] -= f.peak[s];
          break;
        }
      }
      if (in_flight) continue;
      for (const SiteId s :
           substrate.tenants[static_cast<std::size_t>(j)].mapping) {
        view.capacities[static_cast<std::size_t>(s)] -= 1;
      }
    }

    try {
      const core::RemapResult remap = core::remap_on_outage(
          view, tenant.mapping, plan, failed_site, now, options.remap);

      if (options.wal != nullptr) {
        // Write-ahead of the decision: the full redo inputs (at-grant
        // mapping, remap target, capacity view) are durable before the
        // migration touches anything, so recovery can re-execute this
        // grant deterministically from the record alone.
        recover::SchedGrantRecord g;
        g.tenant = k;
        g.granted_at = now;
        g.attempts = p.attempts;
        g.current = tenant.mapping;
        g.target = remap.mapping;
        g.view_capacities.assign(view.capacities.begin(),
                                 view.capacities.end());
        options.wal->append(recover::WalRecordType::kSchedGrant, now,
                            recover::encode_sched_grant(g));
        options.wal->sync();
      }

      migrate::MigrationOptions mopts = options.migrate;
      mopts.record_events = true;
      mopts.collector = options.collector;
      if (options.collector != nullptr)
        mopts.timeline_label_prefix = "t" + std::to_string(k) + ":";
      mopts.wal = options.wal;
      mopts.wal_tenant = k;
      // The executor gets the *view* (failed site's capacity intact —
      // residents legitimately still live there while leaving), not the
      // remap's rebuilt problem, which zeroes it.
      rec.report = execute_migration(view, tenant.mapping, remap.mapping,
                                     plan, now, mopts);
      rec.granted = true;
      rec.granted_at = now;
      rec.finish_time = now + rec.report.migration_seconds;
      p.done = true;
      report.grant_order.push_back(k);
      last_activity = std::max(last_activity, rec.finish_time);
      if (options.policy == SchedulerPolicy::kFairShare)
        consumed[static_cast<std::size_t>(k)] += grant_cost(k);

      InFlight f;
      f.tenant = k;
      f.finish = rec.finish_time;
      f.peak = journal_peaks(rec.report.events, tenant.mapping, m);
      f.final_mapping = rec.report.final_mapping;
      inflight.push_back(std::move(f));

      if (timeline != nullptr) {
        const std::string label = "t" + std::to_string(k);
        timeline->series("tenant.queue_wait", label)
            .record(now, now - p.request.request_time);
        timeline->series("tenant.grant_attempts", label)
            .record(now, static_cast<double>(p.attempts));
      }
      if (elog != nullptr) {
        elog->emit(now, obs::EventSeverity::kInfo, "scheduler", "grant",
                   {obs::field("tenant", k),
                    obs::field("queue_wait", now - p.request.request_time),
                    obs::field("attempts", p.attempts),
                    obs::field("migration_seconds",
                               rec.report.migration_seconds)});
      }
      if (options.wal != nullptr) {
        recover::SchedFinishRecord fin;
        fin.tenant = k;
        fin.granted_at = now;
        fin.finish_time = rec.finish_time;
        fin.migration_seconds = rec.report.migration_seconds;
        fin.queue_wait = now - p.request.request_time;
        fin.attempts = p.attempts;
        fin.final_mapping = rec.report.final_mapping;
        options.wal->append(recover::WalRecordType::kSchedFinish,
                            rec.finish_time,
                            recover::encode_sched_finish(fin));
        options.wal->sync();
      }
    } catch (const core::RemapInfeasible&) {
      if (p.attempts >= options.retry.max_attempts) {
        p.done = true;
        rec.gave_up = true;
        report.gave_up += 1;
        if (options.collector != nullptr)
          options.collector->metrics().counter("tenant.gave_up").add();
        if (elog != nullptr) {
          elog->emit(now, obs::EventSeverity::kError, "scheduler", "give_up",
                     {obs::field("tenant", k),
                      obs::field("attempts", p.attempts)});
        }
        if (options.wal != nullptr) {
          recover::SchedGiveUpRecord gu;
          gu.tenant = k;
          gu.t = now;
          gu.attempts = p.attempts;
          options.wal->append(recover::WalRecordType::kSchedGiveUp, now,
                              recover::encode_sched_give_up(gu));
          options.wal->sync();
        }
      } else {
        p.next_eligible = now + options.retry.backoff(p.attempts);
        report.requeues += 1;
        if (options.collector != nullptr)
          options.collector->metrics().counter("tenant.requeues").add();
        if (elog != nullptr) {
          elog->emit(now, obs::EventSeverity::kWarn, "scheduler", "requeue",
                     {obs::field("tenant", k),
                      obs::field("attempts", p.attempts),
                      obs::field("next_eligible", p.next_eligible)});
        }
        if (options.wal != nullptr) {
          recover::SchedRequeueRecord rq;
          rq.tenant = k;
          rq.t = now;
          rq.attempts = p.attempts;
          rq.next_eligible = p.next_eligible;
          options.wal->append(recover::WalRecordType::kSchedRequeue, now,
                              recover::encode_sched_requeue(rq));
          options.wal->sync();
        }
      }
    }
  }

  report.storm_drain_seconds = last_activity - t0;
  return report;
}

}  // namespace geomap::tenancy
