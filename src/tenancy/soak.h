#pragma once
// Multi-tenant chaos soak: observe → detect → remap-storm → migrate for
// 100+ tenants sharing one substrate, under fire, with every journal
// certified.
//
// One case is one complete story:
//
//   1. make_substrate synthesizes K tenants on a shared cloud and maps
//      them capacity-aware; solo replays anchor the fairness baseline;
//   2. a healthy shared replay (sim::replay_multitenant) calibrates the
//      virtual horizon; a chaos plan (fault/chaos.h) is drawn for it;
//   3. the shared replay reruns under the plan with telemetry on —
//      force-through delivery records the link.timeout points a
//      permanently dead region produces;
//   4. the degradation detector scans the *shared* timeline once;
//      core::vote_suspected_site names the suspect (falling back to the
//      oracle when detection saw nothing or accused the wrong site —
//      recorded honestly, the soak's subject is the scheduler);
//   5. every tenant homed on the dead site files a RemapRequest
//      (severity = fraction of its ranks stranded) and the scheduler
//      drains the storm under the configured policy;
//   6. every granted journal replays through
//      fault::check_migration_invariants, and the merged journals (plus
//      bystander tenants' static placements) through
//      check_cross_tenant_invariants; the post-recovery shared replay
//      yields per-tenant stretch and Jain's index.
//
// Deterministic end to end: every stage is seeded or discrete-event, so
// one (seed, options) pair always produces byte-identical journals —
// which is what makes the scheduler-determinism tests meaningful.

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "fault/chaos.h"
#include "obs/incident.h"
#include "tenancy/scheduler.h"
#include "tenancy/substrate.h"

namespace geomap::tenancy {

struct MultiTenantSoakOptions {
  SubstrateOptions substrate;
  /// Chaos shape; num_sites and horizon are filled in per case. The
  /// primary outage is the storm trigger.
  fault::ChaosOptions chaos;
  SchedulerOptions scheduler;
  /// Rounds each tenant's app body re-issues its communication pattern
  /// in the calibration and observation replays. One pass often drains
  /// before a mid-horizon outage even starts; several rounds keep
  /// traffic flowing past it so the detector gets post-outage timeouts.
  /// The stretch replays stay single-pass (both sides of the ratio).
  int app_rounds = 6;
  /// Migrated state per process — kept small so a 100-tenant storm
  /// drains within a few horizons.
  Bytes bytes_per_process = 2.0 * kMiB;
  Bytes chunk_bytes = 512.0 * 1024;

  /// Opt-in external observability. With a collector attached the case
  /// streams lifecycle events (soak/case_start, soak/detect,
  /// soak/case_done), hooks the detector's onset/clear emissions into
  /// the same event log, and routes the scheduler's telemetry there
  /// (instead of the case-internal registry that is otherwise discarded).
  /// nullptr — the default — keeps the historical, fully self-contained
  /// behavior bit-identical.
  obs::Collector* collector = nullptr;

  void validate() const;
};

struct MultiTenantSoakCase {
  std::uint64_t seed = 0;
  int tenants = 0;
  SiteId primary_site = -1;
  Seconds outage_time = 0;

  /// Detection outcome (honest: the oracle fallback still runs the storm).
  bool detected = false;
  bool suspected_correct = false;
  Seconds detect_time = 0;

  int requests = 0;
  StormReport storm;
  /// Post-recovery stretch vs solo baselines, all tenants.
  FairnessReport fairness;

  /// Journals replayed through a checker (granted tenants + 1 cross-
  /// tenant pass).
  int invariants_checked = 0;
  /// Per-tenant and cross-tenant violations, merged ("tenant k: ..."-
  /// prefixed for the per-tenant ones).
  std::vector<fault::InvariantViolation> violations;

  /// Incident reconstruction over the case's event slice (empty without
  /// a collector) and its truth-scored attribution (cases == 1 when
  /// scored).
  std::vector<obs::Incident> incidents;
  obs::AttributionTotals attribution;
  bool attribution_scored = false;
};

struct MultiTenantSoakReport {
  std::vector<MultiTenantSoakCase> cases;
  int seeds_run = 0;
  int total_violations = 0;
  int total_invariants_checked = 0;
  int total_requeues = 0;
  int total_gave_up = 0;
  int detected_cases = 0;
  /// Attribution totals merged over every scored case (zeros when the
  /// soak ran without a collector).
  obs::AttributionTotals attribution;
};

MultiTenantSoakCase run_multitenant_soak_case(
    std::uint64_t seed, const MultiTenantSoakOptions& options);

MultiTenantSoakReport run_multitenant_soak(
    const std::vector<std::uint64_t>& seeds,
    const MultiTenantSoakOptions& options);

}  // namespace geomap::tenancy
