#pragma once
// Multi-tenant substrate: K independent jobs sharing one geo-distributed
// deployment.
//
// The paper maps one job; a production substrate hosts many. Each tenant
// brings its own communication graph and gets its own mapping, but the
// sites, their capacities, and the inter-site links are shared — one
// tenant's burst queues behind another's on the same serializing links
// (sim::replay_multitenant prices that), and one tenant's migration
// consumes capacity every other tenant's remap must respect.
//
// make_substrate synthesizes a shared deployment and places tenants
// sequentially, capacity-aware: tenant k is mapped by the geo-distributed
// mapper against the slots tenants 0..k-1 left free, so the initial
// placement never oversubscribes a site and is a pure function of
// (seed, options). Solo baselines — each tenant replayed alone on the
// healthy network — anchor the fairness metrics: a tenant's *stretch* is
// its shared-substrate makespan over its solo makespan, and Jain's index
// over per-tenant throughput shares (1/stretch) summarizes how evenly the
// substrate spreads the contention pain.

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mapping/problem.h"

namespace geomap::tenancy {

struct SubstrateOptions {
  int num_sites = 6;
  int num_tenants = 8;
  /// Per-tenant rank counts are drawn uniformly from [min_ranks,
  /// max_ranks] — heterogeneous tenants are what make scheduling
  /// interesting (a big tenant's migration starves small ones under
  /// naive policies).
  int min_ranks = 4;
  int max_ranks = 10;
  /// Capacity slack: total slots are sized so the survivors of one site
  /// death can host every tenant's every rank times (1 + headroom).
  double headroom = 0.35;
  /// Fraction of each tenant's processes pinned by data constraints.
  double constraint_ratio = 0.0;

  void validate() const;
};

/// One tenant on the substrate. `problem` carries the tenant's own comm
/// graph next to the *shared* network/capacities (copied in — remaps
/// overwrite the capacity view per attempt); `mapping` is the committed
/// placement, updated as migrations commit.
struct Tenant {
  int id = -1;
  mapping::MappingProblem problem;
  Mapping mapping;
  /// Fault-free makespan of this tenant alone on the healthy network
  /// (contention replay) — the fairness denominator.
  Seconds solo_makespan = 0;
};

struct Substrate {
  std::vector<int> site_capacities;
  std::vector<Tenant> tenants;

  int num_sites() const { return static_cast<int>(site_capacities.size()); }
  int num_tenants() const { return static_cast<int>(tenants.size()); }

  /// Committed residents per site summed over all tenants.
  std::vector<int> residents() const;
};

/// Synthesize a substrate: shared synthetic cloud, per-tenant random
/// ring+sparse comm graphs, sequential capacity-aware placement, solo
/// baselines. Pure in (seed, options). Throws InvalidArgument when the
/// drawn tenants cannot fit (options undersized the cloud — raise
/// headroom or sites).
Substrate make_substrate(std::uint64_t seed, const SubstrateOptions& options);

// ---------------------------------------------------------------------------
// Fairness metrics

struct FairnessReport {
  /// Per-tenant makespan stretch (shared / solo); index = tenant id.
  std::vector<double> stretch;
  /// Jain's fairness index over per-tenant throughput shares
  /// (1/stretch): 1 = perfectly even, 1/K = one tenant got everything.
  double jain_index = 1.0;
  double mean_stretch = 1.0;
  double p99_stretch = 1.0;
  double max_stretch = 1.0;
};

/// Summarize a stretch vector. Throws InvalidArgument on empty input or
/// non-positive stretches.
FairnessReport fairness_from_stretch(const std::vector<double>& stretch);

}  // namespace geomap::tenancy
