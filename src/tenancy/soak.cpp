#include "tenancy/soak.h"

#include <algorithm>
#include <string>

#include "common/error.h"
#include "core/remap.h"
#include "fault/attribution.h"
#include "fault/degraded_network.h"
#include "fault/fault_plan.h"
#include "obs/collector.h"
#include "obs/detector.h"
#include "sim/netsim.h"

namespace geomap::tenancy {

void MultiTenantSoakOptions::validate() const {
  substrate.validate();
  GEOMAP_CHECK_ARG(bytes_per_process >= 0,
                   "bytes_per_process must be >= 0, got " << bytes_per_process);
  GEOMAP_CHECK_ARG(chunk_bytes > 0,
                   "chunk_bytes must be > 0, got " << chunk_bytes);
  GEOMAP_CHECK_ARG(app_rounds >= 1,
                   "app_rounds must be >= 1, got " << app_rounds);
}

namespace {

std::vector<sim::TenantFlow> flows_of(const Substrate& substrate) {
  std::vector<sim::TenantFlow> flows;
  flows.reserve(substrate.tenants.size());
  for (const Tenant& t : substrate.tenants) {
    flows.push_back({&t.problem.comm, &t.mapping});
  }
  return flows;
}

}  // namespace

MultiTenantSoakCase run_multitenant_soak_case(
    std::uint64_t seed, const MultiTenantSoakOptions& options) {
  options.validate();
  MultiTenantSoakCase result;
  result.seed = seed;
  obs::EventLog* elog =
      options.collector != nullptr ? &options.collector->events() : nullptr;
  const std::uint64_t seq0 = elog != nullptr ? elog->total() : 0;

  // 1. Substrate + solo baselines.
  Substrate substrate = make_substrate(seed, options.substrate);
  result.tenants = substrate.num_tenants();
  if (elog != nullptr) {
    elog->emit(0, obs::EventSeverity::kInfo, "soak", "case_start",
               {obs::field("seed", seed),
                obs::field("tenants", result.tenants)});
  }
  const net::NetworkModel& network = substrate.tenants.front().problem.network;

  // 2. Healthy shared replay calibrates the horizon.
  const fault::FaultPlan no_faults;
  const fault::DegradedNetworkModel healthy(network, no_faults);
  sim::MultiTenantReplayOptions calibrate;
  calibrate.rounds = options.app_rounds;
  const Seconds healthy_makespan =
      sim::replay_multitenant(flows_of(substrate), healthy, calibrate)
          .makespan;

  fault::ChaosOptions chaos = options.chaos;
  chaos.num_sites = substrate.num_sites();
  chaos.horizon = healthy_makespan;
  if (chaos.migration_window_length <= 0) {
    chaos.migration_window_length = 1.5 * healthy_makespan;
    if (chaos.migration_window_faults == 0) chaos.migration_window_faults = 2;
  }
  const fault::ChaosPlan chaos_plan = fault::make_chaos_plan(seed, chaos);
  result.primary_site = chaos_plan.primary_site;
  result.outage_time = chaos_plan.primary_outage_time;
  const fault::DegradedNetworkModel degraded(network, chaos_plan.plan);

  // 3. Observation run under fire, telemetry on. Force-through keeps the
  //    replay terminating with the primary permanently dead and records
  //    the link.timeout signals the detector keys on.
  obs::Collector telemetry;
  sim::MultiTenantReplayOptions observe;
  observe.rounds = options.app_rounds;
  observe.collector = &telemetry;
  sim::replay_multitenant(flows_of(substrate), degraded, observe);

  // 4. Detect once on the shared timeline; every affected tenant reuses
  //    the same suspect. Fall back to the oracle when detection saw
  //    nothing or accused the wrong site — the storm must run either way.
  obs::DegradationDetector detector;
  detector.set_event_log(elog);
  detector.scan(telemetry.timeline());
  const core::SuspectVote vote = core::vote_suspected_site(detector.events());
  result.detected = vote.site != -1;
  result.suspected_correct = vote.site == chaos_plan.primary_site;
  const bool usable = result.detected && result.suspected_correct;
  result.detect_time =
      usable ? vote.detection_time : chaos_plan.primary_outage_time;
  const SiteId failed = chaos_plan.primary_site;
  if (elog != nullptr) {
    elog->emit(result.detect_time,
               result.suspected_correct ? obs::EventSeverity::kInfo
                                        : obs::EventSeverity::kWarn,
               "soak", "detect",
               {obs::field("detected", result.detected),
                obs::field("suspected_correct", result.suspected_correct),
                obs::field("suspect", vote.site),
                obs::field("failed_site", failed),
                obs::field("outage_time", chaos_plan.primary_outage_time)});
  }

  // 5. Every tenant homed on the dead site queues a remap request.
  std::vector<RemapRequest> requests;
  for (const Tenant& t : substrate.tenants) {
    int stranded = 0;
    for (const SiteId s : t.mapping) {
      if (s == failed) stranded += 1;
    }
    if (stranded == 0) continue;
    RemapRequest r;
    r.tenant = t.id;
    r.request_time = result.detect_time;
    r.severity = static_cast<double>(stranded) /
                 static_cast<double>(t.mapping.size());
    requests.push_back(r);
  }
  result.requests = static_cast<int>(requests.size());

  SchedulerOptions sched = options.scheduler;
  sched.migrate.bytes_per_process = options.bytes_per_process;
  sched.migrate.chunk_bytes = options.chunk_bytes;
  sched.remap.bytes_per_process = options.bytes_per_process;
  if (sched.collector == nullptr) {
    sched.collector =
        options.collector != nullptr ? options.collector : &telemetry;
  }

  // At-grant placements feed the checkers: one storm, so every tenant's
  // journal starts from its substrate placement.
  std::vector<Mapping> initial;
  initial.reserve(substrate.tenants.size());
  for (const Tenant& t : substrate.tenants) initial.push_back(t.mapping);

  result.storm =
      run_remap_storm(substrate, chaos_plan.plan, failed, requests, sched);

  // 6. Certify every granted journal, then the merged cross-tenant view.
  fault::MigrationInvariantOptions inv;
  inv.planned_bytes_per_process = options.bytes_per_process;
  inv.chunk_bytes = options.chunk_bytes;
  inv.max_retries = sched.migrate.retry.max_retries;
  inv.max_copy_attempts = sched.migrate.max_copy_attempts +
                          sched.migrate.max_replans +
                          sched.migrate.max_emergency_attempts;

  std::vector<fault::TenantJournal> journals(
      static_cast<std::size_t>(substrate.num_tenants()));
  for (int k = 0; k < substrate.num_tenants(); ++k) {
    journals[static_cast<std::size_t>(k)].initial_mapping =
        initial[static_cast<std::size_t>(k)];
    journals[static_cast<std::size_t>(k)].options = inv;
  }
  for (const TenantRecovery& rec : result.storm.recoveries) {
    if (!rec.granted) continue;
    journals[static_cast<std::size_t>(rec.tenant)].events = rec.report.events;
    fault::MigrationInvariantOptions tenant_inv = inv;
    tenant_inv.horizon = rec.report.finish_time;
    const std::vector<fault::InvariantViolation> v =
        fault::check_migration_invariants(
            rec.report.events, initial[static_cast<std::size_t>(rec.tenant)],
            substrate.site_capacities, chaos_plan.plan, tenant_inv);
    result.invariants_checked += 1;
    for (const fault::InvariantViolation& viol : v) {
      result.violations.push_back(
          {viol.t, "tenant " + std::to_string(rec.tenant) + ": " +
                       viol.message});
    }
  }
  const std::vector<fault::InvariantViolation> cross =
      fault::check_cross_tenant_invariants(journals, substrate.site_capacities,
                                           chaos_plan.plan);
  result.invariants_checked += 1;
  for (const fault::InvariantViolation& viol : cross) {
    result.violations.push_back({viol.t, "cross-tenant: " + viol.message});
  }

  // Post-recovery stretch: the shared fault-aware replay of the final
  // mappings from the storm's end, against each tenant's solo baseline.
  Seconds recovery_end = result.detect_time;
  for (const TenantRecovery& rec : result.storm.recoveries) {
    if (rec.granted) recovery_end = std::max(recovery_end, rec.finish_time);
  }
  sim::MultiTenantReplayOptions post;
  post.start_time = recovery_end;
  const sim::MultiTenantReplayResult shared =
      sim::replay_multitenant(flows_of(substrate), degraded, post);
  std::vector<double> stretch;
  stretch.reserve(substrate.tenants.size());
  for (int k = 0; k < substrate.num_tenants(); ++k) {
    const Tenant& t = substrate.tenants[static_cast<std::size_t>(k)];
    const Seconds solo = t.solo_makespan > 0 ? t.solo_makespan : 1.0;
    stretch.push_back(
        shared.tenants[static_cast<std::size_t>(k)].makespan / solo);
  }
  result.fairness = fairness_from_stretch(stretch);
  if (elog != nullptr) {
    const bool clean = result.violations.empty();
    elog->emit(recovery_end,
               clean ? obs::EventSeverity::kInfo : obs::EventSeverity::kError,
               "soak", "case_done",
               {obs::field("seed", seed),
                obs::field("requests", result.requests),
                obs::field("gave_up", result.storm.gave_up),
                obs::field("requeues", result.storm.requeues),
                obs::field("storm_drain", result.storm.storm_drain_seconds),
                obs::field("violations", result.violations.size()),
                obs::field("jain_index", result.fairness.jain_index),
                obs::field("mean_stretch", result.fairness.mean_stretch),
                obs::field("p99_stretch", result.fairness.p99_stretch)});

    // 7. Reconstruct the case's incidents from its event slice, grade
    //    the blame verdicts against the seeded truth, and hand both to
    //    the collector for the incidents.json export.
    result.incidents = obs::build_incidents(elog->events_since(seq0));
    // Only links between sites that actually host ranks can produce
    // evidence (traffic, timeouts, journals); a permanent outage of an
    // idle site is honestly unobservable and must not count as a miss —
    // the same contract detection scoring applies via observable_links.
    // Pre-storm placements: the storm has already evacuated the failed
    // site from substrate.tenants, so post-storm mappings would claim
    // the primary was never observable.
    fault::AttributionScoreOptions sopt;
    std::vector<bool> used(static_cast<std::size_t>(substrate.num_sites()),
                           false);
    for (const Mapping& m : initial) {
      for (const SiteId s : m) {
        if (s >= 0) used[static_cast<std::size_t>(s)] = true;
      }
    }
    for (SiteId a = 0; a < substrate.num_sites(); ++a) {
      for (SiteId b = a + 1; b < substrate.num_sites(); ++b) {
        if (used[static_cast<std::size_t>(a)] &&
            used[static_cast<std::size_t>(b)])
          sopt.observable_links.push_back({a, b});
      }
    }
    result.attribution = fault::score_attribution(
        result.incidents,
        chaos_plan.plan.truth_windows(substrate.num_sites()), sopt);
    result.attribution_scored = true;
    options.collector->incidents().add(result.incidents);
    options.collector->incidents().add_totals(result.attribution);
  }
  return result;
}

MultiTenantSoakReport run_multitenant_soak(
    const std::vector<std::uint64_t>& seeds,
    const MultiTenantSoakOptions& options) {
  MultiTenantSoakReport report;
  report.cases.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    report.cases.push_back(run_multitenant_soak_case(seed, options));
    const MultiTenantSoakCase& c = report.cases.back();
    report.seeds_run += 1;
    report.total_violations += static_cast<int>(c.violations.size());
    report.total_invariants_checked += c.invariants_checked;
    report.total_requeues += c.storm.requeues;
    report.total_gave_up += c.storm.gave_up;
    if (c.detected) report.detected_cases += 1;
    if (c.attribution_scored) report.attribution.merge(c.attribution);
  }
  return report;
}

}  // namespace geomap::tenancy
