#include "obs/regress.h"

#include <algorithm>
#include <cmath>

#include "common/json_reader.h"

namespace geomap::obs {

namespace {

void flatten_into(const JsonValue& node, std::string& prefix,
                  std::vector<std::pair<std::string, double>>& out) {
  switch (node.kind()) {
    case JsonValue::Kind::kNumber:
      out.emplace_back(prefix, node.as_number());
      break;
    case JsonValue::Kind::kObject:
      for (const auto& [key, child] : node.members()) {
        const std::size_t mark = prefix.size();
        if (!prefix.empty()) prefix.push_back('.');
        prefix.append(key);
        flatten_into(child, prefix, out);
        prefix.resize(mark);
      }
      break;
    case JsonValue::Kind::kArray: {
      std::size_t index = 0;
      for (const JsonValue& child : node.items()) {
        const std::size_t mark = prefix.size();
        if (!prefix.empty()) prefix.push_back('.');
        prefix.append(std::to_string(index++));
        flatten_into(child, prefix, out);
        prefix.resize(mark);
      }
      break;
    }
    default:
      break;  // null / bool / string leaves carry no regressable value
  }
}

}  // namespace

std::vector<std::pair<std::string, double>> flatten_numeric(
    const JsonValue& root, bool skip_meta) {
  std::vector<std::pair<std::string, double>> out;
  std::string prefix;
  if (skip_meta && root.is_object()) {
    for (const auto& [key, child] : root.members()) {
      if (key == "meta") continue;
      prefix = key;
      flatten_into(child, prefix, out);
    }
  } else {
    flatten_into(root, prefix, out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative wildcard match with single-star backtracking.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

RegressReport compare_artifacts(const JsonValue& baseline,
                                const JsonValue& current,
                                const RegressOptions& options) {
  const auto base = flatten_numeric(baseline);
  const auto cur = flatten_numeric(current);
  // Split the watch list by direction: plain patterns fail on increases
  // (lower-is-better), '-'-prefixed ones fail on decreases.
  std::vector<std::string> lower_patterns;
  std::vector<std::string> higher_patterns;
  for (const std::string& pattern : options.watch) {
    if (!pattern.empty() && pattern.front() == '-') {
      higher_patterns.push_back(pattern.substr(1));
    } else {
      lower_patterns.push_back(pattern);
    }
  }
  const auto match_any = [](const std::vector<std::string>& patterns,
                            const std::string& key) {
    for (const std::string& pattern : patterns) {
      if (glob_match(pattern, key)) return true;
    }
    return false;
  };
  const bool watch_everything = options.watch.empty();
  const auto watched = [&](const std::string& key) {
    return watch_everything || match_any(lower_patterns, key) ||
           match_any(higher_patterns, key);
  };

  RegressReport report;
  std::size_t bi = 0, ci = 0;
  while (bi < base.size() || ci < cur.size()) {
    if (ci == cur.size() || (bi < base.size() && base[bi].first < cur[ci].first)) {
      report.missing.push_back(base[bi].first);
      if (watched(base[bi].first)) report.failed = true;
      ++bi;
      continue;
    }
    if (bi == base.size() || cur[ci].first < base[bi].first) {
      report.added.push_back(cur[ci].first);
      ++ci;
      continue;
    }
    RegressRow row;
    row.key = base[bi].first;
    row.baseline = base[bi].second;
    row.current = cur[ci].second;
    row.delta = row.current - row.baseline;
    row.watched = watched(row.key);
    // The failing direction: a '-'-watched (higher-is-better) leaf fails
    // on decrease, everything else on increase. A leaf matched by both
    // kinds of pattern fails in either direction.
    const bool fail_on_increase =
        watch_everything || match_any(lower_patterns, row.key);
    const bool fail_on_decrease = match_any(higher_patterns, row.key);
    const auto past = [&](double signed_delta) {
      if (std::abs(row.baseline) < options.floor)
        return signed_delta > options.floor;
      return signed_delta / std::abs(row.baseline) > options.threshold;
    };
    row.delta_pct = std::abs(row.baseline) < options.floor
                        ? 0
                        : 100.0 * row.delta / std::abs(row.baseline);
    row.regressed = row.watched && ((fail_on_increase && past(row.delta)) ||
                                    (fail_on_decrease && past(-row.delta)));
    if (row.regressed) report.failed = true;
    report.rows.push_back(std::move(row));
    ++bi;
    ++ci;
  }
  return report;
}

}  // namespace geomap::obs
