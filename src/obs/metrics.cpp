#include "obs/metrics.h"

#include <algorithm>
#include <ostream>

#include "common/error.h"
#include "common/json_writer.h"
#include "common/stats.h"
#include "obs/run_meta.h"

namespace geomap::obs {

Histogram::Histogram(std::size_t sample_cap)
    : sample_cap_(sample_cap),
      // Fixed seed: the reservoir's choices are a pure function of the
      // arrival sequence, not of the host or the wall clock.
      rng_(0x68697374u /* "hist" */) {}

void Histogram::record(double x) {
  std::lock_guard<std::mutex> lock(mutex_);
  record_locked(x);
}

void Histogram::record_many(const std::vector<double>& xs) {
  if (xs.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const double x : xs) record_locked(x);
}

void Histogram::record_locked(double x) {
  count_ += 1;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  if (sample_cap_ == 0 || samples_.size() < sample_cap_) {
    samples_.push_back(x);
    return;
  }
  // Algorithm R: the new sample replaces a uniformly random slot with
  // probability cap / count, so every sample ever recorded is retained
  // with equal probability.
  const std::uint64_t j = rng_.uniform_index(count_);
  if (j < sample_cap_) samples_[static_cast<std::size_t>(j)] = x;
}

Histogram::Summary Histogram::summary() const {
  std::vector<double> copy;
  std::uint64_t count = 0;
  double min = 0, max = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = samples_;
    count = count_;
    min = min_;
    max = max_;
  }
  Summary s;
  s.count = count;
  if (copy.empty()) return s;
  s.sampled = count > copy.size();
  // Concurrent record() calls land in host arrival order; sort before
  // folding so sum/mean are byte-identical across reruns of the same
  // seeded workload (floating-point addition is not associative).
  std::sort(copy.begin(), copy.end());
  RunningStats stats;
  for (const double x : copy) stats.add(x);
  // Exact when every sample is retained; past the cap, min/max come from
  // the running accumulators (still exact), sum is scaled up from the
  // reservoir mean, and mean/percentiles are reservoir estimates.
  s.min = min;
  s.max = max;
  s.mean = stats.mean();
  s.sum = s.sampled ? stats.mean() * static_cast<double>(count) : stats.sum();
  s.p50 = percentile(copy, 50.0);
  s.p90 = percentile(copy, 90.0);
  s.p99 = percentile(copy, 99.0);
  return s;
}

std::vector<double> Histogram::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

namespace {

template <typename Map, typename Factory>
auto& find_or_create(Map& map, const std::string& name, Factory&& make,
                     const char* kind, bool taken_elsewhere) {
  auto it = map.find(name);
  if (it == map.end()) {
    GEOMAP_CHECK_MSG(!taken_elsewhere, "metric '" << name
                                                  << "' already registered as "
                                                     "a different kind than "
                                                  << kind);
    it = map.emplace(name, make()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(
      counters_, name, [] { return std::make_unique<Counter>(); }, "counter",
      gauges_.count(name) > 0 || histograms_.count(name) > 0);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(
      gauges_, name, [] { return std::make_unique<Gauge>(); }, "gauge",
      counters_.count(name) > 0 || histograms_.count(name) > 0);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(
      histograms_, name,
      [this] { return std::make_unique<Histogram>(histogram_sample_cap_); },
      "histogram", counters_.count(name) > 0 || gauges_.count(name) > 0);
}

void MetricsRegistry::set_histogram_sample_cap(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_sample_cap_ = cap;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, double> MetricsRegistry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g->value());
  return out;
}

std::map<std::string, Histogram::Summary> MetricsRegistry::histogram_summaries()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, Histogram::Summary> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h->summary());
  return out;
}

void MetricsRegistry::write_json(std::ostream& os, const RunMeta* meta) const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w(os);
  w.begin_object();
  if (meta != nullptr) meta->write_member(w);
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Summary s = h->summary();
    w.key(name).begin_object();
    w.field("count", s.count);
    w.field("sum", s.sum);
    w.field("min", s.min);
    w.field("max", s.max);
    w.field("mean", s.mean);
    w.field("p50", s.p50);
    w.field("p90", s.p90);
    w.field("p99", s.p99);
    // Only when the reservoir actually dropped samples, so uncapped
    // registries keep their historical byte-exact exports.
    if (s.sampled) w.field("sampled", true);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << "\n";
}

}  // namespace geomap::obs
