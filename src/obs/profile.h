#pragma once
// Hierarchical phase profiler + memory accounting: the instrument that
// adjudicates mapper hot-path work.
//
// The metrics registry answers "how much, in total"; the span tracer
// answers "when, on which thread". Neither answers the question the
// scale arc needs: *where inside the mapper* the time goes — grouping vs
// order search vs fill — with the work counters (group orders
// enumerated, cost evaluations, k-means iterations) attached to the
// phase that did the work, and the bytes held by the big structures
// (CSR comm graphs, dense site matrices, migration journals, tenant
// substrates) accounted next to them.
//
// A PhaseProfiler owns a tree of named phases. Phases are RAII handles
// (obs::Phase) that nest on the opening thread: the tree location of a
// phase is its name under the calling thread's innermost open phase, so
// repeated and concurrent entries into the same (parent-path, name)
// merge into one node. Each node accumulates inclusive wall seconds,
// the opening thread's CPU seconds, a call count, and named counters.
// Exclusive time is derived at export: inclusive minus the children's
// inclusive sum — the telescoping makes per-node exclusive times re-fold
// exactly to the root's measured wall time.
//
// Instrumentation contract (same as the whole obs layer): phases are
// coarse — wrap a mapper run, a grouping pass, an order search, never a
// per-edge loop body — and parallel regions are wrapped by ONE phase on
// the orchestrating thread (worker threads don't open phases), so the
// tree shape is independent of thread scheduling. With no collector in
// reach, instrumented code never touches any of this.
//
// Determinism: the tree shape, call counts, counters and byte accounts
// are pure functions of the workload. Times and RSS are not — so the
// profiler has a deterministic mode (GEOMAP_PROFILE_DETERMINISTIC=1 in
// the environment, or set_deterministic(true)) in which every clock
// read returns zero and RSS sampling is skipped; profile.json is then
// byte-identical across reruns of a seeded workload (asserted by tests,
// used by the baseline-blessing workflow when stability matters more
// than seconds).
//
// All entry points are thread-safe.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace geomap {
class JsonWriter;
}

namespace geomap::obs {

struct RunMeta;
class PhaseProfiler;

/// Deep copy of one profile-tree node (export/test view).
struct PhaseSnapshot {
  std::string name;
  double wall_seconds = 0;  // inclusive
  double cpu_seconds = 0;   // inclusive, opening thread's CPU time
  std::uint64_t calls = 0;
  std::map<std::string, std::uint64_t> counters;
  std::vector<PhaseSnapshot> children;  // sorted by name

  /// Inclusive minus the children's inclusive sum (not clamped: phases
  /// opened off the orchestrating thread would surface as negative
  /// exclusive time, which the invariant tests treat as a bug).
  double exclusive_seconds() const;
};

/// Movable RAII handle; the disengaged (default-constructed) phase is a
/// no-op, which lets instrumented code write
/// `obs::Phase p; if (collector) p = collector->profile().phase(...);`.
class Phase {
 public:
  Phase() = default;
  Phase(Phase&& other) noexcept { *this = std::move(other); }
  Phase& operator=(Phase&& other) noexcept;
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;
  ~Phase() { end(); }

  /// Add `n` to this phase's named work counter (no-op when disengaged).
  /// Safe from any thread holding the handle — this is how a phase
  /// wrapping a parallel region attributes its workers' counts.
  void count(const std::string& name, std::uint64_t n = 1);

  /// Close early (accumulates into the tree; further calls are no-ops).
  void end();

  bool active() const { return profiler_ != nullptr; }

 private:
  friend class PhaseProfiler;
  struct Node;

  PhaseProfiler* profiler_ = nullptr;
  Node* node_ = nullptr;
  double wall_start_ = 0;
  double cpu_start_ = 0;
  std::thread::id thread_;
};

/// Byte accounting for the big structures. Two styles:
///
///  * charge()/release() — a true allocation ledger for structures that
///    grow and shrink (journals, queues); peak tracks the high-water
///    current.
///  * note() — an observed-size snapshot for long-lived structures the
///    instrumented site does not own (the CSR comm graph it was handed,
///    the dense site matrices): current becomes the observed size, peak
///    the largest size ever observed. Idempotent across repeated
///    observations of the same structure.
///
/// sample_rss() folds the OS view (VmHWM) into the export so the
/// accounts can be sanity-checked against reality; it is skipped in
/// deterministic mode because RSS is not reproducible.
class MemTracker {
 public:
  MemTracker();  // deterministic mode from GEOMAP_PROFILE_DETERMINISTIC

  void charge(const std::string& account, std::uint64_t bytes);
  void release(const std::string& account, std::uint64_t bytes);
  void note(const std::string& account, std::uint64_t bytes);

  std::uint64_t current_bytes(const std::string& account) const;
  std::uint64_t peak_bytes(const std::string& account) const;

  /// Fold the process peak RSS into the export (no-op when
  /// deterministic). Call before exporting.
  void sample_rss();
  std::uint64_t rss_peak_bytes() const;

  /// Current / peak resident set of this process in bytes (Linux
  /// /proc/self/status; 0 when unavailable).
  static std::uint64_t process_rss_bytes();
  static std::uint64_t process_peak_rss_bytes();

  void set_deterministic(bool deterministic);
  bool deterministic() const;

  /// Emit `"memory": {"accounts": {...}, "rss_peak_bytes": N}` as the
  /// next member of the currently open JSON object (rss omitted when
  /// never sampled).
  void write_json_member(JsonWriter& w) const;

 private:
  struct Account {
    std::uint64_t current = 0;
    std::uint64_t peak = 0;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Account> accounts_;
  std::uint64_t rss_peak_ = 0;
  bool deterministic_ = false;
};

class PhaseProfiler {
 public:
  PhaseProfiler();  // deterministic mode from GEOMAP_PROFILE_DETERMINISTIC
  ~PhaseProfiler();  // out of line: Node is incomplete here

  /// Open a phase named `name` under the calling thread's innermost open
  /// phase (the root when none is open).
  Phase phase(std::string name);

  /// Add `n` to a counter on the calling thread's innermost open phase
  /// (the root when none is open).
  void count(const std::string& name, std::uint64_t n = 1);

  void set_deterministic(bool deterministic);
  bool deterministic() const;

  /// True when no phase has ever been recorded and no counter touched.
  bool empty() const;

  /// The full tree under a synthetic "run" root whose inclusive times
  /// are the top-level children's sums (copy, for tests and exporters).
  PhaseSnapshot snapshot() const;

  /// One JSON document: {"meta": {...}, "deterministic": bool, "tree":
  /// {...}, "memory": {...}}. Tree children are objects keyed by phase
  /// name (std::map order), so the layout is deterministic; `memory` is
  /// emitted when `memory` is non-null. In deterministic mode every
  /// *_seconds leaf is 0 and the file is byte-identical across reruns
  /// of a seeded workload.
  void write_json(std::ostream& os, const MemTracker* memory = nullptr,
                  const RunMeta* meta = nullptr) const;

  /// Collapsed-stack lines ("run;mapper:X;fill 1234") consumable by
  /// flamegraph.pl / speedscope. Weights are exclusive microseconds;
  /// when the whole tree carries zero time (deterministic mode) call
  /// counts stand in so the structure still renders.
  void write_collapsed(std::ostream& os) const;

  /// Wall seconds since profiler construction (0 when deterministic).
  /// The mapper heartbeat uses this as its timeline timestamp.
  double now_seconds() const;

 private:
  friend class Phase;
  using Node = Phase::Node;

  Node* open(const std::string& name);
  void close(Node* node, double wall_delta, double cpu_delta,
             std::thread::id tid);
  double thread_cpu_seconds() const;

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::unique_ptr<Node> root_;
  std::unordered_map<std::thread::id, std::vector<Node*>> stacks_;
  bool deterministic_ = false;
  bool touched_ = false;
};

}  // namespace geomap::obs
