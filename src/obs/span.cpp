#include "obs/span.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/json_writer.h"
#include "obs/run_meta.h"

namespace geomap::obs {

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

Span::Span(SpanTracer* tracer, std::string name, std::string category)
    : tracer_(tracer) {
  record_.name = std::move(name);
  record_.category = std::move(category);
  record_.tid = tracer_->thread_index();
  record_.wall_start_us = tracer_->now_us();
}

void Span::set_virtual(int rank, Seconds vt_start, Seconds vt_end) {
  if (tracer_ == nullptr) return;
  record_.rank = rank;
  record_.vt_start = vt_start;
  record_.vt_end = vt_end;
  record_.has_virtual = true;
}

void Span::set_args_json(std::string args_json) {
  if (tracer_ == nullptr) return;
  record_.args_json = std::move(args_json);
}

void Span::end() {
  if (tracer_ == nullptr) return;
  record_.wall_end_us = tracer_->now_us();
  tracer_->finish(std::move(record_));
  tracer_ = nullptr;
}

SpanTracer::SpanTracer() : epoch_(std::chrono::steady_clock::now()) {}

Span SpanTracer::span(std::string name, std::string category) {
  return Span(this, std::move(name), std::move(category));
}

void SpanTracer::record_virtual(int rank, std::string name,
                                std::string category, Seconds vt_start,
                                Seconds vt_end, std::string args_json) {
  SpanRecord r;
  r.name = std::move(name);
  r.category = std::move(category);
  r.has_wall = false;
  r.rank = rank;
  r.tid = rank;
  r.vt_start = vt_start;
  r.vt_end = vt_end;
  r.has_virtual = true;
  r.args_json = std::move(args_json);
  finish(std::move(r));
}

double SpanTracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void SpanTracer::finish(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

int SpanTracer::thread_index() {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto id = std::this_thread::get_id();
  auto it = thread_index_.find(id);
  if (it == thread_index_.end())
    it = thread_index_.emplace(id, static_cast<int>(thread_index_.size()))
             .first;
  return it->second;
}

namespace {

constexpr int kWallPid = 0;
constexpr int kVirtualPid = 1;

void write_event(JsonWriter& w, const SpanRecord& r, int pid, int tid,
                 double ts_us, double dur_us) {
  w.begin_object();
  w.field("name", r.name);
  w.field("cat", r.category);
  w.field("ph", "X");
  w.field("pid", pid);
  w.field("tid", tid);
  w.field("ts", ts_us);
  w.field("dur", dur_us);
  if (!r.args_json.empty()) w.key("args").raw(r.args_json);
  w.end_object();
}

void write_metadata(JsonWriter& w, int pid, int tid, const char* what,
                    const std::string& name) {
  w.begin_object();
  w.field("name", what);
  w.field("ph", "M");
  w.field("pid", pid);
  if (tid >= 0) w.field("tid", tid);
  w.key("args").begin_object().field("name", name).end_object();
  w.end_object();
}

}  // namespace

std::vector<SpanRecord> SpanTracer::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void SpanTracer::write_chrome_trace(std::ostream& os,
                                    const RunMeta* meta) const {
  const std::vector<SpanRecord> records = this->records();

  // Records arrive in host completion order; flatten to the events we
  // will emit and sort by (pid, tid, start, name) so the file layout is
  // deterministic for deterministic runs (virtual timelines of two
  // identical seeded executions lay out identically regardless of thread
  // scheduling; wall timestamps still differ, by nature).
  struct Emit {
    int pid;
    int tid;
    double ts_us;
    double dur_us;
    const SpanRecord* record;
  };
  std::vector<Emit> emits;
  emits.reserve(records.size());
  for (const SpanRecord& r : records) {
    if (r.has_wall) {
      emits.push_back(Emit{kWallPid, r.tid, r.wall_start_us,
                           r.wall_end_us - r.wall_start_us, &r});
    }
    if (r.has_virtual) {
      // Virtual clocks are seconds; the trace unit is microseconds.
      emits.push_back(Emit{kVirtualPid, r.rank, r.vt_start * 1e6,
                           (r.vt_end - r.vt_start) * 1e6, &r});
    }
  }
  std::stable_sort(emits.begin(), emits.end(),
                   [](const Emit& a, const Emit& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.record->name < b.record->name;
                   });

  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();

  write_metadata(w, kWallPid, -1, "process_name", "wall clock");
  write_metadata(w, kVirtualPid, -1, "process_name", "virtual time");
  std::vector<int> ranks;
  for (const SpanRecord& r : records)
    if (r.has_virtual) ranks.push_back(r.rank);
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  for (const int rank : ranks)
    write_metadata(w, kVirtualPid, rank, "thread_name",
                   "rank " + std::to_string(rank));

  for (const Emit& e : emits) {
    write_event(w, *e.record, e.pid, e.tid, e.ts_us, e.dur_us);
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  if (meta != nullptr) meta->write_member(w, "geomapMeta");
  w.end_object();
  os << "\n";
}

}  // namespace geomap::obs
