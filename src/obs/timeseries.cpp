#include "obs/timeseries.h"

#include <algorithm>
#include <ostream>

#include "common/error.h"
#include "common/json_writer.h"
#include "obs/run_meta.h"

namespace geomap::obs {

TimeSeries::TimeSeries(std::size_t capacity) : capacity_(capacity) {
  GEOMAP_CHECK_ARG(capacity > 0, "time series capacity must be positive");
  buffer_.reserve(std::min<std::size_t>(capacity * 2, capacity + 1024));
}

void TimeSeries::record(Seconds t, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  buffer_.push_back(TimePoint{t, value});
  total_ += 1;
  if (buffer_.size() >= capacity_ * 2) compact_locked();
}

void TimeSeries::record_many(const std::vector<TimePoint>& points) {
  if (points.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const TimePoint& p : points) {
    buffer_.push_back(p);
    if (buffer_.size() >= capacity_ * 2) compact_locked();
  }
  total_ += points.size();
}

void TimeSeries::compact_locked() {
  // Keep the `capacity_` newest points by (t, value) — deterministic in
  // the recorded multiset, independent of arrival order.
  std::sort(buffer_.begin(), buffer_.end());
  if (buffer_.size() > capacity_) {
    buffer_.erase(buffer_.begin(),
                  buffer_.end() - static_cast<std::ptrdiff_t>(capacity_));
  }
}

std::uint64_t TimeSeries::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::vector<TimePoint> TimeSeries::points() const {
  std::vector<TimePoint> copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = buffer_;
  }
  std::sort(copy.begin(), copy.end());
  if (copy.size() > capacity_) {
    copy.erase(copy.begin(),
               copy.end() - static_cast<std::ptrdiff_t>(capacity_));
  }
  return copy;
}

WindowStats TimeSeries::window(Seconds t_end, Seconds window,
                               double ewma_lambda) const {
  GEOMAP_CHECK_ARG(window > 0, "window must be positive, got " << window);
  GEOMAP_CHECK_ARG(ewma_lambda > 0 && ewma_lambda <= 1,
                   "ewma_lambda must be in (0, 1], got " << ewma_lambda);
  WindowStats stats;
  for (const TimePoint& p : points()) {
    if (p.t <= t_end - window || p.t > t_end) continue;
    if (stats.count == 0) {
      stats.min = stats.max = p.value;
      stats.ewma = p.value;
    } else {
      stats.min = std::min(stats.min, p.value);
      stats.max = std::max(stats.max, p.value);
      stats.ewma = ewma_lambda * p.value + (1 - ewma_lambda) * stats.ewma;
    }
    stats.count += 1;
    stats.sum += p.value;
  }
  if (stats.count > 0) {
    stats.mean = stats.sum / static_cast<double>(stats.count);
    stats.rate = static_cast<double>(stats.count) / window;
  }
  return stats;
}

void TimeSeriesRegistry::set_default_capacity(std::size_t capacity) {
  GEOMAP_CHECK_ARG(capacity > 0, "time series capacity must be positive");
  std::lock_guard<std::mutex> lock(mutex_);
  default_capacity_ = capacity;
}

TimeSeries& TimeSeriesRegistry::series(const std::string& name,
                                       const std::string& label) {
  GEOMAP_CHECK_ARG(!name.empty(), "time series name must not be empty");
  const std::string key = label.empty() ? name : name + "{" + label + "}";
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(key, std::make_unique<TimeSeries>(default_capacity_))
             .first;
  }
  return *it->second;
}

std::vector<std::string> TimeSeriesRegistry::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [key, s] : series_) out.push_back(key);
  return out;
}

const TimeSeries* TimeSeriesRegistry::find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : it->second.get();
}

bool TimeSeriesRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.empty();
}

void TimeSeriesRegistry::write_json(std::ostream& os, const RunMeta* meta,
                                    Seconds window_seconds) const {
  JsonWriter w(os);
  w.begin_object();
  if (meta != nullptr) meta->write_member(w);
  write_members(w, window_seconds);
  w.end_object();
  os << "\n";
}

void TimeSeriesRegistry::write_members(JsonWriter& w,
                                       Seconds window_seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  w.field("window_seconds", window_seconds);
  w.key("series").begin_object();
  for (const auto& [key, s] : series_) {
    const std::vector<TimePoint> points = s->points();
    w.key(key).begin_object();
    w.field("capacity", static_cast<std::uint64_t>(s->capacity()));
    w.field("total", s->total_recorded());
    w.field("dropped",
            s->total_recorded() - static_cast<std::uint64_t>(points.size()));
    if (!points.empty()) {
      const WindowStats stats = s->window(points.back().t, window_seconds);
      w.key("last_window").begin_object();
      w.field("count", stats.count);
      w.field("sum", stats.sum);
      w.field("min", stats.min);
      w.field("max", stats.max);
      w.field("mean", stats.mean);
      w.field("rate", stats.rate);
      w.field("ewma", stats.ewma);
      w.end_object();
    }
    w.key("points").begin_array();
    for (const TimePoint& p : points) {
      w.begin_array();
      w.value(p.t);
      w.value(p.value);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

std::string link_label(int src, int dst) {
  return std::to_string(src) + "->" + std::to_string(dst);
}

std::string link_series_key(const std::string& name, int src, int dst) {
  return name + "{" + link_label(src, dst) + "}";
}

bool parse_link_label(const std::string& label, int* src, int* dst) {
  const std::size_t arrow = label.find("->");
  if (arrow == std::string::npos || arrow == 0 ||
      arrow + 2 >= label.size()) {
    return false;
  }
  const std::string left = label.substr(0, arrow);
  const std::string right = label.substr(arrow + 2);
  for (const std::string& part : {left, right}) {
    if (part.empty()) return false;
    for (const char c : part) {
      if (c < '0' || c > '9') return false;
    }
  }
  *src = std::stoi(left);
  *dst = std::stoi(right);
  return true;
}

std::string tenant_link_label(int tenant, int src, int dst) {
  return "t" + std::to_string(tenant) + ":" + link_label(src, dst);
}

bool parse_tenant_link_label(const std::string& label, int* tenant, int* src,
                             int* dst) {
  if (label.size() < 2 || label[0] != 't') return false;
  const std::size_t colon = label.find(':');
  if (colon == std::string::npos || colon < 2) return false;
  const std::string digits = label.substr(1, colon - 1);
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  int s = 0;
  int d = 0;
  if (!parse_link_label(label.substr(colon + 1), &s, &d)) return false;
  *tenant = std::stoi(digits);
  *src = s;
  *dst = d;
  return true;
}

}  // namespace geomap::obs
