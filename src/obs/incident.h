#pragma once
// Causal incident reconstruction over the structured event stream — the
// `incidents.json` artifact.
//
// The nine existing artifacts each answer one question in isolation
// (what degraded, what was granted, what was migrated, which budget
// burned). An *incident* joins them back into the story a responder
// actually needs: the event stream is clustered around detector onsets
// (plus soak/detect verdicts and SLO-violating samples that no onset
// covers), and every cluster is folded into a four-stage causal chain
//
//   fault onset → detection latency → remap queue wait →
//   migration downtime → residual stretch
//
// whose stage boundaries are monotone-clamped, so the per-stage
// latencies always re-fold exactly to the incident's end-to-end
// duration. Each incident carries a blame verdict: the implicated site
// (argmax over observable evidence votes — degradation-onset endpoints
// and migration-journal evacuation sources; never the fault plan's
// ground truth), the most severe implicated link, the worst-affected
// tenant, and the dominant (longest) stage.
//
// Because the chaos harnesses *know* the seeded truth, blame is a
// scored surface, not a best-effort guess: fault::score_attribution
// (fault/attribution.h) matches verdicts against
// FaultPlan::truth_windows and the resulting precision / recall /
// onset-error totals ride inside the artifact, giving CI a regression
// gate over root-cause quality itself.
//
// Determinism: build_incidents is a pure function of the event slice,
// and export ordering is canonical (start, end, blamed site, case
// seed), so a byte-stable events stream yields a byte-stable
// incidents.json under GEOMAP_PROFILE_DETERMINISTIC=1.

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/eventlog.h"
#include "obs/slo.h"

namespace geomap {
class JsonValue;
}

namespace geomap::obs {

struct RunMeta;

/// One stage of an incident's causal chain. Stages are contiguous:
/// stage[i].end == stage[i+1].start, the first starts at the incident's
/// start and the last ends at its end.
struct StageBudget {
  std::string name;  // "detect", "queue", "migrate", "residual"
  Seconds start = 0;
  Seconds end = 0;
  /// Stage-specific headline: mean detection latency, max queue wait,
  /// total committed downtime, p99 post-recovery stretch.
  double metric = 0;
  /// Events attributed to the stage's subsystem within the incident.
  std::uint64_t events = 0;

  Seconds seconds() const { return end - start; }
};

/// Root-cause verdict assembled from observable evidence only: detector
/// onset endpoints and suspect votes (+1 each), migration evacuation
/// sources (+1 per reserve/commit `from`), with migration destinations
/// voting *against* (-1 per `to` — a site receiving evacuees is
/// healthy). The seeded truth (soak/detect's failed_site field,
/// FaultPlan) is deliberately never consulted — that is what
/// fault::score_attribution grades the verdict against.
struct BlameVerdict {
  SiteId site = -1;      // implicated site; -1 = no verdict
  SiteId link_src = -1;  // most severe down-onset link touching `site`
  SiteId link_dst = -1;
  int tenant = -1;       // worst-affected tenant; -1 = none implicated
  double confidence = 0; // share of positive evidence votes on `site`
  std::string dominant_stage;  // longest stage's name
  std::vector<SiteId> implicated_sites;  // every positive-vote site, sorted
};

struct IncidentCounts {
  std::uint64_t onsets = 0;
  std::uint64_t grants = 0;
  std::uint64_t requeues = 0;
  std::uint64_t give_ups = 0;
  std::uint64_t commits = 0;
  std::uint64_t rollbacks = 0;
};

struct Incident {
  std::string id;  // "inc-001"... — assigned by finalize_incidents
  std::uint64_t case_seed = 0;  // soak case that produced the slice
  bool has_case_seed = false;
  Seconds start = 0;
  Seconds end = 0;
  /// Always exactly four: detect, queue, migrate, residual.
  std::vector<StageBudget> stages;
  BlameVerdict blame;
  IncidentCounts counts;
  /// Budget-burn contribution of this incident's bad samples, summed
  /// over its violated SLOs: (bad-in-window / slo-events) / error_budget.
  double slo_burn = 0;
  std::vector<std::string> violated_slos;

  Seconds duration() const { return end - start; }
};

struct IncidentOptions {
  /// Onset intervals closer than this merge into one incident.
  Seconds merge_gap = 5.0;
  /// SLO specs evaluated over the slice; empty = default_slo_specs().
  std::vector<SloSpec> slo_specs;
};

/// Cluster one event slice (a whole run or one soak case) into
/// incidents. Pure function; returned incidents are finalized (sorted,
/// ids assigned). Runs with no onsets, no soak verdicts and no violated
/// SLOs produce an empty vector.
std::vector<Incident> build_incidents(const std::vector<Event>& events,
                                      const IncidentOptions& options = {});

/// Canonical ordering + id assignment ("inc-001"...). Called by
/// build_incidents; exposed for accumulators that merge several cases'
/// incidents and must renumber the union.
void finalize_incidents(std::vector<Incident>& incidents);

/// Attribution quality totals, accumulated across soak cases. Scored by
/// fault::score_attribution (the fault layer owns the truth matching;
/// this struct lives here so obs never depends on fault).
struct AttributionTotals {
  std::uint64_t cases = 0;
  std::uint64_t incidents = 0;
  std::uint64_t blamed = 0;            // incidents carrying a site verdict
  std::uint64_t correctly_blamed = 0;  // verdict corroborated by truth
  std::uint64_t misblamed = 0;
  std::uint64_t episodes = 0;    // scoreable truth episodes
  std::uint64_t attributed = 0;  // episodes some incident blamed correctly
  std::uint64_t missed = 0;
  double onset_error_sum = 0;  // |incident start - true fault onset|
  std::uint64_t onset_error_samples = 0;

  /// correctly_blamed / blamed; vacuously 1 with no verdicts.
  double precision() const;
  /// attributed / episodes; vacuously 1 with no episodes.
  double recall() const;
  double mean_onset_error() const;
  void merge(const AttributionTotals& other);
};

/// Thread-safe incident accumulator living inside the Collector: each
/// soak case appends its incidents (and, when the harness scored them,
/// its attribution totals); export snapshots the union in canonical
/// order with ids reassigned.
class IncidentLog {
 public:
  void add(std::vector<Incident> incidents);
  void add_totals(const AttributionTotals& totals);

  std::vector<Incident> snapshot() const;  // finalized union
  AttributionTotals totals() const;
  bool has_totals() const;
  std::uint64_t count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Incident> incidents_;
  AttributionTotals totals_;
  bool has_totals_ = false;
};

/// The tenth artifact: {"meta": {...}, "count": N, "incidents": [...],
/// "stage_summary": {stage: {mean, max, total}}, "attribution": {...}}.
/// `attribution` is present only when totals were scored. Keys sorted;
/// numeric leaves flatten cleanly for the regress engine (watch e.g.
/// "-attribution.precision" and "stage_summary.*.mean").
void write_incidents_json(std::ostream& os,
                          const std::vector<Incident>& incidents,
                          const AttributionTotals* totals = nullptr,
                          const RunMeta* meta = nullptr);

/// A parsed incidents.json, as read back by obsctl.
struct IncidentsArtifact {
  std::vector<Incident> incidents;
  AttributionTotals totals;
  bool has_totals = false;
};

/// Inverse of write_incidents_json; throws InvalidArgument on a
/// document that is not an incidents artifact.
IncidentsArtifact incidents_from_json(const JsonValue& root);

}  // namespace geomap::obs
