#include "obs/run_meta.h"

#include <cstdlib>
#include <ctime>

#include "common/json_writer.h"

#ifndef GEOMAP_VERSION
#define GEOMAP_VERSION "0.0.0"
#endif

namespace geomap::obs {

namespace {

std::string env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? std::string(v)
                                        : std::string(fallback);
}

std::string utc_now_iso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

}  // namespace

RunMeta make_run_meta(std::string bench, std::uint64_t seed, bool has_seed) {
  RunMeta meta;
  meta.bench = std::move(bench);
  meta.seed = seed;
  meta.has_seed = has_seed;
  meta.geomap_version = GEOMAP_VERSION;
  meta.git_describe = env_or("GEOMAP_GIT_DESCRIBE", "unknown");
  const std::string pinned = env_or("GEOMAP_TIMESTAMP", "");
  meta.timestamp = pinned.empty() ? utc_now_iso8601() : pinned;
  return meta;
}

void RunMeta::write_member(JsonWriter& w, const char* key) const {
  w.key(key).begin_object();
  w.field("bench", bench);
  if (has_seed) w.field("seed", seed);
  w.field("geomap_version", geomap_version);
  w.field("git_describe", git_describe);
  w.field("timestamp", timestamp);
  w.end_object();
}

}  // namespace geomap::obs
