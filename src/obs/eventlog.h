#pragma once
// Bounded, thread-safe, seq-numbered structured event stream — the
// streaming half of the observability plane. Where the timeline records
// dense numeric series and the metrics registry records aggregates, the
// event log records the *episodes*: a detector opening or clearing a
// degradation, the remap scheduler granting / requeueing / abandoning a
// request, the migration executor crossing a protocol phase, the runtime
// accounting a fault. Each event carries a virtual timestamp, a
// severity, a component, an event name, and typed key/value fields, and
// is exported as one JSON object per line (`events.jsonl`) so a tail
// reader can follow a run in flight.
//
// Contract (same as every other recorder in the Collector): emission is
// opt-in via a pointer that defaults to nullptr, and a null log means
// the instrumented site executes the exact pre-observability code path.
// Emission never alters a decision.
//
// Determinism: events carry only virtual time — no wall clocks, no host
// state — so a seeded single-threaded workload produces a byte-identical
// stream. Multi-threaded emitters (the runtime's rank threads) can race
// on sequence numbers; under GEOMAP_PROFILE_DETERMINISTIC=1 the export
// sorts events into a canonical order (time, component, name, severity,
// serialized fields) and renumbers them, the same convention the
// critical-path exporter uses for its canonicalized node ids, so the
// artifact is byte-stable across reruns regardless of interleaving.
//
// Memory is bounded: past `capacity` events the oldest are dropped
// (newest episodes matter most for a long-running service) and the drop
// count is reported in the artifact's meta line.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace geomap {
class JsonValue;
}

namespace geomap::obs {

struct RunMeta;

enum class EventSeverity { kDebug, kInfo, kWarn, kError };

const char* to_string(EventSeverity s);
/// Parse "debug"/"info"/"warn"/"error"; throws geomap::Error otherwise.
EventSeverity parse_event_severity(const std::string& s);

/// One typed key/value attribute of an event. Build with the field()
/// overloads below; the tag picks the JSON representation.
struct EventField {
  enum class Kind { kInt, kDouble, kString, kBool };
  std::string key;
  Kind kind = Kind::kInt;
  std::int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;
  bool bool_value = false;
};

inline EventField field(std::string key, std::int64_t v) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kInt;
  f.int_value = v;
  return f;
}
inline EventField field(std::string key, int v) {
  return field(std::move(key), static_cast<std::int64_t>(v));
}
inline EventField field(std::string key, std::uint64_t v) {
  return field(std::move(key), static_cast<std::int64_t>(v));
}
inline EventField field(std::string key, double v) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kDouble;
  f.double_value = v;
  return f;
}
inline EventField field(std::string key, bool v) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kBool;
  f.bool_value = v;
  return f;
}
inline EventField field(std::string key, std::string v) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kString;
  f.string_value = std::move(v);
  return f;
}
inline EventField field(std::string key, const char* v) {
  return field(std::move(key), std::string(v));
}

struct Event {
  std::uint64_t seq = 0;  // 1-based, assigned at emit time
  Seconds t = 0;          // virtual time within the producing run
  EventSeverity severity = EventSeverity::kInfo;
  std::string component;  // emitting subsystem: "detector", "scheduler", ...
  std::string name;       // event within the component: "onset", "grant", ...
  std::vector<EventField> fields;
};

class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit EventLog(std::size_t capacity = kDefaultCapacity);

  /// Append one event; assigns the next sequence number. Thread-safe.
  void emit(Seconds t, EventSeverity severity, std::string component,
            std::string name, std::vector<EventField> fields = {});

  /// Total events ever emitted (including dropped ones).
  std::uint64_t total() const;
  /// Events evicted by the capacity bound.
  std::uint64_t dropped() const;
  /// Retained events, oldest first (copy, for tests and the SLO tracker).
  std::vector<Event> events() const;
  /// Retained events with seq > `seq`, oldest first — the slice emitted
  /// after a `total()` snapshot. The per-case slicing primitive the soak
  /// harnesses feed to obs::build_incidents.
  std::vector<Event> events_since(std::uint64_t seq) const;
  bool empty() const;

  /// One JSON object per line: a meta line first ({"kind":"meta", ...}
  /// with the run header, total and dropped counts), then every retained
  /// event as {"seq":..,"t":..,"severity":..,"component":..,"event":..,
  /// "fields":{...}}. Under GEOMAP_PROFILE_DETERMINISTIC=1 events are
  /// first sorted into canonical order and renumbered (see file header).
  void write_jsonl(std::ostream& os, const RunMeta* meta = nullptr) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Event> events_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Serialize one event as a compact single-line JSON object (no trailing
/// newline). Shared by write_jsonl and the canonical sort key.
std::string event_to_json(const Event& e);

/// Inverse of event_to_json: one parsed JSON object back into an Event.
/// Numeric fields that hold an exact integer round-trip as kInt.
Event event_from_json(const JsonValue& v);

/// Read a whole events.jsonl stream back: the meta line ({"kind":"meta"})
/// is skipped, every other non-empty line parses as one event. Malformed
/// lines throw JsonParseError — a torn artifact is loud, not silent.
std::vector<Event> read_events_jsonl(std::istream& is);

/// Resume position for a tail reader re-reading a whole-file snapshot
/// each poll (the exporter swaps checkpoints atomically via tmp+rename,
/// so a re-read sees either the old or the new complete file, never a
/// torn one). take_new() returns only the events past the cursor and
/// advances it — re-reading after a swap yields exactly the fresh tail.
struct FollowCursor {
  std::uint64_t last_seq = 0;

  std::vector<Event> take_new(const std::vector<Event>& events) {
    std::vector<Event> fresh;
    for (const Event& e : events) {
      if (e.seq <= last_seq) continue;
      fresh.push_back(e);
      last_seq = std::max(last_seq, e.seq);
    }
    return fresh;
  }
};

}  // namespace geomap::obs
