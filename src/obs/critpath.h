#pragma once
// Causal critical-path analysis of virtual-time executions.
//
// Both execution engines — the threaded minimpi runtime and the
// sequential contention replay — tag every message / CSR edge with a
// causal id and record it as a node of the happened-before DAG:
//
//   CritEvent.pred_program — previous event of the executing rank
//                            (program order),
//   CritEvent.pred_message — the sender-side event the received message
//                            causally depends on (runtime only),
//   CritEvent.pred_link    — the transfer that occupied the WAN link
//                            immediately before this one (contention).
//
// Each node carries its virtual interval [ready, start, end] and the
// exact decomposition of end − ready into four components:
//
//   alpha    — latency term of the healthy wire time (count · LT)
//   beta     — volume term of the healthy wire time (volume / BT)
//   fault    — retry backoff + outage stalls + (degraded − healthy) wire
//   contention — waiting for the serializing WAN link
//
// extract_critical_path() walks the DAG backwards from the last-finishing
// event along *binding* dependencies (the predecessor whose completion
// actually gated readiness) and reports the path as a chain of steps plus
// a fifth component, `local`, covering clock advance between events
// (compute / advance calls, or startup before the first message). The
// decomposition telescopes: the sum of all step components equals the
// run's makespan *exactly* up to floating-point reassociation — asserted
// by tests against both engines — so "where did the makespan go" always
// has a complete answer, aggregated per site pair and per rank.
//
// A CritGraph groups events into runs (one per Runtime::run or replay
// call); ids are assigned in host arrival order but the export is
// canonicalized — events sorted by (rank, per-rank sequence), ids
// renumbered, predecessors remapped — so two identical seeded executions
// produce byte-identical artifacts regardless of thread scheduling.

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/run_meta.h"

namespace geomap {
class JsonValue;
class JsonWriter;
}

namespace geomap::obs {

/// One node of the happened-before DAG: a completed message delivery
/// (runtime), one replayed CSR edge (sim), or a rank-finish marker.
struct CritEvent {
  std::int64_t id = -1;   // causal id, unique within the graph
  int run = 0;            // which begin_run() segment this belongs to
  std::int64_t seq = 0;   // per-(run, rank) program-order sequence
  std::string kind;       // "recv" | "edge" | "finish"
  int rank = -1;          // executing rank (receiver / issuing process)
  int peer = -1;          // sender rank / destination process (-1: none)
  int src_site = -1;
  int dst_site = -1;
  double messages = 0;    // aggregated message count (1 for runtime recv)
  Bytes bytes = 0;

  Seconds ready = 0;      // dependencies satisfied (virtual time)
  Seconds start = 0;      // wire transfer begins
  Seconds end = 0;        // completion

  Seconds alpha_seconds = 0;
  Seconds beta_seconds = 0;
  Seconds fault_stall_seconds = 0;
  Seconds contention_stall_seconds = 0;

  std::int64_t pred_program = -1;
  std::int64_t pred_message = -1;
  std::int64_t pred_link = -1;
};

/// Thread-safe happened-before recorder shared by runtime and replay.
class CritGraph {
 public:
  struct Run {
    int id = 0;
    std::string label;
    Seconds origin = 0;  // virtual time the run starts at
  };

  /// Open a new run segment (thread-safe); subsequent events recorded
  /// with this run id belong to it. `origin` is the virtual timestamp
  /// the execution starts at (nonzero for fault replays offset into a
  /// plan's schedule).
  int begin_run(std::string label, Seconds origin = 0);

  /// Allocate the next causal id (lock-free after the call).
  std::int64_t next_id();

  /// Append one finished event (thread-safe).
  void add(CritEvent event);

  bool empty() const;
  std::vector<Run> runs() const;

  /// Events of `run` in canonical order — sorted by (rank, seq), ids
  /// renumbered densely from 0, predecessor ids remapped (dangling
  /// references become -1). Deterministic for deterministic executions.
  std::vector<CritEvent> canonical_events(int run) const;

  /// {"meta": {...}, "runs": [{run, label, origin, analysis: {...},
  /// events: [...]}]}. `include_events` drops the raw DAG (analysis
  /// summaries only) for compact regression baselines.
  void write_json(std::ostream& os, const RunMeta* meta = nullptr,
                  bool include_events = true) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Run> runs_;
  std::vector<CritEvent> events_;
  std::int64_t next_id_ = 0;
};

/// Per-component seconds of one step or aggregate.
struct ComponentTotals {
  Seconds alpha = 0;
  Seconds beta = 0;
  Seconds contention_stall = 0;
  Seconds fault_stall = 0;
  Seconds local = 0;  // compute / idle between path events

  Seconds total() const {
    return alpha + beta + contention_stall + fault_stall + local;
  }
  ComponentTotals& operator+=(const ComponentTotals& o);
};

/// One event on the critical path plus the local gap that preceded it.
struct CritPathStep {
  CritEvent event;
  Seconds local_gap = 0;  // event.ready − binding predecessor's end
  int gap_rank = -1;      // rank the gap elapsed on

  ComponentTotals components() const;
  Seconds duration() const { return components().total(); }
};

struct PairAttribution {
  int src_site = -1;
  int dst_site = -1;
  ComponentTotals components;
  double messages = 0;
  Bytes bytes = 0;
  std::int64_t events = 0;
};

struct RankAttribution {
  int rank = -1;
  ComponentTotals components;
  std::int64_t events = 0;
};

struct CriticalPath {
  Seconds origin = 0;
  /// Last event completion minus origin (0 for an empty DAG).
  Seconds makespan = 0;
  /// Sum of all step components; equals makespan up to reassociation.
  Seconds path_seconds = 0;
  ComponentTotals totals;
  std::vector<CritPathStep> steps;        // chronological order
  std::vector<PairAttribution> by_pair;   // sorted by total desc
  std::vector<RankAttribution> by_rank;   // sorted by total desc
};

/// Extract the critical path of one run's events (any order; ids must be
/// internally consistent). `origin` anchors the chain start.
CriticalPath extract_critical_path(const std::vector<CritEvent>& events,
                                   Seconds origin = 0);

/// Emit `"analysis": {...}` for one extracted path as the next member of
/// the currently open JSON object (shared by the artifact writer and
/// `obsctl analyze --json`).
void write_analysis_member(JsonWriter& w, const CriticalPath& path,
                           std::size_t top_steps = 0);

/// Parse one run's events back from the "events" array of a critpath
/// artifact (inverse of CritGraph::write_json).
std::vector<CritEvent> critpath_events_from_json(const JsonValue& events);

}  // namespace geomap::obs
