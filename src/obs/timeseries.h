#pragma once
// Online windowed telemetry: bounded time series of (virtual-time, value)
// points keyed by metric name + label.
//
// The metrics registry (obs/metrics.h) answers "how much, in total" after
// the run; a TimeSeries answers "how much, *when*" while the run is still
// going — the input a production controller needs to notice that a link
// started degrading at t=37 without reading the injected FaultPlan. The
// runtime and the replay engines record one point per observed inter-site
// transfer (per site-pair label), the degradation detector (obs/detector.h)
// consumes the points online, and the whole registry exports as the
// `timeline` JSON artifact (--timeline-out / --obs-dir).
//
// Memory is bounded: each series is a ring of at most `capacity` points.
// When the ring overflows, the points with the *smallest virtual
// timestamps* are evicted — a deterministic policy (unlike arrival-order
// eviction, which would depend on host thread scheduling), so the
// retained set is a pure function of the recorded multiset. Export sorts
// points by (t, value); two runs recording the same points produce
// byte-identical timelines regardless of recording order.
//
// All entry points are thread-safe; rank threads record concurrently.

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace geomap {
class JsonWriter;
}

namespace geomap::obs {

struct RunMeta;

/// A closed [since, until] window on the virtual timeline, defaulting to
/// all of time. One definition of the boundary semantics every windowed
/// reader shares (obsctl's `timeline --since/--until` and `events
/// --since/--until` both filter through it): both endpoints are
/// *inclusive* — since == until selects exactly the points at that
/// instant — and since > until is a valid, empty window.
struct TimeWindow {
  Seconds since = -std::numeric_limits<Seconds>::infinity();
  Seconds until = std::numeric_limits<Seconds>::infinity();

  bool empty() const { return since > until; }
  bool contains(Seconds t) const { return t >= since && t <= until; }
  /// Does [start, end] intersect the window? An empty window intersects
  /// nothing.
  bool intersects(Seconds start, Seconds end) const {
    return !empty() && start <= until && end >= since;
  }
  Seconds clamp(Seconds t) const {
    return t < since ? since : (t > until ? until : t);
  }
};

/// One observation on a virtual timeline.
struct TimePoint {
  Seconds t = 0;
  double value = 0;

  friend bool operator<(const TimePoint& a, const TimePoint& b) {
    return a.t != b.t ? a.t < b.t : a.value < b.value;
  }
  friend bool operator==(const TimePoint& a, const TimePoint& b) {
    return a.t == b.t && a.value == b.value;
  }
};

/// Windowed aggregates over the retained points with t in
/// (t_end − window, t_end].
struct WindowStats {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  /// count / window — events per virtual second.
  double rate = 0;
  /// EWMA of the window's values in (t, value) order.
  double ewma = 0;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity);

  /// Record one point (thread-safe). When the ring is past capacity the
  /// smallest-timestamp points are evicted.
  void record(Seconds t, double value);

  /// Record a batch under one lock. Eviction is a pure function of the
  /// recorded multiset, so the retained set (and the export) is identical
  /// to per-point record() calls. Hot single-threaded loops buffer
  /// locally and flush once.
  void record_many(const std::vector<TimePoint>& points);

  std::size_t capacity() const { return capacity_; }

  /// Total points ever recorded (retained + evicted).
  std::uint64_t total_recorded() const;

  /// Retained points sorted by (t, value) — at most capacity() of them,
  /// the largest timestamps recorded so far.
  std::vector<TimePoint> points() const;

  /// Aggregates over retained points in (t_end − window, t_end].
  /// `window` must be positive; `ewma_lambda` in (0, 1].
  WindowStats window(Seconds t_end, Seconds window,
                     double ewma_lambda = 0.3) const;

 private:
  /// Sort descending by (t, value) and keep the newest `capacity_`.
  /// Caller holds mutex_.
  void compact_locked();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TimePoint> buffer_;  // unsorted between compactions
  std::uint64_t total_ = 0;
};

/// Find-or-create registry of time series, keyed by metric name plus a
/// free-form label (site-pair links use "src->dst"). References stay
/// valid for the registry's lifetime, so hot paths resolve once and
/// record lock-free of the registry map.
class TimeSeriesRegistry {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Ring capacity for series created after this call (existing series
  /// keep theirs). Throws InvalidArgument on zero.
  void set_default_capacity(std::size_t capacity);

  TimeSeries& series(const std::string& name, const std::string& label = "");

  /// The series' full keys ("name{label}" or bare "name"), sorted.
  std::vector<std::string> keys() const;

  /// The series under `key`, or nullptr.
  const TimeSeries* find(const std::string& key) const;

  bool empty() const;

  /// {"meta": {...}, "window_seconds": W, "series": {key: {capacity,
  /// total, dropped, last_window: {...}, points: [[t, v], ...]}}}.
  /// Keys sorted (std::map order); points sorted by (t, value) — the
  /// export is byte-identical across reruns of a deterministic workload.
  /// `last_window` aggregates the trailing `window_seconds` ending at the
  /// series' newest timestamp.
  void write_json(std::ostream& os, const RunMeta* meta = nullptr,
                  Seconds window_seconds = 10.0) const;

  /// Emit `"window_seconds": W, "series": {...}` as the next members of
  /// the currently open JSON object (shared with the timeline-artifact
  /// writer in obs/detector.h).
  void write_members(JsonWriter& w, Seconds window_seconds) const;

 private:
  mutable std::mutex mutex_;
  std::size_t default_capacity_ = kDefaultCapacity;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

/// Canonical registry key for per-link series: "name{src->dst}".
std::string link_series_key(const std::string& name, int src, int dst);

/// Canonical link label "src->dst".
std::string link_label(int src, int dst);

/// Parse a "src->dst" label; returns false (and leaves outputs untouched)
/// when the label is not of that form.
bool parse_link_label(const std::string& label, int* src, int* dst);

/// Tenant-scoped link label "t<k>:src->dst" — the multi-tenant substrate
/// records each tenant's per-link series under these so overlapping
/// migrations render as separate timeline lanes.
std::string tenant_link_label(int tenant, int src, int dst);

/// Parse a "t<k>:src->dst" label; returns false (outputs untouched) when
/// the label is not of that form. Plain "src->dst" labels return false —
/// use parse_link_label for those.
bool parse_tenant_link_label(const std::string& label, int* tenant, int* src,
                             int* dst);

}  // namespace geomap::obs
