#include "obs/eventlog.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <tuple>

#include "common/error.h"
#include "common/json_reader.h"
#include "common/json_writer.h"
#include "obs/run_meta.h"

namespace geomap::obs {

namespace {

bool deterministic_from_env() {
  const char* v = std::getenv("GEOMAP_PROFILE_DETERMINISTIC");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

void write_field_value(JsonWriter& w, const EventField& f) {
  switch (f.kind) {
    case EventField::Kind::kInt:
      w.value(f.int_value);
      break;
    case EventField::Kind::kDouble:
      w.value(f.double_value);
      break;
    case EventField::Kind::kString:
      w.value(f.string_value);
      break;
    case EventField::Kind::kBool:
      w.value(f.bool_value);
      break;
  }
}

}  // namespace

const char* to_string(EventSeverity s) {
  switch (s) {
    case EventSeverity::kDebug:
      return "debug";
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarn:
      return "warn";
    case EventSeverity::kError:
      return "error";
  }
  return "info";
}

EventSeverity parse_event_severity(const std::string& s) {
  if (s == "debug") return EventSeverity::kDebug;
  if (s == "info") return EventSeverity::kInfo;
  if (s == "warn") return EventSeverity::kWarn;
  if (s == "error") return EventSeverity::kError;
  throw Error("unknown event severity: " + s);
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? kDefaultCapacity : capacity) {}

void EventLog::emit(Seconds t, EventSeverity severity, std::string component,
                    std::string name, std::vector<EventField> fields) {
  Event e;
  e.t = t;
  e.severity = severity;
  e.component = std::move(component);
  e.name = std::move(name);
  e.fields = std::move(fields);
  std::lock_guard<std::mutex> lock(mutex_);
  e.seq = ++total_;
  events_.push_back(std::move(e));
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::uint64_t EventLog::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<Event> EventLog::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<Event>(events_.begin(), events_.end());
}

std::vector<Event> EventLog::events_since(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.seq > seq) out.push_back(e);
  }
  return out;
}

bool EventLog::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.empty();
}

std::string event_to_json(const Event& e) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("seq", e.seq);
  w.field("t", e.t);
  w.field("severity", to_string(e.severity));
  w.field("component", e.component);
  w.field("event", e.name);
  w.key("fields").begin_object();
  for (const EventField& f : e.fields) {
    w.key(f.key);
    write_field_value(w, f);
  }
  w.end_object();
  w.end_object();
  return os.str();
}

void EventLog::write_jsonl(std::ostream& os, const RunMeta* meta) const {
  std::vector<Event> events;
  std::uint64_t total = 0, dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events.assign(events_.begin(), events_.end());
    total = total_;
    dropped = dropped_;
  }
  if (deterministic_from_env()) {
    // Rank threads race on emission order; canonicalize so the exported
    // stream is a pure function of the workload, then renumber so seq
    // stays monotone in file order (the critpath exporter's convention).
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       const auto ka = std::make_tuple(
                           a.t, a.component, a.name, static_cast<int>(a.severity));
                       const auto kb = std::make_tuple(
                           b.t, b.component, b.name, static_cast<int>(b.severity));
                       if (ka != kb) return ka < kb;
                       // Tie-break on the fields alone: the racy seq must
                       // not leak into the canonical order, so serialize
                       // with it masked.
                       Event ma = a;
                       Event mb = b;
                       ma.seq = 0;
                       mb.seq = 0;
                       return event_to_json(ma) < event_to_json(mb);
                     });
    for (std::size_t i = 0; i < events.size(); ++i)
      events[i].seq = dropped + i + 1;
  }
  {
    std::ostringstream line;
    JsonWriter w(line, /*pretty=*/false);
    w.begin_object();
    w.field("kind", "meta");
    if (meta != nullptr) meta->write_member(w);
    w.field("events", total);
    w.field("dropped", dropped);
    w.end_object();
    os << line.str() << "\n";
  }
  for (const Event& e : events) os << event_to_json(e) << "\n";
}

Event event_from_json(const JsonValue& v) {
  GEOMAP_CHECK_ARG(v.is_object(), "event line is not a JSON object");
  Event e;
  e.seq = static_cast<std::uint64_t>(v.number_or("seq", 0));
  e.t = v.number_or("t", 0);
  e.severity = parse_event_severity(v.string_or("severity", "info"));
  e.component = v.string_or("component", "");
  e.name = v.string_or("event", "");
  if (const JsonValue* fields = v.find("fields")) {
    GEOMAP_CHECK_ARG(fields->is_object(), "event 'fields' is not an object");
    for (const auto& [key, fv] : fields->members()) {
      switch (fv.kind()) {
        case JsonValue::Kind::kBool:
          e.fields.push_back(field(key, fv.as_bool()));
          break;
        case JsonValue::Kind::kString:
          e.fields.push_back(field(key, fv.as_string()));
          break;
        case JsonValue::Kind::kNumber: {
          const double d = fv.as_number();
          if (std::nearbyint(d) == d &&
              std::abs(d) <= 9.007199254740992e15) {  // 2^53: exact ints
            e.fields.push_back(field(key, static_cast<std::int64_t>(d)));
          } else {
            e.fields.push_back(field(key, d));
          }
          break;
        }
        default:
          throw InvalidArgument("event field '" + key +
                                "' has unsupported JSON type");
      }
    }
  }
  return e;
}

std::vector<Event> read_events_jsonl(std::istream& is) {
  std::vector<Event> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const JsonValue v = parse_json(line);
    if (v.is_object() && v.string_or("kind", "") == "meta") continue;
    out.push_back(event_from_json(v));
  }
  return out;
}

}  // namespace geomap::obs
