#include "obs/audit.h"

#include <ostream>

#include "common/json_writer.h"
#include "obs/run_meta.h"

namespace geomap::obs {

void MapperAudit::add(MapCallRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  calls_.push_back(std::move(record));
}

std::vector<MapCallRecord> MapperAudit::calls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return calls_;
}

bool MapperAudit::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return calls_.empty();
}

void MapperAudit::write_json(std::ostream& os, const RunMeta* meta) const {
  const std::vector<MapCallRecord> calls = this->calls();
  JsonWriter w(os);
  w.begin_object();
  if (meta != nullptr) meta->write_member(w);
  w.key("map_calls").begin_array();
  for (const MapCallRecord& call : calls) {
    w.begin_object();
    w.field("mapper", call.mapper);
    w.field("num_processes", call.num_processes);
    w.field("num_sites", call.num_sites);
    w.field("num_groups", call.num_groups);
    w.field("kmeans_iterations", call.kmeans_iterations);
    w.field("orders_enumerated", call.orders_enumerated);
    w.key("orders").begin_array();
    for (const OrderDecision& order : call.orders) {
      w.begin_object();
      w.key("order").begin_array();
      for (const int g : order.order) w.value(g);
      w.end_array();
      w.field("cost_seconds", order.cost_seconds);
      w.field("winner", order.winner);
      w.key("pairs").begin_array();
      for (const PairTerm& pair : order.pairs) {
        w.begin_object();
        w.field("src", pair.src);
        w.field("dst", pair.dst);
        w.field("alpha_seconds", pair.alpha_seconds);
        w.field("beta_seconds", pair.beta_seconds);
        w.field("messages", pair.messages);
        w.field("bytes", pair.bytes);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

}  // namespace geomap::obs
