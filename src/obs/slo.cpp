#include "obs/slo.h"

#include <algorithm>
#include <ostream>

#include "common/error.h"
#include "common/json_reader.h"
#include "common/json_writer.h"
#include "obs/run_meta.h"

namespace geomap::obs {

namespace {

// The selected field of an event, if present and numeric.
bool field_value(const Event& e, const std::string& key, double* out) {
  for (const EventField& f : e.fields) {
    if (f.key != key) continue;
    switch (f.kind) {
      case EventField::Kind::kInt:
        *out = static_cast<double>(f.int_value);
        return true;
      case EventField::Kind::kDouble:
        *out = f.double_value;
        return true;
      default:
        return false;
    }
  }
  return false;
}

void check_spec(const SloSpec& s) {
  GEOMAP_CHECK_MSG(!s.name.empty(), "SLO spec needs a name");
  GEOMAP_CHECK_MSG(!s.component.empty() && !s.event.empty() && !s.field.empty(),
                   "SLO spec '" << s.name
                                << "' needs component, event, and field");
  GEOMAP_CHECK_MSG(s.objective > 0.0 && s.objective < 1.0,
                   "SLO spec '" << s.name << "' objective must be in (0, 1), got "
                                << s.objective);
}

}  // namespace

std::vector<SloSpec> default_slo_specs() {
  std::vector<SloSpec> specs;
  {
    SloSpec s;
    s.name = "detection_latency";
    s.description = "degradation onsets detected within the latency bound";
    s.component = "detector";
    s.event = "onset";
    s.field = "latency";
    s.threshold = 10.0;
    s.objective = 0.90;
    specs.push_back(s);
  }
  {
    SloSpec s;
    s.name = "remap_queue_wait";
    s.description = "remap grants issued within the queue-wait bound";
    s.component = "scheduler";
    s.event = "grant";
    s.field = "queue_wait";
    s.threshold = 120.0;
    s.objective = 0.95;
    specs.push_back(s);
  }
  {
    SloSpec s;
    s.name = "migration_downtime";
    s.description = "per-process migration downtime within the freeze bound";
    s.component = "migrate";
    s.event = "commit";
    s.field = "downtime";
    s.threshold = 2.0;
    s.objective = 0.95;
    specs.push_back(s);
  }
  {
    SloSpec s;
    s.name = "placement_stretch";
    s.description =
        "soak-case p99 shared-makespan stretch vs the solo-oracle baseline";
    s.component = "soak";
    s.event = "case_done";
    s.field = "p99_stretch";
    s.threshold = 4.0;
    s.objective = 0.90;
    specs.push_back(s);
  }
  for (const SloSpec& s : specs) check_spec(s);
  return specs;
}

std::vector<SloSpec> slo_specs_from_json(const JsonValue& root) {
  const JsonValue* list = root.find("slos");
  GEOMAP_CHECK_MSG(list != nullptr && list->is_array(),
                   "SLO spec file needs a top-level \"slos\" array");
  std::vector<SloSpec> specs;
  for (const JsonValue& item : list->items()) {
    GEOMAP_CHECK_MSG(item.is_object(), "SLO spec entries must be objects");
    SloSpec s;
    s.name = item.string_or("name", "");
    s.description = item.string_or("description", "");
    s.component = item.string_or("component", "");
    s.event = item.string_or("event", "");
    s.field = item.string_or("field", "");
    s.threshold = item.number_or("threshold", 0.0);
    s.objective = item.number_or("objective", 0.99);
    const JsonValue* hib = item.find("higher_is_better");
    s.higher_is_better = hib != nullptr && hib->is_bool() && hib->as_bool();
    check_spec(s);
    specs.push_back(std::move(s));
  }
  return specs;
}

SloTracker::SloTracker() : specs_(default_slo_specs()) {}

SloTracker::SloTracker(std::vector<SloSpec> specs) : specs_(std::move(specs)) {
  for (const SloSpec& s : specs_) check_spec(s);
}

SloReport evaluate_slos(const std::vector<Event>& events,
                        const std::vector<SloSpec>& specs) {
  SloReport report;
  for (const SloSpec& spec : specs) {
    check_spec(spec);
    SloResult r;
    r.spec = spec;
    r.error_budget = 1.0 - spec.objective;
    bool have_worst = false;
    for (const Event& e : events) {
      if (e.component != spec.component || e.name != spec.event) continue;
      double v = 0;
      if (!field_value(e, spec.field, &v)) continue;
      r.events += 1;
      const bool good = spec.higher_is_better ? v >= spec.threshold
                                              : v <= spec.threshold;
      (good ? r.good : r.bad) += 1;
      const bool worse = spec.higher_is_better ? v < r.worst : v > r.worst;
      if (!have_worst || worse) {
        r.worst = v;
        have_worst = true;
      }
    }
    if (r.events > 0) {
      r.compliance = static_cast<double>(r.good) / static_cast<double>(r.events);
      r.budget_used = static_cast<double>(r.bad) / static_cast<double>(r.events);
      r.burn = r.budget_used / r.error_budget;
    }
    // The objective is the contract: good/events >= objective. Deciding
    // via `burn <= 1` would re-divide through 1 - objective and let
    // floating-point noise flip an exactly-on-budget run (e.g. 9 good of
    // 10 at objective 0.9) into a violation.
    r.ok = r.compliance >= r.spec.objective;
    report.ok = report.ok && r.ok;
    report.slos.push_back(std::move(r));
  }
  return report;
}

void write_slo_json(std::ostream& os, const SloReport& report,
                    const RunMeta* meta) {
  // Sort by name so the artifact (and its regress flatten) is stable
  // regardless of spec order.
  std::vector<const SloResult*> sorted;
  sorted.reserve(report.slos.size());
  for (const SloResult& r : report.slos) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const SloResult* a, const SloResult* b) {
              return a->spec.name < b->spec.name;
            });
  JsonWriter w(os);
  w.begin_object();
  if (meta != nullptr) meta->write_member(w);
  w.field("ok", report.ok);
  w.key("slos").begin_object();
  for (const SloResult* r : sorted) {
    w.key(r->spec.name).begin_object();
    if (!r->spec.description.empty())
      w.field("description", r->spec.description);
    w.field("component", r->spec.component);
    w.field("event", r->spec.event);
    w.field("field", r->spec.field);
    w.field("threshold", r->spec.threshold);
    if (r->spec.higher_is_better) w.field("higher_is_better", true);
    w.field("objective", r->spec.objective);
    w.field("events", r->events);
    w.field("good", r->good);
    w.field("bad", r->bad);
    w.field("compliance", r->compliance);
    w.field("error_budget", r->error_budget);
    w.field("budget_used", r->budget_used);
    w.field("burn", r->burn);
    w.field("worst", r->worst);
    w.field("ok", r->ok);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << "\n";
}

}  // namespace geomap::obs
