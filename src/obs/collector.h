#pragma once
// The opt-in observability handle threaded through Pipeline, Runtime, and
// the mapper options: one Collector bundles the metrics registry, the
// span tracer, and the mapper decision audit trail.
//
// Contract: every instrumented component takes a `Collector*` that
// defaults to nullptr, and with no collector attached executes the exact
// pre-observability code path — mappings, RunResults, and replay results
// are bit-identical to an uninstrumented build (asserted by tests). With
// a collector attached, instrumentation only observes; it never alters a
// decision.
//
// The collector is thread-safe: rank threads and parallel order
// evaluations record into the same instance concurrently.

#include <iosfwd>
#include <utility>

#include "obs/audit.h"
#include "obs/critpath.h"
#include "obs/detector.h"
#include "obs/eventlog.h"
#include "obs/incident.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/run_meta.h"
#include "obs/span.h"
#include "obs/timeseries.h"

namespace geomap::obs {

class Collector {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  SpanTracer& tracer() { return tracer_; }
  const SpanTracer& tracer() const { return tracer_; }

  MapperAudit& audit() { return audit_; }
  const MapperAudit& audit() const { return audit_; }

  CritGraph& critpath() { return critpath_; }
  const CritGraph& critpath() const { return critpath_; }

  TimeSeriesRegistry& timeline() { return timeline_; }
  const TimeSeriesRegistry& timeline() const { return timeline_; }

  DetectionLog& detections() { return detections_; }
  const DetectionLog& detections() const { return detections_; }

  PhaseProfiler& profile() { return profile_; }
  const PhaseProfiler& profile() const { return profile_; }

  MemTracker& mem() { return mem_; }
  const MemTracker& mem() const { return mem_; }

  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

  IncidentLog& incidents() { return incidents_; }
  const IncidentLog& incidents() const { return incidents_; }

  /// Run metadata stamped into every exported artifact. Set once by the
  /// bench harness before the first export; default is an empty header.
  void set_meta(RunMeta meta) { meta_ = std::move(meta); }
  const RunMeta& meta() const { return meta_; }

  /// The forensic recorders — the per-order decision audit and the
  /// per-edge critical-path event log — cost real time on hot paths
  /// (unlike the always-on set: metrics, spans, timeline, profiler,
  /// memory, whose overhead the CI gate bounds at 5%). They default on
  /// so a directly constructed Collector records everything, but the
  /// bench harness enables each only when its artifact was requested.
  /// Instrumented sites consult these flags before recording.
  void set_audit_enabled(bool enabled) { audit_enabled_ = enabled; }
  bool audit_enabled() const { return audit_enabled_; }
  void set_critpath_enabled(bool enabled) { critpath_enabled_ = enabled; }
  bool critpath_enabled() const { return critpath_enabled_; }

  /// Exporters (one JSON document each; see the member classes for the
  /// schemas). Streams are flushed by the caller.
  void write_metrics_json(std::ostream& os) const {
    metrics_.write_json(os, &meta_);
  }
  void write_trace_json(std::ostream& os) const {
    tracer_.write_chrome_trace(os, &meta_);
  }
  void write_audit_json(std::ostream& os) const {
    audit_.write_json(os, &meta_);
  }
  void write_critpath_json(std::ostream& os, bool include_events = true) const {
    critpath_.write_json(os, &meta_, include_events);
  }
  void write_timeline_json(std::ostream& os) const {
    obs::write_timeline_json(os, timeline_, detections_, &meta_);
  }
  void write_profile_json(std::ostream& os) const {
    profile_.write_json(os, &mem_, &meta_);
  }
  void write_profile_collapsed(std::ostream& os) const {
    profile_.write_collapsed(os);
  }
  void write_events_jsonl(std::ostream& os) const {
    events_.write_jsonl(os, &meta_);
  }
  void write_incidents_json(std::ostream& os) const {
    const AttributionTotals totals = incidents_.totals();
    obs::write_incidents_json(os, incidents_.snapshot(),
                              incidents_.has_totals() ? &totals : nullptr,
                              &meta_);
  }

 private:
  MetricsRegistry metrics_;
  SpanTracer tracer_;
  MapperAudit audit_;
  CritGraph critpath_;
  TimeSeriesRegistry timeline_;
  DetectionLog detections_;
  PhaseProfiler profile_;
  MemTracker mem_;
  EventLog events_;
  IncidentLog incidents_;
  RunMeta meta_;
  bool audit_enabled_ = true;
  bool critpath_enabled_ = true;
};

}  // namespace geomap::obs
