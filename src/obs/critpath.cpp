#include "obs/critpath.h"

#include <algorithm>
#include <limits>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "common/json_reader.h"
#include "common/json_writer.h"

namespace geomap::obs {

// ---------------------------------------------------------------------------
// CritGraph
// ---------------------------------------------------------------------------

int CritGraph::begin_run(std::string label, Seconds origin) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = static_cast<int>(runs_.size());
  runs_.push_back(Run{id, std::move(label), origin});
  return id;
}

std::int64_t CritGraph::next_id() {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_++;
}

void CritGraph::add(CritEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

bool CritGraph::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.empty();
}

std::vector<CritGraph::Run> CritGraph::runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return runs_;
}

std::vector<CritEvent> CritGraph::canonical_events(int run) const {
  std::vector<CritEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const CritEvent& e : events_) {
      if (e.run == run) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(), [](const CritEvent& a, const CritEvent& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.seq < b.seq;
  });
  std::unordered_map<std::int64_t, std::int64_t> remap;
  remap.reserve(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    remap[out[i].id] = static_cast<std::int64_t>(i);
  }
  const auto translate = [&remap](std::int64_t id) -> std::int64_t {
    if (id < 0) return -1;
    const auto it = remap.find(id);
    return it == remap.end() ? -1 : it->second;
  };
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].id = static_cast<std::int64_t>(i);
    out[i].pred_program = translate(out[i].pred_program);
    out[i].pred_message = translate(out[i].pred_message);
    out[i].pred_link = translate(out[i].pred_link);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Components / steps
// ---------------------------------------------------------------------------

ComponentTotals& ComponentTotals::operator+=(const ComponentTotals& o) {
  alpha += o.alpha;
  beta += o.beta;
  contention_stall += o.contention_stall;
  fault_stall += o.fault_stall;
  local += o.local;
  return *this;
}

ComponentTotals CritPathStep::components() const {
  ComponentTotals c;
  c.alpha = event.alpha_seconds;
  c.beta = event.beta_seconds;
  c.contention_stall = event.contention_stall_seconds;
  c.fault_stall = event.fault_stall_seconds;
  c.local = local_gap;
  return c;
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

namespace {

Seconds wire_seconds(const CritEvent& e) {
  return e.alpha_seconds + e.beta_seconds + e.contention_stall_seconds +
         e.fault_stall_seconds;
}

}  // namespace

CriticalPath extract_critical_path(const std::vector<CritEvent>& events,
                                   Seconds origin) {
  CriticalPath path;
  path.origin = origin;
  if (events.empty()) return path;

  std::unordered_map<std::int64_t, const CritEvent*> by_id;
  by_id.reserve(events.size());
  for (const CritEvent& e : events) by_id[e.id] = &e;

  // Terminal event: the latest completion; ties break toward the smallest
  // id so extraction is deterministic for canonicalized inputs.
  const CritEvent* last = &events.front();
  for (const CritEvent& e : events) {
    if (e.end > last->end || (e.end == last->end && e.id < last->id)) {
      last = &e;
    }
  }
  path.makespan = last->end - origin;

  // Backward walk along binding predecessors. The binding dependency is
  // whichever of {program-order pred, message pred} finished later — that
  // is the one that actually gated this event's readiness. pred_link is
  // deliberately not followed: link occupancy shows up as the contention
  // component of the waiting event, not as a detour through an unrelated
  // transfer's chain.
  std::vector<CritPathStep> reversed;
  std::unordered_set<std::int64_t> visited;
  const CritEvent* cur = last;
  while (cur != nullptr) {
    GEOMAP_CHECK_MSG(visited.insert(cur->id).second,
                     "critpath: cycle detected at event " << cur->id);
    const CritEvent* prog = nullptr;
    const CritEvent* msg = nullptr;
    if (cur->pred_program >= 0) {
      const auto it = by_id.find(cur->pred_program);
      if (it != by_id.end()) prog = it->second;
    }
    if (cur->pred_message >= 0) {
      const auto it = by_id.find(cur->pred_message);
      if (it != by_id.end()) msg = it->second;
    }
    const CritEvent* pred = prog;
    if (msg != nullptr && (prog == nullptr || msg->end > prog->end)) {
      pred = msg;
    }

    CritPathStep step;
    step.event = *cur;
    const Seconds pred_end = (pred != nullptr) ? pred->end : origin;
    // Everything of [pred_end, cur->end] not covered by the recorded
    // wire components is local time (compute, idle, recording slack):
    // this makes each step span exactly cur->end − pred_end, so the sum
    // over the chain telescopes to the makespan.
    step.local_gap = (cur->end - pred_end) - wire_seconds(*cur);
    step.gap_rank = (pred != nullptr) ? pred->rank : cur->rank;
    reversed.push_back(std::move(step));
    cur = pred;
  }
  std::reverse(reversed.begin(), reversed.end());
  path.steps = std::move(reversed);

  // Aggregate.
  std::unordered_map<std::int64_t, PairAttribution> pairs;
  std::unordered_map<int, RankAttribution> ranks;
  for (const CritPathStep& step : path.steps) {
    const ComponentTotals c = step.components();
    path.totals += c;
    path.path_seconds += c.total();

    const std::int64_t pair_key =
        (static_cast<std::int64_t>(step.event.src_site) << 32) ^
        static_cast<std::int64_t>(static_cast<std::uint32_t>(
            step.event.dst_site));
    PairAttribution& pa = pairs[pair_key];
    pa.src_site = step.event.src_site;
    pa.dst_site = step.event.dst_site;
    pa.components += c;
    pa.messages += step.event.messages;
    pa.bytes += step.event.bytes;
    pa.events += 1;

    // Wire time belongs to the event's executing rank; the local gap
    // elapsed on whichever rank was computing between path events.
    ComponentTotals wire = c;
    wire.local = 0;
    RankAttribution& ra = ranks[step.event.rank];
    ra.rank = step.event.rank;
    ra.components += wire;
    ra.events += 1;
    if (step.local_gap != 0) {
      const int gr = (step.gap_rank >= 0) ? step.gap_rank : step.event.rank;
      RankAttribution& gra = ranks[gr];
      gra.rank = gr;
      gra.components.local += step.local_gap;
    }
  }
  for (auto& [key, pa] : pairs) path.by_pair.push_back(pa);
  for (auto& [key, ra] : ranks) path.by_rank.push_back(ra);
  std::sort(path.by_pair.begin(), path.by_pair.end(),
            [](const PairAttribution& a, const PairAttribution& b) {
              const Seconds ta = a.components.total();
              const Seconds tb = b.components.total();
              if (ta != tb) return ta > tb;
              if (a.src_site != b.src_site) return a.src_site < b.src_site;
              return a.dst_site < b.dst_site;
            });
  std::sort(path.by_rank.begin(), path.by_rank.end(),
            [](const RankAttribution& a, const RankAttribution& b) {
              const Seconds ta = a.components.total();
              const Seconds tb = b.components.total();
              if (ta != tb) return ta > tb;
              return a.rank < b.rank;
            });
  return path;
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

namespace {

void write_components_member(JsonWriter& w, const ComponentTotals& c) {
  w.key("components").begin_object();
  w.field("alpha_seconds", c.alpha);
  w.field("beta_seconds", c.beta);
  w.field("contention_stall_seconds", c.contention_stall);
  w.field("fault_stall_seconds", c.fault_stall);
  w.field("local_seconds", c.local);
  w.end_object();
}

void write_step_object(JsonWriter& w, const CritPathStep& step) {
  w.begin_object();
  w.field("id", step.event.id);
  w.field("kind", step.event.kind);
  w.field("rank", step.event.rank);
  w.field("peer", step.event.peer);
  w.field("src_site", step.event.src_site);
  w.field("dst_site", step.event.dst_site);
  w.field("messages", step.event.messages);
  w.field("bytes", step.event.bytes);
  w.field("start", step.event.start);
  w.field("end", step.event.end);
  w.field("duration_seconds", step.duration());
  write_components_member(w, step.components());
  w.end_object();
}

void write_event_object(JsonWriter& w, const CritEvent& e) {
  w.begin_object();
  w.field("id", e.id);
  w.field("seq", e.seq);
  w.field("kind", e.kind);
  w.field("rank", e.rank);
  w.field("peer", e.peer);
  w.field("src_site", e.src_site);
  w.field("dst_site", e.dst_site);
  w.field("messages", e.messages);
  w.field("bytes", e.bytes);
  w.field("ready", e.ready);
  w.field("start", e.start);
  w.field("end", e.end);
  w.field("alpha_seconds", e.alpha_seconds);
  w.field("beta_seconds", e.beta_seconds);
  w.field("fault_stall_seconds", e.fault_stall_seconds);
  w.field("contention_stall_seconds", e.contention_stall_seconds);
  w.field("pred_program", e.pred_program);
  w.field("pred_message", e.pred_message);
  w.field("pred_link", e.pred_link);
  w.end_object();
}

}  // namespace

void write_analysis_member(JsonWriter& w, const CriticalPath& path,
                           std::size_t top_steps) {
  w.key("analysis").begin_object();
  w.field("makespan_seconds", path.makespan);
  w.field("path_seconds", path.path_seconds);
  w.field("path_steps", static_cast<std::int64_t>(path.steps.size()));
  write_components_member(w, path.totals);
  w.key("by_pair").begin_array();
  for (const PairAttribution& pa : path.by_pair) {
    w.begin_object();
    w.field("src_site", pa.src_site);
    w.field("dst_site", pa.dst_site);
    w.field("seconds", pa.components.total());
    write_components_member(w, pa.components);
    w.field("messages", pa.messages);
    w.field("bytes", pa.bytes);
    w.field("events", pa.events);
    w.end_object();
  }
  w.end_array();
  w.key("by_rank").begin_array();
  for (const RankAttribution& ra : path.by_rank) {
    w.begin_object();
    w.field("rank", ra.rank);
    w.field("seconds", ra.components.total());
    write_components_member(w, ra.components);
    w.field("events", ra.events);
    w.end_object();
  }
  w.end_array();
  if (top_steps > 0) {
    std::vector<const CritPathStep*> slowest;
    slowest.reserve(path.steps.size());
    for (const CritPathStep& s : path.steps) slowest.push_back(&s);
    std::stable_sort(slowest.begin(), slowest.end(),
                     [](const CritPathStep* a, const CritPathStep* b) {
                       return a->duration() > b->duration();
                     });
    if (slowest.size() > top_steps) slowest.resize(top_steps);
    w.key("top_steps").begin_array();
    for (const CritPathStep* s : slowest) write_step_object(w, *s);
    w.end_array();
  }
  w.end_object();
}

void CritGraph::write_json(std::ostream& os, const RunMeta* meta,
                           bool include_events) const {
  JsonWriter w(os);
  w.begin_object();
  if (meta != nullptr) meta->write_member(w);
  w.key("runs").begin_array();
  for (const Run& run : runs()) {
    const std::vector<CritEvent> events = canonical_events(run.id);
    const CriticalPath path = extract_critical_path(events, run.origin);
    w.begin_object();
    w.field("run", run.id);
    w.field("label", run.label);
    w.field("origin", run.origin);
    w.field("event_count", static_cast<std::int64_t>(events.size()));
    write_analysis_member(w, path);
    if (include_events) {
      w.key("events").begin_array();
      for (const CritEvent& e : events) write_event_object(w, e);
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

// ---------------------------------------------------------------------------
// JSON import (obsctl)
// ---------------------------------------------------------------------------

std::vector<CritEvent> critpath_events_from_json(const JsonValue& events) {
  GEOMAP_CHECK_ARG(events.is_array(), "critpath: 'events' is not an array");
  std::vector<CritEvent> out;
  out.reserve(events.items().size());
  for (const JsonValue& item : events.items()) {
    GEOMAP_CHECK_ARG(item.is_object(), "critpath: event is not an object");
    CritEvent e;
    e.id = static_cast<std::int64_t>(item.at("id").as_number());
    e.seq = static_cast<std::int64_t>(item.number_or("seq", 0));
    e.kind = item.string_or("kind", "");
    e.rank = static_cast<int>(item.number_or("rank", -1));
    e.peer = static_cast<int>(item.number_or("peer", -1));
    e.src_site = static_cast<int>(item.number_or("src_site", -1));
    e.dst_site = static_cast<int>(item.number_or("dst_site", -1));
    e.messages = item.number_or("messages", 0);
    e.bytes = item.number_or("bytes", 0);
    e.ready = item.number_or("ready", 0);
    e.start = item.number_or("start", 0);
    e.end = item.at("end").as_number();
    e.alpha_seconds = item.number_or("alpha_seconds", 0);
    e.beta_seconds = item.number_or("beta_seconds", 0);
    e.fault_stall_seconds = item.number_or("fault_stall_seconds", 0);
    e.contention_stall_seconds =
        item.number_or("contention_stall_seconds", 0);
    e.pred_program =
        static_cast<std::int64_t>(item.number_or("pred_program", -1));
    e.pred_message =
        static_cast<std::int64_t>(item.number_or("pred_message", -1));
    e.pred_link = static_cast<std::int64_t>(item.number_or("pred_link", -1));
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace geomap::obs
