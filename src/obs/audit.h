#pragma once
// Mapper decision audit trail: why did Algorithm 1 pick this group order?
//
// For every map() call of the geo-distributed mapper, the audit stores
// every group order the order search enumerated, each with its COST(P^θ)
// and the per-ordered-site-pair decomposition of that cost into the two
// terms of paper Equation (3):
//
//   alpha(k,l) = Σ_{edges i→j mapped to (k,l)} AG(i,j) · LT(k,l)
//   beta(k,l)  = Σ_{edges i→j mapped to (k,l)} CG(i,j) / BT(k,l)
//
// The schema contract (asserted by tests): each order's stored
// cost_seconds is bit-identical to CostEvaluator::total_cost of that
// candidate mapping, and Σ_pairs (alpha + beta) reproduces it up to
// floating-point summation order (pair-major vs edge-major folds of the
// same addends; relative error ~1e-15 per fold, asserted < 1e-12 in
// tests), so the exported JSON is a faithful
// cost attribution — which WAN pair, and which term (latency or volume),
// every candidate paid.
//
// The audit stores plain data only; the decomposition itself is computed
// by mapping::CostEvaluator::breakdown at the instrumentation site, which
// keeps this library free of mapping/net dependencies.

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace geomap::obs {

struct RunMeta;

/// Cost contribution of one ordered site pair under one candidate order.
/// Zero-cost pairs are omitted from the trail.
struct PairTerm {
  int src = 0;
  int dst = 0;
  double alpha_seconds = 0;  // Σ count · LT(src, dst)
  double beta_seconds = 0;   // Σ volume / BT(src, dst)
  double messages = 0;       // Σ AG over contributing edges
  double bytes = 0;          // Σ CG over contributing edges
};

/// One enumerated group order and its evaluation.
struct OrderDecision {
  std::vector<int> order;  // permutation of group ids, visit order
  double cost_seconds = 0;  // COST(P^θ) as the mapper computed it
  bool winner = false;
  std::vector<PairTerm> pairs;
};

/// One audited map() call (hierarchical recursion records one per level).
struct MapCallRecord {
  std::string mapper;
  int num_processes = 0;
  int num_sites = 0;
  int num_groups = 0;
  int kmeans_iterations = 0;
  std::int64_t orders_enumerated = 0;
  std::vector<OrderDecision> orders;
};

class MapperAudit {
 public:
  /// Append one finished map() call (thread-safe).
  void add(MapCallRecord record);

  std::vector<MapCallRecord> calls() const;  // copy, for tests
  bool empty() const;

  /// {"meta": {...}, "map_calls": [ {mapper, ..., "orders": [ {order,
  /// cost_seconds, winner, "pairs": [...]}, ... ]}, ... ]} — `meta` is
  /// omitted when null.
  void write_json(std::ostream& os, const RunMeta* meta = nullptr) const;

 private:
  mutable std::mutex mutex_;
  std::vector<MapCallRecord> calls_;
};

}  // namespace geomap::obs
