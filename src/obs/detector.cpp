#include "obs/detector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <tuple>

#include "common/error.h"
#include "common/json_writer.h"
#include "obs/run_meta.h"
#include "recover/wal.h"

namespace geomap::obs {

namespace {

constexpr Seconds kInf = std::numeric_limits<double>::infinity();

bool event_order(const DegradationEvent& a, const DegradationEvent& b) {
  return std::tie(a.onset_vtime, a.src, a.dst, a.kind) <
         std::tie(b.onset_vtime, b.src, b.dst, b.kind);
}

}  // namespace

const char* to_string(DegradationKind kind) {
  return kind == DegradationKind::kDown ? "down" : "latency";
}

void DetectorOptions::validate() const {
  GEOMAP_CHECK_ARG(ewma_lambda > 0 && ewma_lambda <= 1,
                   "ewma_lambda must be in (0, 1], got " << ewma_lambda);
  GEOMAP_CHECK_ARG(cusum_slack >= 0,
                   "cusum_slack must be non-negative, got " << cusum_slack);
  GEOMAP_CHECK_ARG(cusum_threshold > 0,
                   "cusum_threshold must be positive, got " << cusum_threshold);
  GEOMAP_CHECK_ARG(clear_fraction >= 0 && clear_fraction < 1,
                   "clear_fraction must be in [0, 1), got " << clear_fraction);
  GEOMAP_CHECK_ARG(retry_window > 0,
                   "retry_window must be positive, got " << retry_window);
  GEOMAP_CHECK_ARG(retry_count_threshold > 0,
                   "retry_count_threshold must be positive, got "
                       << retry_count_threshold);
  GEOMAP_CHECK_ARG(down_quiet > 0,
                   "down_quiet must be positive, got " << down_quiet);
  GEOMAP_CHECK_ARG(down_severity >= 1,
                   "down_severity must be >= 1, got " << down_severity);
}

DegradationDetector::DegradationDetector(DetectorOptions options)
    : options_(options) {
  options_.validate();
}

DegradationDetector::LinkState& DegradationDetector::state(SiteId src,
                                                           SiteId dst) {
  return links_[{src, dst}];
}

namespace {

/// WAL payload for an episode boundary: the fields re-emission needs to
/// reproduce the streamed event exactly (recover/records.cpp decodes).
std::string episode_payload(const DegradationEvent& e, Seconds end) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("src", e.src);
  w.field("dst", e.dst);
  w.field("kind", to_string(e.kind));
  w.field("onset", e.onset_vtime);
  w.field("detect", e.detect_vtime);
  if (std::isfinite(end)) w.field("end", end);
  w.field("severity", e.severity);
  w.field("confidence", e.confidence);
  w.end_object();
  return os.str();
}

}  // namespace

void DegradationDetector::emit_onset(const DegradationEvent& e) {
  if (wal_ != nullptr) {
    wal_->append(recover::WalRecordType::kDetectorOnset, e.detect_vtime,
                 episode_payload(e, kInf));
    wal_->sync();
  }
  if (event_log_ == nullptr) return;
  event_log_->emit(e.detect_vtime, EventSeverity::kWarn, "detector", "onset",
                   {field("src", e.src), field("dst", e.dst),
                    field("kind", to_string(e.kind)),
                    field("onset", e.onset_vtime),
                    field("latency", std::max(0.0, e.detect_vtime - e.onset_vtime)),
                    field("severity", e.severity),
                    field("confidence", e.confidence)});
}

void DegradationDetector::emit_clear(const DegradationEvent& e, Seconds t) {
  if (wal_ != nullptr) {
    wal_->append(recover::WalRecordType::kDetectorClear, t,
                 episode_payload(e, t));
    wal_->sync();
  }
  if (event_log_ == nullptr) return;
  event_log_->emit(t, EventSeverity::kInfo, "detector", "clear",
                   {field("src", e.src), field("dst", e.dst),
                    field("kind", to_string(e.kind)),
                    field("duration", std::max(0.0, t - e.onset_vtime)),
                    field("severity", e.severity),
                    field("confidence", e.confidence)});
}

void DegradationDetector::maybe_close_down(LinkState& s, Seconds t) {
  if (s.open_down < 0) return;
  if (t - s.last_down_signal <= options_.down_quiet) return;
  DegradationEvent& open = events_[static_cast<std::size_t>(s.open_down)];
  open.end_vtime = s.last_down_signal + options_.down_quiet;
  emit_clear(open, open.end_vtime);
  s.open_down = -1;
  s.recent_retries.clear();
}

void DegradationDetector::observe_latency_ratio(SiteId src, SiteId dst,
                                                Seconds t, double ratio) {
  GEOMAP_CHECK_ARG(ratio >= 0 && std::isfinite(ratio),
                   "latency ratio must be finite and non-negative, got "
                       << ratio);
  LinkState& s = state(src, dst);
  maybe_close_down(s, t);

  if (!s.ewma_primed) {
    s.ewma = ratio;
    s.ewma_primed = true;
  } else {
    s.ewma = options_.ewma_lambda * ratio +
             (1 - options_.ewma_lambda) * s.ewma;
  }

  // One-sided CUSUM against the known-healthy baseline ratio of 1.0,
  // capped at 2h: a long excursion otherwise accumulates an unbounded
  // backlog that delays recovery detection arbitrarily, and 2h is where
  // the confidence estimate saturates anyway.
  const double h = options_.cusum_threshold;
  s.cusum = std::min(
      2 * h, std::max(0.0, s.cusum + (ratio - 1.0 - options_.cusum_slack)));
  if (s.cusum > 0) {
    if (s.excursion_start < 0) s.excursion_start = t;
  } else {
    s.excursion_start = -1;
  }
  if (s.open_latency < 0) {
    if (s.cusum >= h) {
      DegradationEvent e;
      e.src = src;
      e.dst = dst;
      e.kind = DegradationKind::kLatency;
      e.onset_vtime = s.excursion_start >= 0 ? s.excursion_start : t;
      e.detect_vtime = t;
      e.end_vtime = kInf;
      e.severity = std::max(1.0, s.ewma);
      e.confidence = std::min(1.0, s.cusum / (2 * h));
      s.open_latency = static_cast<std::ptrdiff_t>(events_.size());
      events_.push_back(e);
      emit_onset(e);
    }
    return;
  }

  DegradationEvent& open = events_[static_cast<std::size_t>(s.open_latency)];
  open.severity = std::max(open.severity, std::max(1.0, s.ewma));
  open.confidence = std::max(open.confidence, std::min(1.0, s.cusum / (2 * h)));
  if (s.cusum <= options_.clear_fraction * h) {
    open.end_vtime = t;
    emit_clear(open, t);
    s.open_latency = -1;
    s.cusum = 0;
    s.excursion_start = -1;
  }
}

void DegradationDetector::observe_retry(SiteId src, SiteId dst, Seconds t,
                                        double count) {
  GEOMAP_CHECK_ARG(count > 0, "retry count must be positive, got " << count);
  LinkState& s = state(src, dst);
  maybe_close_down(s, t);
  s.recent_retries.emplace_back(t, count);
  // Prune the sliding window (points arrive in non-decreasing t).
  std::size_t keep = 0;
  while (keep < s.recent_retries.size() &&
         s.recent_retries[keep].first <= t - options_.retry_window) {
    ++keep;
  }
  s.recent_retries.erase(s.recent_retries.begin(),
                         s.recent_retries.begin() +
                             static_cast<std::ptrdiff_t>(keep));
  double in_window = 0;
  for (const auto& [rt, rc] : s.recent_retries) in_window += rc;

  if (s.open_down >= 0) {
    DegradationEvent& open = events_[static_cast<std::size_t>(s.open_down)];
    open.confidence = std::max(
        open.confidence,
        std::min(1.0, in_window / (2 * options_.retry_count_threshold)));
    s.last_down_signal = t;
    return;
  }
  if (in_window >= options_.retry_count_threshold) {
    DegradationEvent e;
    e.src = src;
    e.dst = dst;
    e.kind = DegradationKind::kDown;
    e.onset_vtime = s.recent_retries.front().first;
    e.detect_vtime = t;
    e.end_vtime = kInf;
    e.severity = options_.down_severity;
    e.confidence =
        std::min(1.0, in_window / (2 * options_.retry_count_threshold));
    s.open_down = static_cast<std::ptrdiff_t>(events_.size());
    s.last_down_signal = t;
    events_.push_back(e);
    emit_onset(e);
  }
}

void DegradationDetector::observe_timeout(SiteId src, SiteId dst, Seconds t) {
  LinkState& s = state(src, dst);
  maybe_close_down(s, t);
  if (s.open_down >= 0) {
    events_[static_cast<std::size_t>(s.open_down)].confidence = 1.0;
    s.last_down_signal = t;
    return;
  }
  DegradationEvent e;
  e.src = src;
  e.dst = dst;
  e.kind = DegradationKind::kDown;
  // A timeout is the end of an exhausted retry ladder; back-date the
  // onset to the earliest retry still in the window when there is one.
  e.onset_vtime = s.recent_retries.empty() ? t : s.recent_retries.front().first;
  e.detect_vtime = t;
  e.end_vtime = kInf;
  e.severity = options_.down_severity;
  e.confidence = 1.0;
  s.open_down = static_cast<std::ptrdiff_t>(events_.size());
  s.last_down_signal = t;
  events_.push_back(e);
  emit_onset(e);
}

void DegradationDetector::scan(const TimeSeriesRegistry& timeline) {
  // Feed each link's merged latency / retry / timeout stream in
  // virtual-time order, link by link (links in sorted order), so the
  // cross-signal episode logic (retry-quiet closing, etc.) sees the same
  // order an in-run observer would. The stable re-sort on (src, dst)
  // groups the globally-ordered extraction per link while preserving
  // each link's (t, signal, value) subsequence order.
  std::vector<LinkSample> samples = collect_link_samples(timeline);
  std::stable_sort(samples.begin(), samples.end(),
                   [](const LinkSample& a, const LinkSample& b) {
                     return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
                   });
  for (const LinkSample& s : samples) feed_sample(*this, s);
}

std::vector<DegradationEvent> DegradationDetector::events() const {
  std::vector<DegradationEvent> out = events_;
  std::sort(out.begin(), out.end(), event_order);
  return out;
}

DetectorCheckpoint DegradationDetector::checkpoint() const {
  DetectorCheckpoint ckpt;
  ckpt.events = events_;
  ckpt.links.reserve(links_.size());
  for (const auto& [link, s] : links_) {
    DetectorLinkState ls;
    ls.src = link.first;
    ls.dst = link.second;
    ls.cusum = s.cusum;
    ls.ewma = s.ewma;
    ls.ewma_primed = s.ewma_primed;
    ls.excursion_start = s.excursion_start;
    ls.open_latency = s.open_latency;
    ls.recent_retries = s.recent_retries;
    ls.open_down = s.open_down;
    ls.last_down_signal = s.last_down_signal;
    ckpt.links.push_back(std::move(ls));
  }
  return ckpt;
}

void DegradationDetector::restore(const DetectorCheckpoint& ckpt) {
  events_ = ckpt.events;
  links_.clear();
  for (const DetectorLinkState& ls : ckpt.links) {
    GEOMAP_CHECK_ARG(ls.open_latency <
                             static_cast<std::ptrdiff_t>(ckpt.events.size()) &&
                         ls.open_down <
                             static_cast<std::ptrdiff_t>(ckpt.events.size()),
                     "detector checkpoint open-episode index out of range for "
                     "link " << ls.src << "->" << ls.dst);
    LinkState& s = links_[{ls.src, ls.dst}];
    s.cusum = ls.cusum;
    s.ewma = ls.ewma;
    s.ewma_primed = ls.ewma_primed;
    s.excursion_start = ls.excursion_start;
    s.open_latency = ls.open_latency;
    s.recent_retries = ls.recent_retries;
    s.open_down = ls.open_down;
    s.last_down_signal = ls.last_down_signal;
  }
}

std::vector<LinkSample> collect_link_samples(
    const TimeSeriesRegistry& timeline) {
  std::vector<LinkSample> out;
  for (const std::string& key : timeline.keys()) {
    const std::size_t brace = key.find('{');
    if (brace == std::string::npos || key.back() != '}') continue;
    const std::string name = key.substr(0, brace);
    int signal;
    if (name == "link.latency_ratio") {
      signal = 0;
    } else if (name == "link.retry") {
      signal = 1;
    } else if (name == "link.timeout") {
      signal = 2;
    } else {
      continue;
    }
    int src = -1, dst = -1;
    if (!parse_link_label(key.substr(brace + 1, key.size() - brace - 2), &src,
                          &dst)) {
      continue;
    }
    const TimeSeries* series = timeline.find(key);
    if (series == nullptr) continue;
    for (const TimePoint& p : series->points()) {
      out.push_back(LinkSample{src, dst, signal, p.t, p.value});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LinkSample& a, const LinkSample& b) {
              return std::tie(a.t, a.src, a.dst, a.signal, a.value) <
                     std::tie(b.t, b.src, b.dst, b.signal, b.value);
            });
  return out;
}

void feed_sample(DegradationDetector& detector, const LinkSample& sample) {
  switch (sample.signal) {
    case 0:
      detector.observe_latency_ratio(sample.src, sample.dst, sample.t,
                                     sample.value);
      break;
    case 1:
      detector.observe_retry(sample.src, sample.dst, sample.t, sample.value);
      break;
    case 2:
      detector.observe_timeout(sample.src, sample.dst, sample.t);
      break;
    default:
      GEOMAP_CHECK_ARG(false, "unknown link sample signal " << sample.signal);
  }
}

// ---------------------------------------------------------------------------
// Scoring

DetectionScore score_detections(const std::vector<DegradationEvent>& events,
                                const std::vector<TruthWindow>& truth,
                                const DetectionScoreOptions& options) {
  GEOMAP_CHECK_ARG(options.match_slack >= 0,
                   "match_slack must be non-negative, got "
                       << options.match_slack);
  const auto observable = [&options](SiteId src, SiteId dst) {
    if (options.observable_links.empty()) return true;
    for (const auto& [s, d] : options.observable_links) {
      if (s == src && d == dst) return true;
    }
    return false;
  };
  const auto overlaps = [&options](const DegradationEvent& e,
                                   const TruthWindow& w) {
    if (e.src != w.src || e.dst != w.dst) return false;
    return e.onset_vtime <= w.end + options.match_slack &&
           e.end_vtime >= w.start - options.match_slack;
  };

  DetectionScore score;
  for (const DegradationEvent& e : events) {
    bool matched = false;
    for (const TruthWindow& w : truth) {
      if (overlaps(e, w)) {
        matched = true;
        break;
      }
    }
    if (matched) {
      score.true_positive_events += 1;
    } else {
      score.false_positive_events += 1;
    }
  }

  Seconds latency_sum = 0;
  for (const TruthWindow& w : truth) {
    if (!observable(w.src, w.dst)) continue;
    Seconds best_detect = kInf;
    for (const DegradationEvent& e : events) {
      // A down window is only *proven* detected by a down event; a
      // degradation window is detected by either kind.
      if (w.down && e.kind != DegradationKind::kDown) continue;
      if (overlaps(e, w)) best_detect = std::min(best_detect, e.detect_vtime);
    }
    if (best_detect == kInf) {
      score.missed_windows += 1;
    } else {
      score.detected_windows += 1;
      latency_sum += std::max(0.0, best_detect - w.start);
    }
  }

  const int total_events =
      score.true_positive_events + score.false_positive_events;
  if (total_events > 0) {
    score.precision =
        static_cast<double>(score.true_positive_events) / total_events;
  }
  const int total_windows = score.detected_windows + score.missed_windows;
  if (total_windows > 0) {
    score.recall = static_cast<double>(score.detected_windows) / total_windows;
  }
  if (score.detected_windows > 0) {
    latency_sum /= score.detected_windows;
    score.mean_detection_latency = latency_sum;
  }
  return score;
}

// ---------------------------------------------------------------------------
// DetectionLog + timeline artifact

void DetectionLog::add_events(const std::vector<DegradationEvent>& events) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.insert(events_.end(), events.begin(), events.end());
}

void DetectionLog::add_truth(const std::vector<TruthWindow>& windows) {
  std::lock_guard<std::mutex> lock(mutex_);
  truth_.insert(truth_.end(), windows.begin(), windows.end());
}

void DetectionLog::set_score(const DetectionScore& score) {
  std::lock_guard<std::mutex> lock(mutex_);
  has_score_ = true;
  score_ = score;
}

std::vector<DegradationEvent> DetectionLog::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DegradationEvent> out = events_;
  std::sort(out.begin(), out.end(), event_order);
  return out;
}

std::vector<TruthWindow> DetectionLog::truth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TruthWindow> out = truth_;
  std::sort(out.begin(), out.end(), [](const TruthWindow& a,
                                       const TruthWindow& b) {
    return std::tie(a.start, a.src, a.dst, a.end, a.down) <
           std::tie(b.start, b.src, b.dst, b.end, b.down);
  });
  return out;
}

bool DetectionLog::has_score() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return has_score_;
}

DetectionScore DetectionLog::score() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return score_;
}

bool DetectionLog::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.empty() && truth_.empty() && !has_score_;
}

namespace {

/// JSON-safe time: +inf (open episodes, permanent faults) becomes null.
void time_field(JsonWriter& w, const char* key, Seconds t) {
  w.key(key);
  if (std::isfinite(t)) {
    w.value(t);
  } else {
    w.null();
  }
}

}  // namespace

void write_timeline_json(std::ostream& os, const TimeSeriesRegistry& timeline,
                         const DetectionLog& detections, const RunMeta* meta,
                         Seconds window_seconds) {
  JsonWriter w(os);
  w.begin_object();
  if (meta != nullptr) meta->write_member(w);
  timeline.write_members(w, window_seconds);
  w.key("detections").begin_array();
  for (const DegradationEvent& e : detections.events()) {
    w.begin_object();
    w.field("src", e.src);
    w.field("dst", e.dst);
    w.field("kind", to_string(e.kind));
    w.field("onset", e.onset_vtime);
    w.field("detect", e.detect_vtime);
    time_field(w, "end", e.end_vtime);
    w.field("severity", e.severity);
    w.field("confidence", e.confidence);
    w.end_object();
  }
  w.end_array();
  const std::vector<TruthWindow> truth = detections.truth();
  if (!truth.empty()) {
    w.key("truth").begin_array();
    for (const TruthWindow& t : truth) {
      w.begin_object();
      w.field("src", t.src);
      w.field("dst", t.dst);
      w.field("start", t.start);
      time_field(w, "end", t.end);
      w.field("down", t.down);
      w.end_object();
    }
    w.end_array();
  }
  if (detections.has_score()) {
    const DetectionScore score = detections.score();
    w.key("score").begin_object();
    w.field("precision", score.precision);
    w.field("recall", score.recall);
    w.field("true_positive_events", score.true_positive_events);
    w.field("false_positive_events", score.false_positive_events);
    w.field("detected_windows", score.detected_windows);
    w.field("missed_windows", score.missed_windows);
    w.field("mean_detection_latency", score.mean_detection_latency);
    w.end_object();
  }
  w.end_object();
  os << "\n";
}

}  // namespace geomap::obs
