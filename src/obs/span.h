#pragma once
// RAII spans with wall-clock *and* virtual-time intervals, exported as
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Two timelines coexist in one trace file:
//
//   pid 0 "wall clock"   — host time per thread: pipeline phases, mapper
//                          order searches, runtime runs.
//   pid 1 "virtual time" — the runtime's per-rank virtual clocks:
//                          transfers, retry backoffs, outage stalls. A
//                          faulted run renders as a per-rank timeline
//                          where a retry storm is a pile of nested
//                          "retry"/"outage-stall" spans inside the
//                          enclosing "recv".
//
// A Span records its wall interval from construction to destruction (or
// end()); set_virtual() attaches a rank-scoped virtual interval before it
// closes. record_virtual() emits a closed virtual-only span directly —
// the runtime uses it because virtual intervals are known only after the
// fact. All entry points are thread-safe; rank threads trace
// concurrently.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace geomap::obs {

class SpanTracer;
struct RunMeta;

/// One finished interval as stored by the tracer.
struct SpanRecord {
  std::string name;
  std::string category;
  int tid = 0;  // wall: small per-thread index; virtual: rank id
  double wall_start_us = 0;
  double wall_end_us = 0;
  bool has_wall = true;
  int rank = -1;  // >= 0 when a virtual interval is attached
  Seconds vt_start = 0;
  Seconds vt_end = 0;
  bool has_virtual = false;
  /// Preformatted JSON object for the event's "args" (empty = none).
  std::string args_json;
};

/// Movable RAII handle; the disengaged (default-constructed) span is a
/// no-op, which lets instrumented code write
/// `obs::Span s; if (collector) s = collector->tracer().span(...);`.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Attach a virtual-time interval on `rank`'s timeline.
  void set_virtual(int rank, Seconds vt_start, Seconds vt_end);

  /// Attach a preformatted JSON object as the trace event's "args".
  void set_args_json(std::string args_json);

  /// Close early (records the span; further calls are no-ops).
  void end();

  bool active() const { return tracer_ != nullptr; }

 private:
  friend class SpanTracer;
  Span(SpanTracer* tracer, std::string name, std::string category);

  SpanTracer* tracer_ = nullptr;
  SpanRecord record_;
};

class SpanTracer {
 public:
  SpanTracer();

  /// Open a wall-clock span on the calling thread's timeline.
  Span span(std::string name, std::string category = "pipeline");

  /// Record a closed virtual-time interval on `rank`'s timeline.
  void record_virtual(int rank, std::string name, std::string category,
                      Seconds vt_start, Seconds vt_end,
                      std::string args_json = {});

  /// Microseconds of wall clock since tracer construction.
  double now_us() const;

  /// Finished spans in completion order (copy, for tests).
  std::vector<SpanRecord> records() const;

  /// Chrome trace-event JSON: {"traceEvents": [...], "displayTimeUnit":
  /// "ms", "geomapMeta": {...}} with process/thread metadata naming the
  /// two timelines. Events are sorted (start time, then name/tid) so the
  /// file layout does not depend on the host's thread completion order.
  void write_chrome_trace(std::ostream& os, const RunMeta* meta = nullptr)
      const;

 private:
  friend class Span;
  void finish(SpanRecord record);
  int thread_index();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::unordered_map<std::thread::id, int> thread_index_;
};

}  // namespace geomap::obs
