#pragma once
// Online degradation detection over per-link telemetry — the half of the
// observe→detect→remap loop that PR 1's remap_on_outage skipped by
// reading the injected FaultPlan directly. The detector sees only what a
// production controller would: the time series the runtime and replay
// engines record (obs/timeseries.h), namely per-site-pair observed
// latency ratios (observed wire time / calibrated healthy wire time) and
// retry / timeout events. From those it emits DegradationEvents with no
// access to the ground truth.
//
// Detection math, per ordered link:
//
//   * latency episodes — the healthy latency ratio is 1.0 by
//     construction (the calibrated model is the baseline), so a one-sided
//     CUSUM S = max(0, S + (x − 1 − k)) accumulates sustained excess over
//     the slack k and alarms at S ≥ h (S is capped at 2h, so a long
//     excursion cannot delay recovery detection arbitrarily). The
//     episode's onset is back-dated
//     to the start of the positive excursion; an EWMA of the excursion's
//     ratios estimates severity (the wire-time inflation factor); the
//     episode closes when S decays back under clear_fraction · h.
//
//   * down episodes — retries are counted over a sliding virtual-time
//     window (≥ retry_count_threshold within retry_window ⇒ the link is
//     losing traffic); a timeout (retry budget exhausted) opens a down
//     episode immediately with confidence 1. A down episode closes after
//     down_quiet seconds without a retry or timeout.
//
// The scorer compares emitted events against the FaultPlan's ground-truth
// windows (fault::FaultPlan::truth_windows — evaluation only, never an
// input to detection) and reports precision / recall / detection latency.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/eventlog.h"
#include "obs/timeseries.h"

namespace geomap::recover {
class Wal;
}

namespace geomap::obs {

struct RunMeta;

/// What kind of misbehaviour an event reports.
enum class DegradationKind { kLatency, kDown };

const char* to_string(DegradationKind kind);

/// One detected degradation episode on ordered link (src, dst). Open
/// episodes (still degraded when the telemetry ends) have end_vtime =
/// +infinity.
struct DegradationEvent {
  SiteId src = -1;
  SiteId dst = -1;
  DegradationKind kind = DegradationKind::kLatency;
  /// Estimated start of the degradation (back-dated excursion start).
  Seconds onset_vtime = 0;
  /// When the detector actually alarmed; detect − truth onset is the
  /// detection latency the scorer reports.
  Seconds detect_vtime = 0;
  Seconds end_vtime = 0;
  /// Estimated wire-time inflation factor (>= 1).
  double severity = 1.0;
  /// 0..1; grows with the decision statistic's margin over threshold.
  double confidence = 0;
};

/// Ground-truth fault window on ordered link (src, dst), expanded from a
/// FaultPlan for scoring only. `down` marks windows where the link was
/// unusable (an endpoint site outage) rather than merely degraded.
struct TruthWindow {
  SiteId src = -1;
  SiteId dst = -1;
  Seconds start = 0;
  Seconds end = 0;  // +infinity for permanent faults
  bool down = false;
};

struct DetectorOptions {
  /// EWMA smoothing for the severity estimate.
  double ewma_lambda = 0.3;
  /// CUSUM slack k: per-point ratio excess absorbed without accumulating
  /// (noise margin around the healthy ratio of 1.0).
  double cusum_slack = 0.25;
  /// CUSUM alarm threshold h.
  double cusum_threshold = 2.0;
  /// A latency episode closes when its CUSUM decays to
  /// clear_fraction * cusum_threshold.
  double clear_fraction = 0.25;
  /// Sliding window and count for retry-driven down detection.
  Seconds retry_window = 1.0;
  double retry_count_threshold = 3;
  /// A down episode closes after this long without a retry or timeout.
  Seconds down_quiet = 2.0;
  /// Severity reported for down links (no finite ratio is observable).
  double down_severity = 100.0;

  void validate() const;
};

/// Serializable snapshot of one link's detector state — the CUSUM,
/// severity EWMA, retry window and open-episode indices that re-arming
/// after a crash must restore exactly (indices refer to
/// DetectorCheckpoint::events, which preserves insertion order).
struct DetectorLinkState {
  SiteId src = -1;
  SiteId dst = -1;
  double cusum = 0;
  double ewma = 1.0;
  bool ewma_primed = false;
  Seconds excursion_start = -1;
  std::ptrdiff_t open_latency = -1;
  std::vector<std::pair<Seconds, double>> recent_retries;
  std::ptrdiff_t open_down = -1;
  Seconds last_down_signal = 0;
};

/// Complete detector state at a point in the sample stream. restore()
/// re-arms a fresh detector without double-counting: open episodes stay
/// open (no re-onset when the next sample arrives), closed ones stay
/// closed.
struct DetectorCheckpoint {
  /// Episodes in insertion order (NOT the sorted order events() returns)
  /// so the per-link open-episode indices stay valid.
  std::vector<DegradationEvent> events;
  std::vector<DetectorLinkState> links;
};

/// One telemetry point destined for the detector, extracted from a
/// timeline registry. `signal`: 0 = latency ratio, 1 = retry, 2 =
/// timeout.
struct LinkSample {
  SiteId src = -1;
  SiteId dst = -1;
  int signal = 0;
  Seconds t = 0;
  double value = 0;
};

class DegradationDetector {
 public:
  explicit DegradationDetector(DetectorOptions options = {});

  /// Feed one observed latency ratio (observed wire / healthy wire) for
  /// ordered link (src, dst) at virtual time t. Points must arrive in
  /// non-decreasing t per link.
  void observe_latency_ratio(SiteId src, SiteId dst, Seconds t, double ratio);

  /// Feed `count` observed retries on (src, dst) at virtual time t.
  void observe_retry(SiteId src, SiteId dst, Seconds t, double count = 1);

  /// Feed one retry-budget exhaustion on (src, dst) at virtual time t —
  /// the strongest down signal; opens a down episode immediately.
  void observe_timeout(SiteId src, SiteId dst, Seconds t);

  /// Replay a registry's link series ("link.latency_ratio",
  /// "link.retry", "link.timeout" keyed by "src->dst" labels) through the
  /// detector in virtual-time order. Other series are ignored.
  void scan(const TimeSeriesRegistry& timeline);

  /// Snapshot of all episodes so far (open ones have end_vtime = +inf),
  /// sorted by (onset, src, dst, kind).
  std::vector<DegradationEvent> events() const;

  /// Opt-in streaming emission: with a log attached the detector emits
  /// one "detector/onset" event when an episode opens (with the
  /// detection latency detect − onset) and one "detector/clear" when it
  /// closes. nullptr (the default) keeps the exact unobserved code path.
  void set_event_log(EventLog* log) { event_log_ = log; }

  /// Opt-in crash consistency: with a WAL attached the detector appends
  /// a detector_onset / detector_clear record (and syncs) alongside each
  /// streamed emission, so a crashed control plane can re-emit the
  /// episode history it already announced. nullptr (the default) keeps
  /// the exact unlogged code path bit-identical.
  void set_wal(recover::Wal* wal) { wal_ = wal; }

  /// Serialize / restore complete detector state (see
  /// DetectorCheckpoint). restore() replaces all state and emits
  /// nothing.
  DetectorCheckpoint checkpoint() const;
  void restore(const DetectorCheckpoint& ckpt);

  const DetectorOptions& options() const { return options_; }

 private:
  struct LinkState {
    // Latency CUSUM.
    double cusum = 0;
    double ewma = 1.0;
    bool ewma_primed = false;
    Seconds excursion_start = -1;  // <0: no positive excursion open
    std::ptrdiff_t open_latency = -1;  // index into events_
    // Retry window for down detection.
    std::vector<std::pair<Seconds, double>> recent_retries;
    std::ptrdiff_t open_down = -1;
    Seconds last_down_signal = 0;
  };

  LinkState& state(SiteId src, SiteId dst);
  void maybe_close_down(LinkState& s, Seconds t);

  void emit_onset(const DegradationEvent& e);
  void emit_clear(const DegradationEvent& e, Seconds t);

  DetectorOptions options_;
  std::map<std::pair<SiteId, SiteId>, LinkState> links_;
  std::vector<DegradationEvent> events_;
  EventLog* event_log_ = nullptr;
  recover::Wal* wal_ = nullptr;
};

/// Extract every link.latency_ratio / link.retry / link.timeout point
/// from a registry as one stream in a deterministic total order —
/// (t, src, dst, signal, value) — suitable for incremental feeding with
/// a resumable watermark (an index into this vector). Per-link relative
/// order matches what scan() feeds.
std::vector<LinkSample> collect_link_samples(
    const TimeSeriesRegistry& timeline);

/// Feed one extracted sample.
void feed_sample(DegradationDetector& detector, const LinkSample& sample);

// ---------------------------------------------------------------------------
// Scoring against ground truth (evaluation only)

struct DetectionScoreOptions {
  /// Grace period: an event still matches a truth window when its
  /// interval overlaps [start − slack, end + slack].
  Seconds match_slack = 0.5;
  /// When non-empty, only truth windows for these ordered links are
  /// scored — links that carried no observable traffic cannot be
  /// detected and are excluded from recall by the caller.
  std::vector<std::pair<SiteId, SiteId>> observable_links;
};

struct DetectionScore {
  int true_positive_events = 0;  // events overlapping >= 1 truth window
  int false_positive_events = 0;
  int detected_windows = 0;  // truth windows with >= 1 matching event
  int missed_windows = 0;
  /// true_positives / all events; vacuous 1.0 with no events.
  double precision = 1.0;
  /// detected / all scored windows; vacuous 1.0 with no windows.
  double recall = 1.0;
  /// Mean of max(0, detect_vtime − window start) over detected windows.
  Seconds mean_detection_latency = 0;
};

/// Match events against truth windows: an event matches a window when the
/// links are equal and the intervals overlap (with slack); a *down*
/// window additionally requires a kDown event to count as detected
/// (latency events may legitimately overlap an outage but do not prove
/// the link was down).
DetectionScore score_detections(const std::vector<DegradationEvent>& events,
                                const std::vector<TruthWindow>& truth,
                                const DetectionScoreOptions& options = {});

// ---------------------------------------------------------------------------
// Detection log: events + truth carried in the timeline artifact

/// Thread-safe store of detector output (and, for scored runs, the
/// ground-truth windows) attached to a Collector, so the exported
/// timeline artifact carries the overlay `geomap-obsctl timeline`
/// renders. Truth windows appear only when a caller explicitly records
/// them — detection itself never reads them.
class DetectionLog {
 public:
  void add_events(const std::vector<DegradationEvent>& events);
  void add_truth(const std::vector<TruthWindow>& windows);
  void set_score(const DetectionScore& score);

  std::vector<DegradationEvent> events() const;
  std::vector<TruthWindow> truth() const;
  bool has_score() const;
  DetectionScore score() const;
  bool empty() const;

 private:
  mutable std::mutex mutex_;
  std::vector<DegradationEvent> events_;
  std::vector<TruthWindow> truth_;
  bool has_score_ = false;
  DetectionScore score_;
};

/// The timeline artifact: {"meta": {...}, "window_seconds": W, "series":
/// {...}, "detections": [...], "truth": [...], "score": {...}} — series
/// from the registry, the rest from the log ("truth"/"score" omitted when
/// absent). Deterministic for deterministic runs (sorted keys, sorted
/// points, events sorted by onset).
void write_timeline_json(std::ostream& os, const TimeSeriesRegistry& timeline,
                         const DetectionLog& detections,
                         const RunMeta* meta = nullptr,
                         Seconds window_seconds = 10.0);

}  // namespace geomap::obs
