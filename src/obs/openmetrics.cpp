#include "obs/openmetrics.h"

#include <ostream>

#include "common/json_writer.h"
#include "obs/run_meta.h"

namespace geomap::obs {

namespace {

// Label values escape per the exposition format: backslash, double
// quote, and newline.
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string fmt(double v) { return JsonWriter::format_double(v); }

void write_summary(std::ostream& os, const std::string& name,
                   const Histogram::Summary& s) {
  const std::string n = openmetrics_name(name);
  os << "# TYPE " << n << " summary\n";
  os << "# HELP " << n << " geomap histogram " << name << "\n";
  os << n << "{quantile=\"0.5\"} " << fmt(s.p50) << "\n";
  os << n << "{quantile=\"0.9\"} " << fmt(s.p90) << "\n";
  os << n << "{quantile=\"0.99\"} " << fmt(s.p99) << "\n";
  os << n << "_sum " << fmt(s.sum) << "\n";
  os << n << "_count " << s.count << "\n";
}

}  // namespace

MetricsSnapshot snapshot_metrics(const MetricsRegistry& registry) {
  MetricsSnapshot snap;
  snap.counters = registry.counter_values();
  snap.gauges = registry.gauge_values();
  snap.histograms = registry.histogram_summaries();
  return snap;
}

MetricsSnapshot delta_metrics(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot d;
  for (const auto& [name, v] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    d.counters.emplace(name, v >= base ? v - base : 0);
  }
  d.gauges = after.gauges;
  for (const auto& [name, s] : after.histograms) {
    Histogram::Summary ds = s;
    const auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      const Histogram::Summary& bs = it->second;
      ds.count = s.count >= bs.count ? s.count - bs.count : 0;
      ds.sum = s.sum - bs.sum;
      ds.mean = ds.count > 0 ? ds.sum / static_cast<double>(ds.count) : 0;
    }
    d.histograms.emplace(name, ds);
  }
  return d;
}

std::string openmetrics_name(const std::string& name) {
  std::string out = "geomap_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void write_openmetrics(std::ostream& os, const MetricsSnapshot& snapshot,
                       const RunMeta* meta) {
  if (meta != nullptr) {
    os << "# TYPE geomap_build_info gauge\n";
    os << "# HELP geomap_build_info run metadata header\n";
    os << "geomap_build_info{bench=\"" << escape_label(meta->bench)
       << "\",version=\"" << escape_label(meta->geomap_version)
       << "\",git=\"" << escape_label(meta->git_describe) << "\",timestamp=\""
       << escape_label(meta->timestamp) << "\"";
    if (meta->has_seed) os << ",seed=\"" << meta->seed << "\"";
    os << "} 1\n";
  }
  for (const auto& [name, v] : snapshot.counters) {
    const std::string n = openmetrics_name(name);
    os << "# TYPE " << n << " counter\n";
    os << "# HELP " << n << " geomap counter " << name << "\n";
    os << n << "_total " << v << "\n";
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string n = openmetrics_name(name);
    os << "# TYPE " << n << " gauge\n";
    os << "# HELP " << n << " geomap gauge " << name << "\n";
    os << n << " " << fmt(v) << "\n";
  }
  for (const auto& [name, s] : snapshot.histograms) write_summary(os, name, s);
  os << "# EOF\n";
}

}  // namespace geomap::obs
