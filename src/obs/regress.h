#pragma once
// Regression comparison of observability artifacts, the engine behind
// `geomap-obsctl diff` and `geomap-obsctl check`. Two JSON documents are
// flattened into sorted (dotted-key, number) leaves — array elements get
// numeric path segments, the top-level "meta" block is skipped because it
// describes the run rather than the result — and compared leaf-by-leaf.
//
// A leaf *regresses* when it is watched (matches one of the glob
// patterns; empty watch list = everything) and its relative increase over
// the baseline exceeds the threshold. Lower-is-better is the repo-wide
// convention for every exported quantity (costs, makespans, stall
// seconds), so only increases fail; improvements are reported but never
// fatal. The exceptions are quality scores (detection precision/recall),
// where *higher* is better: a watch pattern prefixed with '-' flips the
// direction — a watched decrease past the threshold fails, increases
// never do. Watched keys that disappear from the current artifact also
// fail either way: a silently vanished metric must not read as a pass.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace geomap {
class JsonValue;
}

namespace geomap::obs {

/// Depth-first flatten of all numeric leaves under `root` into
/// ("a.b.0.c", value) pairs sorted by key. `skip_meta` drops the
/// top-level "meta" member (run metadata never participates in checks).
std::vector<std::pair<std::string, double>> flatten_numeric(
    const JsonValue& root, bool skip_meta = true);

/// Glob match with `*` (any run, including dots) and `?` (one byte).
bool glob_match(std::string_view pattern, std::string_view text);

struct RegressOptions {
  /// Relative increase over baseline that counts as a regression.
  double threshold = 0.10;
  /// Values whose baseline magnitude is below this are compared
  /// absolutely: regression iff current − baseline > floor.
  double floor = 1e-9;
  /// Dotted-key glob patterns selecting the leaves that can fail the
  /// check; empty means every numeric leaf is watched. A '-' prefix
  /// marks a higher-is-better pattern: those leaves fail on a *decrease*
  /// past the threshold instead. Unwatched leaves still appear in the
  /// diff rows for context.
  std::vector<std::string> watch;
};

struct RegressRow {
  std::string key;
  double baseline = 0;
  double current = 0;
  double delta = 0;      // current − baseline
  double delta_pct = 0;  // delta / |baseline| · 100 (0 when floored)
  bool watched = false;
  bool regressed = false;
};

struct RegressReport {
  std::vector<RegressRow> rows;       // keys present in both, sorted
  std::vector<std::string> missing;   // baseline-only keys
  std::vector<std::string> added;     // current-only keys
  bool failed = false;  // any watched regression or watched missing key
};

RegressReport compare_artifacts(const JsonValue& baseline,
                                const JsonValue& current,
                                const RegressOptions& options);

}  // namespace geomap::obs
