#include "obs/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/json_writer.h"
#include "obs/run_meta.h"

namespace geomap::obs {

namespace {

bool deterministic_from_env() {
  const char* v = std::getenv("GEOMAP_PROFILE_DETERMINISTIC");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

// ---------------------------------------------------------------------------
// Tree node

struct Phase::Node {
  std::string name;
  Node* parent = nullptr;
  double wall = 0;
  double cpu = 0;
  std::uint64_t calls = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::unique_ptr<Node>> children;
};

double PhaseSnapshot::exclusive_seconds() const {
  double children_wall = 0;
  for (const PhaseSnapshot& c : children) children_wall += c.wall_seconds;
  return wall_seconds - children_wall;
}

// ---------------------------------------------------------------------------
// Phase (RAII handle)

Phase& Phase::operator=(Phase&& other) noexcept {
  if (this != &other) {
    end();
    profiler_ = other.profiler_;
    node_ = other.node_;
    wall_start_ = other.wall_start_;
    cpu_start_ = other.cpu_start_;
    thread_ = other.thread_;
    other.profiler_ = nullptr;
    other.node_ = nullptr;
  }
  return *this;
}

void Phase::count(const std::string& name, std::uint64_t n) {
  if (profiler_ == nullptr) return;
  std::lock_guard<std::mutex> lock(profiler_->mutex_);
  node_->counters[name] += n;
}

void Phase::end() {
  if (profiler_ == nullptr) return;
  PhaseProfiler* profiler = profiler_;
  profiler_ = nullptr;
  const double wall = profiler->now_seconds() - wall_start_;
  const double cpu = profiler->thread_cpu_seconds() - cpu_start_;
  profiler->close(node_, wall, cpu, thread_);
  node_ = nullptr;
}

// ---------------------------------------------------------------------------
// PhaseProfiler

PhaseProfiler::PhaseProfiler()
    : epoch_(std::chrono::steady_clock::now()),
      root_(std::make_unique<Node>()),
      deterministic_(deterministic_from_env()) {
  root_->name = "run";
}

PhaseProfiler::~PhaseProfiler() = default;

Phase PhaseProfiler::phase(std::string name) {
  Phase p;
  p.profiler_ = this;
  p.thread_ = std::this_thread::get_id();
  p.node_ = open(name);
  // Clocks read after the bookkeeping so the profiler's own lock does
  // not count against the phase.
  p.wall_start_ = now_seconds();
  p.cpu_start_ = thread_cpu_seconds();
  return p;
}

void PhaseProfiler::count(const std::string& name, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  touched_ = true;
  std::vector<Node*>& stack = stacks_[std::this_thread::get_id()];
  Node* node = stack.empty() ? root_.get() : stack.back();
  node->counters[name] += n;
}

PhaseProfiler::Node* PhaseProfiler::open(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  touched_ = true;
  std::vector<Node*>& stack = stacks_[std::this_thread::get_id()];
  Node* parent = stack.empty() ? root_.get() : stack.back();
  std::unique_ptr<Node>& slot = parent->children[name];
  if (slot == nullptr) {
    slot = std::make_unique<Node>();
    slot->name = name;
    slot->parent = parent;
  }
  stack.push_back(slot.get());
  return slot.get();
}

void PhaseProfiler::close(Node* node, double wall_delta, double cpu_delta,
                          std::thread::id tid) {
  std::lock_guard<std::mutex> lock(mutex_);
  node->wall += wall_delta;
  node->cpu += cpu_delta;
  node->calls += 1;
  // Phases normally close LIFO; a moved handle destroyed late is
  // tolerated by erasing the deepest matching frame.
  std::vector<Node*>& stack = stacks_[tid];
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (*it == node) {
      stack.erase(std::next(it).base());
      break;
    }
  }
}

void PhaseProfiler::set_deterministic(bool deterministic) {
  std::lock_guard<std::mutex> lock(mutex_);
  deterministic_ = deterministic;
}

bool PhaseProfiler::deterministic() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deterministic_;
}

bool PhaseProfiler::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !touched_;
}

double PhaseProfiler::now_seconds() const {
  if (deterministic()) return 0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

double PhaseProfiler::thread_cpu_seconds() const {
  if (deterministic()) return 0;
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

PhaseSnapshot PhaseProfiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Recursive lambda rather than a file-local helper: Node is private to
  // Phase and only friends see it.
  const auto snapshot_node = [](const auto& self,
                                const Node& node) -> PhaseSnapshot {
    PhaseSnapshot s;
    s.name = node.name;
    s.wall_seconds = node.wall;
    s.cpu_seconds = node.cpu;
    s.calls = node.calls;
    s.counters = node.counters;
    for (const auto& [name, child] : node.children)
      s.children.push_back(self(self, *child));
    return s;
  };
  PhaseSnapshot root = snapshot_node(snapshot_node, *root_);
  // The synthetic root is never opened; its inclusive times are the
  // top-level sums so exclusive times telescope to zero at the root.
  root.wall_seconds = 0;
  root.cpu_seconds = 0;
  for (const PhaseSnapshot& c : root.children) {
    root.wall_seconds += c.wall_seconds;
    root.cpu_seconds += c.cpu_seconds;
  }
  return root;
}

namespace {

void write_node_json(JsonWriter& w, const PhaseSnapshot& node) {
  w.begin_object();
  w.field("wall_seconds", node.wall_seconds);
  w.field("cpu_seconds", node.cpu_seconds);
  w.field("exclusive_seconds", node.exclusive_seconds());
  w.field("calls", node.calls);
  w.key("counters").begin_object();
  for (const auto& [name, value] : node.counters) w.field(name, value);
  w.end_object();
  w.key("children").begin_object();
  for (const PhaseSnapshot& child : node.children) {
    w.key(child.name);
    write_node_json(w, child);
  }
  w.end_object();
  w.end_object();
}

void write_collapsed_node(std::ostream& os, const PhaseSnapshot& node,
                          const std::string& prefix, bool use_calls) {
  const std::string path =
      prefix.empty() ? node.name : prefix + ";" + node.name;
  const auto weight =
      use_calls ? static_cast<long long>(node.calls)
                : std::llround(std::max(0.0, node.exclusive_seconds()) * 1e6);
  if (weight > 0) os << path << " " << weight << "\n";
  for (const PhaseSnapshot& child : node.children)
    write_collapsed_node(os, child, path, use_calls);
}

bool tree_has_time(const PhaseSnapshot& node) {
  if (node.wall_seconds > 0) return true;
  for (const PhaseSnapshot& child : node.children)
    if (tree_has_time(child)) return true;
  return false;
}

}  // namespace

void PhaseProfiler::write_json(std::ostream& os, const MemTracker* memory,
                               const RunMeta* meta) const {
  const PhaseSnapshot root = snapshot();
  JsonWriter w(os);
  w.begin_object();
  if (meta != nullptr) meta->write_member(w);
  w.field("deterministic", deterministic());
  w.key("tree");
  write_node_json(w, root);
  if (memory != nullptr) memory->write_json_member(w);
  w.end_object();
  os << "\n";
}

void PhaseProfiler::write_collapsed(std::ostream& os) const {
  const PhaseSnapshot root = snapshot();
  write_collapsed_node(os, root, "", /*use_calls=*/!tree_has_time(root));
}

// ---------------------------------------------------------------------------
// MemTracker

MemTracker::MemTracker() : deterministic_(deterministic_from_env()) {}

void MemTracker::charge(const std::string& account, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  Account& a = accounts_[account];
  a.current += bytes;
  a.peak = std::max(a.peak, a.current);
}

void MemTracker::release(const std::string& account, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  Account& a = accounts_[account];
  a.current = bytes > a.current ? 0 : a.current - bytes;
}

void MemTracker::note(const std::string& account, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  Account& a = accounts_[account];
  a.current = bytes;
  a.peak = std::max(a.peak, bytes);
}

std::uint64_t MemTracker::current_bytes(const std::string& account) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = accounts_.find(account);
  return it == accounts_.end() ? 0 : it->second.current;
}

std::uint64_t MemTracker::peak_bytes(const std::string& account) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = accounts_.find(account);
  return it == accounts_.end() ? 0 : it->second.peak;
}

void MemTracker::sample_rss() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (deterministic_) return;
  rss_peak_ = std::max(rss_peak_, process_peak_rss_bytes());
}

std::uint64_t MemTracker::rss_peak_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rss_peak_;
}

namespace {

/// "VmRSS:   12345 kB" -> bytes; 0 when the key is absent or the file
/// unreadable (non-Linux hosts).
std::uint64_t status_kb(const char* key) {
  std::ifstream status("/proc/self/status");
  if (!status.good()) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) != 0) continue;
    std::istringstream fields(line.substr(std::string(key).size()));
    std::uint64_t kb = 0;
    fields >> kb;
    return kb * 1024;
  }
  return 0;
}

}  // namespace

std::uint64_t MemTracker::process_rss_bytes() { return status_kb("VmRSS:"); }

std::uint64_t MemTracker::process_peak_rss_bytes() {
  return status_kb("VmHWM:");
}

void MemTracker::set_deterministic(bool deterministic) {
  std::lock_guard<std::mutex> lock(mutex_);
  deterministic_ = deterministic;
}

bool MemTracker::deterministic() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deterministic_;
}

void MemTracker::write_json_member(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mutex_);
  w.key("memory").begin_object();
  w.key("accounts").begin_object();
  for (const auto& [name, account] : accounts_) {
    w.key(name).begin_object();
    w.field("current_bytes", account.current);
    w.field("peak_bytes", account.peak);
    w.end_object();
  }
  w.end_object();
  if (rss_peak_ > 0) w.field("rss_peak_bytes", rss_peak_);
  w.end_object();
}

}  // namespace geomap::obs
