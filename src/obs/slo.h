#pragma once
// Declarative service-level objectives evaluated over the structured
// event stream (obs/eventlog), with error-budget burn accounting — the
// `slo.json` artifact.
//
// An SLO spec selects one numeric field of one event kind
// (component/event/field), a threshold that splits each occurrence into
// good or bad, and an objective: the fraction of occurrences that must
// be good. The error budget is the complement (budget = 1 - objective);
// burn is the fraction of that budget consumed, so burn <= 1 means the
// SLO holds and burn = 2 means the run spent its allowance twice over.
// SLOs over an event that never fired are vacuously met (events = 0,
// burn = 0) — a run without migrations cannot violate its downtime SLO.
//
// The default spec set covers the paper system's closed loop: detection
// latency (detector/onset), remap queue wait (scheduler/grant),
// migration downtime (migrate/commit), and placement cost regression vs
// the solo-oracle baseline (soak/case_done p99 stretch). Specs can also
// be loaded from a JSON file (`obsctl slo --spec`), making the set
// declarative without a rebuild; the report is gated through the
// existing regress engine (`obsctl slo --gate`).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/eventlog.h"

namespace geomap {
class JsonValue;
}

namespace geomap::obs {

struct RunMeta;

struct SloSpec {
  std::string name;         // report key, e.g. "detection_latency"
  std::string description;  // one line for humans
  std::string component;    // event selector: component ...
  std::string event;        // ... event name ...
  std::string field;        // ... numeric field within the event
  double threshold = 0;     // good when value <= threshold ...
  bool higher_is_better = false;  // ... or >= threshold when set
  double objective = 0.99;  // required good fraction, in (0, 1)
};

/// The built-in spec set for the detect -> remap -> migrate loop.
std::vector<SloSpec> default_slo_specs();

/// Parse a spec file: {"slos": [{"name":..., "component":..., "event":...,
/// "field":..., "threshold":..., "objective":..., "higher_is_better":...,
/// "description":...}, ...]}. Throws InvalidArgument on missing required
/// keys or an objective outside (0, 1).
std::vector<SloSpec> slo_specs_from_json(const JsonValue& root);

struct SloResult {
  SloSpec spec;
  std::uint64_t events = 0;  // occurrences carrying the selected field
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  double compliance = 1.0;    // good / events (1 when vacuous)
  double error_budget = 0.0;  // 1 - objective
  double budget_used = 0.0;   // bad / events
  double burn = 0.0;          // budget_used / error_budget
  double worst = 0.0;         // worst observed value (0 when vacuous)
  bool ok = true;             // compliance >= objective (burn <= 1 up to rounding)
};

struct SloReport {
  std::vector<SloResult> slos;
  bool ok = true;  // every SLO ok
};

/// Evaluate `specs` over `events` (as returned by EventLog::events() or
/// re-read from an events.jsonl file).
SloReport evaluate_slos(const std::vector<Event>& events,
                        const std::vector<SloSpec>& specs);

/// Holds a spec set and evaluates it on demand — the form a long-running
/// service keeps around, re-evaluating its live EventLog every scrape.
class SloTracker {
 public:
  /// Defaults to default_slo_specs().
  SloTracker();
  explicit SloTracker(std::vector<SloSpec> specs);

  const std::vector<SloSpec>& specs() const { return specs_; }
  SloReport evaluate(const std::vector<Event>& events) const {
    return evaluate_slos(events, specs_);
  }
  SloReport evaluate(const EventLog& log) const {
    return evaluate_slos(log.events(), specs_);
  }

 private:
  std::vector<SloSpec> specs_;
};

/// {"meta": {...}, "ok": ..., "slos": {name: {objective, threshold,
/// events, good, bad, compliance, error_budget, budget_used, burn,
/// worst, ok}}}. Keys sorted; numeric leaves flatten cleanly for the
/// regress engine (watch e.g. "slos.*.burn" and "-slos.*.compliance").
void write_slo_json(std::ostream& os, const SloReport& report,
                    const RunMeta* meta = nullptr);

}  // namespace geomap::obs
