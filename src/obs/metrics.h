#pragma once
// Thread-safe metrics registry: named counters, gauges, and histograms
// for the pipeline's hot paths (mapper order search, minimpi transfers,
// replay engines, fault accounting).
//
// Handles returned by the registry are stable for its lifetime, so hot
// paths resolve a metric once (one map lookup under the registry mutex)
// and then update it lock-free: counters and gauges are single atomics,
// histograms take a short mutex per sample. With no registry in reach
// (the Collector is opt-in) instrumented code never touches any of this.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"

namespace geomap::obs {

struct RunMeta;

/// Monotonic event count. Lock-free, relaxed ordering: totals are exact
/// once the writing threads are joined (asserted by tests).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Monotone set: keeps the larger of the stored and given value. Lets
  /// concurrent progress reporters race without the exported value ever
  /// moving backwards (the final value is then deterministic).
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample distribution; exports count/sum/extrema plus interpolated
/// percentiles (common/stats) at summary time. Stores raw samples up to
/// `sample_cap` — exact percentiles, bounded use-cases (per-order costs,
/// per-rank times, backoff delays), no bucket-boundary tuning. Past the
/// cap it degrades to a seeded reservoir (Algorithm R over a fixed
/// xoshiro stream): memory stays bounded at `sample_cap` doubles,
/// count/min/max remain exact (tracked by running accumulators),
/// sum/mean/percentiles become reservoir estimates and the summary is
/// flagged `sampled`. The kept set is deterministic for a given arrival
/// order; concurrent recorders can permute arrivals, so byte-stable
/// exports need either single-threaded recording or a cap above the
/// sample count (the uncapped default).
class Histogram {
 public:
  /// `sample_cap` = 0 keeps every sample (the historical behavior).
  explicit Histogram(std::size_t sample_cap = 0);

  void record(double x);

  /// Record `xs` in order under one lock — state-identical to calling
  /// record() per element (the reservoir sees the same arrival sequence),
  /// at a fraction of the locking cost. Hot single-threaded loops buffer
  /// locally and flush once.
  void record_many(const std::vector<double>& xs);

  struct Summary {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double mean = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    /// True when the reservoir dropped samples: sum/mean/percentiles are
    /// estimates (count/min/max are still exact).
    bool sampled = false;
  };
  Summary summary() const;

  std::vector<double> samples() const;  // retained set (copy, for tests)

 private:
  void record_locked(double x);  // caller holds mutex_

  const std::size_t sample_cap_;
  mutable std::mutex mutex_;
  std::vector<double> samples_;
  std::uint64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  Rng rng_;
};

class MetricsRegistry {
 public:
  /// Find-or-create by name. The returned reference stays valid for the
  /// registry's lifetime. A name is bound to one metric kind; asking for
  /// the same name as a different kind throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Reservoir cap for histograms created after this call (existing
  /// histograms keep theirs; 0 = unbounded, the default). Bounds each
  /// histogram's memory at `cap` doubles; summaries past the cap carry
  /// "sampled": true.
  void set_histogram_sample_cap(std::size_t cap);

  /// Point-in-time snapshot accessors (sorted by name) for exporters that
  /// live outside this class — the OpenMetrics renderer (obs/openmetrics)
  /// reads these rather than growing registry-coupled format code here.
  std::map<std::string, std::uint64_t> counter_values() const;
  std::map<std::string, double> gauge_values() const;
  std::map<std::string, Histogram::Summary> histogram_summaries() const;

  /// One JSON object: {"meta": {...}, "counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, mean, p50, p90, p99}}}
  /// (histograms past their reservoir cap add "sampled": true).
  /// Keys sorted (std::map order) for diffable output; `meta` is omitted
  /// when null. Deterministic for deterministic runs: histogram folds
  /// sort their samples first, so parallel recording order cannot perturb
  /// the floating-point sums.
  void write_json(std::ostream& os, const RunMeta* meta = nullptr) const;

 private:
  mutable std::mutex mutex_;
  std::size_t histogram_sample_cap_ = 0;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace geomap::obs
