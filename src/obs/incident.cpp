#include "obs/incident.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>
#include <utility>

#include "common/error.h"
#include "common/json_reader.h"
#include "common/json_writer.h"
#include "obs/run_meta.h"

namespace geomap::obs {

namespace {

constexpr const char* kStageNames[4] = {"detect", "queue", "migrate",
                                        "residual"};

bool field_number(const Event& e, const char* key, double* out) {
  for (const EventField& f : e.fields) {
    if (f.key != key) continue;
    switch (f.kind) {
      case EventField::Kind::kInt:
        *out = static_cast<double>(f.int_value);
        return true;
      case EventField::Kind::kDouble:
        *out = f.double_value;
        return true;
      case EventField::Kind::kBool:
        *out = f.bool_value ? 1.0 : 0.0;
        return true;
      default:
        return false;
    }
  }
  return false;
}

double field_number_or(const Event& e, const char* key, double fallback) {
  double v = fallback;
  field_number(e, key, &v);
  return v;
}

int field_int_or(const Event& e, const char* key, int fallback) {
  return static_cast<int>(
      field_number_or(e, key, static_cast<double>(fallback)));
}

std::string field_string_or(const Event& e, const char* key,
                            const std::string& fallback) {
  for (const EventField& f : e.fields) {
    if (f.key == key && f.kind == EventField::Kind::kString)
      return f.string_value;
  }
  return fallback;
}

bool is_event(const Event& e, const char* component, const char* name) {
  return e.component == component && e.name == name;
}

/// A half-open incident core interval, pre-merge.
struct Core {
  Seconds start = 0;
  Seconds end = 0;
};

/// Merge cores whose gap is within `merge_gap`. Input need not be
/// sorted.
std::vector<Core> merge_cores(std::vector<Core> cores, Seconds merge_gap) {
  std::sort(cores.begin(), cores.end(), [](const Core& a, const Core& b) {
    return a.start != b.start ? a.start < b.start : a.end < b.end;
  });
  std::vector<Core> merged;
  for (const Core& c : cores) {
    if (!merged.empty() && c.start <= merged.back().end + merge_gap) {
      merged.back().end = std::max(merged.back().end, c.end);
    } else {
      merged.push_back(c);
    }
  }
  return merged;
}

/// One violated SLO of the slice, with the times of its bad samples.
struct BadSlo {
  const SloResult* result = nullptr;
  std::vector<Seconds> bad_times;
};

bool sample_bad(const SloSpec& spec, double v) {
  return spec.higher_is_better ? v < spec.threshold : v > spec.threshold;
}

/// Cluster ONE case segment (or a whole single-case stream).
void build_segment(const std::vector<Event>& events,
                   const IncidentOptions& options,
                   const std::vector<SloSpec>& specs,
                   std::vector<Incident>* out) {
  // 1. Seed cores from detector onsets ([true onset, alarm time]) and
  //    soak verdicts (point intervals at the verdict time).
  std::vector<Core> cores;
  for (const Event& e : events) {
    if (is_event(e, "detector", "onset")) {
      const Seconds onset = field_number_or(e, "onset", e.t);
      cores.push_back({std::min(onset, e.t), e.t});
    } else if (is_event(e, "soak", "detect")) {
      cores.push_back({e.t, e.t});
    }
  }

  // 2. Violated SLOs of the slice and their bad samples.
  const SloReport slo = evaluate_slos(events, specs);
  std::vector<BadSlo> violated;
  for (const SloResult& r : slo.slos) {
    if (r.ok) continue;
    BadSlo b;
    b.result = &r;
    for (const Event& e : events) {
      if (e.component != r.spec.component || e.name != r.spec.event) continue;
      double v = 0;
      if (field_number(e, r.spec.field.c_str(), &v) && sample_bad(r.spec, v))
        b.bad_times.push_back(e.t);
    }
    violated.push_back(std::move(b));
  }

  // 3. With no detector/soak seed at all, SLO-violating samples seed
  //    their own (point) incidents — a blown budget always has at least
  //    one incident to hang an explanation on.
  if (cores.empty()) {
    for (const BadSlo& b : violated) {
      for (const Seconds t : b.bad_times) cores.push_back({t, t});
    }
  }
  cores = merge_cores(std::move(cores), options.merge_gap);
  if (cores.empty()) return;

  constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();

  for (std::size_t k = 0; k < cores.size(); ++k) {
    // Ownership partition: incident k owns every event from its core's
    // start (the first one owns everything earlier too) up to — not
    // including — the next core's start. The partition covers the whole
    // timeline, so every SLO-violating sample lands in exactly one
    // incident.
    const Seconds own_start = k == 0 ? -kInf : cores[k].start;
    const Seconds own_end = k + 1 < cores.size() ? cores[k + 1].start : kInf;
    const auto owns = [&](Seconds t) { return t >= own_start && t < own_end; };

    Incident inc;

    // Evidence accumulated from the owned slice.
    std::vector<const Event*> onsets;
    Seconds min_onset = kInf;     // earliest true fault onset
    Seconds min_alarm = kInf;     // earliest detector / verdict time
    Seconds max_sched = -kInf;    // latest scheduler activity
    Seconds max_migrate = -kInf;  // latest migration activity
    Seconds max_t = -kInf;        // latest activity overall
    double latency_sum = 0;
    std::uint64_t latency_n = 0;
    double max_queue_wait = 0;
    int max_wait_tenant = -1;
    double downtime_sum = 0;
    double p99_stretch = 0;
    std::uint64_t sched_events = 0;
    std::uint64_t detect_events = 0;
    std::uint64_t migrate_events = 0;
    std::uint64_t done_events = 0;
    Seconds first_give_up = kInf;
    std::map<SiteId, double> votes;

    for (const Event& e : events) {
      if (!owns(e.t)) continue;
      if (e.component == "soak" && e.name == "case_start") {
        inc.case_seed =
            static_cast<std::uint64_t>(field_number_or(e, "seed", 0));
        inc.has_case_seed = true;
        continue;  // t=0 bookkeeping, not incident activity
      }
      max_t = std::max(max_t, e.t);
      if (is_event(e, "detector", "onset")) {
        onsets.push_back(&e);
        inc.counts.onsets += 1;
        detect_events += 1;
        min_onset = std::min(min_onset, field_number_or(e, "onset", e.t));
        min_alarm = std::min(min_alarm, e.t);
        double lat = 0;
        if (field_number(e, "latency", &lat)) {
          latency_sum += lat;
          latency_n += 1;
        }
        // Evidence vote: both endpoints of a degraded link are suspects;
        // a hard "down" onset is stronger evidence than a latency drift.
        const double weight =
            field_string_or(e, "kind", "latency") == "down" ? 1.0 : 0.5;
        const int src = field_int_or(e, "src", -1);
        const int dst = field_int_or(e, "dst", -1);
        if (src >= 0) votes[src] += weight;
        if (dst >= 0) votes[dst] += weight;
      } else if (is_event(e, "detector", "clear")) {
        detect_events += 1;
      } else if (is_event(e, "soak", "detect")) {
        detect_events += 1;
        min_alarm = std::min(min_alarm, e.t);
        // The *suspect* is the detector's observable output; the seeded
        // failed_site field is ground truth and deliberately ignored.
        const int suspect = field_int_or(e, "suspect", -1);
        if (suspect >= 0) votes[suspect] += 1.0;
      } else if (is_event(e, "soak", "case_done")) {
        done_events += 1;
        p99_stretch = std::max(p99_stretch,
                               field_number_or(e, "p99_stretch", 0));
      } else if (e.component == "scheduler") {
        sched_events += 1;
        if (e.name != "queue") max_sched = std::max(max_sched, e.t);
        if (e.name == "grant") {
          inc.counts.grants += 1;
          const double wait = field_number_or(e, "queue_wait", 0);
          if (wait >= max_queue_wait) {
            max_queue_wait = wait;
            max_wait_tenant = field_int_or(e, "tenant", -1);
          }
        } else if (e.name == "requeue") {
          inc.counts.requeues += 1;
        } else if (e.name == "give_up") {
          inc.counts.give_ups += 1;
          if (e.t < first_give_up) {
            first_give_up = e.t;
            inc.blame.tenant = field_int_or(e, "tenant", -1);
          }
        }
      } else if (e.component == "migrate") {
        migrate_events += 1;
        max_migrate = std::max(max_migrate, e.t);
        const int from = field_int_or(e, "from", -1);
        const int to = field_int_or(e, "to", -1);
        if (e.name == "commit") {
          inc.counts.commits += 1;
          downtime_sum += field_number_or(e, "downtime", 0);
        } else if (e.name == "rollback" || e.name == "replan") {
          inc.counts.rollbacks += 1;
        }
        // Evacuations are happened-before evidence: state flees the
        // implicated site, so the journal's `from` endpoints accuse it
        // while `to` endpoints — sites trusted to receive — exonerate.
        if (e.name == "reserve" || e.name == "commit") {
          if (from >= 0) votes[from] += 1.0;
          if (to >= 0) votes[to] -= 1.0;
        }
      }
    }

    // 4. Monotone-clamped stage boundaries: each boundary is at least
    //    the previous one, so stage durations are non-negative and
    //    telescope exactly to the end-to-end duration.
    const Seconds core_start = cores[k].start;
    const Seconds t_detect =
        min_alarm < kInf ? min_alarm : core_start;
    const Seconds t0 =
        std::min(min_onset < kInf ? min_onset : core_start, t_detect);
    const Seconds t_queue_end =
        std::max(t_detect, max_sched > -kInf ? max_sched : t_detect);
    const Seconds t_migrate_end =
        std::max(t_queue_end, max_migrate > -kInf ? max_migrate : t_queue_end);
    const Seconds t_end =
        std::max(t_migrate_end, max_t > -kInf ? max_t : t_migrate_end);

    inc.start = t0;
    inc.end = t_end;
    const Seconds bounds[5] = {t0, t_detect, t_queue_end, t_migrate_end,
                               t_end};
    const double metrics[4] = {
        latency_n > 0 ? latency_sum / static_cast<double>(latency_n)
                      : t_detect - t0,
        max_queue_wait, downtime_sum, p99_stretch};
    const std::uint64_t stage_events[4] = {detect_events, sched_events,
                                           migrate_events, done_events};
    for (int s = 0; s < 4; ++s) {
      StageBudget b;
      b.name = kStageNames[s];
      b.start = bounds[s];
      b.end = bounds[s + 1];
      b.metric = metrics[s];
      b.events = stage_events[s];
      inc.stages.push_back(std::move(b));
    }

    // 5. Blame: argmax positive evidence votes (ties -> lower site id,
    //    map iteration order).
    double positive_sum = 0;
    double best = 0;
    for (const auto& [site, v] : votes) {
      if (v <= 0) continue;
      positive_sum += v;
      inc.blame.implicated_sites.push_back(site);
      if (v > best) {
        best = v;
        inc.blame.site = site;
      }
    }
    if (positive_sum > 0) inc.blame.confidence = best / positive_sum;
    if (inc.blame.tenant < 0 && max_wait_tenant >= 0)
      inc.blame.tenant = max_wait_tenant;

    // Most severe down-onset link touching the blamed site; latency
    // onsets only when no hard-down evidence touches it.
    const Event* best_link = nullptr;
    int best_rank = -1;  // 1 = down, 0 = latency
    double best_sev = 0;
    for (const Event* e : onsets) {
      const int src = field_int_or(*e, "src", -1);
      const int dst = field_int_or(*e, "dst", -1);
      if (src != inc.blame.site && dst != inc.blame.site) continue;
      const int rank = field_string_or(*e, "kind", "latency") == "down" ? 1 : 0;
      const double sev = field_number_or(*e, "severity", 0);
      const bool better =
          best_link == nullptr || rank > best_rank ||
          (rank == best_rank &&
           (sev > best_sev || (sev == best_sev && e->t < best_link->t)));
      if (better) {
        best_link = e;
        best_rank = rank;
        best_sev = sev;
      }
    }
    if (best_link != nullptr) {
      inc.blame.link_src = field_int_or(*best_link, "src", -1);
      inc.blame.link_dst = field_int_or(*best_link, "dst", -1);
    }

    int longest = 0;
    for (int s = 1; s < 4; ++s) {
      if (inc.stages[static_cast<std::size_t>(s)].seconds() >
          inc.stages[static_cast<std::size_t>(longest)].seconds())
        longest = s;
    }
    inc.blame.dominant_stage = kStageNames[longest];

    // 6. SLO involvement: a violated SLO belongs to every incident that
    //    owns at least one of its bad samples; the burn contribution is
    //    that incident's share of the consumed budget.
    for (const BadSlo& b : violated) {
      std::uint64_t in_window = 0;
      for (const Seconds t : b.bad_times) {
        if (owns(t)) in_window += 1;
      }
      if (in_window == 0) continue;
      inc.violated_slos.push_back(b.result->spec.name);
      inc.slo_burn += (static_cast<double>(in_window) /
                       static_cast<double>(std::max<std::uint64_t>(
                           b.result->events, 1))) /
                      b.result->error_budget;
    }
    std::sort(inc.violated_slos.begin(), inc.violated_slos.end());

    out->push_back(std::move(inc));
  }
}

}  // namespace

std::vector<Incident> build_incidents(const std::vector<Event>& events,
                                      const IncidentOptions& options) {
  const std::vector<SloSpec> specs =
      options.slo_specs.empty() ? default_slo_specs() : options.slo_specs;

  // A soak export interleaves many cases whose virtual clocks each start
  // at zero; segment at case_start markers (in stream order) so one
  // case's recovery never pollutes another's chain. A single-run stream
  // has at most one marker and falls through unchanged.
  std::vector<std::vector<Event>> segments;
  for (const Event& e : events) {
    if (is_event(e, "soak", "case_start") || segments.empty())
      segments.emplace_back();
    segments.back().push_back(e);
  }

  std::vector<Incident> incidents;
  for (const std::vector<Event>& segment : segments)
    build_segment(segment, options, specs, &incidents);
  finalize_incidents(incidents);
  return incidents;
}

void finalize_incidents(std::vector<Incident>& incidents) {
  std::sort(incidents.begin(), incidents.end(),
            [](const Incident& a, const Incident& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.end != b.end) return a.end < b.end;
              if (a.blame.site != b.blame.site)
                return a.blame.site < b.blame.site;
              if (a.case_seed != b.case_seed) return a.case_seed < b.case_seed;
              if (a.blame.tenant != b.blame.tenant)
                return a.blame.tenant < b.blame.tenant;
              return a.counts.onsets < b.counts.onsets;
            });
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "inc-%03zu", i + 1);
    incidents[i].id = buf;
  }
}

double AttributionTotals::precision() const {
  return blamed == 0 ? 1.0
                     : static_cast<double>(correctly_blamed) /
                           static_cast<double>(blamed);
}

double AttributionTotals::recall() const {
  return episodes == 0 ? 1.0
                       : static_cast<double>(attributed) /
                             static_cast<double>(episodes);
}

double AttributionTotals::mean_onset_error() const {
  return onset_error_samples == 0
             ? 0.0
             : onset_error_sum / static_cast<double>(onset_error_samples);
}

void AttributionTotals::merge(const AttributionTotals& other) {
  cases += other.cases;
  incidents += other.incidents;
  blamed += other.blamed;
  correctly_blamed += other.correctly_blamed;
  misblamed += other.misblamed;
  episodes += other.episodes;
  attributed += other.attributed;
  missed += other.missed;
  onset_error_sum += other.onset_error_sum;
  onset_error_samples += other.onset_error_samples;
}

void IncidentLog::add(std::vector<Incident> incidents) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Incident& inc : incidents) incidents_.push_back(std::move(inc));
}

void IncidentLog::add_totals(const AttributionTotals& totals) {
  const std::lock_guard<std::mutex> lock(mutex_);
  totals_.merge(totals);
  has_totals_ = true;
}

std::vector<Incident> IncidentLog::snapshot() const {
  std::vector<Incident> copy;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    copy = incidents_;
  }
  finalize_incidents(copy);
  return copy;
}

AttributionTotals IncidentLog::totals() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

bool IncidentLog::has_totals() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return has_totals_;
}

std::uint64_t IncidentLog::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return incidents_.size();
}

void write_incidents_json(std::ostream& os,
                          const std::vector<Incident>& incidents,
                          const AttributionTotals* totals,
                          const RunMeta* meta) {
  JsonWriter w(os);
  w.begin_object();
  if (totals != nullptr) {
    w.key("attribution").begin_object();
    w.field("attributed", totals->attributed);
    w.field("blamed", totals->blamed);
    w.field("cases", totals->cases);
    w.field("correctly_blamed", totals->correctly_blamed);
    w.field("episodes", totals->episodes);
    w.field("incidents", totals->incidents);
    w.field("mean_onset_error", totals->mean_onset_error());
    w.field("misblamed", totals->misblamed);
    w.field("missed", totals->missed);
    w.field("precision", totals->precision());
    w.field("recall", totals->recall());
    w.end_object();
  }
  w.field("count", static_cast<std::uint64_t>(incidents.size()));
  w.key("incidents").begin_array();
  for (const Incident& inc : incidents) {
    w.begin_object();
    w.key("blame").begin_object();
    w.field("confidence", inc.blame.confidence);
    w.field("dominant_stage", inc.blame.dominant_stage);
    w.key("implicated_sites").begin_array();
    for (const SiteId s : inc.blame.implicated_sites) w.value(s);
    w.end_array();
    w.field("link_dst", inc.blame.link_dst);
    w.field("link_src", inc.blame.link_src);
    w.field("site", inc.blame.site);
    w.field("tenant", inc.blame.tenant);
    w.end_object();
    if (inc.has_case_seed) w.field("case_seed", inc.case_seed);
    w.key("counts").begin_object();
    w.field("commits", inc.counts.commits);
    w.field("give_ups", inc.counts.give_ups);
    w.field("grants", inc.counts.grants);
    w.field("onsets", inc.counts.onsets);
    w.field("requeues", inc.counts.requeues);
    w.field("rollbacks", inc.counts.rollbacks);
    w.end_object();
    w.field("duration", inc.duration());
    w.field("end", inc.end);
    w.field("id", inc.id);
    w.key("slo").begin_object();
    w.field("burn_contribution", inc.slo_burn);
    w.key("violated").begin_array();
    for (const std::string& name : inc.violated_slos) w.value(name);
    w.end_array();
    w.end_object();
    w.key("stages").begin_object();
    for (const StageBudget& b : inc.stages) {
      w.key(b.name).begin_object();
      w.field("end", b.end);
      w.field("events", b.events);
      w.field("metric", b.metric);
      w.field("seconds", b.seconds());
      w.field("start", b.start);
      w.end_object();
    }
    w.end_object();
    w.field("start", inc.start);
    w.end_object();
  }
  w.end_array();
  if (meta != nullptr) meta->write_member(w);
  w.key("stage_summary").begin_object();
  for (const char* stage : kStageNames) {
    double sum = 0;
    double max = 0;
    std::uint64_t n = 0;
    for (const Incident& inc : incidents) {
      for (const StageBudget& b : inc.stages) {
        if (b.name != stage) continue;
        sum += b.seconds();
        max = std::max(max, b.seconds());
        n += 1;
      }
    }
    w.key(stage).begin_object();
    w.field("max", max);
    w.field("mean", n > 0 ? sum / static_cast<double>(n) : 0.0);
    w.field("total", sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << "\n";
}

IncidentsArtifact incidents_from_json(const JsonValue& root) {
  GEOMAP_CHECK_MSG(root.is_object() && root.find("incidents") != nullptr,
                   "not an incidents artifact: no \"incidents\" member");
  IncidentsArtifact art;
  const JsonValue& list = root.at("incidents");
  GEOMAP_CHECK_MSG(list.is_array(), "\"incidents\" must be an array");
  for (const JsonValue& item : list.items()) {
    GEOMAP_CHECK_MSG(item.is_object(), "incident entries must be objects");
    Incident inc;
    inc.id = item.string_or("id", "");
    inc.start = item.number_or("start", 0);
    inc.end = item.number_or("end", 0);
    const JsonValue* seed = item.find("case_seed");
    if (seed != nullptr) {
      inc.case_seed = static_cast<std::uint64_t>(seed->as_number());
      inc.has_case_seed = true;
    }
    if (const JsonValue* blame = item.find("blame")) {
      inc.blame.site = static_cast<SiteId>(blame->number_or("site", -1));
      inc.blame.link_src =
          static_cast<SiteId>(blame->number_or("link_src", -1));
      inc.blame.link_dst =
          static_cast<SiteId>(blame->number_or("link_dst", -1));
      inc.blame.tenant = static_cast<int>(blame->number_or("tenant", -1));
      inc.blame.confidence = blame->number_or("confidence", 0);
      inc.blame.dominant_stage = blame->string_or("dominant_stage", "");
      if (const JsonValue* sites = blame->find("implicated_sites")) {
        for (const JsonValue& s : sites->items())
          inc.blame.implicated_sites.push_back(
              static_cast<SiteId>(s.as_number()));
      }
    }
    if (const JsonValue* counts = item.find("counts")) {
      inc.counts.onsets =
          static_cast<std::uint64_t>(counts->number_or("onsets", 0));
      inc.counts.grants =
          static_cast<std::uint64_t>(counts->number_or("grants", 0));
      inc.counts.requeues =
          static_cast<std::uint64_t>(counts->number_or("requeues", 0));
      inc.counts.give_ups =
          static_cast<std::uint64_t>(counts->number_or("give_ups", 0));
      inc.counts.commits =
          static_cast<std::uint64_t>(counts->number_or("commits", 0));
      inc.counts.rollbacks =
          static_cast<std::uint64_t>(counts->number_or("rollbacks", 0));
    }
    if (const JsonValue* slo = item.find("slo")) {
      inc.slo_burn = slo->number_or("burn_contribution", 0);
      if (const JsonValue* v = slo->find("violated")) {
        for (const JsonValue& name : v->items())
          inc.violated_slos.push_back(name.as_string());
      }
    }
    if (const JsonValue* stages = item.find("stages")) {
      for (const char* name : kStageNames) {
        const JsonValue* s = stages->find(name);
        if (s == nullptr) continue;
        StageBudget b;
        b.name = name;
        b.start = s->number_or("start", 0);
        b.end = s->number_or("end", 0);
        b.metric = s->number_or("metric", 0);
        b.events = static_cast<std::uint64_t>(s->number_or("events", 0));
        inc.stages.push_back(std::move(b));
      }
    }
    art.incidents.push_back(std::move(inc));
  }
  if (const JsonValue* a = root.find("attribution")) {
    art.has_totals = true;
    art.totals.cases = static_cast<std::uint64_t>(a->number_or("cases", 0));
    art.totals.incidents =
        static_cast<std::uint64_t>(a->number_or("incidents", 0));
    art.totals.blamed = static_cast<std::uint64_t>(a->number_or("blamed", 0));
    art.totals.correctly_blamed =
        static_cast<std::uint64_t>(a->number_or("correctly_blamed", 0));
    art.totals.misblamed =
        static_cast<std::uint64_t>(a->number_or("misblamed", 0));
    art.totals.episodes =
        static_cast<std::uint64_t>(a->number_or("episodes", 0));
    art.totals.attributed =
        static_cast<std::uint64_t>(a->number_or("attributed", 0));
    art.totals.missed = static_cast<std::uint64_t>(a->number_or("missed", 0));
    // Reconstruct the error accumulator so re-exported totals round-trip.
    art.totals.onset_error_samples = art.totals.attributed;
    art.totals.onset_error_sum =
        a->number_or("mean_onset_error", 0) *
        static_cast<double>(art.totals.onset_error_samples);
  }
  return art;
}

}  // namespace geomap::obs
