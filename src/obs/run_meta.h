#pragma once
// Run-metadata header stamped into every exported observability artifact
// (metrics / trace / audit / critpath) so a JSON file picked up months
// later — or diffed by `geomap-obsctl diff` — is self-describing: which
// bench produced it, with which seed, from which source revision, when.
//
// Capture rules: `geomap_version` comes from the build (GEOMAP_VERSION);
// `git_describe` from the GEOMAP_GIT_DESCRIBE environment variable (CI
// exports `git describe --always --dirty`) falling back to "unknown";
// `timestamp` is the current UTC time in ISO 8601 unless
// GEOMAP_TIMESTAMP overrides it (regression baselines and the
// byte-stability tests pin it). Comparison tooling ignores the "meta"
// block entirely — it describes a run, it never participates in
// regression checks.

#include <cstdint>
#include <string>

namespace geomap {
class JsonWriter;
}

namespace geomap::obs {

struct RunMeta {
  std::string bench;        // producing binary / tool name
  std::uint64_t seed = 0;   // the run's root RNG seed
  bool has_seed = false;    // benches without a --seed flag omit the field
  std::string geomap_version;
  std::string git_describe;
  std::string timestamp;    // ISO 8601 UTC, e.g. "2026-08-06T12:00:00Z"

  /// Emit `"<key>": {...}` as the next member of the currently open JSON
  /// object. The Chrome trace exporter uses "geomapMeta" so viewers that
  /// expect the trace-event schema skip it as vendor data.
  void write_member(JsonWriter& w, const char* key = "meta") const;
};

/// Capture the environment-dependent fields (version, git, timestamp)
/// around the given bench name and seed.
RunMeta make_run_meta(std::string bench, std::uint64_t seed, bool has_seed);

}  // namespace geomap::obs
