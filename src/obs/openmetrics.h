#pragma once
// OpenMetrics / Prometheus text exposition for the metrics registry —
// the `metrics.prom` artifact. metrics.json is the archival form; this
// renderer exists so the day a long-running `geomapd` serves a /metrics
// endpoint, external scrapers consume the same registry with zero new
// plumbing.
//
// Mapping (see DESIGN.md §15):
//   counter  c               ->  # TYPE geomap_<c> counter
//                                geomap_<c>_total <value>
//   gauge    g               ->  # TYPE geomap_<g> gauge
//                                geomap_<g> <value>
//   histogram h (Summary)    ->  # TYPE geomap_<h> summary
//                                geomap_<h>{quantile="0.5"|"0.9"|"0.99"} ...
//                                geomap_<h>_sum / geomap_<h>_count
// plus one `geomap_build_info` gauge carrying the run header as labels,
// and the mandatory `# EOF` terminator. Dotted metric names sanitize to
// the OpenMetrics charset ('.', '-', anything else illegal -> '_').
//
// Snapshots are plain value structs, so deltas between two scrapes of a
// live registry (counters and histogram count/sum subtract; gauges take
// the newer value) come for free — `obsctl watch` renders rates from
// exactly this.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/metrics.h"

namespace geomap::obs {

struct RunMeta;

/// Point-in-time copy of every metric in a registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Summary> histograms;
};

MetricsSnapshot snapshot_metrics(const MetricsRegistry& registry);

/// after - before. Counters subtract (clamped at zero if a name vanished
/// or reset); histogram count/sum subtract with min/max/mean/percentiles
/// taken from `after` (quantiles do not difference); gauges keep the
/// `after` value. Names only in `before` are dropped.
MetricsSnapshot delta_metrics(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

/// Sanitize a dotted geomap metric name into an OpenMetrics metric name:
/// prefix "geomap_", map every character outside [a-zA-Z0-9_] to '_'.
std::string openmetrics_name(const std::string& name);

/// Render the snapshot as OpenMetrics text exposition, `# EOF` included.
/// Deterministic: names sort, values use the round-trip double format,
/// and the only non-workload bytes (the build_info labels) come from the
/// RunMeta header, which GEOMAP_TIMESTAMP / GEOMAP_GIT_DESCRIBE pin.
void write_openmetrics(std::ostream& os, const MetricsSnapshot& snapshot,
                       const RunMeta* meta = nullptr);

}  // namespace geomap::obs
