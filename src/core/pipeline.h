#pragma once
// End-to-end optimization pipeline (paper Figure 2): network calibration
// and application profiling feed the grouping + mapping optimization; the
// user supplies nothing but the deployment and the application.

#include <memory>

#include "core/geodist_mapper.h"
#include "mapping/mapper.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "trace/comm_matrix.h"

namespace geomap::core {

struct PipelineOptions {
  net::CalibrationOptions calibration;
  GeoDistOptions mapper;

  /// Observability (opt-in, not owned): when set, execute() wraps the
  /// calibrate/build/map phases in wall-clock spans and hands the
  /// collector to the mapper (unless mapper.collector is already set).
  /// With nullptr the pipeline runs uninstrumented and its results are
  /// bit-identical.
  obs::Collector* collector = nullptr;
};

struct PipelineResult {
  net::CalibrationResult calibration;
  mapping::MapperRun run;
};

/// Assemble a MappingProblem from a deployment and a profiled (or
/// synthetic) communication matrix. Capacity and coordinates come from the
/// topology; the network model from `model`.
mapping::MappingProblem make_problem(const net::CloudTopology& topo,
                                     const net::NetworkModel& model,
                                     trace::CommMatrix comm,
                                     ConstraintVector constraints = {});

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {}) : options_(options) {}

  /// Calibrate the deployment, build the problem from the profiled
  /// communication matrix, and run the geo-distributed mapper.
  PipelineResult execute(const net::CloudTopology& topo,
                         trace::CommMatrix comm,
                         ConstraintVector constraints = {}) const;

  const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
};

}  // namespace geomap::core
