#include "core/pipeline.h"

namespace geomap::core {

mapping::MappingProblem make_problem(const net::CloudTopology& topo,
                                     const net::NetworkModel& model,
                                     trace::CommMatrix comm,
                                     ConstraintVector constraints) {
  mapping::MappingProblem problem;
  problem.comm = std::move(comm);
  problem.network = model;
  problem.capacities = topo.capacities();
  problem.constraints = std::move(constraints);
  problem.site_coords = topo.coordinates();
  problem.validate();
  return problem;
}

PipelineResult Pipeline::execute(const net::CloudTopology& topo,
                                 trace::CommMatrix comm,
                                 ConstraintVector constraints) const {
  PipelineResult result;
  const net::Calibrator calibrator(options_.calibration);
  result.calibration = calibrator.calibrate(topo);

  mapping::MappingProblem problem = make_problem(
      topo, result.calibration.model, std::move(comm), std::move(constraints));

  GeoDistMapper mapper(options_.mapper);
  result.run = mapping::run_mapper(mapper, problem);
  return result;
}

}  // namespace geomap::core
