#include "core/pipeline.h"

#include "obs/collector.h"

namespace geomap::core {

mapping::MappingProblem make_problem(const net::CloudTopology& topo,
                                     const net::NetworkModel& model,
                                     trace::CommMatrix comm,
                                     ConstraintVector constraints) {
  mapping::MappingProblem problem;
  problem.comm = std::move(comm);
  problem.network = model;
  problem.capacities = topo.capacities();
  problem.constraints = std::move(constraints);
  problem.site_coords = topo.coordinates();
  problem.validate();
  return problem;
}

PipelineResult Pipeline::execute(const net::CloudTopology& topo,
                                 trace::CommMatrix comm,
                                 ConstraintVector constraints) const {
  obs::Collector* const col = options_.collector;
  PipelineResult result;
  obs::Phase pipeline_phase;
  if (col != nullptr) pipeline_phase = col->profile().phase("pipeline");
  {
    obs::Span s;
    obs::Phase p;
    if (col != nullptr) {
      s = col->tracer().span("pipeline/calibrate");
      p = col->profile().phase("calibrate");
    }
    const net::Calibrator calibrator(options_.calibration);
    result.calibration = calibrator.calibrate(topo);
  }

  obs::Phase build_phase;
  if (col != nullptr) build_phase = col->profile().phase("build-problem");
  mapping::MappingProblem problem = make_problem(
      topo, result.calibration.model, std::move(comm), std::move(constraints));
  if (col != nullptr)
    col->mem().note("comm.csr", problem.comm.memory_bytes());
  build_phase.end();

  GeoDistOptions mapper_options = options_.mapper;
  if (col != nullptr && mapper_options.collector == nullptr)
    mapper_options.collector = col;
  GeoDistMapper mapper(mapper_options);
  {
    obs::Span s;
    obs::Phase p;
    if (col != nullptr) {
      s = col->tracer().span("pipeline/map");
      p = col->profile().phase("map");
    }
    result.run = mapping::run_mapper(mapper, problem);
  }
  return result;
}

}  // namespace geomap::core
