#include "core/montecarlo.h"

#include <algorithm>

#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "mapping/cost.h"
#include "mapping/random_mapper.h"

namespace geomap::core {

MonteCarloResult run_monte_carlo(const mapping::MappingProblem& problem,
                                 const MonteCarloOptions& options) {
  GEOMAP_CHECK_MSG(options.samples > 0, "samples=" << options.samples);
  problem.validate();
  const mapping::CostEvaluator eval(problem);

  MonteCarloResult result;
  result.costs.resize(static_cast<std::size_t>(options.samples));

  // Each fixed-size block draws from its own stream seeded by (seed,
  // block index), so the sampled sequence is identical regardless of the
  // worker count.
  constexpr std::size_t kBlock = 1024;
  const auto total = static_cast<std::size_t>(options.samples);
  const std::size_t blocks = (total + kBlock - 1) / kBlock;

  auto run_block = [&](std::size_t b) {
    Rng rng(options.seed ^ (0x517cc1b727220a95ULL * (b + 1)));
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(lo + kBlock, total);
    for (std::size_t s = lo; s < hi; ++s) {
      const Mapping m = mapping::RandomMapper::draw(problem, rng);
      result.costs[s] = eval.total_cost(m);
    }
  };

  if (options.parallel) {
    parallel_for(0, blocks, run_block);
  } else {
    for (std::size_t b = 0; b < blocks; ++b) run_block(b);
  }

  result.best = *std::min_element(result.costs.begin(), result.costs.end());
  result.worst = *std::max_element(result.costs.begin(), result.costs.end());
  double sum = 0;
  for (const double c : result.costs) sum += c;
  result.mean = sum / static_cast<double>(result.costs.size());
  return result;
}

double MonteCarloResult::fraction_below(Seconds cost) const {
  std::size_t below = 0;
  for (const double c : costs)
    if (c < cost) ++below;
  return static_cast<double>(below) / static_cast<double>(costs.size());
}

std::vector<Seconds> MonteCarloResult::best_of_k(
    const std::vector<std::int64_t>& ks) const {
  std::vector<Seconds> out;
  out.reserve(ks.size());
  for (const std::int64_t k : ks) {
    GEOMAP_CHECK_MSG(k > 0 && k <= static_cast<std::int64_t>(costs.size()),
                     "best_of_k needs 0 < k <= samples, got " << k);
    out.push_back(*std::min_element(
        costs.begin(), costs.begin() + static_cast<std::ptrdiff_t>(k)));
  }
  return out;
}

}  // namespace geomap::core
