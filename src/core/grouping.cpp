#include "core/grouping.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace geomap::core {

namespace {

/// Assign every site to its nearest centroid; returns true if any
/// assignment changed.
bool assign_step(const std::vector<net::GeoCoordinate>& coords,
                 const std::vector<net::GeoCoordinate>& centroids,
                 std::vector<GroupId>& assignment) {
  bool changed = false;
  for (std::size_t s = 0; s < coords.size(); ++s) {
    GroupId best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      const double d = net::euclidean_deg_sq(coords[s], centroids[c]);
      if (d < best_d) {
        best_d = d;
        best = static_cast<GroupId>(c);
      }
    }
    if (assignment[s] != best) {
      assignment[s] = best;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

Grouping group_sites(const std::vector<net::GeoCoordinate>& coords, int kappa,
                     const KMeansOptions& options) {
  const int m = static_cast<int>(coords.size());
  GEOMAP_CHECK_MSG(m > 0, "no sites to group");
  GEOMAP_CHECK_MSG(kappa >= 1, "kappa=" << kappa);
  if (kappa >= m) return singleton_groups(m);

  // Forgy initialization (paper Section 4.2): κ distinct sites drawn
  // uniformly become the initial means.
  Rng rng(options.seed);
  std::vector<SiteId> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<net::GeoCoordinate> centroids;
  centroids.reserve(static_cast<std::size_t>(kappa));
  for (int c = 0; c < kappa; ++c)
    centroids.push_back(coords[static_cast<std::size_t>(order[static_cast<std::size_t>(c)])]);

  std::vector<GroupId> assignment(static_cast<std::size_t>(m), -1);
  assign_step(coords, centroids, assignment);
  int iterations = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++iterations;
    // Update step: centroid = mean of members.
    std::vector<double> lat(centroids.size(), 0.0), lon(centroids.size(), 0.0);
    std::vector<int> count(centroids.size(), 0);
    for (std::size_t s = 0; s < coords.size(); ++s) {
      const auto g = static_cast<std::size_t>(assignment[s]);
      lat[g] += coords[s].latitude_deg;
      lon[g] += coords[s].longitude_deg;
      ++count[g];
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (count[c] == 0) continue;  // keep stale centroid for empty cluster
      centroids[c] = {lat[c] / count[c], lon[c] / count[c]};
    }
    if (!assign_step(coords, centroids, assignment)) break;
  }

  // Compact away empty clusters and build the result.
  Grouping g;
  g.iterations = iterations;
  std::vector<GroupId> remap(centroids.size(), -1);
  g.group_of_site.assign(static_cast<std::size_t>(m), -1);
  for (std::size_t s = 0; s < coords.size(); ++s) {
    const auto c = static_cast<std::size_t>(assignment[s]);
    if (remap[c] == -1) {
      remap[c] = g.num_groups++;
      g.members.emplace_back();
      g.centroids.push_back(centroids[c]);
    }
    g.group_of_site[s] = remap[c];
    g.members[static_cast<std::size_t>(remap[c])].push_back(
        static_cast<SiteId>(s));
  }
  for (std::size_t s = 0; s < coords.size(); ++s) {
    const auto c = static_cast<std::size_t>(assignment[s]);
    g.inertia += net::euclidean_deg_sq(
        coords[s], centroids[c]);
  }
  return g;
}

Grouping group_sites_by_latency(const net::NetworkModel& model, int kappa,
                                const KMeansOptions& options) {
  const int m = model.num_sites();
  GEOMAP_CHECK_MSG(m > 0, "no sites to group");
  GEOMAP_CHECK_MSG(kappa >= 1, "kappa=" << kappa);
  if (kappa >= m) return singleton_groups(m);

  auto dist = [&](SiteId a, SiteId b) {
    return 0.5 * (model.latency(a, b) + model.latency(b, a));
  };

  // Forgy-style initial medoids: kappa distinct sites.
  Rng rng(options.seed);
  std::vector<SiteId> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<SiteId> medoids(order.begin(),
                              order.begin() + static_cast<std::ptrdiff_t>(kappa));

  std::vector<GroupId> assignment(static_cast<std::size_t>(m), -1);
  int iterations = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++iterations;
    // Assign each site to the nearest medoid.
    bool changed = false;
    for (SiteId s = 0; s < m; ++s) {
      GroupId best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < medoids.size(); ++c) {
        const double d = dist(s, medoids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<GroupId>(c);
        }
      }
      if (assignment[static_cast<std::size_t>(s)] != best) {
        assignment[static_cast<std::size_t>(s)] = best;
        changed = true;
      }
    }
    // Update each medoid to the member minimizing total in-group latency.
    for (std::size_t c = 0; c < medoids.size(); ++c) {
      SiteId best_site = medoids[c];
      double best_total = std::numeric_limits<double>::max();
      for (SiteId cand = 0; cand < m; ++cand) {
        if (assignment[static_cast<std::size_t>(cand)] !=
            static_cast<GroupId>(c))
          continue;
        double total = 0;
        for (SiteId other = 0; other < m; ++other) {
          if (assignment[static_cast<std::size_t>(other)] ==
              static_cast<GroupId>(c))
            total += dist(cand, other);
        }
        if (total < best_total) {
          best_total = total;
          best_site = cand;
        }
      }
      medoids[c] = best_site;
    }
    if (!changed && iter > 0) break;
  }

  // Compact into the Grouping structure (inertia: latency-based).
  Grouping g;
  g.iterations = iterations;
  std::vector<GroupId> remap(medoids.size(), -1);
  g.group_of_site.assign(static_cast<std::size_t>(m), -1);
  for (SiteId s = 0; s < m; ++s) {
    const auto c = static_cast<std::size_t>(assignment[static_cast<std::size_t>(s)]);
    if (remap[c] == -1) {
      remap[c] = g.num_groups++;
      g.members.emplace_back();
    }
    g.group_of_site[static_cast<std::size_t>(s)] = remap[c];
    g.members[static_cast<std::size_t>(remap[c])].push_back(s);
    g.inertia += dist(s, medoids[c]);
  }
  return g;
}

Grouping singleton_groups(int num_sites) {
  Grouping g;
  g.num_groups = num_sites;
  g.group_of_site.resize(static_cast<std::size_t>(num_sites));
  g.members.resize(static_cast<std::size_t>(num_sites));
  for (SiteId s = 0; s < num_sites; ++s) {
    g.group_of_site[static_cast<std::size_t>(s)] = s;
    g.members[static_cast<std::size_t>(s)] = {s};
  }
  return g;
}

}  // namespace geomap::core
