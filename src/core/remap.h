#pragma once
// Remap-on-outage: graceful degradation for the one-shot mapper.
//
// When a site fails mid-plan the original mapping is infeasible — every
// process it hosted is homeless and every flow through it is dead. The
// recovery policy rebuilds the MappingProblem as of the outage instant:
// the failed site's capacity is zeroed, the network model is the
// fault-degraded snapshot, surviving data-constrained processes keep
// their pins from the paper's constraint vector C (pins to the failed
// site are released — that data's residency can no longer be honoured),
// and the geo-distributed mapper is rerun over the survivors. The result
// reports the relocation bill (bytes moved × inter-site alpha-beta time)
// next to the new mapping's cost so callers can weigh migrating now
// against limping along degraded.

#include "core/geodist_mapper.h"
#include "fault/fault_plan.h"
#include "mapping/problem.h"

namespace geomap::obs {
class Collector;
}

namespace geomap::core {

struct RemapOptions {
  GeoDistOptions mapper;
  /// Application state migrated per relocated process (bytes).
  Bytes bytes_per_process = 64.0 * kMiB;
  /// Observability (opt-in, not owned): the mapper rerun is audited and
  /// the two contention replays record critical-path runs labeled
  /// "remap/pre_fault" and "remap/post_remap".
  obs::Collector* collector = nullptr;
};

struct RemapResult {
  /// Feasible post-remap mapping (failed site unused, pins honoured).
  Mapping mapping;
  /// The rebuilt problem the mapper solved: degraded network snapshot,
  /// failed site's capacity zeroed, surviving pins kept.
  mapping::MappingProblem problem;

  /// Alpha-beta cost of the old mapping under the healthy network.
  Seconds pre_fault_cost = 0;
  /// Alpha-beta cost of the old mapping under the degraded snapshot —
  /// the price of limping along (meaningful for brownouts; the outage
  /// itself makes the old mapping infeasible).
  Seconds degraded_cost = 0;
  /// Alpha-beta cost of the new mapping under the degraded snapshot.
  Seconds post_remap_cost = 0;

  /// Contention-replay makespans complementing the analytic costs: the
  /// old mapping replayed under the healthy network, and the post-remap
  /// mapping replayed fault-aware from the outage instant (the degraded
  /// replay of the *old* mapping is undefined — its traffic crosses the
  /// permanent outage).
  Seconds pre_fault_makespan = 0;
  Seconds post_remap_makespan = 0;

  /// One-time relocation bill: Σ over moved processes of the alpha-beta
  /// time of `bytes_per_process` on the degraded snapshot. Processes
  /// stranded on the dead site are fetched from the cheapest surviving
  /// site (replica fetch — the dead site cannot serve its state).
  Seconds migration_seconds = 0;
  Bytes bytes_moved = 0;
  int processes_moved = 0;
};

/// Recover from the outage of `failed_site` at virtual time `outage_time`
/// under `plan`. `problem` is the original (healthy) instance, `current`
/// the mapping in effect when the site died. Throws InvalidArgument when
/// the surviving capacity cannot host all processes (no headroom — the
/// deployment cannot survive this outage).
RemapResult remap_on_outage(const mapping::MappingProblem& problem,
                            const Mapping& current,
                            const fault::FaultPlan& plan, SiteId failed_site,
                            Seconds outage_time,
                            const RemapOptions& options = {});

}  // namespace geomap::core
