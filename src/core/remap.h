#pragma once
// Remap-on-outage: graceful degradation for the one-shot mapper.
//
// When a site fails mid-plan the original mapping is infeasible — every
// process it hosted is homeless and every flow through it is dead. The
// recovery policy rebuilds the MappingProblem as of the outage instant:
// the failed site's capacity is zeroed, the network model is the
// fault-degraded snapshot, surviving data-constrained processes keep
// their pins from the paper's constraint vector C (pins to the failed
// site are released — that data's residency can no longer be honoured),
// and the geo-distributed mapper is rerun over the survivors. The result
// reports the relocation bill (bytes moved × inter-site alpha-beta time)
// next to the new mapping's cost so callers can weigh migrating now
// against limping along degraded.
//
// Two triggers share that core:
//
//   * remap_on_outage — the oracle policy: told exactly which site died
//     and when (it reads the injected FaultPlan). An upper bound on
//     recovery quality.
//   * remap_on_detection — the production policy: driven solely by the
//     degradation detector's events (obs/detector.h). It must *infer*
//     the failed site and react at detection time (later than the true
//     onset), and the mapper optimizes the network view the detector
//     estimated, not the true degraded snapshot. The FaultPlan argument
//     is used for evaluation only (true costs, fault-aware replay,
//     migration pricing) — never for the decision.

#include <functional>
#include <vector>

#include "core/geodist_mapper.h"
#include "fault/fault_plan.h"
#include "mapping/problem.h"
#include "obs/detector.h"

namespace geomap::obs {
class Collector;
}

namespace geomap::core {

/// Thrown by the remap policies when the surviving sites cannot host
/// every process — the deployment has no headroom for this outage, and
/// no mapper invocation can fix that. Distinct from InvalidArgument so
/// callers can tell "recovery is infeasible" (page an operator, shed
/// load) from "the inputs were malformed" (a bug).
class RemapInfeasible : public Error {
 public:
  explicit RemapInfeasible(const std::string& what) : Error(what) {}
};

struct RemapOptions {
  GeoDistOptions mapper;
  /// Application state migrated per relocated process (bytes).
  Bytes bytes_per_process = 64.0 * kMiB;
  /// Observability (opt-in, not owned): the mapper rerun is audited and
  /// the two contention replays record critical-path runs labeled
  /// "remap/pre_fault" and "remap/post_remap".
  obs::Collector* collector = nullptr;
};

struct RemapResult {
  /// Feasible post-remap mapping (failed site unused, pins honoured).
  Mapping mapping;
  /// The rebuilt problem the mapper solved: degraded network snapshot,
  /// failed site's capacity zeroed, surviving pins kept.
  mapping::MappingProblem problem;

  /// Alpha-beta cost of the old mapping under the healthy network.
  Seconds pre_fault_cost = 0;
  /// Alpha-beta cost of the old mapping under the degraded snapshot —
  /// the price of limping along (meaningful for brownouts; the outage
  /// itself makes the old mapping infeasible).
  Seconds degraded_cost = 0;
  /// Alpha-beta cost of the new mapping under the degraded snapshot.
  Seconds post_remap_cost = 0;

  /// Contention-replay makespans complementing the analytic costs: the
  /// old mapping replayed under the healthy network, and the post-remap
  /// mapping replayed fault-aware from the outage instant (the degraded
  /// replay of the *old* mapping is undefined — its traffic crosses the
  /// permanent outage).
  Seconds pre_fault_makespan = 0;
  Seconds post_remap_makespan = 0;

  /// One-time relocation bill: Σ over moved processes of the alpha-beta
  /// time of `bytes_per_process` on the degraded snapshot. Processes
  /// stranded on the dead site are fetched from the cheapest surviving
  /// site (replica fetch — the dead site cannot serve its state).
  Seconds migration_seconds = 0;
  Bytes bytes_moved = 0;
  int processes_moved = 0;
};

/// Recover from the outage of `failed_site` at virtual time `outage_time`
/// under `plan`. `problem` is the original (healthy) instance, `current`
/// the mapping in effect when the site died. Throws RemapInfeasible when
/// the surviving capacity cannot host all processes (no headroom — the
/// deployment cannot survive this outage).
RemapResult remap_on_outage(const mapping::MappingProblem& problem,
                            const Mapping& current,
                            const fault::FaultPlan& plan, SiteId failed_site,
                            Seconds outage_time,
                            const RemapOptions& options = {});

/// Detection-driven recovery: remap_on_outage's result plus what the
/// policy inferred from the events alone.
struct DetectionRemapResult {
  /// The site the down events implicate. Voting: most distinct incident
  /// down links; ties break by most down events touching the site, then
  /// by earliest detection (the site whose trouble was seen first), then
  /// by smaller id — so equally-implicated sites resolve deterministically
  /// and a site with repeated episodes on one link outranks a site with a
  /// single blip.
  SiteId suspected_site = -1;
  /// When the policy acted: the earliest detect_vtime of a down event
  /// touching the suspected site. Always >= the true onset — the price
  /// of not reading the oracle plan.
  Seconds detection_time = 0;
  /// Number of down events that implicated the suspected site.
  int down_events = 0;
  RemapResult remap;
};

/// Recover using only what a detector observed. Picks the suspected
/// failed site by voting over the events' down links, rebuilds the
/// problem as of the detection time with the *perceived* network (the
/// healthy model with each actively-degraded link's latency inflated by
/// the event's severity estimate), reruns the mapper, then evaluates the
/// result under the true plan exactly like remap_on_outage so the two
/// policies are head-to-head comparable. Throws InvalidArgument when
/// `events` contains no down event (nothing actionable).
DetectionRemapResult remap_on_detection(
    const mapping::MappingProblem& problem, const Mapping& current,
    const std::vector<obs::DegradationEvent>& events,
    const fault::FaultPlan& plan, const RemapOptions& options = {});

/// The voting half of remap_on_detection, reusable on its own (a
/// multi-tenant substrate detects once on the shared telemetry, then
/// every affected tenant remaps against the same suspect). site == -1
/// when `events` contains no down event.
struct SuspectVote {
  SiteId site = -1;
  /// Earliest detect_vtime of a down event implicating the suspect.
  Seconds detection_time = 0;
  int down_events = 0;
};
SuspectVote vote_suspected_site(
    const std::vector<obs::DegradationEvent>& events);

// ---------------------------------------------------------------------------
// Bounded wait-and-retry over RemapInfeasible
//
// A solo deployment that cannot host its processes on the survivors is
// terminally out of headroom — RemapInfeasible is final. On a shared
// substrate it usually is not: the capacity a tenant needs frees up as
// *other* tenants' migrations commit and release their reservations. The
// retry path turns RemapInfeasible from a fatal error into a
// queue-and-retry signal: re-attempt the remap with exponentially spaced
// virtual-time backoff, re-querying the capacity view before each
// attempt, and give up with a *typed* error only after the attempt
// budget is spent.

struct RemapRetryPolicy {
  /// Total attempts (the first try counts). Exhausted => RemapGaveUp.
  int max_attempts = 5;
  /// Virtual-time wait before the second attempt; each further attempt
  /// multiplies by backoff_multiplier, capped at max_backoff.
  Seconds initial_backoff = 0.5;
  double backoff_multiplier = 2.0;
  Seconds max_backoff = 30.0;

  /// Wait before reattempt `attempt` (1-based: attempt 1 is the first
  /// retry after the initial failure).
  Seconds backoff(int attempt) const;

  void validate() const;
};

/// Thrown when every attempt of the retry path came back RemapInfeasible
/// — the capacity never freed. Carries the attempt count and the virtual
/// time of the last attempt so schedulers can log the wait honestly.
class RemapGaveUp : public Error {
 public:
  RemapGaveUp(const std::string& what, int attempts, Seconds gave_up_at)
      : Error(what), attempts_(attempts), gave_up_at_(gave_up_at) {}
  int attempts() const { return attempts_; }
  Seconds gave_up_at() const { return gave_up_at_; }

 private:
  int attempts_;
  Seconds gave_up_at_;
};

/// Per-site capacity available to this caller as of a virtual time. The
/// returned vector must cover every site and include the caller's own
/// residents (the remap core validates the current mapping against it);
/// the failed site's entry is zeroed by the remap itself.
using CapacityProbe = std::function<std::vector<int>(Seconds)>;

struct RetriedRemapResult {
  RemapResult remap;
  /// Attempts consumed (1 = first try succeeded).
  int attempts = 1;
  /// Virtual time of the successful attempt (outage_time + total waited).
  Seconds decided_at = 0;
  Seconds waited = 0;
};

/// remap_on_outage with the wait-and-retry path: each attempt rebuilds
/// the problem with `capacities_at(t)` (nullptr keeps problem.capacities
/// fixed — then retries are pointless and the first RemapInfeasible
/// escalates to RemapGaveUp after max_attempts identical failures).
/// Throws RemapGaveUp when every attempt was infeasible; other errors
/// (malformed input) propagate immediately.
RetriedRemapResult remap_on_outage_with_retry(
    const mapping::MappingProblem& problem, const Mapping& current,
    const fault::FaultPlan& plan, SiteId failed_site, Seconds outage_time,
    const RemapOptions& options = {}, const RemapRetryPolicy& retry = {},
    const CapacityProbe& capacities_at = nullptr);

}  // namespace geomap::core
