#pragma once
// The paper's proposed Geo-distributed process mapping algorithm
// (Section 4, Algorithm 1):
//
//   1. k-means the M sites into κ groups by physical coordinates;
//   2. pre-map constrained processes and shrink site capacities;
//   3. for every order θ of the κ groups:
//        visit each group's sites largest-available-capacity first;
//        seed each site with the globally heaviest unselected process,
//        then repeatedly add the unselected process with the heaviest
//        communication to the processes already in that site, to capacity;
//   4. keep the order with the minimum COST(P^θ).
//
// Complexity O(κ! · N²) with the paper's naive fill; this implementation
// also provides a heap-accelerated fill (lazy-deletion max-heap over
// sparse affinity updates, O((nnz + N) log N) per order) that produces
// identical mappings — a property the test suite asserts — plus
// parallel evaluation of the κ! orders.

#include <cstdint>

#include "core/grouping.h"
#include "mapping/mapper.h"

namespace geomap::obs {
class Collector;
}

namespace geomap::core {

struct GeoDistOptions {
  /// κ: number of k-means groups (paper: "usually less than 5").
  int kappa = 4;

  /// Disable to treat every site as its own group (pure order search over
  /// sites; cost grows M! — the ablation for the grouping optimization).
  bool use_grouping = true;

  /// Where the grouping distance comes from: physical coordinates (the
  /// paper), calibrated latency (extension, for deployments without
  /// coordinates), or automatic (coordinates when available, else
  /// latency).
  enum class GroupingSource { kAuto, kCoordinates, kLatency };
  GroupingSource grouping_source = GroupingSource::kAuto;

  /// Disable to evaluate only the identity group order (ablation for the
  /// κ! order search).
  bool search_orders = true;

  /// Fill-engine selection (kNaive is the paper's O(N²) loop).
  enum class FillEngine { kNaive, kHeap };
  FillEngine fill = FillEngine::kHeap;

  /// Hierarchical recursion (paper Section 4.2: "recursively apply the
  /// proposed algorithm inside each group"): first map processes to
  /// *groups* treated as large sites (order search at the group level
  /// over group-averaged LT/BT), then recursively solve each group's
  /// internal mapping over its member sites. Off by default: the flat
  /// Algorithm 1 (group order search + capacity-ordered sites within
  /// groups) is the variant the paper's pseudo-code spells out.
  bool hierarchical = false;

  /// Evaluate group orders concurrently with parallel_for.
  bool parallel_orders = true;

  /// Refuse order searches beyond this many permutations (8! guard).
  int max_orders = 40320;

  KMeansOptions kmeans;

  /// Observability (opt-in, not owned): when set, map() traces its order
  /// search, records mapper metrics, and files a decision audit entry —
  /// every enumerated group order with its per-site-pair alpha/beta cost
  /// decomposition. With nullptr (default) the search runs the exact
  /// uninstrumented code path and produces bit-identical mappings.
  obs::Collector* collector = nullptr;
};

class GeoDistMapper : public mapping::Mapper {
 public:
  explicit GeoDistMapper(GeoDistOptions options = {}) : options_(options) {}

  Mapping map(const mapping::MappingProblem& problem) override;
  std::string name() const override { return "Geo-distributed"; }

  /// The grouping used by the last map() call (for inspection/benches).
  const Grouping& last_grouping() const { return last_grouping_; }

  /// Number of group orders evaluated by the last map() call.
  int last_orders_evaluated() const { return last_orders_; }

 private:
  GeoDistOptions options_;
  Grouping last_grouping_;
  int last_orders_ = 0;
};

/// Fill a mapping for one specific group order. Exposed for tests and the
/// ablation benches. `group_order` is a permutation of group indices.
Mapping fill_for_order(const mapping::MappingProblem& problem,
                       const Grouping& grouping,
                       const std::vector<GroupId>& group_order,
                       GeoDistOptions::FillEngine engine);

}  // namespace geomap::core
