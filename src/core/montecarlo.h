#pragma once
// Monte Carlo exploration of the mapping solution space (paper Section
// 5.4, Figures 9-10): draw feasible mappings uniformly at random, record
// the cost distribution, and derive (a) the CDF that positions each
// algorithm's solution within the space and (b) the best-of-K curve that
// shows random search needs K ≈ 10^4-10^7 draws to match the proposed
// algorithm.

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mapping/problem.h"

namespace geomap::core {

struct MonteCarloOptions {
  /// Paper uses 10^7 draws; the default here keeps single-core bench
  /// runs interactive while the distribution is already stable.
  std::int64_t samples = 200000;
  std::uint64_t seed = 12345;
  bool parallel = true;
};

struct MonteCarloResult {
  std::vector<double> costs;  // one per sample, sample order
  Seconds best = 0;
  Seconds worst = 0;
  double mean = 0;

  /// Fraction of random mappings strictly cheaper than `cost` — "the
  /// probability that a random mapping beats this algorithm".
  double fraction_below(Seconds cost) const;

  /// Empirical CDF of the (raw) costs.
  EmpiricalCdf cdf() const { return EmpiricalCdf(costs); }

  /// min(costs[0..k)) for each requested k — the best-of-K curve, using
  /// the stream's own sample order (paper Figure 10).
  std::vector<Seconds> best_of_k(const std::vector<std::int64_t>& ks) const;
};

MonteCarloResult run_monte_carlo(const mapping::MappingProblem& problem,
                                 const MonteCarloOptions& options = {});

}  // namespace geomap::core
