#include "core/remap.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "fault/degraded_network.h"
#include "sim/netsim.h"

namespace geomap::core {

namespace {

/// Cheapest surviving source site for a replica fetch into `dst`.
SiteId cheapest_survivor(const net::NetworkModel& model, SiteId dst,
                         SiteId failed_site, Bytes bytes) {
  SiteId best = -1;
  Seconds best_time = std::numeric_limits<double>::infinity();
  for (SiteId s = 0; s < model.num_sites(); ++s) {
    if (s == failed_site || s == dst) continue;
    const Seconds t = model.transfer_time(s, dst, bytes);
    if (t < best_time) {
      best_time = t;
      best = s;
    }
  }
  return best;
}

}  // namespace

RemapResult remap_on_outage(const mapping::MappingProblem& problem,
                            const Mapping& current,
                            const fault::FaultPlan& plan, SiteId failed_site,
                            Seconds outage_time, const RemapOptions& options) {
  GEOMAP_CHECK_MSG(failed_site >= 0 && failed_site < problem.num_sites(),
                   "failed site " << failed_site << " out of range");
  GEOMAP_CHECK_ARG(options.bytes_per_process >= 0,
                   "bytes_per_process must be non-negative, got "
                       << options.bytes_per_process);
  mapping::validate_mapping(problem, current);

  const fault::DegradedNetworkModel degraded(problem.network, plan);

  RemapResult result;
  result.pre_fault_cost =
      sim::alpha_beta_cost(problem.comm, problem.network, current);

  // Rebuild the instance as of the outage: degraded LT/BT snapshot, dead
  // site excluded by capacity, surviving pins kept (pins to the dead site
  // are released).
  result.problem = problem;
  result.problem.network = degraded.snapshot(outage_time);
  result.problem.capacities[static_cast<std::size_t>(failed_site)] = 0;
  if (!result.problem.constraints.empty()) {
    for (SiteId& pin : result.problem.constraints) {
      if (pin == failed_site) pin = kUnconstrained;
    }
  }
  if (!result.problem.allowed_sites.empty()) {
    for (auto& allowed : result.problem.allowed_sites) {
      allowed.erase(std::remove(allowed.begin(), allowed.end(), failed_site),
                    allowed.end());
      // A list that only named the dead site becomes unrestricted: the
      // data residency it encoded can no longer be honoured anywhere.
    }
  }
  result.problem.validate();  // throws when survivors lack capacity

  result.degraded_cost =
      sim::alpha_beta_cost(problem.comm, result.problem.network, current);

  GeoDistOptions mapper_options = options.mapper;
  if (mapper_options.collector == nullptr)
    mapper_options.collector = options.collector;
  GeoDistMapper mapper(mapper_options);
  result.mapping = mapper.map(result.problem);
  mapping::validate_mapping(result.problem, result.mapping);

  result.post_remap_cost =
      sim::alpha_beta_cost(problem.comm, result.problem.network, result.mapping);

  // Replay makespans: the healthy pre-fault execution of the old mapping,
  // and the recovered execution — the post-remap mapping replayed
  // fault-aware from the outage instant (it avoids the dead site, so the
  // permanent outage is never crossed).
  result.pre_fault_makespan =
      sim::replay_with_contention(problem.comm, problem.network, current,
                                  options.collector, "remap/pre_fault")
          .makespan;
  result.post_remap_makespan =
      sim::replay_with_contention(problem.comm, degraded, result.mapping,
                                  outage_time, options.collector,
                                  "remap/post_remap")
          .makespan;

  // Relocation bill: every moved process ships its state over the
  // degraded network; state stranded on the dead site is fetched from the
  // cheapest surviving replica site instead.
  const Bytes bytes = options.bytes_per_process;
  for (std::size_t i = 0; i < current.size(); ++i) {
    const SiteId from = current[i];
    const SiteId to = result.mapping[i];
    if (from == to) continue;
    const SiteId src =
        from == failed_site
            ? cheapest_survivor(result.problem.network, to, failed_site, bytes)
            : from;
    if (src >= 0) {
      result.migration_seconds +=
          result.problem.network.transfer_time(src, to, bytes);
    }
    result.bytes_moved += bytes;
    result.processes_moved += 1;
  }
  return result;
}

}  // namespace geomap::core
