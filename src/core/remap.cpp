#include "core/remap.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "common/error.h"
#include "fault/degraded_network.h"
#include "sim/netsim.h"

namespace geomap::core {

namespace {

/// Cheapest surviving source site for a replica fetch into `dst`.
SiteId cheapest_survivor(const net::NetworkModel& model, SiteId dst,
                         SiteId failed_site, Bytes bytes) {
  SiteId best = -1;
  Seconds best_time = std::numeric_limits<double>::infinity();
  for (SiteId s = 0; s < model.num_sites(); ++s) {
    if (s == failed_site || s == dst) continue;
    const Seconds t = model.transfer_time(s, dst, bytes);
    if (t < best_time) {
      best_time = t;
      best = s;
    }
  }
  return best;
}

/// Shared recovery core: exclude `failed_site` as of `remap_time`, rerun
/// the mapper over the survivors, evaluate under the true plan. The
/// mapper optimizes `perceived` when given (a detector's estimate of the
/// degraded network); the oracle policy passes nullptr and optimizes the
/// true degraded snapshot. Evaluation (degraded/post-remap costs, replay
/// makespans, migration pricing) always uses the truth, so oracle and
/// detection recoveries are directly comparable.
RemapResult remap_excluding(const mapping::MappingProblem& problem,
                            const Mapping& current,
                            const fault::FaultPlan& plan, SiteId failed_site,
                            Seconds remap_time,
                            const net::NetworkModel* perceived,
                            const char* replay_label_prefix,
                            const RemapOptions& options) {
  GEOMAP_CHECK_MSG(failed_site >= 0 && failed_site < problem.num_sites(),
                   "failed site " << failed_site << " out of range");
  GEOMAP_CHECK_ARG(options.bytes_per_process >= 0,
                   "bytes_per_process must be non-negative, got "
                       << options.bytes_per_process);
  mapping::validate_mapping(problem, current);

  const fault::DegradedNetworkModel degraded(problem.network, plan);
  const net::NetworkModel truth = degraded.snapshot(remap_time);

  RemapResult result;
  result.pre_fault_cost =
      sim::alpha_beta_cost(problem.comm, problem.network, current);

  // Rebuild the instance as of the remap: the network view the policy
  // acts on, dead site excluded by capacity, surviving pins kept (pins to
  // the dead site are released).
  result.problem = problem;
  result.problem.network = perceived != nullptr ? *perceived : truth;
  result.problem.capacities[static_cast<std::size_t>(failed_site)] = 0;
  if (!result.problem.constraints.empty()) {
    for (SiteId& pin : result.problem.constraints) {
      if (pin == failed_site) pin = kUnconstrained;
    }
  }
  if (!result.problem.allowed_sites.empty()) {
    for (auto& allowed : result.problem.allowed_sites) {
      allowed.erase(std::remove(allowed.begin(), allowed.end(), failed_site),
                    allowed.end());
      // A list that only named the dead site becomes unrestricted: the
      // data residency it encoded can no longer be honoured anywhere.
    }
  }
  // Feasibility first, with a typed error: the generic validate() below
  // reports capacity shortfall as InvalidArgument, which callers cannot
  // tell apart from malformed input.
  int surviving_capacity = 0;
  for (std::size_t s = 0; s < result.problem.capacities.size(); ++s) {
    surviving_capacity += result.problem.capacities[s];
  }
  const int n = problem.num_processes();
  if (surviving_capacity < n) {
    std::ostringstream os;
    os << "remap infeasible: surviving sites hold " << surviving_capacity
       << " slots for " << n << " processes after excluding site "
       << failed_site << " — the deployment cannot survive this outage";
    throw RemapInfeasible(os.str());
  }
  result.problem.validate();

  result.degraded_cost = sim::alpha_beta_cost(problem.comm, truth, current);

  GeoDistOptions mapper_options = options.mapper;
  if (mapper_options.collector == nullptr)
    mapper_options.collector = options.collector;
  GeoDistMapper mapper(mapper_options);
  result.mapping = mapper.map(result.problem);
  mapping::validate_mapping(result.problem, result.mapping);

  result.post_remap_cost =
      sim::alpha_beta_cost(problem.comm, truth, result.mapping);

  // Replay makespans: the healthy pre-fault execution of the old mapping,
  // and the recovered execution — the post-remap mapping replayed
  // fault-aware from the remap instant (it avoids the dead site, so the
  // permanent outage is never crossed).
  const std::string prefix = replay_label_prefix;
  result.pre_fault_makespan =
      sim::replay_with_contention(problem.comm, problem.network, current,
                                  options.collector,
                                  (prefix + "/pre_fault").c_str())
          .makespan;
  result.post_remap_makespan =
      sim::replay_with_contention(problem.comm, degraded, result.mapping,
                                  remap_time, options.collector,
                                  (prefix + "/post_remap").c_str())
          .makespan;

  // Relocation bill: every moved process ships its state over the
  // degraded network; state stranded on the dead site is fetched from the
  // cheapest surviving replica site instead.
  const Bytes bytes = options.bytes_per_process;
  for (std::size_t i = 0; i < current.size(); ++i) {
    const SiteId from = current[i];
    const SiteId to = result.mapping[i];
    if (from == to) continue;
    const SiteId src = from == failed_site
                           ? cheapest_survivor(truth, to, failed_site, bytes)
                           : from;
    if (src >= 0) {
      result.migration_seconds += truth.transfer_time(src, to, bytes);
    }
    result.bytes_moved += bytes;
    result.processes_moved += 1;
  }
  return result;
}

}  // namespace

RemapResult remap_on_outage(const mapping::MappingProblem& problem,
                            const Mapping& current,
                            const fault::FaultPlan& plan, SiteId failed_site,
                            Seconds outage_time, const RemapOptions& options) {
  return remap_excluding(problem, current, plan, failed_site, outage_time,
                         /*perceived=*/nullptr, "remap", options);
}

SuspectVote vote_suspected_site(
    const std::vector<obs::DegradationEvent>& events) {
  // Vote: a down site shows up as down events on *many* of its incident
  // links; a single flaky link implicates each endpoint only once. Ties
  // on distinct links break by total down events (repeated episodes on
  // one link outrank a single blip), then by earliest detection, then by
  // smaller id — fully deterministic.
  struct Vote {
    std::set<std::pair<SiteId, SiteId>> links;
    int down_events = 0;
    Seconds earliest_detect = std::numeric_limits<double>::infinity();
  };
  std::map<SiteId, Vote> implicated;
  for (const obs::DegradationEvent& e : events) {
    if (e.kind != obs::DegradationKind::kDown) continue;
    for (const SiteId site : {e.src, e.dst}) {
      Vote& vote = implicated[site];
      vote.links.insert({e.src, e.dst});
      vote.down_events += 1;
      vote.earliest_detect = std::min(vote.earliest_detect, e.detect_vtime);
    }
  }
  SuspectVote result;
  if (implicated.empty()) return result;

  const Vote* best = nullptr;
  for (const auto& [site, vote] : implicated) {
    const bool wins =
        best == nullptr || vote.links.size() > best->links.size() ||
        (vote.links.size() == best->links.size() &&
         (vote.down_events > best->down_events ||
          (vote.down_events == best->down_events &&
           vote.earliest_detect < best->earliest_detect)));
    // Equal on every criterion: keep the incumbent — std::map iterates
    // ids ascending, so the smaller id wins the final tie.
    if (wins) {
      best = &vote;
      result.site = site;
    }
  }

  result.detection_time = std::numeric_limits<double>::infinity();
  for (const obs::DegradationEvent& e : events) {
    if (e.kind != obs::DegradationKind::kDown) continue;
    if (e.src != result.site && e.dst != result.site) continue;
    result.down_events += 1;
    result.detection_time = std::min(result.detection_time, e.detect_vtime);
  }
  return result;
}

DetectionRemapResult remap_on_detection(
    const mapping::MappingProblem& problem, const Mapping& current,
    const std::vector<obs::DegradationEvent>& events,
    const fault::FaultPlan& plan, const RemapOptions& options) {
  const SuspectVote vote = vote_suspected_site(events);
  GEOMAP_CHECK_ARG(vote.site != -1,
                   "remap_on_detection needs at least one down event — no "
                   "actionable detection");

  DetectionRemapResult result;
  result.suspected_site = vote.site;
  result.detection_time = vote.detection_time;
  result.down_events = vote.down_events;

  // The perceived network: what the detector estimated, not the oracle
  // snapshot. Each latency episode active at detection time inflates its
  // link by the severity estimate s — LT' = s·LT and BT' = BT/s, so a
  // message's perceived wire time is exactly s times healthy, matching
  // the observed inflation ratio the severity was fitted to.
  Matrix latency = problem.network.latency_matrix();
  Matrix bandwidth = problem.network.bandwidth_matrix();
  for (const obs::DegradationEvent& e : events) {
    if (e.kind != obs::DegradationKind::kLatency) continue;
    if (e.onset_vtime > result.detection_time ||
        e.end_vtime < result.detection_time) {
      continue;
    }
    if (e.src < 0 || e.src >= problem.num_sites() || e.dst < 0 ||
        e.dst >= problem.num_sites()) {
      continue;
    }
    const double severity = std::max(1.0, e.severity);
    latency(static_cast<std::size_t>(e.src), static_cast<std::size_t>(e.dst)) *=
        severity;
    bandwidth(static_cast<std::size_t>(e.src),
              static_cast<std::size_t>(e.dst)) /= severity;
  }
  const net::NetworkModel perceived(std::move(latency), std::move(bandwidth));

  result.remap = remap_excluding(problem, current, plan, result.suspected_site,
                                 result.detection_time, &perceived,
                                 "detect_remap", options);
  return result;
}

Seconds RemapRetryPolicy::backoff(int attempt) const {
  GEOMAP_CHECK_ARG(attempt >= 1, "backoff attempt must be >= 1, got "
                                     << attempt);
  Seconds wait = initial_backoff;
  for (int i = 1; i < attempt; ++i) {
    wait *= backoff_multiplier;
    if (wait >= max_backoff) return max_backoff;
  }
  return std::min(wait, max_backoff);
}

void RemapRetryPolicy::validate() const {
  GEOMAP_CHECK_ARG(max_attempts >= 1, "max_attempts must be >= 1, got "
                                          << max_attempts);
  GEOMAP_CHECK_ARG(initial_backoff >= 0,
                   "initial_backoff must be non-negative, got "
                       << initial_backoff);
  GEOMAP_CHECK_ARG(backoff_multiplier >= 1.0,
                   "backoff_multiplier must be >= 1, got "
                       << backoff_multiplier);
  GEOMAP_CHECK_ARG(max_backoff >= initial_backoff,
                   "max_backoff " << max_backoff
                                  << " must be >= initial_backoff "
                                  << initial_backoff);
}

RetriedRemapResult remap_on_outage_with_retry(
    const mapping::MappingProblem& problem, const Mapping& current,
    const fault::FaultPlan& plan, SiteId failed_site, Seconds outage_time,
    const RemapOptions& options, const RemapRetryPolicy& retry,
    const CapacityProbe& capacities_at) {
  retry.validate();

  RetriedRemapResult result;
  Seconds waited = 0;
  std::string last_reason;
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    const Seconds t = outage_time + waited;
    mapping::MappingProblem view = problem;
    if (capacities_at != nullptr) {
      view.capacities = capacities_at(t);
      GEOMAP_CHECK_ARG(
          view.capacities.size() ==
              static_cast<std::size_t>(problem.num_sites()),
          "capacity probe returned " << view.capacities.size()
                                     << " sites, problem has "
                                     << problem.num_sites());
    }
    try {
      result.remap =
          remap_on_outage(view, current, plan, failed_site, t, options);
      result.attempts = attempt;
      result.decided_at = t;
      result.waited = waited;
      return result;
    } catch (const RemapInfeasible& e) {
      last_reason = e.what();
      if (attempt < retry.max_attempts) waited += retry.backoff(attempt);
    }
  }
  std::ostringstream os;
  os << "remap gave up after " << retry.max_attempts
     << " infeasible attempts over " << waited
     << " virtual seconds (outage at t=" << outage_time
     << ", last attempt at t=" << outage_time + waited
     << "): " << last_reason;
  throw RemapGaveUp(os.str(), retry.max_attempts, outage_time + waited);
}

}  // namespace geomap::core
