#pragma once
// Grouping optimization (paper Section 4.2 "Grouping Optimization"):
// cluster nearby sites into κ groups with k-means over their physical
// coordinates (Forgy initialization, Euclidean distance), so the order
// search explores κ! group orders instead of M! site orders.

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "net/geo.h"
#include "net/network_model.h"

namespace geomap::core {

struct Grouping {
  int num_groups = 0;                        // κ actually produced
  std::vector<GroupId> group_of_site;        // size M
  std::vector<std::vector<SiteId>> members;  // size num_groups
  std::vector<net::GeoCoordinate> centroids;

  /// Sum of squared distances of sites to their centroids.
  double inertia = 0.0;

  /// Update/assign rounds the clustering ran before converging (0 for
  /// singleton groupings) — exported by the observability layer.
  int iterations = 0;
};

struct KMeansOptions {
  int max_iterations = 100;
  std::uint64_t seed = 2017;
};

/// K-means over site coordinates. Produces at most `kappa` groups (fewer
/// when M < kappa or clusters empty out). Deterministic in the seed.
Grouping group_sites(const std::vector<net::GeoCoordinate>& coords, int kappa,
                     const KMeansOptions& options = {});

/// Degenerate grouping: every site its own group (grouping disabled).
Grouping singleton_groups(int num_sites);

/// Extension: group sites by measured network latency instead of
/// physical coordinates — k-medoids (PAM-style) over the symmetrized LT
/// matrix. Useful when provider coordinates are unavailable; latency is
/// the operative proxy for distance anyway (paper Observation 2).
/// Centroids in the result are unset (no coordinates exist).
Grouping group_sites_by_latency(const net::NetworkModel& model, int kappa,
                                const KMeansOptions& options = {});

}  // namespace geomap::core
