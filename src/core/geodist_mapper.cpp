#include "core/geodist_mapper.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <queue>

#include "common/error.h"
#include "common/parallel.h"
#include "mapping/allowed_sites.h"
#include "mapping/cost.h"
#include "obs/collector.h"

namespace geomap::core {

namespace {

using mapping::MappingProblem;

/// Shared fill scaffolding: the partial mapping after constraint
/// pre-assignment, per-site free capacity, selection flags, and the
/// heaviest-traffic process ordering used for site seeds.
struct FillContext {
  const MappingProblem* p = nullptr;
  Mapping mapping;
  std::vector<int> free;
  std::vector<char> selected;
  int num_unselected = 0;
  /// Process ids sorted by descending total traffic, tie low id first
  /// (Algorithm 1 line 9 seed picks scan this with a cursor).
  std::vector<ProcessId> by_traffic;
  std::size_t traffic_cursor = 0;

  explicit FillContext(const MappingProblem& problem) : p(&problem) {
    auto [partial, free_caps] = mapping::apply_constraints(problem);
    mapping = std::move(partial);
    free = std::move(free_caps);
    const int n = problem.num_processes();
    selected.assign(static_cast<std::size_t>(n), 0);
    for (ProcessId i = 0; i < n; ++i) {
      if (mapping[static_cast<std::size_t>(i)] != kUnmapped)
        selected[static_cast<std::size_t>(i)] = 1;
      else
        ++num_unselected;
    }
    by_traffic.resize(static_cast<std::size_t>(n));
    std::iota(by_traffic.begin(), by_traffic.end(), 0);
    std::stable_sort(by_traffic.begin(), by_traffic.end(),
                     [&](ProcessId a, ProcessId b) {
                       return problem.comm.process_traffic(a) >
                              problem.comm.process_traffic(b);
                     });
  }

  /// Globally heaviest unselected process placeable on `site`
  /// (Algorithm 1 line 9; -1 when none qualifies). The cursor only
  /// advances past *selected* processes — an alive process skipped for
  /// being disallowed on this site must stay reachable for later sites.
  ProcessId heaviest_unselected_for(SiteId site) {
    while (traffic_cursor < by_traffic.size() &&
           selected[static_cast<std::size_t>(by_traffic[traffic_cursor])])
      ++traffic_cursor;
    for (std::size_t c = traffic_cursor; c < by_traffic.size(); ++c) {
      const ProcessId t = by_traffic[c];
      if (!selected[static_cast<std::size_t>(t)] &&
          p->placement_allowed(t, site))
        return t;
    }
    return -1;
  }

  void select(ProcessId t, SiteId site) {
    mapping[static_cast<std::size_t>(t)] = site;
    selected[static_cast<std::size_t>(t)] = 1;
    --free[static_cast<std::size_t>(site)];
    --num_unselected;
  }
};

/// Affinity scratch shared by both engines: affinity[q] accumulates the
/// undirected communication volume between q and the processes already
/// selected into the site currently being filled. A touched-list keeps
/// per-site reset at O(|touched|).
struct AffinityScratch {
  std::vector<Bytes> affinity;
  std::vector<ProcessId> touched;

  explicit AffinityScratch(int n)
      : affinity(static_cast<std::size_t>(n), 0.0) {}

  void bump(ProcessId q, Bytes w) {
    if (affinity[static_cast<std::size_t>(q)] == 0.0) touched.push_back(q);
    affinity[static_cast<std::size_t>(q)] += w;
  }

  void clear() {
    for (const ProcessId q : touched)
      affinity[static_cast<std::size_t>(q)] = 0.0;
    touched.clear();
  }
};

/// Add t's undirected edges into the affinity of its unselected
/// neighbours (called when t joins the current site). The optional heap
/// receives refreshed entries (lazy-deletion scheme).
template <typename PushFn>
void add_member_affinity(const MappingProblem& p, ProcessId t,
                         const std::vector<char>& selected,
                         AffinityScratch& scratch, PushFn&& push) {
  const trace::CommMatrix::Row r = p.comm.undirected_row(t);
  for (std::size_t k = 0; k < r.size(); ++k) {
    const ProcessId q = r.dst[k];
    if (selected[static_cast<std::size_t>(q)]) continue;
    scratch.bump(q, r.volume[k]);
    push(q, scratch.affinity[static_cast<std::size_t>(q)]);
  }
}

/// The paper's fill loop for one site, O(N) per pick: scan all unselected
/// processes for the affinity argmax (tie: lowest id).
void fill_site_naive(FillContext& ctx, SiteId site,
                     AffinityScratch& scratch) {
  const MappingProblem& p = *ctx.p;
  const int n = p.num_processes();
  auto no_heap = [](ProcessId, Bytes) {};

  // Pinned processes already resident in this site attract their
  // neighbours from the first pick.
  for (ProcessId q = 0; q < n; ++q) {
    if (ctx.selected[static_cast<std::size_t>(q)] &&
        ctx.mapping[static_cast<std::size_t>(q)] == site) {
      add_member_affinity(p, q, ctx.selected, scratch, no_heap);
    }
  }

  bool first = true;
  while (ctx.free[static_cast<std::size_t>(site)] > 0 &&
         ctx.num_unselected > 0) {
    ProcessId pick = -1;
    if (first) {
      pick = ctx.heaviest_unselected_for(site);
      first = false;
    } else {
      Bytes best = -1.0;
      for (ProcessId q = 0; q < n; ++q) {
        if (ctx.selected[static_cast<std::size_t>(q)]) continue;
        if (!p.placement_allowed(q, site)) continue;
        const Bytes a = scratch.affinity[static_cast<std::size_t>(q)];
        if (a > best) {
          best = a;
          pick = q;
        }
      }
    }
    if (pick < 0) break;  // nothing placeable here (allowed-site sets)
    ctx.select(pick, site);
    add_member_affinity(p, pick, ctx.selected, scratch, no_heap);
  }
  scratch.clear();
}

/// Heap-accelerated fill: identical picks, O(log N) amortized per pick.
void fill_site_heap(FillContext& ctx, SiteId site, AffinityScratch& scratch) {
  const MappingProblem& p = *ctx.p;
  const int n = p.num_processes();

  struct Entry {
    Bytes affinity;
    ProcessId id;
    // Max-heap: higher affinity first, then lower id (matches the naive
    // scan's lowest-id tie break).
    bool operator<(const Entry& other) const {
      if (affinity != other.affinity) return affinity < other.affinity;
      return id > other.id;
    }
  };
  std::priority_queue<Entry> heap;
  auto push = [&heap](ProcessId q, Bytes a) { heap.push(Entry{a, q}); };

  for (ProcessId q = 0; q < n; ++q) {
    if (ctx.selected[static_cast<std::size_t>(q)] &&
        ctx.mapping[static_cast<std::size_t>(q)] == site) {
      add_member_affinity(p, q, ctx.selected, scratch, push);
    }
  }
  // Seed the heap with every unselected process so zero-affinity picks
  // (disconnected processes) surface in lowest-id order too.
  for (ProcessId q = 0; q < n; ++q) {
    if (!ctx.selected[static_cast<std::size_t>(q)])
      heap.push(Entry{scratch.affinity[static_cast<std::size_t>(q)], q});
  }

  bool first = true;
  while (ctx.free[static_cast<std::size_t>(site)] > 0 &&
         ctx.num_unselected > 0) {
    ProcessId pick = -1;
    if (first) {
      pick = ctx.heaviest_unselected_for(site);
      first = false;
    } else {
      // Pop until a live entry: unselected, affinity still current, and
      // placeable on this site (disallowed entries are simply consumed —
      // they can never be picked for this site anyway).
      while (!heap.empty()) {
        const Entry e = heap.top();
        heap.pop();
        if (ctx.selected[static_cast<std::size_t>(e.id)]) continue;
        if (e.affinity !=
            scratch.affinity[static_cast<std::size_t>(e.id)])
          continue;  // stale: a fresher entry exists
        if (!p.placement_allowed(e.id, site)) continue;
        pick = e.id;
        break;
      }
    }
    if (pick < 0) break;  // nothing placeable here (allowed-site sets)
    ctx.select(pick, site);
    add_member_affinity(p, pick, ctx.selected, scratch, push);
  }
  scratch.clear();
}

}  // namespace

Mapping fill_for_order(const MappingProblem& problem, const Grouping& grouping,
                       const std::vector<GroupId>& group_order,
                       GeoDistOptions::FillEngine engine) {
  FillContext ctx(problem);
  AffinityScratch scratch(problem.num_processes());

  for (const GroupId g : group_order) {
    // Algorithm 1 line 10: within the group, sites largest-available-
    // capacity first (ties: lower site id).
    std::vector<SiteId> sites = grouping.members[static_cast<std::size_t>(g)];
    std::stable_sort(sites.begin(), sites.end(), [&](SiteId a, SiteId b) {
      return ctx.free[static_cast<std::size_t>(a)] >
             ctx.free[static_cast<std::size_t>(b)];
    });
    for (const SiteId site : sites) {
      if (ctx.free[static_cast<std::size_t>(site)] == 0) continue;  // line 6
      if (ctx.num_unselected == 0) break;
      if (engine == GeoDistOptions::FillEngine::kNaive)
        fill_site_naive(ctx, site, scratch);
      else
        fill_site_heap(ctx, site, scratch);
    }
  }
  if (ctx.num_unselected > 0) {
    // Allowed-site sets can leave stragglers no visited site could take;
    // finish with the augmenting-path repair (moves only unpinned
    // processes, and only where necessary). validate() guaranteed a
    // feasible completion exists.
    std::vector<char> movable(ctx.mapping.size(), 1);
    for (std::size_t i = 0; i < problem.constraints.size(); ++i)
      if (problem.constraints[i] != kUnconstrained) movable[i] = 0;
    GEOMAP_CHECK_MSG(
        mapping::complete_assignment(problem, ctx.mapping, ctx.free, movable),
        "no feasible completion for the allowed-site constraints");
  }
  return std::move(ctx.mapping);
}

namespace {

std::int64_t factorial(int k) {
  std::int64_t f = 1;
  for (int i = 2; i <= k; ++i) f *= i;
  return f;
}

/// index-th permutation of {0..k-1} in lexicographic order (Lehmer code).
std::vector<GroupId> nth_permutation(int k, std::int64_t index) {
  std::vector<GroupId> pool(static_cast<std::size_t>(k));
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<GroupId> out;
  out.reserve(static_cast<std::size_t>(k));
  std::int64_t f = factorial(k - 1);
  for (int i = k - 1; i >= 0; --i) {
    const auto pos = static_cast<std::size_t>(index / f);
    index %= f;
    out.push_back(pool[pos]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pos));
    if (i > 0) f /= i;
  }
  return out;
}

}  // namespace

namespace {

/// Group-level network view: a kappa x kappa model whose (g, h) entry
/// averages LT/BT over all ordered member-site pairs.
net::NetworkModel group_level_model(const net::NetworkModel& model,
                                    const Grouping& grouping) {
  const auto kappa = static_cast<std::size_t>(grouping.num_groups);
  Matrix lat = Matrix::square(kappa);
  Matrix bw = Matrix::square(kappa);
  for (std::size_t g = 0; g < kappa; ++g) {
    for (std::size_t h = 0; h < kappa; ++h) {
      double lat_sum = 0, bw_sum = 0;
      int count = 0;
      for (const SiteId s : grouping.members[g]) {
        for (const SiteId t : grouping.members[h]) {
          lat_sum += model.latency(s, t);
          bw_sum += model.bandwidth(s, t);
          ++count;
        }
      }
      lat(g, h) = lat_sum / count;
      bw(g, h) = bw_sum / count;
    }
  }
  return net::NetworkModel(std::move(lat), std::move(bw));
}

/// Hierarchical solve (paper: "recursively apply the proposed algorithm
/// inside each group"): processes -> groups on the group-averaged model,
/// then each group's processes -> its member sites, recursively.
Mapping map_hierarchical(const MappingProblem& problem,
                         const Grouping& grouping,
                         const GeoDistOptions& options) {
  const int n = problem.num_processes();

  // ---- Level 1: treat groups as large sites. ----
  MappingProblem group_problem;
  group_problem.comm = problem.comm;
  group_problem.network = group_level_model(problem.network, grouping);
  group_problem.capacities.assign(
      static_cast<std::size_t>(grouping.num_groups), 0);
  for (SiteId s = 0; s < problem.num_sites(); ++s) {
    group_problem.capacities[static_cast<std::size_t>(
        grouping.group_of_site[static_cast<std::size_t>(s)])] +=
        problem.capacities[static_cast<std::size_t>(s)];
  }
  if (!problem.constraints.empty()) {
    group_problem.constraints.assign(static_cast<std::size_t>(n),
                                     kUnconstrained);
    for (int i = 0; i < n; ++i) {
      const SiteId pin = problem.constraints[static_cast<std::size_t>(i)];
      if (pin != kUnconstrained)
        group_problem.constraints[static_cast<std::size_t>(i)] =
            grouping.group_of_site[static_cast<std::size_t>(pin)];
    }
  }
  if (!problem.allowed_sites.empty()) {
    group_problem.allowed_sites.assign(static_cast<std::size_t>(n), {});
    for (int i = 0; i < n; ++i) {
      const auto& list = problem.allowed_sites[static_cast<std::size_t>(i)];
      if (list.empty()) continue;
      std::vector<GroupId> groups;
      for (const SiteId s : list)
        groups.push_back(grouping.group_of_site[static_cast<std::size_t>(s)]);
      std::sort(groups.begin(), groups.end());
      groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
      group_problem.allowed_sites[static_cast<std::size_t>(i)] =
          std::move(groups);
    }
  }
  if (grouping.num_groups == static_cast<int>(grouping.centroids.size())) {
    group_problem.site_coords = grouping.centroids;
  }
  group_problem.validate();

  GeoDistOptions level_options = options;
  level_options.hierarchical = false;  // groups are few; flat search here
  GeoDistMapper level_mapper(level_options);
  const Mapping to_group = level_mapper.map(group_problem);

  // ---- Level 2: solve each group's internal mapping recursively. ----
  Mapping result(static_cast<std::size_t>(n), kUnmapped);
  for (GroupId g = 0; g < grouping.num_groups; ++g) {
    const std::vector<SiteId>& sites =
        grouping.members[static_cast<std::size_t>(g)];
    std::vector<ProcessId> procs;
    for (ProcessId i = 0; i < n; ++i)
      if (to_group[static_cast<std::size_t>(i)] == g) procs.push_back(i);
    if (procs.empty()) continue;

    if (sites.size() == 1) {
      for (const ProcessId i : procs)
        result[static_cast<std::size_t>(i)] = sites[0];
      continue;
    }

    // Local index spaces for processes and sites.
    std::vector<int> local_of_proc(static_cast<std::size_t>(n), -1);
    for (std::size_t li = 0; li < procs.size(); ++li)
      local_of_proc[static_cast<std::size_t>(procs[li])] =
          static_cast<int>(li);
    std::vector<int> local_of_site(
        static_cast<std::size_t>(problem.num_sites()), -1);
    for (std::size_t ls = 0; ls < sites.size(); ++ls)
      local_of_site[static_cast<std::size_t>(sites[ls])] =
          static_cast<int>(ls);

    MappingProblem sub;
    {
      trace::CommMatrix::Builder builder(static_cast<int>(procs.size()));
      for (const ProcessId i : procs) {
        const trace::CommMatrix::Row row = problem.comm.row(i);
        for (std::size_t k = 0; k < row.size(); ++k) {
          const int lj = local_of_proc[static_cast<std::size_t>(row.dst[k])];
          if (lj < 0) continue;  // external edge: fixed at group level
          builder.add_message(local_of_proc[static_cast<std::size_t>(i)], lj,
                              row.volume[k], row.count[k]);
        }
      }
      sub.comm = builder.build();
    }
    {
      Matrix lat = Matrix::square(sites.size());
      Matrix bw = Matrix::square(sites.size());
      for (std::size_t a = 0; a < sites.size(); ++a)
        for (std::size_t b = 0; b < sites.size(); ++b) {
          lat(a, b) = problem.network.latency(sites[a], sites[b]);
          bw(a, b) = problem.network.bandwidth(sites[a], sites[b]);
        }
      sub.network = net::NetworkModel(std::move(lat), std::move(bw));
    }
    for (const SiteId s : sites)
      sub.capacities.push_back(problem.capacities[static_cast<std::size_t>(s)]);
    if (!problem.site_coords.empty()) {
      for (const SiteId s : sites)
        sub.site_coords.push_back(
            problem.site_coords[static_cast<std::size_t>(s)]);
    }
    if (!problem.constraints.empty()) {
      sub.constraints.assign(procs.size(), kUnconstrained);
      for (std::size_t li = 0; li < procs.size(); ++li) {
        const SiteId pin =
            problem.constraints[static_cast<std::size_t>(procs[li])];
        if (pin != kUnconstrained)
          sub.constraints[li] = local_of_site[static_cast<std::size_t>(pin)];
      }
    }
    if (!problem.allowed_sites.empty()) {
      sub.allowed_sites.assign(procs.size(), {});
      for (std::size_t li = 0; li < procs.size(); ++li) {
        const auto& list =
            problem.allowed_sites[static_cast<std::size_t>(procs[li])];
        if (list.empty()) continue;
        std::vector<SiteId> local;
        for (const SiteId s : list) {
          const int ls = local_of_site[static_cast<std::size_t>(s)];
          if (ls >= 0) local.push_back(ls);
        }
        // Restricted processes always landed in a group holding at least
        // one allowed site, so `local` is never empty here.
        sub.allowed_sites[li] = std::move(local);
      }
    }
    sub.validate();

    GeoDistMapper sub_mapper(options);  // recursion: sub may regroup
    const Mapping local = sub_mapper.map(sub);
    for (std::size_t li = 0; li < procs.size(); ++li)
      result[static_cast<std::size_t>(procs[li])] =
          sites[static_cast<std::size_t>(local[li])];
  }
  return result;
}

}  // namespace

Mapping GeoDistMapper::map(const MappingProblem& problem) {
  problem.validate();
  const int m = problem.num_sites();
  obs::Collector* const col =
      options_.collector != nullptr ? options_.collector : collector_;

  obs::Phase map_phase;
  if (col != nullptr) {
    map_phase = col->profile().phase("mapper:" + name());
    col->mem().note("comm.csr", problem.comm.memory_bytes());
    // LT + BT dense site matrices (the structures the scale arc must
    // shrink; at N=10^6-class problems the comm CSR dominates instead).
    col->mem().note("network.dense", 2 * static_cast<std::size_t>(m) *
                                         static_cast<std::size_t>(m) *
                                         sizeof(double));
  }

  if (options_.use_grouping && options_.kappa < m) {
    obs::Phase grouping_phase;
    if (col != nullptr) grouping_phase = col->profile().phase("grouping");
    const bool have_coords = static_cast<int>(problem.site_coords.size()) == m;
    bool by_coords = false;
    switch (options_.grouping_source) {
      case GeoDistOptions::GroupingSource::kCoordinates:
        GEOMAP_CHECK_MSG(have_coords,
                         "grouping by coordinates needs problem.site_coords");
        by_coords = true;
        break;
      case GeoDistOptions::GroupingSource::kLatency:
        by_coords = false;
        break;
      case GeoDistOptions::GroupingSource::kAuto:
        by_coords = have_coords;
        break;
    }
    last_grouping_ =
        by_coords ? group_sites(problem.site_coords, options_.kappa,
                                options_.kmeans)
                  : group_sites_by_latency(problem.network, options_.kappa,
                                           options_.kmeans);
    grouping_phase.count("kmeans_iterations",
                         static_cast<std::uint64_t>(
                             std::max(0, last_grouping_.iterations)));
  } else {
    last_grouping_ = singleton_groups(m);
  }
  const int kappa = last_grouping_.num_groups;

  // Hierarchical recursion needs a genuine partition (>= 2 groups, each
  // smaller than the whole) or it would recurse on itself.
  if (options_.hierarchical && kappa > 1 && kappa < m) {
    last_orders_ = 0;  // orders are evaluated per level, not tracked here
    obs::Phase hier_phase;
    if (col != nullptr) hier_phase = col->profile().phase("hierarchical");
    const Mapping result =
        map_hierarchical(problem, last_grouping_, options_);
    mapping::validate_mapping(problem, result);
    return result;
  }

  const std::int64_t num_orders =
      options_.search_orders ? factorial(kappa) : 1;
  GEOMAP_CHECK_MSG(num_orders <= options_.max_orders,
                   "order search over " << kappa << "! = " << num_orders
                                        << " permutations exceeds max_orders="
                                        << options_.max_orders
                                        << "; enable grouping or raise kappa");
  last_orders_ = static_cast<int>(num_orders);

  obs::Span search_span;
  if (col != nullptr) search_span = col->tracer().span("mapper/order-search",
                                                       "mapper");
  obs::Phase search_phase;
  if (col != nullptr) {
    search_phase = col->profile().phase("order-search");
    search_phase.count("orders_enumerated",
                       static_cast<std::uint64_t>(num_orders));
  }

  const mapping::CostEvaluator eval(problem);
  std::vector<Seconds> costs(static_cast<std::size_t>(num_orders));
  // The per-order decision breakdown is a forensic recorder: priced only
  // when the audit artifact was asked for (Collector::audit_enabled).
  const bool audit = col != nullptr && col->audit_enabled();
  // Parallel order evaluations write disjoint slots; no lock needed.
  std::vector<obs::OrderDecision> decisions(
      audit ? static_cast<std::size_t>(num_orders) : 0);

  // Coarse progress heartbeat for long order searches: at most ~32
  // stride-sampled updates, each a monotone gauge write (set_max keeps
  // the final exported value deterministic under parallel evaluation)
  // plus a timeline point for the obsctl progress lane.
  std::atomic<std::int64_t> orders_done{0};
  const std::int64_t heartbeat_stride =
      num_orders > 32 ? num_orders / 32 : 1;

  auto evaluate = [&](std::size_t idx) {
    const std::vector<GroupId> order =
        nth_permutation(kappa, static_cast<std::int64_t>(idx));
    const Mapping mapped =
        fill_for_order(problem, last_grouping_, order, options_.fill);
    if (col == nullptr) {
      costs[idx] = eval.total_cost(mapped);
      return;
    }
    if (audit) {
      // Audited path: breakdown() folds the identical edge sequence, so
      // costs (and therefore the winning order) match the plain path
      // bit-for-bit.
      const mapping::CostBreakdown b = eval.breakdown(mapped);
      costs[idx] = b.total;
      obs::OrderDecision& d = decisions[idx];
      d.order.assign(order.begin(), order.end());
      d.cost_seconds = b.total;
      for (SiteId src = 0; src < b.num_sites; ++src) {
        for (SiteId dst = 0; dst < b.num_sites; ++dst) {
          const std::size_t cell = static_cast<std::size_t>(src) *
                                       static_cast<std::size_t>(b.num_sites) +
                                   static_cast<std::size_t>(dst);
          if (b.messages[cell] == 0.0 && b.bytes[cell] == 0.0) continue;
          d.pairs.push_back(obs::PairTerm{src, dst, b.alpha[cell],
                                          b.beta[cell], b.messages[cell],
                                          b.bytes[cell]});
        }
      }
    } else {
      costs[idx] = eval.total_cost(mapped);
    }
    search_phase.count("cost_evals");
    const std::int64_t done =
        orders_done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (done % heartbeat_stride == 0 || done == num_orders) {
      const double frac =
          static_cast<double>(done) / static_cast<double>(num_orders);
      col->metrics().gauge("mapper.progress").set_max(frac);
      col->timeline()
          .series("mapper.progress", "orders")
          .record(col->profile().now_seconds(), frac);
    }
  };

  if (options_.parallel_orders && num_orders > 1) {
    parallel_for(0, static_cast<std::size_t>(num_orders), evaluate);
  } else {
    for (std::size_t i = 0; i < static_cast<std::size_t>(num_orders); ++i)
      evaluate(i);
  }

  // Winner: minimal cost, ties to the lexicographically first order.
  std::size_t best = 0;
  for (std::size_t i = 1; i < costs.size(); ++i)
    if (costs[i] < costs[best]) best = i;
  search_phase.end();

  if (col != nullptr) {
    col->metrics().counter("mapper.map_calls").add();
    col->metrics()
        .counter("mapper.orders_evaluated")
        .add(static_cast<std::uint64_t>(num_orders));
    obs::Histogram& order_costs =
        col->metrics().histogram("mapper.order_cost_seconds");
    for (const Seconds c : costs) order_costs.record(c);
    if (options_.use_grouping && options_.kappa < m) {
      col->metrics()
          .histogram("mapper.kmeans_iterations")
          .record(last_grouping_.iterations);
    }

    if (audit) {
      obs::MapCallRecord record;
      record.mapper = name();
      record.num_processes = problem.num_processes();
      record.num_sites = m;
      record.num_groups = kappa;
      record.kmeans_iterations = last_grouping_.iterations;
      record.orders_enumerated = num_orders;
      decisions[best].winner = true;
      record.orders = std::move(decisions);
      col->audit().add(std::move(record));
    }
  }

  obs::Phase fill_phase;
  if (col != nullptr) fill_phase = col->profile().phase("fill-winner");
  return fill_for_order(problem, last_grouping_,
                        nth_permutation(kappa, static_cast<std::int64_t>(best)),
                        options_.fill);
}

}  // namespace geomap::core
