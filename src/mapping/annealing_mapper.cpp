#include "mapping/annealing_mapper.h"

#include <cmath>

#include "mapping/cost.h"
#include "mapping/random_mapper.h"
#include "obs/collector.h"

namespace geomap::mapping {

Mapping AnnealingMapper::map(const MappingProblem& problem) {
  obs::Phase phase;
  if (collector_ != nullptr)
    phase = collector_->profile().phase("mapper:" + name());
  std::uint64_t moves_attempted = 0;
  std::uint64_t moves_accepted = 0;
  std::uint64_t cost_evals = 0;

  const CostEvaluator eval(problem);
  Rng rng(options_.seed);

  Mapping current = RandomMapper::draw(problem, rng);
  Seconds cost = eval.total_cost(current);
  Mapping best = current;
  Seconds best_cost = cost;

  const int n = problem.num_processes();
  const int m = problem.num_sites();
  std::vector<char> pinned(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < problem.constraints.size(); ++i)
    pinned[i] = problem.constraints[i] != kUnconstrained;

  // Track per-site free capacity so single-process moves stay feasible.
  std::vector<int> free = problem.capacities;
  for (const SiteId s : current) --free[static_cast<std::size_t>(s)];

  double temperature =
      std::max(1e-12, cost * options_.initial_temperature_fraction);

  for (int step = 0; step < options_.temperature_steps; ++step) {
    for (int move = 0; move < options_.moves_per_temperature; ++move) {
      // Half swaps, half single-process relocations into spare slots.
      if (rng.uniform() < 0.5) {
        const auto a = static_cast<ProcessId>(rng.uniform_index(n));
        const auto b = static_cast<ProcessId>(rng.uniform_index(n));
        if (a == b || pinned[static_cast<std::size_t>(a)] ||
            pinned[static_cast<std::size_t>(b)])
          continue;
        const SiteId sa = current[static_cast<std::size_t>(a)];
        const SiteId sb = current[static_cast<std::size_t>(b)];
        if (sa == sb) continue;
        if (!problem.placement_allowed(a, sb) ||
            !problem.placement_allowed(b, sa))
          continue;
        const Seconds delta = eval.delta_swap(current, a, b);
        ++moves_attempted;
        ++cost_evals;
        if (delta <= 0 || rng.uniform() < std::exp(-delta / temperature)) {
          std::swap(current[static_cast<std::size_t>(a)],
                    current[static_cast<std::size_t>(b)]);
          cost += delta;
          ++moves_accepted;
        }
      } else {
        const auto a = static_cast<ProcessId>(rng.uniform_index(n));
        if (pinned[static_cast<std::size_t>(a)]) continue;
        const auto to = static_cast<SiteId>(rng.uniform_index(m));
        const SiteId from = current[static_cast<std::size_t>(a)];
        if (to == from || free[static_cast<std::size_t>(to)] == 0) continue;
        if (!problem.placement_allowed(a, to)) continue;
        const Seconds delta = eval.delta_move(current, a, to);
        ++moves_attempted;
        ++cost_evals;
        if (delta <= 0 || rng.uniform() < std::exp(-delta / temperature)) {
          current[static_cast<std::size_t>(a)] = to;
          ++free[static_cast<std::size_t>(from)];
          --free[static_cast<std::size_t>(to)];
          cost += delta;
          ++moves_accepted;
        }
      }
      if (cost < best_cost) {
        best = current;
        best_cost = cost;
      }
    }
    temperature *= options_.cooling;
  }
  if (phase.active()) {
    phase.count("moves_attempted", moves_attempted);
    phase.count("moves_accepted", moves_accepted);
    phase.count("cost_evals", cost_evals);
  }
  return best;
}

}  // namespace geomap::mapping
