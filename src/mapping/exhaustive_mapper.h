#pragma once
// Exhaustive search over all feasible assignments. The solution space is
// O(M^N) (paper Section 4.1), so this is only usable for tiny instances —
// it exists as the ground-truth optimum for unit tests and for measuring
// how close the heuristics get.

#include <cstdint>

#include "mapping/mapper.h"

namespace geomap::mapping {

class ExhaustiveMapper : public Mapper {
 public:
  /// Refuses instances whose free-process count exceeds `max_free`
  /// (default keeps the search under ~10^7 assignments).
  explicit ExhaustiveMapper(int max_free = 12) : max_free_(max_free) {}

  Mapping map(const MappingProblem& problem) override;
  std::string name() const override { return "Exhaustive"; }

 private:
  int max_free_;
};

}  // namespace geomap::mapping
