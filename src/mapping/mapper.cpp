#include "mapping/mapper.h"

#include "common/timer.h"
#include "mapping/cost.h"

namespace geomap::mapping {

MapperRun run_mapper(Mapper& mapper, const MappingProblem& problem) {
  problem.validate();
  MapperRun run;
  run.mapper = mapper.name();
  Timer timer;
  run.mapping = mapper.map(problem);
  run.optimize_seconds = timer.elapsed_seconds();
  validate_mapping(problem, run.mapping);
  run.cost = CostEvaluator(problem).total_cost(run.mapping);
  return run;
}

std::pair<Mapping, std::vector<int>> apply_constraints(
    const MappingProblem& problem) {
  Mapping partial(static_cast<std::size_t>(problem.num_processes()),
                  kUnmapped);
  std::vector<int> free = problem.capacities;
  for (std::size_t i = 0; i < problem.constraints.size(); ++i) {
    const SiteId c = problem.constraints[i];
    if (c == kUnconstrained) continue;
    partial[i] = c;
    --free[static_cast<std::size_t>(c)];
  }
  return {std::move(partial), std::move(free)};
}

}  // namespace geomap::mapping
