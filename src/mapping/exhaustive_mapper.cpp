#include "mapping/exhaustive_mapper.h"

#include "common/error.h"
#include "mapping/cost.h"
#include "obs/collector.h"

namespace geomap::mapping {

Mapping ExhaustiveMapper::map(const MappingProblem& problem) {
  obs::Phase phase;
  if (collector_ != nullptr)
    phase = collector_->profile().phase("mapper:" + name());
  std::uint64_t leaves = 0;

  auto [mapping, free] = apply_constraints(problem);
  std::vector<ProcessId> free_procs;
  for (ProcessId i = 0; i < problem.num_processes(); ++i)
    if (mapping[static_cast<std::size_t>(i)] == kUnmapped)
      free_procs.push_back(i);
  GEOMAP_CHECK_MSG(static_cast<int>(free_procs.size()) <= max_free_,
                   "exhaustive search over " << free_procs.size()
                                             << " free processes refused");

  const CostEvaluator eval(problem);
  Mapping best;
  Seconds best_cost = 0;
  Mapping current = mapping;

  // Depth-first over site choices with capacity pruning.
  auto recurse = [&](auto&& self, std::size_t depth) -> void {
    if (depth == free_procs.size()) {
      ++leaves;
      const Seconds cost = eval.total_cost(current);
      if (best.empty() || cost < best_cost) {
        best = current;
        best_cost = cost;
      }
      return;
    }
    const ProcessId p = free_procs[depth];
    for (SiteId s = 0; s < problem.num_sites(); ++s) {
      if (free[static_cast<std::size_t>(s)] == 0) continue;
      if (!problem.placement_allowed(p, s)) continue;
      --free[static_cast<std::size_t>(s)];
      current[static_cast<std::size_t>(p)] = s;
      self(self, depth + 1);
      current[static_cast<std::size_t>(p)] = kUnmapped;
      ++free[static_cast<std::size_t>(s)];
    }
  };
  recurse(recurse, 0);
  GEOMAP_CHECK_MSG(!best.empty(), "no feasible assignment found");
  if (phase.active()) {
    phase.count("assignments_enumerated", leaves);
    phase.count("cost_evals", leaves);
  }
  return best;
}

}  // namespace geomap::mapping
