#pragma once
// Simulated-annealing process mapping, after Bollinger & Midkiff,
// "Heuristic technique for processor and link assignment in
// multicomputers" (IEEE TOC 1991) — the paper's reference [8] and a
// natural upper-quality/higher-cost baseline beyond MPIPP's local search:
// Metropolis-accepted random swaps and moves over the alpha-beta cost,
// with a geometric cooling schedule. Slow but hard to trap; useful to
// gauge how close the O(kappa!·N^2) heuristic gets to what an expensive
// global search finds.

#include <cstdint>

#include "mapping/mapper.h"

namespace geomap::mapping {

struct AnnealingOptions {
  /// Moves attempted per temperature step.
  int moves_per_temperature = 400;
  /// Temperature steps.
  int temperature_steps = 60;
  /// Geometric cooling factor per step.
  double cooling = 0.90;
  /// Initial temperature as a fraction of the starting cost.
  double initial_temperature_fraction = 0.05;
  std::uint64_t seed = 17;
};

class AnnealingMapper : public Mapper {
 public:
  explicit AnnealingMapper(AnnealingOptions options = {})
      : options_(options) {}

  Mapping map(const MappingProblem& problem) override;
  std::string name() const override { return "Annealing"; }

 private:
  AnnealingOptions options_;
};

}  // namespace geomap::mapping
