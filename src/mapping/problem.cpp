#include "mapping/problem.h"

#include <numeric>

#include "common/error.h"

namespace geomap::mapping {

void MappingProblem::validate() const {
  const int n = num_processes();
  const int m = num_sites();
  GEOMAP_CHECK_ARG(n > 0, "no processes");
  GEOMAP_CHECK_ARG(m > 0, "no sites");
  GEOMAP_CHECK_ARG(static_cast<int>(capacities.size()) == m,
                   "capacity vector size " << capacities.size()
                                           << " != num sites " << m);
  GEOMAP_CHECK_ARG(constraints.empty() ||
                       static_cast<int>(constraints.size()) == n,
                   "constraint vector size " << constraints.size()
                                             << " != num processes " << n);
  GEOMAP_CHECK_ARG(site_coords.empty() ||
                       static_cast<int>(site_coords.size()) == m,
                   "site coordinate vector size "
                       << site_coords.size() << " != num sites " << m);
  int total_capacity = 0;
  for (int j = 0; j < m; ++j) {
    GEOMAP_CHECK_ARG(capacities[static_cast<std::size_t>(j)] >= 0,
                     "negative capacity at site " << j);
    total_capacity += capacities[static_cast<std::size_t>(j)];
  }
  GEOMAP_CHECK_ARG(total_capacity >= n, "total capacity " << total_capacity
                                                          << " < N " << n);
  // Constraints must reference valid sites and not overflow any site.
  std::vector<int> pinned(static_cast<std::size_t>(m), 0);
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const SiteId c = constraints[i];
    if (c == kUnconstrained) continue;
    GEOMAP_CHECK_ARG(c >= 0 && c < m,
                     "constraint for process " << i << " names bad site " << c);
    ++pinned[static_cast<std::size_t>(c)];
  }
  for (int j = 0; j < m; ++j) {
    GEOMAP_CHECK_ARG(
        pinned[static_cast<std::size_t>(j)] <= capacities[static_cast<std::size_t>(j)],
        "constraints pin " << pinned[static_cast<std::size_t>(j)]
                           << " processes to site " << j << " with capacity "
                           << capacities[static_cast<std::size_t>(j)]);
  }
  // Allowed-site sets (multi-site constraint extension).
  if (!allowed_sites.empty()) {
    GEOMAP_CHECK_ARG(static_cast<int>(allowed_sites.size()) == n,
                     "allowed_sites size " << allowed_sites.size()
                                           << " != num processes " << n);
    for (int i = 0; i < n; ++i) {
      const auto& list = allowed_sites[static_cast<std::size_t>(i)];
      for (std::size_t k = 0; k < list.size(); ++k) {
        GEOMAP_CHECK_ARG(list[k] >= 0 && list[k] < m,
                         "allowed site " << list[k] << " of process " << i
                                         << " out of range");
        GEOMAP_CHECK_ARG(k == 0 || list[k - 1] < list[k],
                         "allowed list of process "
                             << i << " must be sorted ascending and unique");
      }
      if (!constraints.empty() &&
          constraints[static_cast<std::size_t>(i)] != kUnconstrained) {
        GEOMAP_CHECK_ARG(
            site_allowed(allowed_sites, i, constraints[static_cast<std::size_t>(i)]),
            "process " << i << " pinned to a site outside its allowed set");
      }
    }
    GEOMAP_CHECK_ARG(constraints_feasible(*this),
                     "no feasible assignment satisfies the allowed-site "
                     "constraints and capacities");
  }
}

std::vector<int> MappingProblem::free_capacities() const {
  std::vector<int> free = capacities;
  for (const SiteId c : constraints) {
    if (c != kUnconstrained) --free[static_cast<std::size_t>(c)];
  }
  return free;
}

int MappingProblem::num_constrained() const {
  int count = 0;
  for (const SiteId c : constraints)
    if (c != kUnconstrained) ++count;
  return count;
}

void validate_mapping(const MappingProblem& problem, const Mapping& mapping) {
  const int n = problem.num_processes();
  const int m = problem.num_sites();
  if (static_cast<int>(mapping.size()) != n) {
    throw ConstraintViolation("mapping size " + std::to_string(mapping.size()) +
                              " != N " + std::to_string(n));
  }
  std::vector<int> used(static_cast<std::size_t>(m), 0);
  for (int i = 0; i < n; ++i) {
    const SiteId s = mapping[static_cast<std::size_t>(i)];
    if (s < 0 || s >= m) {
      throw ConstraintViolation("process " + std::to_string(i) +
                                " mapped to invalid site " + std::to_string(s));
    }
    ++used[static_cast<std::size_t>(s)];
  }
  for (int j = 0; j < m; ++j) {
    if (used[static_cast<std::size_t>(j)] >
        problem.capacities[static_cast<std::size_t>(j)]) {
      throw ConstraintViolation(
          "site " + std::to_string(j) + " hosts " +
          std::to_string(used[static_cast<std::size_t>(j)]) + " > capacity " +
          std::to_string(problem.capacities[static_cast<std::size_t>(j)]));
    }
  }
  for (std::size_t i = 0; i < problem.constraints.size(); ++i) {
    const SiteId c = problem.constraints[i];
    if (c != kUnconstrained && mapping[i] != c) {
      throw ConstraintViolation("process " + std::to_string(i) +
                                " pinned to site " + std::to_string(c) +
                                " but mapped to " + std::to_string(mapping[i]));
    }
  }
  if (!problem.allowed_sites.empty()) {
    for (int i = 0; i < n; ++i) {
      if (!site_allowed(problem.allowed_sites, i,
                        mapping[static_cast<std::size_t>(i)])) {
        throw ConstraintViolation(
            "process " + std::to_string(i) + " mapped to disallowed site " +
            std::to_string(mapping[static_cast<std::size_t>(i)]));
      }
    }
  }
}

bool is_feasible(const MappingProblem& problem, const Mapping& mapping) {
  try {
    validate_mapping(problem, mapping);
    return true;
  } catch (const ConstraintViolation&) {
    return false;
  }
}

ConstraintVector make_random_constraints(int num_processes,
                                         const std::vector<int>& capacities,
                                         double ratio, Rng& rng) {
  GEOMAP_CHECK_MSG(ratio >= 0.0 && ratio <= 1.0, "ratio=" << ratio);
  const int m = static_cast<int>(capacities.size());
  ConstraintVector constraints(static_cast<std::size_t>(num_processes),
                               kUnconstrained);
  const int pins = static_cast<int>(ratio * num_processes + 0.5);

  std::vector<ProcessId> order(static_cast<std::size_t>(num_processes));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<int> free = capacities;
  int placed = 0;
  for (int k = 0; k < num_processes && placed < pins; ++k) {
    const ProcessId p = order[static_cast<std::size_t>(k)];
    // Pick a site uniformly among those with spare capacity.
    int spare_sites = 0;
    for (int j = 0; j < m; ++j)
      if (free[static_cast<std::size_t>(j)] > 0) ++spare_sites;
    if (spare_sites == 0) break;
    auto pick = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(spare_sites)));
    for (int j = 0; j < m; ++j) {
      if (free[static_cast<std::size_t>(j)] > 0 && pick-- == 0) {
        constraints[static_cast<std::size_t>(p)] = j;
        --free[static_cast<std::size_t>(j)];
        ++placed;
        break;
      }
    }
  }
  return constraints;
}

}  // namespace geomap::mapping
