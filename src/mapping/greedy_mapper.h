#pragma once
// "Greedy": the heuristic of Hoefler & Snir, "Generic topology mapping
// strategies for large-scale parallel architectures" (ICS'11), which the
// paper uses as the state-of-the-art comparison for heterogeneous
// networks (paper Section 5.1, reference [26]).
//
// As the paper describes it (Section 6): "the task with the largest data
// volume to transfer is mapped to the machines with the highest total
// bandwidth of all its associated links". Concretely:
//   * processes are visited heaviest-total-traffic first, and
//   * each is placed on the free site whose links have the largest total
//     bandwidth.
// The heuristic is bandwidth-driven and pattern-oblivious beyond per-
// process traffic totals, which is why it excels on near-diagonal NPB
// patterns (heavy processes are consecutive and land on the same fat
// site) but degrades on complex patterns like K-means — the behaviour the
// paper reports. Constraints are honoured by pre-assignment, as for all
// mappers in this library.

#include "mapping/mapper.h"

namespace geomap::mapping {

class GreedyMapper : public Mapper {
 public:
  Mapping map(const MappingProblem& problem) override;
  std::string name() const override { return "Greedy"; }
};

}  // namespace geomap::mapping
