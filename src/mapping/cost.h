#pragma once
// The paper's cost function (Equations 2-3):
//
//   COST(P) = Σ_{i,j} f(w_ij, d_{P_i P_j})
//           = Σ_{i,j} AG(i,j) · LT(P_i, P_j) + CG(i,j) / BT(P_i, P_j)
//
// plus O(degree) incremental evaluation for move/swap local search
// (MPIPP's pairwise exchange and the Monte Carlo sampler both live on
// these deltas).

#include "common/types.h"
#include "mapping/problem.h"

namespace geomap::mapping {

/// COST(P) split per ordered site pair into its Equation (3) terms —
/// the attribution view behind the mapper decision audit trail. All
/// matrices are num_sites × num_sites, row-major, indexed [src*M + dst].
struct CostBreakdown {
  int num_sites = 0;
  std::vector<Seconds> alpha;   // Σ over pair's edges of AG · LT
  std::vector<Seconds> beta;    // Σ over pair's edges of CG / BT
  std::vector<double> messages;  // Σ AG (message counts)
  std::vector<Bytes> bytes;      // Σ CG (volumes)
  /// Accumulated with the identical edge order and arithmetic as
  /// CostEvaluator::total_cost, so it reproduces that value bit-for-bit.
  Seconds total = 0;

  Seconds alpha_at(SiteId src, SiteId dst) const {
    return alpha[static_cast<std::size_t>(src) *
                     static_cast<std::size_t>(num_sites) +
                 static_cast<std::size_t>(dst)];
  }
  Seconds beta_at(SiteId src, SiteId dst) const {
    return beta[static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(num_sites) +
                static_cast<std::size_t>(dst)];
  }
};

class CostEvaluator {
 public:
  explicit CostEvaluator(const MappingProblem& problem) : p_(&problem) {}

  /// Full cost, O(nnz). `mapping` must be complete (no kUnmapped).
  Seconds total_cost(const Mapping& mapping) const;

  /// Full cost plus its per-site-pair alpha/beta attribution. The
  /// returned total is bit-identical to total_cost(mapping).
  CostBreakdown breakdown(const Mapping& mapping) const;

  /// Cost contribution of all edges incident to process i under `mapping`
  /// (both directions). O(deg(i)).
  Seconds incident_cost(const Mapping& mapping, ProcessId i) const;

  /// Cost change if process i moved to site `to` (everything else fixed).
  /// O(deg(i)). Negative = improvement.
  Seconds delta_move(const Mapping& mapping, ProcessId i, SiteId to) const;

  /// Cost change if processes a and b swapped sites. O(deg(a)+deg(b)).
  /// `mapping` is temporarily mutated and restored before returning.
  Seconds delta_swap(Mapping& mapping, ProcessId a, ProcessId b) const;

  const MappingProblem& problem() const { return *p_; }

 private:
  Seconds edge_cost(SiteId from, SiteId to, Bytes volume, double count) const {
    return p_->network.message_cost(from, to, count, volume);
  }

  const MappingProblem* p_;
};

}  // namespace geomap::mapping
