#include "mapping/round_robin_mapper.h"

#include "common/error.h"
#include "mapping/allowed_sites.h"
#include "obs/collector.h"

namespace geomap::mapping {

namespace {

/// Close any processes left unplaced by allowed-site detours.
void repair_leftovers(const MappingProblem& problem, Mapping& mapping,
                      std::vector<int>& free) {
  if (problem.allowed_sites.empty()) return;
  std::vector<char> movable(mapping.size(), 1);
  for (std::size_t i = 0; i < problem.constraints.size(); ++i)
    if (problem.constraints[i] != kUnconstrained) movable[i] = 0;
  GEOMAP_CHECK_MSG(complete_assignment(problem, mapping, free, movable),
                   "allowed-site constraints are infeasible");
}

}  // namespace

Mapping BlockMapper::map(const MappingProblem& problem) {
  obs::Phase phase;
  if (collector_ != nullptr)
    phase = collector_->profile().phase("mapper:" + name());
  std::uint64_t placements = 0;

  auto [mapping, free] = apply_constraints(problem);
  const int m = problem.num_sites();
  for (ProcessId i = 0; i < problem.num_processes(); ++i) {
    auto& assigned = mapping[static_cast<std::size_t>(i)];
    if (assigned != kUnmapped) continue;
    for (SiteId s = 0; s < m; ++s) {
      if (free[static_cast<std::size_t>(s)] > 0 &&
          problem.placement_allowed(i, s)) {
        assigned = s;
        --free[static_cast<std::size_t>(s)];
        ++placements;
        break;
      }
    }
  }
  repair_leftovers(problem, mapping, free);
  if (phase.active()) phase.count("placements", placements);
  return mapping;
}

Mapping CyclicMapper::map(const MappingProblem& problem) {
  obs::Phase phase;
  if (collector_ != nullptr)
    phase = collector_->profile().phase("mapper:" + name());
  std::uint64_t placements = 0;

  auto [mapping, free] = apply_constraints(problem);
  const int m = problem.num_sites();
  SiteId site = 0;
  for (ProcessId i = 0; i < problem.num_processes(); ++i) {
    auto& assigned = mapping[static_cast<std::size_t>(i)];
    if (assigned != kUnmapped) continue;
    // Next site (wrapping) with spare capacity that may host i.
    for (int scanned = 0; scanned < m; ++scanned) {
      const SiteId s = static_cast<SiteId>((site + scanned) % m);
      if (free[static_cast<std::size_t>(s)] > 0 &&
          problem.placement_allowed(i, s)) {
        assigned = s;
        --free[static_cast<std::size_t>(s)];
        ++placements;
        site = static_cast<SiteId>((s + 1) % m);
        break;
      }
    }
  }
  repair_leftovers(problem, mapping, free);
  if (phase.active()) phase.count("placements", placements);
  return mapping;
}

}  // namespace geomap::mapping
