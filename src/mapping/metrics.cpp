#include "mapping/metrics.h"

#include "common/error.h"

namespace geomap::mapping {

double improvement_percent(Seconds baseline_cost, Seconds cost) {
  GEOMAP_CHECK_MSG(baseline_cost > 0, "baseline cost must be positive");
  return (baseline_cost - cost) / baseline_cost * 100.0;
}

double normalize(Seconds cost, Seconds best, Seconds worst) {
  if (worst <= best) return 0.0;
  return (cost - best) / (worst - best);
}

}  // namespace geomap::mapping
