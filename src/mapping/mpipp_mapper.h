#pragma once
// MPIPP: Chen et al., "MPIPP: an automatic profile-guided parallel process
// placement toolset for SMP clusters and multiclusters" (ICS'06) — the
// paper's second comparison algorithm (reference [12]).
//
// MPIPP refines a random initial placement by repeated pairwise exchange:
// in each iteration it evaluates the cost gain of swapping every pair of
// processes living on different sites, applies the best swap, and stops
// when no swap improves the cost. Several random restarts keep the local
// search from a single bad basin. The search space is large — hence the
// better results than Greedy on complex patterns — but each pass is
// O(N^2) gain evaluations and convergence typically needs O(N) swaps,
// matching the paper's O(N^3) overhead classification and its observation
// that MPIPP is impractical beyond ~1000 processes.
//
// Fidelity note: MPIPP targets SMP clusters and multiclusters, whose
// network it models with uniform link classes (intra-cluster vs
// inter-cluster); it has no notion of geo-heterogeneous inter-site
// performance. Its exchange gains are therefore evaluated on a
// class-averaged surrogate of the calibrated network — all intra-site
// links get the mean intra latency/bandwidth, all inter-site links the
// mean inter values. This is what makes MPIPP's improvement uniform
// across applications in the paper ("MPIPP does not consider the special
// communication pattern matrices") while still beating Greedy on complex
// patterns: it minimizes cross-site traffic without knowing which site
// pairs are the slow ones.

#include <cstdint>

#include "mapping/mapper.h"

namespace geomap::mapping {

struct MpippOptions {
  int restarts = 2;
  /// Hard cap on applied swaps per restart (safety valve; the search
  /// normally stops on zero gain first).
  int max_swaps_factor = 4;  // max swaps = factor * N
  std::uint64_t seed = 7;
};

class MpippMapper : public Mapper {
 public:
  explicit MpippMapper(MpippOptions options = {}) : options_(options) {}

  Mapping map(const MappingProblem& problem) override;
  std::string name() const override { return "MPIPP"; }

 private:
  MpippOptions options_;
};

}  // namespace geomap::mapping
