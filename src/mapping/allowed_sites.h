#pragma once
// Multi-site data-movement constraints — the extension the paper leaves
// as future work ("we only consider the data movement constraint on
// individual sites and leave the extension to multiple site constraints").
//
// A process may carry an *allowed-site set*: any subset of sites it may
// legally run in (e.g. "any EU region"). The single-site pins of the
// paper's constraint vector C are the special case of a one-element set.
// Feasibility becomes a bipartite matching question (processes vs site
// slots), so completion/repair uses Kuhn's augmenting-path algorithm with
// site capacities.

#include <vector>

#include "common/types.h"

namespace geomap::mapping {

struct MappingProblem;

/// allowed[i] lists the sites process i may run on (ascending, unique);
/// an empty list means unrestricted. The whole vector may be empty.
using AllowedSites = std::vector<std::vector<SiteId>>;

/// True when process i may run on site s under `allowed` (empty list or
/// vector = unrestricted).
bool site_allowed(const AllowedSites& allowed, ProcessId i, SiteId s);

/// Complete a partial mapping (kUnmapped entries) so every process lands
/// on an allowed site without exceeding `free` capacities, reassigning
/// already-placed *unpinned* processes along augmenting paths when needed.
/// `free` counts remaining capacity per site for the unmapped processes;
/// `movable[i]` says whether an already-placed process may be relocated
/// during repair (pinned processes never move). Returns false when no
/// feasible completion exists (mapping is left partially filled).
bool complete_assignment(const MappingProblem& problem, Mapping& mapping,
                         std::vector<int>& free,
                         const std::vector<char>& movable);

/// Convenience: feasibility check of the constraint system itself —
/// does any assignment satisfy capacities, pins and allowed sets?
bool constraints_feasible(const MappingProblem& problem);

}  // namespace geomap::mapping
