#pragma once
// Mapper interface and shared machinery for all process-mapping
// algorithms (the paper's Baseline/Greedy/MPIPP comparisons and the
// proposed Geo-distributed algorithm).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "mapping/problem.h"

namespace geomap::obs {
class Collector;
}

namespace geomap::mapping {

class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Produce a feasible mapping (size N, capacities and pins respected).
  virtual Mapping map(const MappingProblem& problem) = 0;

  virtual std::string name() const = 0;

  /// Attach an observability collector (nullptr detaches; the default).
  /// With none attached map() executes the exact uninstrumented code
  /// path — results are bit-identical (same contract as the rest of the
  /// obs layer). Mappers record phases ("mapper:<Name>" with algorithm
  /// sub-phases) and work counters into collector->profile().
  void set_collector(obs::Collector* collector) { collector_ = collector; }
  obs::Collector* collector() const { return collector_; }

 protected:
  obs::Collector* collector_ = nullptr;
};

/// Timed, validated result of one mapper run.
struct MapperRun {
  std::string mapper;
  Mapping mapping;
  Seconds cost = 0;               // alpha-beta COST(P)
  Seconds optimize_seconds = 0;   // wall-clock optimization overhead
};

/// Run `mapper` on `problem`, validate the result, time the optimization,
/// and evaluate the cost function.
MapperRun run_mapper(Mapper& mapper, const MappingProblem& problem);

/// Pre-assign all pinned processes (Algorithm 1 lines 4-6): returns the
/// partial mapping (kUnmapped for free processes) and the per-site
/// capacity remaining after the pins.
std::pair<Mapping, std::vector<int>> apply_constraints(
    const MappingProblem& problem);

}  // namespace geomap::mapping
