#include "mapping/mpipp_mapper.h"

#include "mapping/cost.h"
#include "mapping/random_mapper.h"
#include "obs/collector.h"

namespace geomap::mapping {

namespace {

/// Work tallies surfaced on the "mapper:MPIPP" profile phase.
struct RefineCounts {
  std::uint64_t swap_gain_evals = 0;
  std::uint64_t swaps_applied = 0;
  std::uint64_t cost_evals = 0;
};

/// One steepest-descent pairwise-exchange pass to convergence.
/// Returns the final cost. Pinned processes never move.
Seconds refine(const MappingProblem& problem, const CostEvaluator& eval,
               Mapping& mapping, int max_swaps, RefineCounts& counts) {
  const int n = problem.num_processes();
  std::vector<bool> pinned(static_cast<std::size_t>(n), false);
  for (std::size_t i = 0; i < problem.constraints.size(); ++i)
    pinned[i] = problem.constraints[i] != kUnconstrained;

  Seconds cost = eval.total_cost(mapping);
  ++counts.cost_evals;
  for (int swap = 0; swap < max_swaps; ++swap) {
    Seconds best_gain = 0.0;
    ProcessId best_a = -1;
    ProcessId best_b = -1;
    for (ProcessId a = 0; a < n; ++a) {
      if (pinned[static_cast<std::size_t>(a)]) continue;
      for (ProcessId b = a + 1; b < n; ++b) {
        if (pinned[static_cast<std::size_t>(b)]) continue;
        if (mapping[static_cast<std::size_t>(a)] ==
            mapping[static_cast<std::size_t>(b)])
          continue;
        if (!problem.placement_allowed(a, mapping[static_cast<std::size_t>(b)]) ||
            !problem.placement_allowed(b, mapping[static_cast<std::size_t>(a)]))
          continue;
        const Seconds delta = eval.delta_swap(mapping, a, b);
        ++counts.swap_gain_evals;
        if (delta < best_gain) {
          best_gain = delta;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a < 0) break;  // local optimum
    std::swap(mapping[static_cast<std::size_t>(best_a)],
              mapping[static_cast<std::size_t>(best_b)]);
    cost += best_gain;
    ++counts.swaps_applied;
  }
  return cost;
}

}  // namespace

namespace {

/// MPIPP's multicluster network view: one averaged intra-site link class
/// and one averaged inter-site link class (see header).
MappingProblem class_averaged(const MappingProblem& problem) {
  const int m = problem.num_sites();
  double intra_lat = 0, intra_bw = 0, inter_lat = 0, inter_bw = 0;
  int inter_links = 0;
  for (SiteId k = 0; k < m; ++k) {
    intra_lat += problem.network.latency(k, k);
    intra_bw += problem.network.bandwidth(k, k);
    for (SiteId l = 0; l < m; ++l) {
      if (k == l) continue;
      inter_lat += problem.network.latency(k, l);
      inter_bw += problem.network.bandwidth(k, l);
      ++inter_links;
    }
  }
  intra_lat /= m;
  intra_bw /= m;
  if (inter_links > 0) {
    inter_lat /= inter_links;
    inter_bw /= inter_links;
  } else {
    inter_lat = intra_lat;
    inter_bw = intra_bw;
  }

  Matrix lat = Matrix::square(static_cast<std::size_t>(m), inter_lat);
  Matrix bw = Matrix::square(static_cast<std::size_t>(m), inter_bw);
  for (std::size_t k = 0; k < static_cast<std::size_t>(m); ++k) {
    lat(k, k) = intra_lat;
    bw(k, k) = intra_bw;
  }

  MappingProblem surrogate = problem;
  surrogate.network = net::NetworkModel(std::move(lat), std::move(bw));
  return surrogate;
}

}  // namespace

Mapping MpippMapper::map(const MappingProblem& problem) {
  obs::Phase phase;
  if (collector_ != nullptr)
    phase = collector_->profile().phase("mapper:" + name());
  RefineCounts counts;

  const MappingProblem surrogate = class_averaged(problem);
  const CostEvaluator eval(surrogate);
  Rng rng(options_.seed);
  const int max_swaps = options_.max_swaps_factor * problem.num_processes();

  Mapping best;
  Seconds best_cost = 0;
  for (int r = 0; r < options_.restarts; ++r) {
    Mapping candidate = RandomMapper::draw(surrogate, rng);
    const Seconds cost = refine(surrogate, eval, candidate, max_swaps, counts);
    if (best.empty() || cost < best_cost) {
      best = std::move(candidate);
      best_cost = cost;
    }
  }
  if (phase.active()) {
    phase.count("restarts", static_cast<std::uint64_t>(options_.restarts));
    phase.count("swap_gain_evals", counts.swap_gain_evals);
    phase.count("swaps_applied", counts.swaps_applied);
    phase.count("cost_evals", counts.cost_evals);
  }
  return best;
}

}  // namespace geomap::mapping
