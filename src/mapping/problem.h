#pragma once
// The geo-distributed process mapping problem (paper Section 3.2):
//
//   minimize COST(P)
//   subject to (P - C) ∘ C = 0            (data-movement constraints)
//              count(j, P) <= I_j  ∀j     (site capacities)
//
// A MappingProblem bundles the application side (CG/AG communication
// matrices), the platform side (calibrated LT/BT network model), the site
// capacity vector I, and the constraint vector C.

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "mapping/allowed_sites.h"
#include "net/geo.h"
#include "net/network_model.h"
#include "trace/comm_matrix.h"

namespace geomap::mapping {

struct MappingProblem {
  trace::CommMatrix comm;     // CG and AG
  net::NetworkModel network;  // LT and BT
  std::vector<int> capacities;  // I: physical nodes per site
  ConstraintVector constraints;  // C: pins, kUnconstrained when free
  /// PC: physical coordinates of each site (paper Table 4). Required by
  /// the grouping optimization; may be empty when grouping is disabled or
  /// kappa >= M.
  std::vector<net::GeoCoordinate> site_coords;

  /// Extension (paper future work): multi-site constraints. allowed[i]
  /// lists the sites process i may run in (sorted ascending); empty list
  /// or empty vector = unrestricted. Single-site pins in `constraints`
  /// remain the fast path and must be members of their allowed list.
  AllowedSites allowed_sites;

  /// True when process i may be placed on site s (pin + allowed set).
  bool placement_allowed(ProcessId i, SiteId s) const {
    if (!constraints.empty()) {
      const SiteId pin = constraints[static_cast<std::size_t>(i)];
      if (pin != kUnconstrained) return pin == s;
    }
    return site_allowed(allowed_sites, i, s);
  }

  int num_processes() const { return comm.num_processes(); }
  int num_sites() const { return network.num_sites(); }

  /// Throws InvalidArgument when the instance is malformed (dimension
  /// mismatches, capacity shortfall, infeasible constraints).
  void validate() const;

  /// Remaining per-site capacity after honouring all constraints.
  std::vector<int> free_capacities() const;

  /// Number of constrained (pinned) processes.
  int num_constrained() const;
};

/// Throws ConstraintViolation if `mapping` is not a feasible solution of
/// `problem` (wrong size, invalid site, capacity overflow, or pin broken).
void validate_mapping(const MappingProblem& problem, const Mapping& mapping);

/// True when `mapping` is feasible (non-throwing form).
bool is_feasible(const MappingProblem& problem, const Mapping& mapping);

/// Draw a random constraint vector pinning ~`ratio` of the N processes to
/// uniformly chosen sites with available capacity (paper Section 5.1:
/// "Given a constraint ratio, we randomly choose the constrained
/// processes and their mapped sites"; default ratio 0.2).
ConstraintVector make_random_constraints(int num_processes,
                                         const std::vector<int>& capacities,
                                         double ratio, Rng& rng);

}  // namespace geomap::mapping
