#pragma once
// Round-robin mappers: the default placements an unaware scheduler (or
// plain mpirun over a hostfile) would produce. Not part of the paper's
// comparison set but a useful reference point in the benches: block
// placement accidentally helps near-diagonal patterns, cyclic placement
// is close to worst-case for them.

#include "mapping/mapper.h"

namespace geomap::mapping {

/// Block: fill site 0 to capacity, then site 1, ... (rank order).
class BlockMapper : public Mapper {
 public:
  Mapping map(const MappingProblem& problem) override;
  std::string name() const override { return "Block"; }
};

/// Cyclic: deal processes to sites with spare capacity in turn.
class CyclicMapper : public Mapper {
 public:
  Mapping map(const MappingProblem& problem) override;
  std::string name() const override { return "Cyclic"; }
};

}  // namespace geomap::mapping
