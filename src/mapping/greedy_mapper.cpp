#include "mapping/greedy_mapper.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.h"
#include "mapping/allowed_sites.h"
#include "obs/collector.h"

namespace geomap::mapping {

Mapping GreedyMapper::map(const MappingProblem& problem) {
  obs::Phase phase;
  if (collector_ != nullptr)
    phase = collector_->profile().phase("mapper:" + name());
  std::uint64_t heap_pops = 0;
  std::uint64_t placements = 0;

  auto [mapping, free] = apply_constraints(problem);
  const int n = problem.num_processes();
  const int m = problem.num_sites();

  // Site quality: total bandwidth over all associated links (incoming and
  // outgoing, the intra-site link weighted by its node count — a site
  // with many fast local nodes is the "fattest" target). Sites are
  // consumed fattest-first; this is the heuristic's blind spot in
  // geo-distributed clouds: it never revisits the consumption order.
  std::vector<double> site_bw(static_cast<std::size_t>(m), 0.0);
  for (SiteId s = 0; s < m; ++s) {
    double total = 0.0;
    for (SiteId t = 0; t < m; ++t) {
      if (t == s) {
        total += problem.network.bandwidth(s, s) *
                 std::max(1, problem.capacities[static_cast<std::size_t>(s)] - 1);
      } else {
        total += problem.network.bandwidth(s, t) +
                 problem.network.bandwidth(t, s);
      }
    }
    site_bw[static_cast<std::size_t>(s)] = total;
  }
  std::vector<SiteId> site_order(static_cast<std::size_t>(m));
  std::iota(site_order.begin(), site_order.end(), 0);
  std::stable_sort(site_order.begin(), site_order.end(),
                   [&](SiteId a, SiteId b) {
                     return site_bw[static_cast<std::size_t>(a)] >
                            site_bw[static_cast<std::size_t>(b)];
                   });

  // Greedy graph growing (Hoefler & Snir): start from the process with
  // the largest total data volume, then repeatedly take the unmapped
  // process with the heaviest communication to the mapped set; each goes
  // to the fattest site that still has a free node. Affinities update
  // over the sparse undirected rows with a lazy-deletion max-heap.
  std::vector<char> mapped(static_cast<std::size_t>(n), 0);
  std::vector<Bytes> affinity(static_cast<std::size_t>(n), 0.0);
  struct Entry {
    Bytes affinity;
    ProcessId id;
    bool operator<(const Entry& other) const {
      if (affinity != other.affinity) return affinity < other.affinity;
      return id > other.id;
    }
  };
  std::priority_queue<Entry> heap;

  int remaining = 0;
  for (ProcessId i = 0; i < n; ++i) {
    if (mapping[static_cast<std::size_t>(i)] != kUnmapped)
      mapped[static_cast<std::size_t>(i)] = 1;
    else
      ++remaining;
  }
  auto absorb = [&](ProcessId t) {
    const trace::CommMatrix::Row row = problem.comm.undirected_row(t);
    for (std::size_t k = 0; k < row.size(); ++k) {
      const ProcessId q = row.dst[k];
      if (mapped[static_cast<std::size_t>(q)]) continue;
      affinity[static_cast<std::size_t>(q)] += row.volume[k];
      heap.push(Entry{affinity[static_cast<std::size_t>(q)], q});
    }
  };
  // Pinned processes seed the affinities.
  for (ProcessId i = 0; i < n; ++i) {
    if (mapped[static_cast<std::size_t>(i)]) absorb(i);
  }

  // Heaviest-total-volume order for (re)seeding disconnected components.
  std::vector<ProcessId> by_traffic(static_cast<std::size_t>(n));
  std::iota(by_traffic.begin(), by_traffic.end(), 0);
  std::stable_sort(by_traffic.begin(), by_traffic.end(),
                   [&](ProcessId a, ProcessId b) {
                     return problem.comm.process_traffic(a) >
                            problem.comm.process_traffic(b);
                   });
  std::size_t seed_cursor = 0;

  std::size_t site_idx = 0;
  while (remaining > 0) {
    // Next process: heaviest affinity to the mapped set; fall back to the
    // heaviest unmapped process when the frontier is empty.
    ProcessId pick = -1;
    while (!heap.empty()) {
      const Entry e = heap.top();
      heap.pop();
      ++heap_pops;
      if (mapped[static_cast<std::size_t>(e.id)]) continue;
      if (e.affinity != affinity[static_cast<std::size_t>(e.id)]) continue;
      if (e.affinity <= 0.0) break;  // frontier exhausted
      pick = e.id;
      break;
    }
    if (pick < 0) {
      while (mapped[static_cast<std::size_t>(by_traffic[seed_cursor])])
        ++seed_cursor;
      pick = by_traffic[seed_cursor];
    }

    while (site_idx < site_order.size() &&
           free[static_cast<std::size_t>(site_order[site_idx])] == 0)
      ++site_idx;
    // Fattest open site that may legally host the pick (allowed-site
    // sets can force a detour down the quality order).
    SiteId site = kUnmapped;
    for (std::size_t c = site_idx; c < site_order.size(); ++c) {
      const SiteId s = site_order[c];
      if (free[static_cast<std::size_t>(s)] > 0 &&
          problem.placement_allowed(pick, s)) {
        site = s;
        break;
      }
    }
    mapped[static_cast<std::size_t>(pick)] = 1;
    --remaining;
    if (site == kUnmapped) continue;  // repaired below
    mapping[static_cast<std::size_t>(pick)] = site;
    --free[static_cast<std::size_t>(site)];
    ++placements;
    absorb(pick);
  }
  if (!problem.allowed_sites.empty()) {
    std::vector<char> movable(mapping.size(), 1);
    for (std::size_t i = 0; i < problem.constraints.size(); ++i)
      if (problem.constraints[i] != kUnconstrained) movable[i] = 0;
    GEOMAP_CHECK_MSG(complete_assignment(problem, mapping, free, movable),
                     "allowed-site constraints are infeasible");
  }
  if (phase.active()) {
    phase.count("placements", placements);
    phase.count("heap_pops", heap_pops);
  }
  return mapping;
}

}  // namespace geomap::mapping
