#pragma once
// Baseline: random mapping (paper Section 5.1 "Baseline" — "maps each
// vertex in the communication pattern graph to a vertex in the physical
// node graph randomly"), i.e. running in the geo-distributed data centers
// without any optimization.

#include <cstdint>

#include "mapping/mapper.h"

namespace geomap::mapping {

class RandomMapper : public Mapper {
 public:
  explicit RandomMapper(std::uint64_t seed = 1) : seed_(seed) {}

  Mapping map(const MappingProblem& problem) override;
  std::string name() const override { return "Baseline"; }

  /// Stateless helper: one feasible uniform-random mapping drawn with
  /// `rng`. Used by the Monte Carlo sampler, which needs millions of
  /// draws from one stream.
  static Mapping draw(const MappingProblem& problem, Rng& rng);

 private:
  std::uint64_t seed_;
};

}  // namespace geomap::mapping
