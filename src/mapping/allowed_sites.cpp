#include "mapping/allowed_sites.h"

#include <algorithm>

#include "common/error.h"
#include "mapping/mapper.h"
#include "mapping/problem.h"

namespace geomap::mapping {

bool site_allowed(const AllowedSites& allowed, ProcessId i, SiteId s) {
  if (allowed.empty()) return true;
  const auto& list = allowed[static_cast<std::size_t>(i)];
  if (list.empty()) return true;
  return std::binary_search(list.begin(), list.end(), s);
}

namespace {

/// Occupancy index: which movable processes currently live on each site.
struct Occupancy {
  std::vector<std::vector<ProcessId>> by_site;

  Occupancy(const Mapping& mapping, const std::vector<char>& movable, int m) {
    by_site.resize(static_cast<std::size_t>(m));
    for (ProcessId i = 0; i < static_cast<ProcessId>(mapping.size()); ++i) {
      const SiteId s = mapping[static_cast<std::size_t>(i)];
      if (s != kUnmapped && movable[static_cast<std::size_t>(i)])
        by_site[static_cast<std::size_t>(s)].push_back(i);
    }
  }

  void remove(ProcessId p, SiteId s) {
    auto& v = by_site[static_cast<std::size_t>(s)];
    v.erase(std::find(v.begin(), v.end(), p));
  }

  void add(ProcessId p, SiteId s) {
    by_site[static_cast<std::size_t>(s)].push_back(p);
  }
};

struct Augmenter {
  const MappingProblem& problem;
  Mapping& mapping;
  std::vector<int>& free;
  const std::vector<char>& movable;
  Occupancy occupancy;
  std::vector<char> visited;  // per site, reset per root placement

  Augmenter(const MappingProblem& p, Mapping& m, std::vector<int>& f,
            const std::vector<char>& mv)
      : problem(p),
        mapping(m),
        free(f),
        movable(mv),
        occupancy(m, mv, p.num_sites()),
        visited(static_cast<std::size_t>(p.num_sites()), 0) {}

  std::vector<SiteId> candidate_sites(ProcessId p) const {
    const auto& allowed = problem.allowed_sites;
    if (!allowed.empty() && !allowed[static_cast<std::size_t>(p)].empty())
      return allowed[static_cast<std::size_t>(p)];
    std::vector<SiteId> all(static_cast<std::size_t>(problem.num_sites()));
    for (SiteId s = 0; s < problem.num_sites(); ++s)
      all[static_cast<std::size_t>(s)] = s;
    return all;
  }

  /// Kuhn augmenting step: place p on some allowed site, evicting a
  /// movable occupant along an augmenting path when every allowed site
  /// is full.
  bool place(ProcessId p) {
    for (const SiteId s : candidate_sites(p)) {
      if (visited[static_cast<std::size_t>(s)]) continue;
      visited[static_cast<std::size_t>(s)] = 1;
      if (free[static_cast<std::size_t>(s)] > 0) {
        mapping[static_cast<std::size_t>(p)] = s;
        if (movable[static_cast<std::size_t>(p)]) occupancy.add(p, s);
        --free[static_cast<std::size_t>(s)];
        return true;
      }
      // Try to relocate one movable occupant of s elsewhere.
      const std::vector<ProcessId> occupants =
          occupancy.by_site[static_cast<std::size_t>(s)];
      for (const ProcessId q : occupants) {
        occupancy.remove(q, s);
        mapping[static_cast<std::size_t>(q)] = kUnmapped;
        if (place(q)) {
          mapping[static_cast<std::size_t>(p)] = s;
          if (movable[static_cast<std::size_t>(p)]) occupancy.add(p, s);
          return true;  // q's old slot taken by p; capacity unchanged
        }
        mapping[static_cast<std::size_t>(q)] = s;  // restore
        occupancy.add(q, s);
      }
    }
    return false;
  }
};

}  // namespace

bool complete_assignment(const MappingProblem& problem, Mapping& mapping,
                         std::vector<int>& free,
                         const std::vector<char>& movable) {
  GEOMAP_CHECK(mapping.size() ==
               static_cast<std::size_t>(problem.num_processes()));
  GEOMAP_CHECK(movable.size() == mapping.size());
  Augmenter aug(problem, mapping, free, movable);
  for (ProcessId p = 0; p < problem.num_processes(); ++p) {
    if (mapping[static_cast<std::size_t>(p)] != kUnmapped) continue;
    std::fill(aug.visited.begin(), aug.visited.end(), 0);
    if (!aug.place(p)) return false;
  }
  return true;
}

bool constraints_feasible(const MappingProblem& problem) {
  auto [mapping, free] = apply_constraints(problem);
  std::vector<char> movable(mapping.size(), 0);
  for (std::size_t i = 0; i < mapping.size(); ++i)
    movable[i] = mapping[i] == kUnmapped ? 1 : 0;
  return complete_assignment(problem, mapping, free, movable);
}

}  // namespace geomap::mapping
