#include "mapping/cost.h"

#include "common/error.h"

namespace geomap::mapping {

Seconds CostEvaluator::total_cost(const Mapping& mapping) const {
  const int n = p_->num_processes();
  GEOMAP_CHECK_MSG(static_cast<int>(mapping.size()) == n,
                   "mapping size mismatch");
  Seconds total = 0;
  for (ProcessId i = 0; i < n; ++i) {
    const SiteId si = mapping[static_cast<std::size_t>(i)];
    const trace::CommMatrix::Row out = p_->comm.row(i);
    for (std::size_t k = 0; k < out.size(); ++k) {
      const SiteId sj = mapping[static_cast<std::size_t>(out.dst[k])];
      total += edge_cost(si, sj, out.volume[k], out.count[k]);
    }
  }
  return total;
}

CostBreakdown CostEvaluator::breakdown(const Mapping& mapping) const {
  const int n = p_->num_processes();
  GEOMAP_CHECK_MSG(static_cast<int>(mapping.size()) == n,
                   "mapping size mismatch");
  CostBreakdown b;
  b.num_sites = p_->network.num_sites();
  const auto cells = static_cast<std::size_t>(b.num_sites) *
                     static_cast<std::size_t>(b.num_sites);
  b.alpha.assign(cells, 0.0);
  b.beta.assign(cells, 0.0);
  b.messages.assign(cells, 0.0);
  b.bytes.assign(cells, 0.0);
  // Same edge order and per-edge arithmetic as total_cost: the running
  // total reproduces it bit-for-bit, and the pair cells just receive the
  // two addends of each edge separately.
  for (ProcessId i = 0; i < n; ++i) {
    const SiteId si = mapping[static_cast<std::size_t>(i)];
    const trace::CommMatrix::Row out = p_->comm.row(i);
    for (std::size_t k = 0; k < out.size(); ++k) {
      const SiteId sj = mapping[static_cast<std::size_t>(out.dst[k])];
      b.total += edge_cost(si, sj, out.volume[k], out.count[k]);
      const std::size_t cell =
          static_cast<std::size_t>(si) * static_cast<std::size_t>(b.num_sites) +
          static_cast<std::size_t>(sj);
      b.alpha[cell] += out.count[k] * p_->network.latency(si, sj);
      b.beta[cell] += out.volume[k] / p_->network.bandwidth(si, sj);
      b.messages[cell] += out.count[k];
      b.bytes[cell] += out.volume[k];
    }
  }
  return b;
}

Seconds CostEvaluator::incident_cost(const Mapping& mapping,
                                     ProcessId i) const {
  const SiteId si = mapping[static_cast<std::size_t>(i)];
  Seconds total = 0;
  const trace::CommMatrix::Row out = p_->comm.row(i);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const SiteId sj = mapping[static_cast<std::size_t>(out.dst[k])];
    total += edge_cost(si, sj, out.volume[k], out.count[k]);
  }
  const trace::CommMatrix::Row in = p_->comm.in_row(i);
  for (std::size_t k = 0; k < in.size(); ++k) {
    const SiteId sj = mapping[static_cast<std::size_t>(in.dst[k])];
    total += edge_cost(sj, si, in.volume[k], in.count[k]);
  }
  return total;
}

Seconds CostEvaluator::delta_move(const Mapping& mapping, ProcessId i,
                                  SiteId to) const {
  const SiteId from = mapping[static_cast<std::size_t>(i)];
  if (from == to) return 0.0;
  Seconds delta = 0;
  const trace::CommMatrix::Row out = p_->comm.row(i);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const SiteId sj = mapping[static_cast<std::size_t>(out.dst[k])];
    delta += edge_cost(to, sj, out.volume[k], out.count[k]) -
             edge_cost(from, sj, out.volume[k], out.count[k]);
  }
  const trace::CommMatrix::Row in = p_->comm.in_row(i);
  for (std::size_t k = 0; k < in.size(); ++k) {
    const SiteId sj = mapping[static_cast<std::size_t>(in.dst[k])];
    delta += edge_cost(sj, to, in.volume[k], in.count[k]) -
             edge_cost(sj, from, in.volume[k], in.count[k]);
  }
  return delta;
}

Seconds CostEvaluator::delta_swap(Mapping& mapping, ProcessId a,
                                  ProcessId b) const {
  const SiteId sa = mapping[static_cast<std::size_t>(a)];
  const SiteId sb = mapping[static_cast<std::size_t>(b)];
  if (sa == sb) return 0.0;
  const Seconds d1 = delta_move(mapping, a, sb);
  mapping[static_cast<std::size_t>(a)] = sb;
  const Seconds d2 = delta_move(mapping, b, sa);
  mapping[static_cast<std::size_t>(a)] = sa;
  return d1 + d2;
}

}  // namespace geomap::mapping
