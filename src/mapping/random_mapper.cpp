#include "mapping/random_mapper.h"

#include "common/error.h"
#include "mapping/allowed_sites.h"
#include "obs/collector.h"

namespace geomap::mapping {

Mapping RandomMapper::draw(const MappingProblem& problem, Rng& rng) {
  auto [mapping, free] = apply_constraints(problem);

  if (problem.allowed_sites.empty()) {
    // Fast path: lay out the free node slots (site j appears free[j]
    // times), shuffle, and deal them to the free processes in order —
    // a uniform draw over all feasible assignments.
    std::vector<SiteId> slots;
    for (std::size_t j = 0; j < free.size(); ++j)
      for (int k = 0; k < free[j]; ++k)
        slots.push_back(static_cast<SiteId>(j));
    rng.shuffle(slots);
    std::size_t next = 0;
    for (auto& site : mapping) {
      if (site == kUnmapped) site = slots[next++];
    }
    return mapping;
  }

  // Multi-site constraints: randomized greedy — visit free processes in
  // random order, pick a uniform allowed site with spare capacity — then
  // close any stragglers with the augmenting-path repair.
  std::vector<ProcessId> order;
  for (ProcessId i = 0; i < problem.num_processes(); ++i)
    if (mapping[static_cast<std::size_t>(i)] == kUnmapped) order.push_back(i);
  rng.shuffle(order);
  std::vector<char> movable(mapping.size(), 0);
  for (const ProcessId i : order) movable[static_cast<std::size_t>(i)] = 1;

  for (const ProcessId i : order) {
    std::vector<SiteId> open;
    for (SiteId s = 0; s < problem.num_sites(); ++s) {
      if (free[static_cast<std::size_t>(s)] > 0 &&
          problem.placement_allowed(i, s))
        open.push_back(s);
    }
    if (open.empty()) continue;  // repaired below
    const SiteId s = open[rng.uniform_index(open.size())];
    mapping[static_cast<std::size_t>(i)] = s;
    --free[static_cast<std::size_t>(s)];
  }
  GEOMAP_CHECK_MSG(complete_assignment(problem, mapping, free, movable),
                   "allowed-site constraints are infeasible");
  return mapping;
}

Mapping RandomMapper::map(const MappingProblem& problem) {
  obs::Phase phase;
  if (collector_ != nullptr)
    phase = collector_->profile().phase("mapper:" + name());
  Rng rng(seed_);
  Mapping result = draw(problem, rng);
  if (phase.active()) {
    std::uint64_t placements = 0;
    for (std::size_t i = 0; i < result.size(); ++i) {
      if (problem.constraints.empty() ||
          problem.constraints[i] == kUnconstrained)
        ++placements;
    }
    phase.count("placements", placements);
  }
  return result;
}

}  // namespace geomap::mapping
