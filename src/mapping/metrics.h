#pragma once
// Evaluation metrics shared by the benches: improvement over Baseline
// (how all paper figures are normalized) and comparison summaries.

#include <string>
#include <vector>

#include "common/types.h"

namespace geomap::mapping {

/// Percentage improvement of `cost` over `baseline_cost`
/// ((baseline - cost) / baseline * 100; paper Figures 5-8).
double improvement_percent(Seconds baseline_cost, Seconds cost);

/// Cost normalized into [0, 1] against the worst/best of a sample
/// (paper Figures 9-10 "normalized communication time").
double normalize(Seconds cost, Seconds best, Seconds worst);

struct AlgorithmScore {
  std::string name;
  Seconds mean_cost = 0;
  Seconds stderr_cost = 0;
  double improvement_over_baseline_pct = 0;
  Seconds mean_overhead_seconds = 0;
};

}  // namespace geomap::mapping
