#include "trace/comm_matrix.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace geomap::trace {

CommMatrix::Builder::Builder(int num_processes) : n_(num_processes) {
  GEOMAP_CHECK_MSG(num_processes > 0, "num_processes=" << num_processes);
}

void CommMatrix::Builder::add_message(ProcessId src, ProcessId dst,
                                      Bytes bytes, double messages) {
  GEOMAP_CHECK_MSG(src >= 0 && src < n_, "src=" << src << " N=" << n_);
  GEOMAP_CHECK_MSG(dst >= 0 && dst < n_, "dst=" << dst << " N=" << n_);
  GEOMAP_CHECK_MSG(bytes >= 0, "bytes=" << bytes);
  GEOMAP_CHECK_MSG(messages > 0, "messages=" << messages);
  if (src == dst) return;  // self-communication is free in the model
  edges_.push_back(CommEdge{src, dst, bytes, messages});
}

CommMatrix CommMatrix::Builder::build() {
  std::sort(edges_.begin(), edges_.end(),
            [](const CommEdge& a, const CommEdge& b) {
              return a.src != b.src ? a.src < b.src : a.dst < b.dst;
            });
  // Coalesce duplicates in place.
  std::vector<CommEdge> unique;
  unique.reserve(edges_.size());
  for (const CommEdge& e : edges_) {
    if (!unique.empty() && unique.back().src == e.src &&
        unique.back().dst == e.dst) {
      unique.back().volume += e.volume;
      unique.back().count += e.count;
    } else {
      unique.push_back(e);
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();

  CommMatrix m;
  m.finalize(n_, std::move(unique));
  return m;
}

void CommMatrix::finalize(int n, std::vector<CommEdge> sorted_unique) {
  n_ = n;
  row_begin_.assign(static_cast<std::size_t>(n) + 1, 0);
  dst_.resize(sorted_unique.size());
  volume_.resize(sorted_unique.size());
  count_.resize(sorted_unique.size());

  for (const CommEdge& e : sorted_unique)
    ++row_begin_[static_cast<std::size_t>(e.src) + 1];
  for (std::size_t i = 1; i < row_begin_.size(); ++i)
    row_begin_[i] += row_begin_[i - 1];

  for (std::size_t idx = 0; idx < sorted_unique.size(); ++idx) {
    const CommEdge& e = sorted_unique[idx];
    dst_[idx] = e.dst;
    volume_[idx] = e.volume;
    count_[idx] = e.count;
    total_volume_ += e.volume;
    total_messages_ += e.count;
  }
  build_transpose(sorted_unique);
  build_undirected();
}

void CommMatrix::build_transpose(const std::vector<CommEdge>& edges_by_src) {
  std::vector<CommEdge> by_dst = edges_by_src;
  std::sort(by_dst.begin(), by_dst.end(),
            [](const CommEdge& a, const CommEdge& b) {
              return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
            });
  t_row_begin_.assign(static_cast<std::size_t>(n_) + 1, 0);
  t_src_.resize(by_dst.size());
  t_volume_.resize(by_dst.size());
  t_count_.resize(by_dst.size());
  for (const CommEdge& e : by_dst)
    ++t_row_begin_[static_cast<std::size_t>(e.dst) + 1];
  for (std::size_t i = 1; i < t_row_begin_.size(); ++i)
    t_row_begin_[i] += t_row_begin_[i - 1];
  for (std::size_t idx = 0; idx < by_dst.size(); ++idx) {
    t_src_[idx] = by_dst[idx].src;
    t_volume_[idx] = by_dst[idx].volume;
    t_count_[idx] = by_dst[idx].count;
  }
}

void CommMatrix::build_undirected() {
  // Merge (i,j) and (j,i) into one undirected neighbour list per process.
  struct UEdge {
    ProcessId a, b;
    Bytes volume;
    double count;
  };
  std::vector<UEdge> half;
  half.reserve(nnz());
  for (ProcessId i = 0; i < n_; ++i) {
    const Row r = row(i);
    for (std::size_t k = 0; k < r.size(); ++k) {
      const ProcessId j = r.dst[k];
      // Store canonically (min, max) and coalesce below.
      const ProcessId a = std::min(i, j);
      const ProcessId b = std::max(i, j);
      half.push_back(UEdge{a, b, r.volume[k], r.count[k]});
    }
  }
  std::sort(half.begin(), half.end(), [](const UEdge& x, const UEdge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  std::vector<UEdge> merged;
  merged.reserve(half.size());
  for (const UEdge& e : half) {
    if (!merged.empty() && merged.back().a == e.a && merged.back().b == e.b) {
      merged.back().volume += e.volume;
      merged.back().count += e.count;
    } else {
      merged.push_back(e);
    }
  }

  u_row_begin_.assign(static_cast<std::size_t>(n_) + 1, 0);
  traffic_.assign(static_cast<std::size_t>(n_), 0.0);
  for (const UEdge& e : merged) {
    ++u_row_begin_[static_cast<std::size_t>(e.a) + 1];
    ++u_row_begin_[static_cast<std::size_t>(e.b) + 1];
    traffic_[static_cast<std::size_t>(e.a)] += e.volume;
    traffic_[static_cast<std::size_t>(e.b)] += e.volume;
  }
  for (std::size_t i = 1; i < u_row_begin_.size(); ++i)
    u_row_begin_[i] += u_row_begin_[i - 1];

  const std::size_t total = u_row_begin_.back();
  u_dst_.resize(total);
  u_volume_.resize(total);
  u_count_.resize(total);
  std::vector<std::size_t> cursor(u_row_begin_.begin(), u_row_begin_.end() - 1);
  for (const UEdge& e : merged) {
    auto put = [&](ProcessId from, ProcessId to) {
      const std::size_t pos = cursor[static_cast<std::size_t>(from)]++;
      u_dst_[pos] = to;
      u_volume_[pos] = e.volume;
      u_count_[pos] = e.count;
    };
    put(e.a, e.b);
    put(e.b, e.a);
  }
}

CommMatrix::Row CommMatrix::row(ProcessId i) const {
  GEOMAP_CHECK_MSG(i >= 0 && i < n_, "process " << i << " out of range");
  const std::size_t b = row_begin_[static_cast<std::size_t>(i)];
  const std::size_t e = row_begin_[static_cast<std::size_t>(i) + 1];
  return Row{std::span(dst_).subspan(b, e - b),
             std::span(volume_).subspan(b, e - b),
             std::span(count_).subspan(b, e - b)};
}

CommMatrix::Row CommMatrix::in_row(ProcessId i) const {
  GEOMAP_CHECK_MSG(i >= 0 && i < n_, "process " << i << " out of range");
  const std::size_t b = t_row_begin_[static_cast<std::size_t>(i)];
  const std::size_t e = t_row_begin_[static_cast<std::size_t>(i) + 1];
  return Row{std::span(t_src_).subspan(b, e - b),
             std::span(t_volume_).subspan(b, e - b),
             std::span(t_count_).subspan(b, e - b)};
}

CommMatrix::Row CommMatrix::undirected_row(ProcessId i) const {
  GEOMAP_CHECK_MSG(i >= 0 && i < n_, "process " << i << " out of range");
  const std::size_t b = u_row_begin_[static_cast<std::size_t>(i)];
  const std::size_t e = u_row_begin_[static_cast<std::size_t>(i) + 1];
  return Row{std::span(u_dst_).subspan(b, e - b),
             std::span(u_volume_).subspan(b, e - b),
             std::span(u_count_).subspan(b, e - b)};
}

namespace {
std::size_t find_in_row(const CommMatrix::Row& r, ProcessId j) {
  const auto it = std::lower_bound(r.dst.begin(), r.dst.end(), j);
  if (it == r.dst.end() || *it != j) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - r.dst.begin());
}
}  // namespace

Bytes CommMatrix::volume(ProcessId i, ProcessId j) const {
  const Row r = row(i);
  const std::size_t k = find_in_row(r, j);
  return k == static_cast<std::size_t>(-1) ? 0.0 : r.volume[k];
}

double CommMatrix::count(ProcessId i, ProcessId j) const {
  const Row r = row(i);
  const std::size_t k = find_in_row(r, j);
  return k == static_cast<std::size_t>(-1) ? 0.0 : r.count[k];
}

std::vector<CommEdge> CommMatrix::edges() const {
  std::vector<CommEdge> out;
  out.reserve(nnz());
  for (ProcessId i = 0; i < n_; ++i) {
    const Row r = row(i);
    for (std::size_t k = 0; k < r.size(); ++k)
      out.push_back(CommEdge{i, r.dst[k], r.volume[k], r.count[k]});
  }
  return out;
}

std::string CommMatrix::to_text() const {
  std::ostringstream os;
  os << "commmatrix " << n_ << ' ' << nnz() << '\n';
  for (const CommEdge& e : edges())
    os << e.src << ' ' << e.dst << ' ' << e.volume << ' ' << e.count << '\n';
  return os.str();
}

CommMatrix CommMatrix::from_text(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  int n = 0;
  std::size_t nnz = 0;
  is >> magic >> n >> nnz;
  GEOMAP_CHECK_MSG(magic == "commmatrix", "bad comm matrix header");
  Builder b(n);
  for (std::size_t k = 0; k < nnz; ++k) {
    CommEdge e;
    is >> e.src >> e.dst >> e.volume >> e.count;
    GEOMAP_CHECK_MSG(static_cast<bool>(is), "truncated comm matrix text");
    b.add_message(e.src, e.dst, e.volume, e.count);
  }
  return b.build();
}

}  // namespace geomap::trace
