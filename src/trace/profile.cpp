#include "trace/profile.h"

#include "common/error.h"

namespace geomap::trace {

ApplicationProfile::ApplicationProfile(int num_ranks)
    : recorders_(static_cast<std::size_t>(num_ranks)) {
  GEOMAP_CHECK_MSG(num_ranks > 0, "num_ranks=" << num_ranks);
}

Recorder& ApplicationProfile::recorder(ProcessId rank) {
  GEOMAP_CHECK_MSG(rank >= 0 && rank < num_ranks(), "rank " << rank);
  return recorders_[static_cast<std::size_t>(rank)];
}

const Recorder& ApplicationProfile::recorder(ProcessId rank) const {
  GEOMAP_CHECK_MSG(rank >= 0 && rank < num_ranks(), "rank " << rank);
  return recorders_[static_cast<std::size_t>(rank)];
}

std::size_t ApplicationProfile::total_records() const {
  std::size_t total = 0;
  for (const auto& r : recorders_) total += r.size();
  return total;
}

double ApplicationProfile::aggregate_compression_ratio(
    std::size_t max_pattern) const {
  std::uint64_t expanded = 0;
  std::uint64_t stored = 0;
  for (const auto& r : recorders_) {
    const CompressedTrace t = r.compress(max_pattern);
    expanded += t.expanded_size();
    stored += t.stored_size();
  }
  if (stored == 0) return 1.0;
  return static_cast<double>(expanded) / static_cast<double>(stored);
}

CommMatrix ApplicationProfile::build_comm_matrix() const {
  CommMatrix::Builder builder(num_ranks());
  for (ProcessId rank = 0; rank < num_ranks(); ++rank) {
    for (const SendRecord& rec : recorders_[static_cast<std::size_t>(rank)].raw()) {
      builder.add_message(rank, rec.peer, rec.bytes);
    }
  }
  return builder.build();
}

}  // namespace geomap::trace
