#include "trace/recorder.h"

#include <algorithm>

namespace geomap::trace {

std::uint64_t CompressedTrace::expanded_size() const {
  std::uint64_t total = 0;
  for (const auto& seg : segments)
    total += seg.repeat * static_cast<std::uint64_t>(seg.pattern.size());
  return total;
}

std::uint64_t CompressedTrace::stored_size() const {
  std::uint64_t total = 0;
  for (const auto& seg : segments)
    total += static_cast<std::uint64_t>(seg.pattern.size());
  return total;
}

double CompressedTrace::compression_ratio() const {
  const std::uint64_t stored = stored_size();
  if (stored == 0) return 1.0;
  return static_cast<double>(expanded_size()) / static_cast<double>(stored);
}

std::vector<SendRecord> CompressedTrace::expand() const {
  std::vector<SendRecord> out;
  out.reserve(expanded_size());
  for (const auto& seg : segments)
    for (std::uint64_t r = 0; r < seg.repeat; ++r)
      out.insert(out.end(), seg.pattern.begin(), seg.pattern.end());
  return out;
}

CompressedTrace Recorder::compress(std::size_t max_pattern) const {
  CompressedTrace out;
  const std::size_t n = raw_.size();
  std::size_t pos = 0;
  while (pos < n) {
    // Find the (pattern length, repeats) pair starting at pos that covers
    // the most records, requiring at least 2 repeats to fold.
    std::size_t best_len = 1;
    std::uint64_t best_rep = 1;
    std::uint64_t best_cover = 1;
    const std::size_t max_len = std::min(max_pattern, (n - pos) / 2);
    for (std::size_t len = 1; len <= max_len; ++len) {
      std::uint64_t rep = 1;
      while (pos + (rep + 1) * len <= n &&
             std::equal(raw_.begin() + static_cast<std::ptrdiff_t>(pos),
                        raw_.begin() + static_cast<std::ptrdiff_t>(pos + len),
                        raw_.begin() +
                            static_cast<std::ptrdiff_t>(pos + rep * len))) {
        ++rep;
      }
      const std::uint64_t cover = rep * len;
      if (rep >= 2 && cover > best_cover) {
        best_len = len;
        best_rep = rep;
        best_cover = cover;
      }
    }

    if (best_rep >= 2) {
      CompressedTrace::Segment seg;
      seg.pattern.assign(
          raw_.begin() + static_cast<std::ptrdiff_t>(pos),
          raw_.begin() + static_cast<std::ptrdiff_t>(pos + best_len));
      seg.repeat = best_rep;
      out.segments.push_back(std::move(seg));
      pos += best_len * best_rep;
    } else {
      // No repeat here; extend (or start) a literal segment.
      if (out.segments.empty() || out.segments.back().repeat != 1) {
        out.segments.push_back(CompressedTrace::Segment{{}, 1});
      }
      out.segments.back().pattern.push_back(raw_[pos]);
      ++pos;
    }
  }
  return out;
}

}  // namespace geomap::trace
