#pragma once
// The application communication pattern: the paper's CG (pairwise volume,
// bytes) and AG (pairwise message count) N×N matrices.
//
// Real patterns are sparse — NPB LU/BT/SP talk to O(1) neighbours per
// process (paper Figure 3 shows near-diagonal matrices) — and N reaches
// 8192 in the scale experiments, so a dense N×N double matrix (0.5 GB)
// is the wrong representation. CommMatrix stores both matrices in one CSR
// structure: CG and AG share their sparsity pattern because every message
// contributes to both.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace geomap::trace {

/// One nonzero of the pattern: process `src` sends `count` messages
/// totalling `volume` bytes to process `dst`.
struct CommEdge {
  ProcessId src = 0;
  ProcessId dst = 0;
  Bytes volume = 0;
  double count = 0;
};

class CommMatrix {
 public:
  /// Accumulates (src, dst, bytes) contributions, then freezes into CSR.
  class Builder {
   public:
    explicit Builder(int num_processes);

    /// Record one message of `bytes` from src to dst. Repeated pairs
    /// accumulate. `messages` lets callers add a batch at once.
    void add_message(ProcessId src, ProcessId dst, Bytes bytes,
                     double messages = 1.0);

    int num_processes() const { return n_; }

    /// Freeze into an immutable CommMatrix. The builder is left empty.
    CommMatrix build();

   private:
    int n_ = 0;
    // Edge list keyed by (src, dst), coalesced at build() time. An edge
    // list beats a hash map here: traces append in loops with heavy
    // locality, and the final sort is one O(E log E) pass.
    std::vector<CommEdge> edges_;
  };

  CommMatrix() = default;

  int num_processes() const { return n_; }
  std::size_t nnz() const { return dst_.size(); }
  Bytes total_volume() const { return total_volume_; }
  double total_messages() const { return total_messages_; }

  /// Neighbours of process i (ascending dst). Spans index the CSR arrays.
  struct Row {
    std::span<const ProcessId> dst;
    std::span<const Bytes> volume;
    std::span<const double> count;
    std::size_t size() const { return dst.size(); }
  };
  Row row(ProcessId i) const;

  /// Point lookup (binary search within row). Returns 0s when absent.
  Bytes volume(ProcessId i, ProcessId j) const;
  double count(ProcessId i, ProcessId j) const;

  /// Total bytes process i exchanges (sent plus received) — the paper's
  /// "communication quantity" used to pick the heaviest process.
  Bytes process_traffic(ProcessId i) const { return traffic_[static_cast<std::size_t>(i)]; }

  /// In-edges of process i: Row.dst holds the *source* processes j with
  /// volume/count of the directed edge j -> i. Needed because LT/BT are
  /// asymmetric, so incremental cost updates must see both directions.
  Row in_row(ProcessId i) const;

  /// All nonzero edges, row-major.
  std::vector<CommEdge> edges() const;

  /// The undirected view i<->j used by greedy affinity updates: for each i,
  /// neighbours j with combined weight volume(i,j)+volume(j,i) and count
  /// likewise. Built lazily at construction.
  Row undirected_row(ProcessId i) const;

  /// Resident bytes of the three CSR views (directed, transposed,
  /// undirected) — what obs::MemTracker charges to the "comm.csr"
  /// account. Deterministic for a given pattern (capacity slack excluded
  /// on purpose).
  std::size_t memory_bytes() const {
    const std::size_t offsets =
        (row_begin_.size() + t_row_begin_.size() + u_row_begin_.size()) *
        sizeof(std::size_t);
    const std::size_t ids =
        (dst_.size() + t_src_.size() + u_dst_.size()) * sizeof(ProcessId);
    const std::size_t weights =
        (volume_.size() + t_volume_.size() + u_volume_.size()) *
            sizeof(Bytes) +
        (count_.size() + t_count_.size() + u_count_.size()) * sizeof(double);
    return offsets + ids + weights + traffic_.size() * sizeof(Bytes);
  }

  /// Serialize as "src dst volume count" lines (plus a header).
  std::string to_text() const;
  static CommMatrix from_text(const std::string& text);

 private:
  friend class Builder;

  void finalize(int n, std::vector<CommEdge> sorted_unique);
  void build_transpose(const std::vector<CommEdge>& edges_by_src);
  void build_undirected();

  int n_ = 0;
  // Directed CSR.
  std::vector<std::size_t> row_begin_;  // n_+1
  std::vector<ProcessId> dst_;
  std::vector<Bytes> volume_;
  std::vector<double> count_;
  // Transposed CSR (in-edges).
  std::vector<std::size_t> t_row_begin_;
  std::vector<ProcessId> t_src_;
  std::vector<Bytes> t_volume_;
  std::vector<double> t_count_;
  // Undirected CSR (symmetrized weights), for affinity scans.
  std::vector<std::size_t> u_row_begin_;
  std::vector<ProcessId> u_dst_;
  std::vector<Bytes> u_volume_;
  std::vector<double> u_count_;

  std::vector<Bytes> traffic_;  // per-process total undirected volume
  Bytes total_volume_ = 0;
  double total_messages_ = 0;
};

}  // namespace geomap::trace
