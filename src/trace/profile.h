#pragma once
// Application profiling: merge per-rank (compressed) traces into the CG/AG
// communication matrices consumed by the mapping algorithms (the paper's
// "Application Profiling" box in Figure 2).

#include <vector>

#include "trace/comm_matrix.h"
#include "trace/recorder.h"

namespace geomap::trace {

/// Profile of one application execution on N ranks.
class ApplicationProfile {
 public:
  explicit ApplicationProfile(int num_ranks);

  int num_ranks() const { return static_cast<int>(recorders_.size()); }

  /// Per-rank recorder the runtime's tracing shim writes into.
  Recorder& recorder(ProcessId rank);
  const Recorder& recorder(ProcessId rank) const;

  /// Total records across ranks (pre-compression).
  std::size_t total_records() const;

  /// Compress every rank's trace and report the aggregate ratio.
  double aggregate_compression_ratio(std::size_t max_pattern = 64) const;

  /// Build CG/AG from the recorded sends.
  CommMatrix build_comm_matrix() const;

 private:
  std::vector<Recorder> recorders_;
};

}  // namespace geomap::trace
