#pragma once
// Per-rank communication trace recording with loop compression.
//
// This stands in for CYPRESS (Zhai et al., SC'14), which the paper uses to
// obtain CG and AG offline: CYPRESS exploits loop/branch structure to
// compress repeated communication patterns. Our recorder captures the same
// information dynamically: each rank appends (peer, bytes) send records,
// and compress() folds repeated blocks — the dynamic image of the loops of
// LU/BT/SP time steps — into (pattern, repeat-count) segments.

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace geomap::trace {

/// One point-to-point send as seen by the tracing shim.
struct SendRecord {
  ProcessId peer = 0;
  Bytes bytes = 0;

  bool operator==(const SendRecord&) const = default;
};

/// A compressed trace: a sequence of segments, each repeating a pattern of
/// SendRecords `repeat` times. Expansion reproduces the raw trace exactly.
struct CompressedTrace {
  struct Segment {
    std::vector<SendRecord> pattern;
    std::uint64_t repeat = 1;
  };
  std::vector<Segment> segments;

  std::uint64_t expanded_size() const;
  std::uint64_t stored_size() const;
  /// expanded/stored; >1 means the compressor found structure.
  double compression_ratio() const;
  std::vector<SendRecord> expand() const;
};

/// Records one rank's sends.
class Recorder {
 public:
  void record_send(ProcessId peer, Bytes bytes) {
    raw_.push_back(SendRecord{peer, bytes});
  }

  std::size_t size() const { return raw_.size(); }
  const std::vector<SendRecord>& raw() const { return raw_; }

  /// Greedy block-repeat compression: at each position try pattern lengths
  /// 1..max_pattern and fold maximal repeats, preferring the fold that
  /// consumes the most records. O(n * max_pattern) worst case.
  CompressedTrace compress(std::size_t max_pattern = 64) const;

 private:
  std::vector<SendRecord> raw_;
};

}  // namespace geomap::trace
