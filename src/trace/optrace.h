#pragma once
// Operation-level execution traces.
//
// Where CommMatrix (CG/AG) aggregates *how much* ranks communicate, an
// OpTrace records *what each rank did, in order*: every point-to-point
// post, blocking receive, send-completion wait and modeled compute block.
// Collectives appear as their underlying point-to-point operations. The
// trace is mapping-independent (the apps' control flow does not depend on
// where ranks run), so one captured trace can be replayed under many
// candidate mappings by the deterministic simulator in sim/replay.h —
// the cheap way to evaluate mapping decisions that the virtual-time
// runtime would otherwise re-execute from scratch.

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace geomap::trace {

struct Op {
  enum class Kind : std::uint8_t {
    kSend,     // non-blocking post: peer, tag, bytes
    kRecv,     // blocking receive: peer, tag
    kWait,     // blocking completion of this rank's send #send_index
    kCompute,  // local work: seconds
  };

  Kind kind = Kind::kCompute;
  ProcessId peer = -1;
  int tag = 0;
  Bytes bytes = 0;
  Seconds seconds = 0;
  /// For kWait: index into this rank's sends (0-based, in posting order).
  std::int64_t send_index = -1;

  static Op send(ProcessId peer, int tag, Bytes bytes) {
    Op op;
    op.kind = Kind::kSend;
    op.peer = peer;
    op.tag = tag;
    op.bytes = bytes;
    return op;
  }
  static Op recv(ProcessId peer, int tag) {
    Op op;
    op.kind = Kind::kRecv;
    op.peer = peer;
    op.tag = tag;
    return op;
  }
  static Op wait(std::int64_t send_index) {
    Op op;
    op.kind = Kind::kWait;
    op.send_index = send_index;
    return op;
  }
  static Op compute(Seconds seconds) {
    Op op;
    op.kind = Kind::kCompute;
    op.seconds = seconds;
    return op;
  }
};

/// Per-rank op sequences of one execution.
class OpTraceLog {
 public:
  explicit OpTraceLog(int num_ranks)
      : ops_(static_cast<std::size_t>(num_ranks)) {}

  int num_ranks() const { return static_cast<int>(ops_.size()); }

  std::vector<Op>& rank(ProcessId r) {
    return ops_[static_cast<std::size_t>(r)];
  }
  const std::vector<Op>& rank(ProcessId r) const {
    return ops_[static_cast<std::size_t>(r)];
  }

  std::size_t total_ops() const {
    std::size_t total = 0;
    for (const auto& v : ops_) total += v.size();
    return total;
  }

 private:
  std::vector<std::vector<Op>> ops_;
};

}  // namespace geomap::trace
