#include "apps/solvers.h"

#include <array>
#include <cmath>

#include "common/error.h"

namespace geomap::apps {

std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs) {
  const std::size_t n = diag.size();
  GEOMAP_CHECK(lower.size() == n && upper.size() == n && rhs.size() == n);
  GEOMAP_CHECK_MSG(n >= 1, "empty system");

  std::vector<double> c_prime(n, 0.0);
  std::vector<double> x(rhs.begin(), rhs.end());

  double denom = diag[0];
  GEOMAP_CHECK_MSG(std::abs(denom) > 1e-300, "singular tridiagonal system");
  c_prime[0] = upper[0] / denom;
  x[0] = rhs[0] / denom;
  for (std::size_t i = 1; i < n; ++i) {
    denom = diag[i] - lower[i] * c_prime[i - 1];
    GEOMAP_CHECK_MSG(std::abs(denom) > 1e-300, "singular tridiagonal system");
    c_prime[i] = upper[i] / denom;
    x[i] = (rhs[i] - lower[i] * x[i - 1]) / denom;
  }
  for (std::size_t i = n - 1; i-- > 0;) {
    x[i] -= c_prime[i] * x[i + 1];
  }
  return x;
}

std::vector<double> solve_pentadiagonal(std::span<const double> d2,
                                        std::span<const double> d1,
                                        std::span<const double> d0,
                                        std::span<const double> u1,
                                        std::span<const double> u2,
                                        std::span<const double> rhs) {
  const std::size_t n = d0.size();
  GEOMAP_CHECK(d2.size() == n && d1.size() == n && u1.size() == n &&
               u2.size() == n && rhs.size() == n);
  GEOMAP_CHECK_MSG(n >= 1, "empty system");

  // Banded storage copies we can eliminate in.
  std::vector<double> a(d2.begin(), d2.end());   // (i, i-2)
  std::vector<double> b(d1.begin(), d1.end());   // (i, i-1)
  std::vector<double> c(d0.begin(), d0.end());   // (i, i)
  std::vector<double> d(u1.begin(), u1.end());   // (i, i+1)
  std::vector<double> e(u2.begin(), u2.end());   // (i, i+2)
  std::vector<double> x(rhs.begin(), rhs.end());

  // Forward elimination (no pivoting; systems from SP are diagonally
  // dominant).
  for (std::size_t i = 0; i < n; ++i) {
    GEOMAP_CHECK_MSG(std::abs(c[i]) > 1e-300, "singular pentadiagonal system");
    // Eliminate b[i+1] (row i+1, col i).
    if (i + 1 < n) {
      const double m = b[i + 1] / c[i];
      c[i + 1] -= m * d[i];
      d[i + 1] -= m * e[i];
      x[i + 1] -= m * x[i];
      b[i + 1] = 0.0;
    }
    // Eliminate a[i+2] (row i+2, col i).
    if (i + 2 < n) {
      const double m = a[i + 2] / c[i];
      b[i + 2] -= m * d[i];
      c[i + 2] -= m * e[i];
      x[i + 2] -= m * x[i];
      a[i + 2] = 0.0;
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double acc = x[i];
    if (i + 1 < n) acc -= d[i] * x[i + 1];
    if (i + 2 < n) acc -= e[i] * x[i + 2];
    x[i] = acc / c[i];
  }
  return x;
}

std::array<double, 3> solve3x3(std::span<const double, 9> a,
                               std::span<const double, 3> b) {
  // Gaussian elimination with partial pivoting on a 3x3 copy.
  std::array<std::array<double, 4>, 3> m{};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = a[static_cast<std::size_t>(r * 3 + c)];
    m[static_cast<std::size_t>(r)][3] = b[static_cast<std::size_t>(r)];
  }
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::abs(m[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)]) >
          std::abs(m[static_cast<std::size_t>(pivot)][static_cast<std::size_t>(col)]))
        pivot = r;
    }
    std::swap(m[static_cast<std::size_t>(col)], m[static_cast<std::size_t>(pivot)]);
    const double p = m[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    GEOMAP_CHECK_MSG(std::abs(p) > 1e-300, "singular 3x3 block");
    for (int r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double f = m[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] / p;
      for (int c = col; c < 4; ++c)
        m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] -=
            f * m[static_cast<std::size_t>(col)][static_cast<std::size_t>(c)];
    }
  }
  return {m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]};
}

namespace {

/// 3x3 matrix helpers for the block-Thomas solver (row-major arrays).
using Mat3 = std::array<double, 9>;
using Vec3 = std::array<double, 3>;

Mat3 mat_inverse(const Mat3& a) {
  // Invert by solving for the three unit vectors.
  Mat3 inv{};
  for (int c = 0; c < 3; ++c) {
    Vec3 e{0, 0, 0};
    e[static_cast<std::size_t>(c)] = 1.0;
    const Vec3 col = solve3x3(std::span<const double, 9>(a),
                              std::span<const double, 3>(e));
    for (int r = 0; r < 3; ++r)
      inv[static_cast<std::size_t>(r * 3 + c)] = col[static_cast<std::size_t>(r)];
  }
  return inv;
}

Mat3 mat_mul(const Mat3& a, const Mat3& b) {
  Mat3 out{};
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) {
      double acc = 0;
      for (int k = 0; k < 3; ++k)
        acc += a[static_cast<std::size_t>(r * 3 + k)] *
               b[static_cast<std::size_t>(k * 3 + c)];
      out[static_cast<std::size_t>(r * 3 + c)] = acc;
    }
  return out;
}

Vec3 mat_vec(const Mat3& a, const Vec3& v) {
  Vec3 out{};
  for (int r = 0; r < 3; ++r) {
    double acc = 0;
    for (int k = 0; k < 3; ++k)
      acc += a[static_cast<std::size_t>(r * 3 + k)] * v[static_cast<std::size_t>(k)];
    out[static_cast<std::size_t>(r)] = acc;
  }
  return out;
}

Mat3 mat_sub(const Mat3& a, const Mat3& b) {
  Mat3 out{};
  for (std::size_t i = 0; i < 9; ++i) out[i] = a[i] - b[i];
  return out;
}

Vec3 vec_sub(const Vec3& a, const Vec3& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}

Mat3 load_mat(std::span<const double> data, std::size_t block) {
  Mat3 m{};
  for (std::size_t i = 0; i < 9; ++i) m[i] = data[block * 9 + i];
  return m;
}

Vec3 load_vec(std::span<const double> data, std::size_t block) {
  return {data[block * 3], data[block * 3 + 1], data[block * 3 + 2]};
}

}  // namespace

std::vector<double> solve_block_tridiagonal(std::span<const double> lower,
                                            std::span<const double> diag,
                                            std::span<const double> upper,
                                            std::span<const double> rhs) {
  GEOMAP_CHECK(diag.size() % 9 == 0);
  const std::size_t n = diag.size() / 9;
  GEOMAP_CHECK(lower.size() == diag.size() && upper.size() == diag.size());
  GEOMAP_CHECK(rhs.size() == n * 3);
  GEOMAP_CHECK_MSG(n >= 1, "empty block system");

  // Block Thomas: D'_0 = D_0; D'_i = D_i - L_i D'^-1_{i-1} U_{i-1}
  //               y_0 = b_0;  y_i = b_i - L_i D'^-1_{i-1} y_{i-1}
  std::vector<Mat3> dp(n);
  std::vector<Vec3> y(n);
  dp[0] = load_mat(diag, 0);
  y[0] = load_vec(rhs, 0);
  for (std::size_t i = 1; i < n; ++i) {
    const Mat3 li = load_mat(lower, i);
    const Mat3 inv_prev = mat_inverse(dp[i - 1]);
    const Mat3 li_inv = mat_mul(li, inv_prev);
    dp[i] = mat_sub(load_mat(diag, i), mat_mul(li_inv, load_mat(upper, i - 1)));
    y[i] = vec_sub(load_vec(rhs, i), mat_vec(li_inv, y[i - 1]));
  }
  // Back substitution: x_n-1 = D'^-1 y; x_i = D'^-1 (y_i - U_i x_{i+1}).
  std::vector<double> x(n * 3);
  Vec3 xi = mat_vec(mat_inverse(dp[n - 1]), y[n - 1]);
  for (int c = 0; c < 3; ++c) x[(n - 1) * 3 + static_cast<std::size_t>(c)] = xi[static_cast<std::size_t>(c)];
  for (std::size_t i = n - 1; i-- > 0;) {
    const Vec3 ux = mat_vec(load_mat(upper, i), xi);
    xi = mat_vec(mat_inverse(dp[i]), vec_sub(y[i], ux));
    for (int c = 0; c < 3; ++c) x[i * 3 + static_cast<std::size_t>(c)] = xi[static_cast<std::size_t>(c)];
  }
  return x;
}

double gauss_seidel_sweep(std::vector<double>& u, std::span<const double> f,
                          int nx, int ny, double h2) {
  GEOMAP_CHECK(static_cast<int>(u.size()) == (nx + 2) * (ny + 2));
  GEOMAP_CHECK(static_cast<int>(f.size()) == nx * ny);
  const int stride = ny + 2;
  double residual_sq = 0.0;
  for (int i = 1; i <= nx; ++i) {
    for (int j = 1; j <= ny; ++j) {
      const std::size_t c = static_cast<std::size_t>(i * stride + j);
      const double fij = f[static_cast<std::size_t>((i - 1) * ny + (j - 1))];
      const double r = fij * h2 + u[c - static_cast<std::size_t>(stride)] +
                       u[c + static_cast<std::size_t>(stride)] + u[c - 1] +
                       u[c + 1] - 4.0 * u[c];
      residual_sq += r * r;
      u[c] += 0.25 * r;
    }
  }
  return residual_sq;
}

}  // namespace geomap::apps
