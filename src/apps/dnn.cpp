#include "apps/dnn.h"

#include <cmath>

#include "apps/synthetic.h"
#include "common/error.h"
#include "common/rng.h"

namespace geomap::apps {

namespace {

/// A tiny but real MLP: tanh hidden layers, softmax-free two-class output
/// with squared loss (keeps the backward pass short and stable).
class Mlp {
 public:
  explicit Mlp(const std::vector<int>& layers, Rng& rng) : layers_(layers) {
    for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
      const int in = layers[l];
      const int out = layers[l + 1];
      const double scale = 1.0 / std::sqrt(static_cast<double>(in));
      std::vector<double> w(static_cast<std::size_t>(in * out + out));
      for (auto& v : w) v = rng.normal() * scale;
      weights_.push_back(std::move(w));
    }
  }

  /// Flattened parameter vector (for allreduce averaging).
  std::vector<double> flatten() const {
    std::vector<double> out;
    for (const auto& w : weights_) out.insert(out.end(), w.begin(), w.end());
    return out;
  }

  void unflatten(std::span<const double> flat) {
    std::size_t off = 0;
    for (auto& w : weights_) {
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
                flat.begin() + static_cast<std::ptrdiff_t>(off + w.size()),
                w.begin());
      off += w.size();
    }
    GEOMAP_CHECK(off == flat.size());
  }

  /// One SGD step on (x, y); returns the squared loss before the update.
  double train_step(std::span<const double> x, std::span<const double> y,
                    double lr) {
    // Forward pass, keeping activations.
    std::vector<std::vector<double>> acts;
    acts.emplace_back(x.begin(), x.end());
    for (std::size_t l = 0; l < weights_.size(); ++l) {
      const int in = layers_[l];
      const int out = layers_[l + 1];
      const auto& w = weights_[l];
      std::vector<double> z(static_cast<std::size_t>(out));
      for (int o = 0; o < out; ++o) {
        double acc = w[static_cast<std::size_t>(in * out + o)];  // bias
        for (int i = 0; i < in; ++i)
          acc += w[static_cast<std::size_t>(i * out + o)] *
                 acts.back()[static_cast<std::size_t>(i)];
        const bool last = (l + 1 == weights_.size());
        z[static_cast<std::size_t>(o)] = last ? acc : std::tanh(acc);
      }
      acts.push_back(std::move(z));
    }

    // Squared loss and output delta.
    const std::vector<double>& out_act = acts.back();
    double loss = 0;
    std::vector<double> delta(out_act.size());
    for (std::size_t o = 0; o < out_act.size(); ++o) {
      const double e = out_act[o] - y[o];
      loss += e * e;
      delta[o] = 2.0 * e;
    }

    // Backward pass with immediate SGD update.
    for (std::size_t l = weights_.size(); l-- > 0;) {
      const int in = layers_[l];
      const int out = layers_[l + 1];
      auto& w = weights_[l];
      std::vector<double> prev_delta(static_cast<std::size_t>(in), 0.0);
      for (int o = 0; o < out; ++o) {
        const double g = delta[static_cast<std::size_t>(o)];
        for (int i = 0; i < in; ++i) {
          prev_delta[static_cast<std::size_t>(i)] +=
              g * w[static_cast<std::size_t>(i * out + o)];
          w[static_cast<std::size_t>(i * out + o)] -=
              lr * g * acts[l][static_cast<std::size_t>(i)];
        }
        w[static_cast<std::size_t>(in * out + o)] -= lr * g;  // bias
      }
      if (l > 0) {
        // Through the tanh of the previous layer.
        for (int i = 0; i < in; ++i) {
          const double a = acts[l][static_cast<std::size_t>(i)];
          prev_delta[static_cast<std::size_t>(i)] *= (1.0 - a * a);
        }
        delta = std::move(prev_delta);
      }
    }
    return loss;
  }

 private:
  std::vector<int> layers_;
  std::vector<std::vector<double>> weights_;
};

/// Synthetic two-class data: class decided by a fixed random hyperplane
/// with margin, so the problem is learnable.
void make_sample(Rng& rng, std::span<double> x, std::span<double> y) {
  static const std::vector<double> kPlane = {0.7, -0.4, 0.5, 0.3,
                                             -0.6, 0.2, -0.3, 0.5};
  double dot = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    dot += kPlane[i % kPlane.size()] * x[i];
  }
  y[0] = dot > 0 ? 1.0 : 0.0;
  y[1] = dot > 0 ? 0.0 : 1.0;
}

}  // namespace

const std::vector<int>& DnnApp::layers() {
  static const std::vector<int> kLayers = {8, 16, 8, 2};
  return kLayers;
}

int DnnApp::num_parameters() {
  int total = 0;
  const auto& l = layers();
  for (std::size_t i = 0; i + 1 < l.size(); ++i)
    total += l[i] * l[i + 1] + l[i + 1];
  return total;
}

double DnnApp::run(runtime::Comm& comm, const AppConfig& config) const {
  Rng rng(config.seed * 7919ULL + static_cast<std::uint64_t>(comm.rank()));
  Mlp net(layers(), rng);

  // Every rank starts from the same parameters (bcast from rank 0).
  std::vector<double> params = net.flatten();
  comm.bcast(params, 0);
  net.unflatten(params);

  const int samples = config.problem_size;
  const int in_dim = layers().front();
  const int out_dim = layers().back();
  std::vector<double> x(static_cast<std::size_t>(in_dim));
  std::vector<double> y(static_cast<std::size_t>(out_dim));

  double global_loss = 0.0;
  for (int epoch = 0; epoch < config.iterations; ++epoch) {
    double loss = 0;
    for (int s = 0; s < samples; ++s) {
      make_sample(rng, x, y);
      loss += net.train_step(x, y, 0.02);
    }
    // Model the epoch's training flops (the tiny MLP stands in for the
    // paper's ResNet-scale CIFAR-10 job, which is compute-bound: the
    // virtual compute dominates the per-epoch allreduce, reproducing the
    // paper's small communication ratio for DNN).
    comm.compute(4e8 * static_cast<double>(samples));

    // Parameter averaging (parallel SGD): allreduce + scale by 1/p.
    params = net.flatten();
    comm.allreduce(params, runtime::ReduceOp::kSum);
    for (auto& v : params) v /= comm.size();
    net.unflatten(params);

    std::vector<double> gl{loss / samples};
    comm.allreduce(gl, runtime::ReduceOp::kSum);
    global_loss = gl[0] / comm.size();
  }
  return global_loss;
}

trace::CommMatrix DnnApp::synthetic_pattern(int num_ranks,
                                            const AppConfig& config) const {
  trace::CommMatrix::Builder builder(num_ranks);
  const double param_bytes =
      static_cast<double>(num_parameters()) * sizeof(double);
  add_bcast_edges(builder, num_ranks, 0, param_bytes);
  add_allreduce_edges(builder, num_ranks, param_bytes, config.iterations);
  add_allreduce_edges(builder, num_ranks, sizeof(double), config.iterations);
  return builder.build();
}

AppConfig DnnApp::default_config(int num_ranks) const {
  AppConfig cfg;
  cfg.num_ranks = num_ranks;
  cfg.iterations = 10;
  cfg.problem_size = 256;  // samples per rank per epoch
  return cfg;
}

}  // namespace geomap::apps
