#pragma once
// Workload interface for the paper's five benchmark applications
// (Section 5.1): NPB-style LU, BT and SP pseudo-applications, parallel
// K-means clustering, and DNN training. Each app
//   * runs for real on the minimpi runtime (real numeric kernels, real
//     messages) — used for the "EC2" experiments at up to a few hundred
//     ranks — and
//   * emits a synthetic CG/AG pattern for arbitrary N — used by the
//     ns-2-style simulation experiments at up to 8192 processes, where
//     thread-per-rank execution is no longer sensible.

#include <memory>
#include <string>
#include <vector>

#include "runtime/comm.h"
#include "trace/comm_matrix.h"

namespace geomap::apps {

struct AppConfig {
  int num_ranks = 64;
  /// Iterations / time steps / training epochs.
  int iterations = 10;
  /// App-specific size knob (local grid edge, points per rank, ...).
  int problem_size = 32;
  std::uint64_t seed = 1;
  /// Scale factor applied to message payloads so laptop-sized local
  /// compute can still exercise CLASS-C-like message sizes (the paper
  /// reports 43 KB / 83 KB LU messages at 64 processes). 1.0 keeps
  /// payloads at their natural size.
  double payload_scale = 1.0;
};

class App {
 public:
  virtual ~App() = default;

  virtual std::string name() const = 0;

  /// Execute the app body on one rank. Must be called by every rank of
  /// the runtime with identical config. Returns the app's global
  /// convergence metric after the final iteration (identical on every
  /// rank): LU residual, BT/SP step-to-step change norm, K-means inertia,
  /// DNN training loss — all of which must decrease as iterations grow.
  virtual double run(runtime::Comm& comm, const AppConfig& config) const = 0;

  /// The communication pattern this app would produce on `num_ranks`
  /// processes with `config.iterations` steps, without executing.
  virtual trace::CommMatrix synthetic_pattern(int num_ranks,
                                              const AppConfig& config) const = 0;

  /// Default configuration tuned so tests/benches finish quickly.
  virtual AppConfig default_config(int num_ranks) const;
};

/// The five paper workloads, in the paper's order: BT, SP, LU, K-means,
/// DNN. Pointers remain valid for the program lifetime.
const std::vector<const App*>& all_apps();

/// All eight workloads: the paper's five plus the additional NPB-style
/// kernels CG (irregular sparse halo), MG (multilevel + hub traffic) and
/// FT (dense all-to-all transposes).
const std::vector<const App*>& extended_apps();

/// Look up by name ("BT", "SP", "LU", "K-means", "DNN", "CG", "MG",
/// "FT").
const App& app_by_name(const std::string& name);

/// Near-square process grid factorization px * py == p with px <= py.
struct ProcessGrid {
  int px = 1;
  int py = 1;
  int x(int rank) const { return rank % px; }
  int y(int rank) const { return rank / px; }
  int rank_of(int gx, int gy) const { return gy * px + gx; }
};
ProcessGrid make_process_grid(int p);

}  // namespace geomap::apps
