#pragma once
// Parallel K-means clustering (paper Section 5.1, reference [29]):
// geo-partitioned observations, per-iteration centroid allreduce, and a
// cluster-major repartition phase that ships points toward their
// cluster's owner ranks. The repartition's data-dependent, irregular
// exchanges are what give K-means the "complex" communication matrix of
// paper Figure 3 — the pattern class on which bandwidth-greedy mapping
// struggles.

#include "apps/app.h"

namespace geomap::apps {

class KMeansApp : public App {
 public:
  std::string name() const override { return "K-means"; }
  double run(runtime::Comm& comm, const AppConfig& config) const override;
  trace::CommMatrix synthetic_pattern(int num_ranks,
                                      const AppConfig& config) const override;
  AppConfig default_config(int num_ranks) const override;

  static constexpr int kClusters = 8;
  static constexpr int kDims = 4;
};

}  // namespace geomap::apps
