#pragma once
// Sequential numeric kernels used by the NPB-style mini-apps: Thomas
// tridiagonal solve (BT's block lines, simplified to 3x3 blocks), scalar
// pentadiagonal solve (SP), and a Gauss-Seidel relaxation sweep (LU's
// SSOR). All are real solvers with unit tests against dense references.

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace geomap::apps {

/// Solve a tridiagonal system in place. `lower[i] x[i-1] + diag[i] x[i] +
/// upper[i] x[i+1] = rhs[i]`; lower[0] and upper[n-1] are ignored.
/// Returns the solution. Requires diagonal dominance for stability.
std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs);

/// Solve a pentadiagonal system (bandwidth 2) in place via banded
/// Gaussian elimination without pivoting. Bands: d2 (i,i-2), d1 (i,i-1),
/// d0 (i,i), u1 (i,i+1), u2 (i,i+2); out-of-range entries ignored.
std::vector<double> solve_pentadiagonal(std::span<const double> d2,
                                        std::span<const double> d1,
                                        std::span<const double> d0,
                                        std::span<const double> u1,
                                        std::span<const double> u2,
                                        std::span<const double> rhs);

/// Solve a block-tridiagonal system with 3x3 blocks via block Thomas.
/// Blocks are row-major 3x3; vectors are length-3 chunks. n blocks.
/// lower/upper have n blocks each (first/last ignored respectively).
std::vector<double> solve_block_tridiagonal(std::span<const double> lower,
                                            std::span<const double> diag,
                                            std::span<const double> upper,
                                            std::span<const double> rhs);

/// One Gauss-Seidel sweep of the 5-point Laplacian on an (nx+2)x(ny+2)
/// array with halo (row-major, u[(i)*(ny+2)+j]); f is nx*ny. Interior
/// points i in [1,nx], j in [1,ny] updated in lexicographic order.
/// Returns the sum of squared residuals *before* the sweep.
double gauss_seidel_sweep(std::vector<double>& u, std::span<const double> f,
                          int nx, int ny, double h2);

/// 3x3 linear solve helper (Gaussian elimination with partial pivoting):
/// returns A^-1 b. A row-major 9 values.
std::array<double, 3> solve3x3(std::span<const double, 9> a,
                               std::span<const double, 3> b);

}  // namespace geomap::apps
