#pragma once
// CG: an NPB Conjugate Gradient-style workload (beyond the paper's three
// pseudo-applications). A real CG solve of a sparse SPD system whose
// sparsity is a 2D Laplacian plus deterministic random long-range
// couplings — so the halo exchange is *irregular*: mostly neighbour
// traffic with a scattering of arbitrary pairs, sitting between LU's
// clean diagonal and K-means' complexity. Two scalar allreduces per
// iteration carry the dot products. run() returns the final residual
// norm, which decreases with iterations (CG converges).

#include "apps/app.h"

namespace geomap::apps {

class CgApp : public App {
 public:
  std::string name() const override { return "CG"; }
  double run(runtime::Comm& comm, const AppConfig& config) const override;
  trace::CommMatrix synthetic_pattern(int num_ranks,
                                      const AppConfig& config) const override;
  AppConfig default_config(int num_ranks) const override;

  /// Long-range couplings per rank (the irregular part of the pattern).
  static constexpr int kRandomCouplingsPerRank = 3;
};

}  // namespace geomap::apps
