// geomap-obsctl: offline analysis of exported observability artifacts.
//
//   analyze <critpath.json>            critical-path summary per run: the
//                                      makespan's alpha / beta / contention /
//                                      fault / local decomposition, per
//                                      site-pair and per-rank attribution,
//                                      top-k slowest path steps. --json emits
//                                      the compact (event-free) form used as
//                                      a checked-in regression baseline.
//   diff <baseline> <current>          regression table over the numeric
//                                      leaves of any two artifacts of the
//                                      same kind (percent deltas; "meta" is
//                                      ignored).
//   check <baseline> <current>         like diff, but exits 1 when a watched
//                                      leaf regressed past --threshold (or
//                                      vanished). CI's bench-regress gate.
//
// Exit codes: 0 ok / no regression, 1 regression detected (check only),
// 2 usage or load error.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json_reader.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "obs/critpath.h"
#include "obs/regress.h"

using namespace geomap;

namespace {

int usage(std::ostream& os, int code) {
  os << "Usage:\n"
        "  geomap-obsctl analyze <critpath.json> [--run N] [--top K] "
        "[--json]\n"
        "  geomap-obsctl diff <baseline.json> <current.json> [--all]\n"
        "  geomap-obsctl check <baseline.json> <current.json>\n"
        "\n"
        "Shared flags for diff/check:\n"
        "  --threshold PCT   relative increase that fails check "
        "(default 10)\n"
        "  --watch PATTERNS  comma-separated dotted-key globs; only "
        "matching\n"
        "                    leaves can fail (default: "
        "runs.*.analysis.makespan_seconds\n"
        "                    and runs.*.analysis.components.*)\n";
  return code;
}

/// Re-emit a parsed JSON value verbatim (used to pass an input artifact's
/// meta header through to derived outputs).
void write_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      w.null();
      break;
    case JsonValue::Kind::kBool:
      w.value(v.as_bool());
      break;
    case JsonValue::Kind::kNumber:
      w.value(v.as_number());
      break;
    case JsonValue::Kind::kString:
      w.value(v.as_string());
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& item : v.items()) write_value(w, item);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [key, child] : v.members()) {
        w.key(key);
        write_value(w, child);
      }
      w.end_object();
      break;
  }
}

struct AnalyzedRun {
  int run = 0;
  std::string label;
  Seconds origin = 0;
  obs::CriticalPath path;
};

std::vector<AnalyzedRun> analyze_runs(const JsonValue& doc, int only_run) {
  GEOMAP_CHECK_ARG(doc.is_object() && doc.find("runs") != nullptr,
                   "not a critpath artifact (no top-level 'runs' array)");
  std::vector<AnalyzedRun> out;
  for (const JsonValue& run : doc.at("runs").items()) {
    AnalyzedRun a;
    a.run = static_cast<int>(run.number_or("run", 0));
    if (only_run >= 0 && a.run != only_run) continue;
    a.label = run.string_or("label", "");
    a.origin = run.number_or("origin", 0);
    const JsonValue* events = run.find("events");
    GEOMAP_CHECK_ARG(events != nullptr,
                     "run " << a.run
                            << " has no 'events' array — this artifact is a "
                               "compact baseline; analyze the full export");
    a.path = obs::extract_critical_path(
        obs::critpath_events_from_json(*events), a.origin);
    out.push_back(std::move(a));
  }
  return out;
}

void print_components_row(Table::RowBuilder&& row, const std::string& name,
                          const obs::ComponentTotals& c, Seconds makespan) {
  const Seconds total = c.total();
  row.cell(name)
      .cell(total, 6)
      .cell(makespan > 0 ? 100.0 * total / makespan : 0.0, 1)
      .cell(c.alpha, 6)
      .cell(c.beta, 6)
      .cell(c.contention_stall, 6)
      .cell(c.fault_stall, 6)
      .cell(c.local, 6);
}

int cmd_analyze(const std::vector<std::string>& args) {
  std::string path;
  int top = 5;
  int only_run = -1;
  bool as_json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      as_json = true;
    } else if (args[i] == "--top" && i + 1 < args.size()) {
      top = std::stoi(args[++i]);
    } else if (args[i] == "--run" && i + 1 < args.size()) {
      only_run = std::stoi(args[++i]);
    } else if (path.empty() && args[i].rfind("--", 0) != 0) {
      path = args[i];
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (path.empty()) return usage(std::cerr, 2);

  const JsonValue doc = parse_json_file(path);
  const std::vector<AnalyzedRun> runs = analyze_runs(doc, only_run);

  if (as_json) {
    JsonWriter w(std::cout);
    w.begin_object();
    if (const JsonValue* meta = doc.find("meta")) {
      w.key("meta");
      write_value(w, *meta);
    }
    w.key("runs").begin_array();
    for (const AnalyzedRun& a : runs) {
      w.begin_object();
      w.field("run", a.run);
      w.field("label", a.label);
      w.field("origin", a.origin);
      obs::write_analysis_member(w, a.path);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::cout << "\n";
    return 0;
  }

  for (const AnalyzedRun& a : runs) {
    print_banner(std::cout,
                 "run " + std::to_string(a.run) + " (" + a.label + ")");
    std::cout << "makespan: " << format_double(a.path.makespan, 6)
              << " s   critical path: "
              << format_double(a.path.path_seconds, 6) << " s over "
              << a.path.steps.size() << " steps\n\n";

    Table components({"scope", "seconds", "% of makespan", "alpha", "beta",
                      "contention", "fault", "local"});
    print_components_row(components.row(), "total", a.path.totals,
                         a.path.makespan);
    for (const obs::PairAttribution& pa : a.path.by_pair) {
      const std::string name =
          pa.src_site < 0 ? "(local)"
                          : "site " + std::to_string(pa.src_site) + " -> " +
                                std::to_string(pa.dst_site);
      print_components_row(components.row(), name, pa.components,
                           a.path.makespan);
    }
    components.print(std::cout);
    std::cout << "\n";

    Table ranks({"rank", "seconds", "% of makespan", "alpha", "beta",
                 "contention", "fault", "local"});
    for (const obs::RankAttribution& ra : a.path.by_rank) {
      print_components_row(ranks.row(), "rank " + std::to_string(ra.rank),
                           ra.components, a.path.makespan);
    }
    ranks.print(std::cout);
    std::cout << "\n";

    if (top > 0 && !a.path.steps.empty()) {
      std::vector<const obs::CritPathStep*> slowest;
      for (const obs::CritPathStep& s : a.path.steps) slowest.push_back(&s);
      std::stable_sort(slowest.begin(), slowest.end(),
                       [](const obs::CritPathStep* x,
                          const obs::CritPathStep* y) {
                         return x->duration() > y->duration();
                       });
      if (slowest.size() > static_cast<std::size_t>(top))
        slowest.resize(static_cast<std::size_t>(top));
      Table steps({"kind", "rank", "peer", "link", "start", "end",
                   "seconds", "dominant"});
      for (const obs::CritPathStep* s : slowest) {
        const obs::ComponentTotals c = s->components();
        const char* dominant = "local";
        Seconds best = c.local;
        if (c.alpha > best) { best = c.alpha; dominant = "alpha"; }
        if (c.beta > best) { best = c.beta; dominant = "beta"; }
        if (c.contention_stall > best) {
          best = c.contention_stall;
          dominant = "contention";
        }
        if (c.fault_stall > best) { best = c.fault_stall; dominant = "fault"; }
        steps.row()
            .cell(s->event.kind)
            .cell(s->event.rank)
            .cell(s->event.peer)
            .cell(s->event.src_site < 0
                      ? std::string("-")
                      : std::to_string(s->event.src_site) + "->" +
                            std::to_string(s->event.dst_site))
            .cell(s->event.start, 6)
            .cell(s->event.end, 6)
            .cell(s->duration(), 6)
            .cell(dominant);
      }
      print_banner(std::cout, "slowest path steps");
      steps.print(std::cout);
      std::cout << "\n";
    }
  }
  return 0;
}

std::vector<std::string> split_patterns(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t from = 0;
  while (from <= csv.size()) {
    const std::size_t comma = csv.find(',', from);
    const std::string part = csv.substr(
        from, comma == std::string::npos ? std::string::npos : comma - from);
    if (!part.empty()) out.push_back(part);
    if (comma == std::string::npos) break;
    from = comma + 1;
  }
  return out;
}

int cmd_compare(const std::vector<std::string>& args, bool gate) {
  std::vector<std::string> paths;
  obs::RegressOptions options;
  options.watch = {"runs.*.analysis.makespan_seconds",
                   "runs.*.analysis.components.*"};
  bool all_rows = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold" && i + 1 < args.size()) {
      options.threshold = std::stod(args[++i]) / 100.0;
    } else if (args[i] == "--watch" && i + 1 < args.size()) {
      options.watch = split_patterns(args[++i]);
    } else if (args[i] == "--all") {
      all_rows = true;
    } else if (args[i].rfind("--", 0) != 0) {
      paths.push_back(args[i]);
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (paths.size() != 2) return usage(std::cerr, 2);

  const JsonValue baseline = parse_json_file(paths[0]);
  const JsonValue current = parse_json_file(paths[1]);
  const obs::RegressReport report =
      obs::compare_artifacts(baseline, current, options);

  Table table({"key", "baseline", "current", "delta", "delta %", "status"});
  for (const obs::RegressRow& row : report.rows) {
    if (!all_rows && row.delta == 0 && !row.regressed) continue;
    table.row()
        .cell(row.key)
        .cell(row.baseline, 6)
        .cell(row.current, 6)
        .cell(row.delta, 6)
        .cell(row.delta_pct, 2)
        .cell(row.regressed ? "REGRESSED" : (row.watched ? "ok" : "info"));
  }
  if (table.num_rows() > 0) {
    table.print(std::cout);
  } else {
    std::cout << "no differences ("
              << report.rows.size() << " keys compared)\n";
  }
  for (const std::string& key : report.missing)
    std::cout << "missing from current: " << key << "\n";
  for (const std::string& key : report.added)
    std::cout << "new in current: " << key << "\n";

  if (gate) {
    if (report.failed) {
      std::cout << "FAIL: regression past "
                << format_double(options.threshold * 100.0, 1)
                << "% threshold\n";
      return 1;
    }
    std::cout << "PASS: no watched leaf regressed past "
              << format_double(options.threshold * 100.0, 1)
              << "% threshold\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "diff") return cmd_compare(args, /*gate=*/false);
    if (cmd == "check") return cmd_compare(args, /*gate=*/true);
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
      return usage(std::cout, 0);
  } catch (const std::exception& e) {
    std::cerr << "geomap-obsctl: " << e.what() << "\n";
    return 2;
  }
  return usage(std::cerr, 2);
}
