// geomap-obsctl: offline analysis of exported observability artifacts.
//
//   analyze <critpath.json>            critical-path summary per run: the
//                                      makespan's alpha / beta / contention /
//                                      fault / local decomposition, per
//                                      site-pair and per-rank attribution,
//                                      top-k slowest path steps. --json emits
//                                      the compact (event-free) form used as
//                                      a checked-in regression baseline.
//   timeline <timeline.json>           renders the windowed per-link series
//                                      as ASCII lanes with the detector's
//                                      episodes overlaid against the
//                                      injected ground-truth fault windows
//                                      (plus a migration lane whenever the
//                                      artifact carries migration.bytes
//                                      flows), the detection/truth tables
//                                      and the precision/recall score block.
//                                      Multi-tenant artifacts ("t<k>:s->d"
//                                      labels) get one lane block per
//                                      (tenant, link) under the shared view.
//   profile <profile.json>             renders the hierarchical phase tree
//                                      (inclusive wall/CPU, exclusive wall,
//                                      calls, work counters), the hot-leaf
//                                      table ranked by exclusive time, the
//                                      memory accounts, and the re-fold
//                                      check (exclusive times summing back
//                                      to the root's measured wall).
//                                      --collapse re-emits the tree as
//                                      collapsed-stack lines (flamegraph.pl
//                                      / speedscope input).
//   profile diff <baseline> <current>  diff/check specialized to profile
//                                      artifacts: watches the deterministic
//                                      leaves (counters, calls, peak bytes)
//                                      by default; --gate exits 1 on a
//                                      watched regression.
//   diff <baseline> <current>          regression table over the numeric
//                                      leaves of any two artifacts of the
//                                      same kind (percent deltas; "meta" is
//                                      ignored; one-side-only keys appear
//                                      as added/removed rows).
//   check <baseline> <current>         like diff, but exits 1 when a watched
//                                      leaf regressed past --threshold (or
//                                      vanished). CI's bench-regress gate.
//   events <events.jsonl>              filter and pretty-print the
//                                      structured event stream (component /
//                                      severity / time-range filters;
//                                      --json re-emits matching lines;
//                                      --follow tails a live artifact).
//   slo <events.jsonl>                 evaluate SLO specs (built-in set or
//                                      --spec file) over the event stream:
//                                      per-SLO compliance and error-budget
//                                      burn. --json emits the slo.json
//                                      form; --gate exits 1 when any SLO
//                                      blew its budget.
//   watch <obs-dir>                    periodically re-render a live
//                                      --obs-dir (event tail, SLO burn,
//                                      timeline lanes, incident verdicts)
//                                      — artifacts land via tmp+rename so
//                                      a mid-run read is never torn; each
//                                      artifact that is missing or
//                                      mid-checkpoint is reported as
//                                      `pending` while the rest render.
//   incidents <input>                  table of reconstructed incidents
//                                      (id, window, blame verdict, stage
//                                      budget, SLO burn) plus the
//                                      attribution score block when the
//                                      artifact carries one. <input> is an
//                                      obs-dir, an incidents.json, or an
//                                      events.jsonl (incidents are then
//                                      derived on the fly). --json
//                                      re-emits the incidents.json form.
//   explain <input> <slo|inc-id>       causal chain for one incident or
//                                      for every incident implicated in a
//                                      blown SLO: an ASCII stage bar
//                                      (detect / queue / migrate /
//                                      residual, dominant stage
//                                      highlighted) and the per-stage
//                                      latency budget. Exit 1 when the
//                                      named SLO blew its budget, 0 when
//                                      it held.
//
// Exit codes: 0 ok / no regression, 1 regression detected (check,
// slo --gate, and explain on a blown SLO), 2 usage error or
// missing/unreadable artifact (explain: also an unknown SLO/incident id or
// an input with no events to evaluate), 3 artifact found but its JSON is
// malformed. Scripts can tell "the bench never ran" (2) from "the bench
// wrote garbage" (3) without parsing stderr.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/json_reader.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "obs/critpath.h"
#include "obs/eventlog.h"
#include "obs/incident.h"
#include "obs/regress.h"
#include "recover/recovery.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

using namespace geomap;

namespace {

int usage(std::ostream& os, int code) {
  os << "Usage:\n"
        "  geomap-obsctl analyze <critpath.json> [--run N] [--top K] "
        "[--json]\n"
        "  geomap-obsctl timeline <timeline.json> [--series NAME] "
        "[--width N]\n"
        "                [--since T] [--until T]\n"
        "  geomap-obsctl profile <profile.json> [--top K] [--collapse]\n"
        "  geomap-obsctl profile diff <baseline.json> <current.json> "
        "[--gate]\n"
        "  geomap-obsctl diff <baseline.json> <current.json> [--all]\n"
        "  geomap-obsctl check <baseline.json> <current.json>\n"
        "  geomap-obsctl events <events.jsonl> [--component C] [--event E]\n"
        "                [--severity S] [--since T] [--until T] [--json]\n"
        "                [--follow] [--interval SEC] [--iterations N]\n"
        "  geomap-obsctl slo <events.jsonl> [--spec specs.json] [--json] "
        "[--gate]\n"
        "  geomap-obsctl watch <obs-dir> [--interval SEC] [--iterations N]\n"
        "                [--once] [--series NAME] [--width N] [--tail K] "
        "[--severity S]\n"
        "  geomap-obsctl wal <wal-dir> [--verify] [--json] [--tail K]\n"
        "  geomap-obsctl incidents <obs-dir|incidents.json|events.jsonl> "
        "[--json]\n"
        "  geomap-obsctl explain <obs-dir|incidents.json|events.jsonl>\n"
        "                <slo-name|incident-id> [--width N]\n"
        "\n"
        "Flags for profile:\n"
        "  --top K           hot leaves listed (default 10)\n"
        "  --collapse        emit collapsed-stack lines instead of the "
        "report\n"
        "  --gate            (profile diff) exit 1 when a watched leaf\n"
        "                    regressed past --threshold\n"
        "\n"
        "Flags for timeline:\n"
        "  --series NAME     metric whose per-link points feed the value "
        "lane\n"
        "                    (default link.latency_ratio)\n"
        "  --width N         columns in the rendered lanes (default 64)\n"
        "  --since/--until T render only [T_since, T_until] (virtual "
        "seconds)\n"
        "\n"
        "Flags for events:\n"
        "  --component C     only events from component C\n"
        "  --event E         only events named E\n"
        "  --severity S      minimum severity (debug|info|warn|error)\n"
        "  --since/--until T only events with T_since <= t <= T_until\n"
        "  --json            re-emit matching events as JSON lines\n"
        "  --follow          poll the file and print new events as they "
        "land\n"
        "  --interval SEC    follow/watch poll period (default 2)\n"
        "  --iterations N    stop after N polls (0 = forever)\n"
        "\n"
        "Flags for slo:\n"
        "  --spec FILE       JSON spec set ({\"slos\": [...]}; default: "
        "built-in)\n"
        "  --json            emit the slo.json artifact form\n"
        "  --gate            exit 1 when any SLO blew its error budget\n"
        "\n"
        "Flags for watch:\n"
        "  --once            render one tick and exit (same as "
        "--iterations 1)\n"
        "\n"
        "Flags for wal:\n"
        "  --verify          run the recovery invariant audit; exit 1 "
        "on any\n"
        "                    violation\n"
        "  --json            emit the summary as JSON instead of text\n"
        "  --tail K          show the last K records (default 0: none)\n"
        "\n"
        "Flags for incidents / explain:\n"
        "  --json            (incidents) re-emit the incidents.json form\n"
        "  --width N         (explain) columns in the stage bar "
        "(default 48)\n"
        "  An obs-dir input prefers its incidents.json and falls back to\n"
        "  deriving incidents from events.jsonl; deriving from a\n"
        "  multi-case stream that was exported after sorting is "
        "best-effort\n"
        "  (the per-case slices are no longer contiguous).\n"
        "\n"
        "Shared flags for diff/check:\n"
        "  --threshold PCT   relative change that fails check "
        "(default 10)\n"
        "  --watch PATTERNS  comma-separated dotted-key globs; only "
        "matching\n"
        "                    leaves can fail (default: "
        "runs.*.analysis.makespan_seconds\n"
        "                    and runs.*.analysis.components.*). Prefix a\n"
        "                    pattern with '-' for higher-is-better leaves\n"
        "                    (detection precision/recall): those fail on a\n"
        "                    decrease past the threshold instead\n"
        "\n"
        "Exit codes:\n"
        "  0   success / no regression\n"
        "  1   check / slo --gate: a watched leaf regressed past the "
        "threshold\n"
        "      (or vanished), an SLO blew its error budget, or explain "
        "was\n"
        "      pointed at a blown SLO, or wal --verify found a "
        "violation\n"
        "  2   usage error, or an artifact is missing / unreadable "
        "(explain:\n"
        "      also an unknown SLO / incident id, or no events to "
        "evaluate)\n"
        "  3   an artifact was found but its JSON is malformed (wal: "
        "the log\n"
        "      is corrupt beyond a torn tail)\n";
  return code;
}

/// Re-emit a parsed JSON value verbatim (used to pass an input artifact's
/// meta header through to derived outputs).
void write_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      w.null();
      break;
    case JsonValue::Kind::kBool:
      w.value(v.as_bool());
      break;
    case JsonValue::Kind::kNumber:
      w.value(v.as_number());
      break;
    case JsonValue::Kind::kString:
      w.value(v.as_string());
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& item : v.items()) write_value(w, item);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [key, child] : v.members()) {
        w.key(key);
        write_value(w, child);
      }
      w.end_object();
      break;
  }
}

struct AnalyzedRun {
  int run = 0;
  std::string label;
  Seconds origin = 0;
  obs::CriticalPath path;
};

std::vector<AnalyzedRun> analyze_runs(const JsonValue& doc, int only_run) {
  GEOMAP_CHECK_ARG(doc.is_object() && doc.find("runs") != nullptr,
                   "not a critpath artifact (no top-level 'runs' array)");
  std::vector<AnalyzedRun> out;
  for (const JsonValue& run : doc.at("runs").items()) {
    AnalyzedRun a;
    a.run = static_cast<int>(run.number_or("run", 0));
    if (only_run >= 0 && a.run != only_run) continue;
    a.label = run.string_or("label", "");
    a.origin = run.number_or("origin", 0);
    const JsonValue* events = run.find("events");
    GEOMAP_CHECK_ARG(events != nullptr,
                     "run " << a.run
                            << " has no 'events' array — this artifact is a "
                               "compact baseline; analyze the full export");
    a.path = obs::extract_critical_path(
        obs::critpath_events_from_json(*events), a.origin);
    out.push_back(std::move(a));
  }
  return out;
}

void print_components_row(Table::RowBuilder&& row, const std::string& name,
                          const obs::ComponentTotals& c, Seconds makespan) {
  const Seconds total = c.total();
  row.cell(name)
      .cell(total, 6)
      .cell(makespan > 0 ? 100.0 * total / makespan : 0.0, 1)
      .cell(c.alpha, 6)
      .cell(c.beta, 6)
      .cell(c.contention_stall, 6)
      .cell(c.fault_stall, 6)
      .cell(c.local, 6);
}

int cmd_analyze(const std::vector<std::string>& args) {
  std::string path;
  int top = 5;
  int only_run = -1;
  bool as_json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      as_json = true;
    } else if (args[i] == "--top" && i + 1 < args.size()) {
      top = std::stoi(args[++i]);
    } else if (args[i] == "--run" && i + 1 < args.size()) {
      only_run = std::stoi(args[++i]);
    } else if (path.empty() && args[i].rfind("--", 0) != 0) {
      path = args[i];
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (path.empty()) return usage(std::cerr, 2);

  const JsonValue doc = parse_json_file(path);
  const std::vector<AnalyzedRun> runs = analyze_runs(doc, only_run);

  if (as_json) {
    JsonWriter w(std::cout);
    w.begin_object();
    if (const JsonValue* meta = doc.find("meta")) {
      w.key("meta");
      write_value(w, *meta);
    }
    w.key("runs").begin_array();
    for (const AnalyzedRun& a : runs) {
      w.begin_object();
      w.field("run", a.run);
      w.field("label", a.label);
      w.field("origin", a.origin);
      obs::write_analysis_member(w, a.path);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::cout << "\n";
    return 0;
  }

  for (const AnalyzedRun& a : runs) {
    print_banner(std::cout,
                 "run " + std::to_string(a.run) + " (" + a.label + ")");
    std::cout << "makespan: " << format_double(a.path.makespan, 6)
              << " s   critical path: "
              << format_double(a.path.path_seconds, 6) << " s over "
              << a.path.steps.size() << " steps\n\n";

    Table components({"scope", "seconds", "% of makespan", "alpha", "beta",
                      "contention", "fault", "local"});
    print_components_row(components.row(), "total", a.path.totals,
                         a.path.makespan);
    for (const obs::PairAttribution& pa : a.path.by_pair) {
      const std::string name =
          pa.src_site < 0 ? "(local)"
                          : "site " + std::to_string(pa.src_site) + " -> " +
                                std::to_string(pa.dst_site);
      print_components_row(components.row(), name, pa.components,
                           a.path.makespan);
    }
    components.print(std::cout);
    std::cout << "\n";

    Table ranks({"rank", "seconds", "% of makespan", "alpha", "beta",
                 "contention", "fault", "local"});
    for (const obs::RankAttribution& ra : a.path.by_rank) {
      print_components_row(ranks.row(), "rank " + std::to_string(ra.rank),
                           ra.components, a.path.makespan);
    }
    ranks.print(std::cout);
    std::cout << "\n";

    if (top > 0 && !a.path.steps.empty()) {
      std::vector<const obs::CritPathStep*> slowest;
      for (const obs::CritPathStep& s : a.path.steps) slowest.push_back(&s);
      std::stable_sort(slowest.begin(), slowest.end(),
                       [](const obs::CritPathStep* x,
                          const obs::CritPathStep* y) {
                         return x->duration() > y->duration();
                       });
      if (slowest.size() > static_cast<std::size_t>(top))
        slowest.resize(static_cast<std::size_t>(top));
      Table steps({"kind", "rank", "peer", "link", "start", "end",
                   "seconds", "dominant"});
      for (const obs::CritPathStep* s : slowest) {
        const obs::ComponentTotals c = s->components();
        const char* dominant = "local";
        Seconds best = c.local;
        if (c.alpha > best) { best = c.alpha; dominant = "alpha"; }
        if (c.beta > best) { best = c.beta; dominant = "beta"; }
        if (c.contention_stall > best) {
          best = c.contention_stall;
          dominant = "contention";
        }
        if (c.fault_stall > best) { best = c.fault_stall; dominant = "fault"; }
        steps.row()
            .cell(s->event.kind)
            .cell(s->event.rank)
            .cell(s->event.peer)
            .cell(s->event.src_site < 0
                      ? std::string("-")
                      : std::to_string(s->event.src_site) + "->" +
                            std::to_string(s->event.dst_site))
            .cell(s->event.start, 6)
            .cell(s->event.end, 6)
            .cell(s->duration(), 6)
            .cell(dominant);
      }
      print_banner(std::cout, "slowest path steps");
      steps.print(std::cout);
      std::cout << "\n";
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// timeline

struct TimelineEpisode {
  int src = -1, dst = -1;
  std::string kind;  // "latency" | "down"
  Seconds onset = 0, detect = 0;
  Seconds end = std::numeric_limits<double>::infinity();  // inf = still open
  double severity = 0, confidence = 0;
};

struct TimelineTruth {
  int src = -1, dst = -1;
  Seconds start = 0;
  Seconds end = std::numeric_limits<double>::infinity();
  bool down = false;
};

/// "end": null in the artifact means the episode/window never closed.
Seconds end_or_inf(const JsonValue& v) {
  const JsonValue* end = v.find("end");
  return end != nullptr && end->is_number()
             ? end->as_number()
             : std::numeric_limits<double>::infinity();
}

/// Split a registry key "name{label}" into its parts; a bare key has an
/// empty label.
void split_series_key(const std::string& key, std::string* name,
                      std::string* label) {
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos || key.empty() || key.back() != '}') {
    *name = key;
    label->clear();
    return;
  }
  *name = key.substr(0, brace);
  *label = key.substr(brace + 1, key.size() - brace - 2);
}

std::string format_end(Seconds end) {
  return std::isfinite(end) ? format_double(end, 3) : std::string("open");
}

/// Render options shared by `timeline` and each `watch` tick. The
/// [since, until] range is an obs::TimeWindow so `timeline` and `events`
/// share one definition of the boundary semantics (inclusive on both
/// ends; since > until is the empty window).
struct TimelineOptions {
  std::string series_name = "link.latency_ratio";
  int width = 64;
  obs::TimeWindow window;
};

int render_timeline(const JsonValue& doc, const TimelineOptions& opt) {
  const std::string& series_name = opt.series_name;
  const int width = opt.width;
  const JsonValue* series = doc.find("series");
  GEOMAP_CHECK_ARG(series != nullptr && series->is_object(),
                   "not a timeline artifact (no top-level 'series' object)");

  // Per-link data for the lanes, keyed (tenant, src, dst). Links are the
  // union of what the chosen metric observed, what the detector flagged
  // and what the plan injected — a lane renders even when one side is
  // empty, which is exactly the false-negative / false-positive picture.
  // Tenant -1 is the shared substrate view (unprefixed labels); a
  // multi-tenant run's "t<k>:src->dst" series get their own lanes, so a
  // remap storm reads as per-tenant migrate lanes stacked under the
  // shared link telemetry.
  using Link = std::tuple<int, int, int>;
  std::map<Link, std::vector<obs::TimePoint>> points;
  std::map<Link, std::vector<obs::TimePoint>> migration_points;
  // Mapper progress heartbeats ("mapper.progress" series, any label) get
  // their own lane under the link blocks — completed fraction over time.
  std::map<std::string, std::vector<obs::TimePoint>> progress_points;
  std::map<Link, std::vector<const TimelineEpisode*>> lane_events;
  std::map<Link, std::vector<const TimelineTruth*>> lane_truth;

  Seconds t_min = std::numeric_limits<double>::infinity();
  Seconds t_max = -std::numeric_limits<double>::infinity();
  const auto widen = [&](Seconds t) {
    if (!std::isfinite(t)) return;
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
  };

  Table summary({"series", "points", "total", "dropped", "w.count", "w.mean",
                 "w.max", "w.rate", "w.ewma"});
  for (const auto& [key, s] : series->members()) {
    std::string name, label;
    split_series_key(key, &name, &label);
    int tenant = -1, src = -1, dst = -1;
    bool is_link = obs::parse_tenant_link_label(label, &tenant, &src, &dst);
    if (!is_link) {
      tenant = -1;
      is_link = obs::parse_link_label(label, &src, &dst);
    }
    const JsonValue* pts = s.find("points");
    std::size_t retained = 0;
    if (pts != nullptr && pts->is_array()) {
      retained = pts->items().size();
      for (const JsonValue& p : pts->items()) {
        if (!p.is_array() || p.items().size() != 2) continue;
        const Seconds t = p.items()[0].as_number();
        const double v = p.items()[1].as_number();
        if (!opt.window.contains(t)) continue;
        if (is_link && name == series_name)
          points[{tenant, src, dst}].push_back({t, v});
        if (is_link && name == "migration.bytes")
          migration_points[{tenant, src, dst}].push_back({t, v});
        if (name == "mapper.progress") progress_points[key].push_back({t, v});
        widen(t);
      }
    }
    auto row = summary.row();
    row.cell(key).cell(retained).cell(s.number_or("total", 0), 0)
        .cell(s.number_or("dropped", 0), 0);
    if (const JsonValue* w = s.find("last_window")) {
      row.cell(w->number_or("count", 0), 0)
          .cell(w->number_or("mean", 0), 4)
          .cell(w->number_or("max", 0), 4)
          .cell(w->number_or("rate", 0), 3)
          .cell(w->number_or("ewma", 0), 4);
    } else {
      row.cell("-").cell("-").cell("-").cell("-").cell("-");
    }
  }

  // Episodes and truth windows keep their true extents but only render
  // when they intersect [since, until]; widen() sees the clamped values
  // so the axis never stretches past the requested range.
  const auto clamp = [&](Seconds t) { return opt.window.clamp(t); };
  std::vector<TimelineEpisode> detections;
  if (const JsonValue* dets = doc.find("detections")) {
    for (const JsonValue& d : dets->items()) {
      TimelineEpisode e;
      e.src = static_cast<int>(d.number_or("src", -1));
      e.dst = static_cast<int>(d.number_or("dst", -1));
      e.kind = d.string_or("kind", "latency");
      e.onset = d.number_or("onset", 0);
      e.detect = d.number_or("detect", 0);
      e.end = end_or_inf(d);
      e.severity = d.number_or("severity", 0);
      e.confidence = d.number_or("confidence", 0);
      if (!opt.window.intersects(e.onset, e.end)) continue;
      widen(clamp(e.onset));
      widen(clamp(e.detect));
      widen(clamp(e.end));
      detections.push_back(e);
    }
  }
  std::vector<TimelineTruth> truth;
  if (const JsonValue* tw = doc.find("truth")) {
    for (const JsonValue& t : tw->items()) {
      TimelineTruth w;
      w.src = static_cast<int>(t.number_or("src", -1));
      w.dst = static_cast<int>(t.number_or("dst", -1));
      w.start = t.number_or("start", 0);
      w.end = end_or_inf(t);
      const JsonValue* down = t.find("down");
      w.down = down != nullptr && down->is_bool() && down->as_bool();
      if (!opt.window.intersects(w.start, w.end)) continue;
      widen(clamp(w.start));
      widen(clamp(w.end));
      truth.push_back(w);
    }
  }
  for (const TimelineEpisode& e : detections)
    lane_events[{-1, e.src, e.dst}].push_back(&e);
  for (const TimelineTruth& w : truth)
    lane_truth[{-1, w.src, w.dst}].push_back(&w);

  print_banner(std::cout, "series (window over trailing " +
                              format_double(doc.number_or("window_seconds", 0),
                                            1) +
                              " s)");
  summary.print(std::cout);
  std::cout << "\n";

  if (std::isfinite(t_min) && t_max > t_min) {
    // One lane block per link on a shared time axis. The value lane is a
    // per-bucket-mean sparkline of the chosen metric; the detect lane
    // paints open episodes ('~' latency, 'X' down); the truth lane paints
    // the injected windows ('=' degradation, '#' outage). A detect lane
    // that lags or overhangs its truth lane *is* the detector's latency
    // and false-alarm picture.
    std::map<Link, bool> links;
    for (const auto& [link, unused] : points) links[link] = true;
    for (const auto& [link, unused] : migration_points) links[link] = true;
    for (const auto& [link, unused] : lane_events) links[link] = true;
    for (const auto& [link, unused] : lane_truth) links[link] = true;

    const Seconds span = t_max - t_min;
    const auto column = [&](Seconds t) {
      const int c = static_cast<int>((t - t_min) / span * width);
      return std::min(width - 1, std::max(0, c));
    };
    // Nine levels, none of them a space: a bucket with data is always
    // visibly distinct from a bucket with none.
    static const char kLevels[] = ".:-=+*#%@";

    print_banner(std::cout, "lanes  t in [" + format_double(t_min, 3) + ", " +
                                format_double(t_max, 3) + "] s  (" +
                                series_name +
                                " | detect: ~ latency, X down | truth: = "
                                "degraded, # outage | migrate: state bytes)");
    for (const auto& [link, unused] : links) {
      const auto& [lane_tenant, lane_src, lane_dst] = link;
      if (lane_tenant >= 0) std::cout << "t" << lane_tenant << " ";
      std::cout << "link " << lane_src << "->" << lane_dst << "\n";

      const auto pit = points.find(link);
      if (pit != points.end() && !pit->second.empty()) {
        std::vector<double> sum(static_cast<std::size_t>(width), 0);
        std::vector<int> count(static_cast<std::size_t>(width), 0);
        double vmin = std::numeric_limits<double>::infinity();
        double vmax = -std::numeric_limits<double>::infinity();
        for (const obs::TimePoint& p : pit->second) {
          const auto c = static_cast<std::size_t>(column(p.t));
          sum[c] += p.value;
          count[c] += 1;
          vmin = std::min(vmin, p.value);
          vmax = std::max(vmax, p.value);
        }
        std::string lane(static_cast<std::size_t>(width), ' ');
        for (std::size_t c = 0; c < lane.size(); ++c) {
          if (count[c] == 0) continue;
          const double mean = sum[c] / count[c];
          const double norm =
              vmax > vmin ? (mean - vmin) / (vmax - vmin) : 0.5;
          const auto level = static_cast<std::size_t>(norm * 8.0 + 0.5);
          lane[c] = kLevels[std::min<std::size_t>(8, level)];
        }
        std::cout << "  value  |" << lane << "|  min "
                  << format_double(vmin, 3) << "  max "
                  << format_double(vmax, 3) << "\n";
      }

      const auto eit = lane_events.find(link);
      std::string detect_lane(static_cast<std::size_t>(width), ' ');
      if (eit != lane_events.end()) {
        for (const TimelineEpisode* e : eit->second) {
          const int from = column(e->onset);
          const int to = column(std::isfinite(e->end) ? e->end : t_max);
          const char mark = e->kind == "down" ? 'X' : '~';
          for (int c = from; c <= to; ++c)
            detect_lane[static_cast<std::size_t>(c)] = mark;
        }
      }
      std::cout << "  detect |" << detect_lane << "|\n";

      const auto tit = lane_truth.find(link);
      std::string truth_lane(static_cast<std::size_t>(width), ' ');
      if (tit != lane_truth.end()) {
        for (const TimelineTruth* w : tit->second) {
          const int from = column(w->start);
          const int to = column(std::isfinite(w->end) ? w->end : t_max);
          const char mark = w->down ? '#' : '=';
          for (int c = from; c <= to; ++c)
            truth_lane[static_cast<std::size_t>(c)] = mark;
        }
      }
      std::cout << "  truth  |" << truth_lane << "|\n";

      // Migration lane: per-bucket *sum* of migration.bytes chunk
      // completions (bytes are additive, unlike the mean-bucketed metric
      // lane), scaled to the busiest bucket. Read against the truth lane
      // above it, this shows whether state copies dodged the injected
      // fault windows or ploughed straight through them.
      const auto mit = migration_points.find(link);
      if (mit != migration_points.end() && !mit->second.empty()) {
        std::vector<double> bytes(static_cast<std::size_t>(width), 0);
        double total = 0;
        for (const obs::TimePoint& p : mit->second) {
          bytes[static_cast<std::size_t>(column(p.t))] += p.value;
          total += p.value;
        }
        const double peak = *std::max_element(bytes.begin(), bytes.end());
        std::string lane(static_cast<std::size_t>(width), ' ');
        for (std::size_t c = 0; c < lane.size(); ++c) {
          if (bytes[c] <= 0) continue;
          const double norm = peak > 0 ? bytes[c] / peak : 0.0;
          const auto level = static_cast<std::size_t>(norm * 8.0 + 0.5);
          lane[c] = kLevels[std::min<std::size_t>(8, level)];
        }
        std::cout << "  migrate|" << lane << "|  total "
                  << format_double(total / (1024.0 * 1024.0), 2) << " MiB in "
                  << mit->second.size() << " chunks\n";
      }
    }

    // Mapper progress lanes: completed fraction (0..1) per bucket, the
    // bucket's latest point winning (progress is monotone). A long order
    // search reads as the ramp from '.' to '@'.
    for (const auto& [key, pts] : progress_points) {
      std::vector<double> latest_t(static_cast<std::size_t>(width), -1);
      std::vector<double> value(static_cast<std::size_t>(width), 0);
      for (const obs::TimePoint& p : pts) {
        const auto c = static_cast<std::size_t>(column(p.t));
        if (p.t >= latest_t[c]) {
          latest_t[c] = p.t;
          value[c] = p.value;
        }
      }
      std::string lane(static_cast<std::size_t>(width), ' ');
      for (std::size_t c = 0; c < lane.size(); ++c) {
        if (latest_t[c] < 0) continue;
        const double norm = std::min(1.0, std::max(0.0, value[c]));
        const auto level = static_cast<std::size_t>(norm * 8.0 + 0.5);
        lane[c] = kLevels[std::min<std::size_t>(8, level)];
      }
      const double last = pts.empty() ? 0.0 : pts.back().value;
      std::cout << key << "\n  progres|" << lane << "|  "
                << pts.size() << " heartbeats, last "
                << format_double(100.0 * last, 1) << " %\n";
    }
    std::cout << "\n";
  }

  if (!detections.empty()) {
    Table table({"link", "kind", "onset", "detect", "end", "severity",
                 "confidence"});
    for (const TimelineEpisode& e : detections) {
      table.row()
          .cell(std::to_string(e.src) + "->" + std::to_string(e.dst))
          .cell(e.kind)
          .cell(e.onset, 3)
          .cell(e.detect, 3)
          .cell(format_end(e.end))
          .cell(e.severity, 2)
          .cell(e.confidence, 2);
    }
    print_banner(std::cout, "detections");
    table.print(std::cout);
    std::cout << "\n";
  }
  if (!truth.empty()) {
    Table table({"link", "start", "end", "kind"});
    for (const TimelineTruth& w : truth) {
      table.row()
          .cell(std::to_string(w.src) + "->" + std::to_string(w.dst))
          .cell(w.start, 3)
          .cell(format_end(w.end))
          .cell(w.down ? "outage" : "degraded");
    }
    print_banner(std::cout, "ground-truth fault windows");
    table.print(std::cout);
    std::cout << "\n";
  }
  if (const JsonValue* score = doc.find("score")) {
    print_banner(std::cout, "detection score");
    std::cout << "precision: " << format_double(score->number_or("precision", 0), 3)
              << "  recall: " << format_double(score->number_or("recall", 0), 3)
              << "  mean detection latency: "
              << format_double(score->number_or("mean_detection_latency", 0), 3)
              << " s\n"
              << "events: " << score->number_or("true_positive_events", 0)
              << " true positive, "
              << score->number_or("false_positive_events", 0)
              << " false positive; windows: "
              << score->number_or("detected_windows", 0) << " detected, "
              << score->number_or("missed_windows", 0) << " missed\n";
  }
  return 0;
}

int cmd_timeline(const std::vector<std::string>& args) {
  std::string path;
  TimelineOptions opt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--series" && i + 1 < args.size()) {
      opt.series_name = args[++i];
    } else if (args[i] == "--width" && i + 1 < args.size()) {
      opt.width = std::stoi(args[++i]);
    } else if (args[i] == "--since" && i + 1 < args.size()) {
      opt.window.since = std::stod(args[++i]);
    } else if (args[i] == "--until" && i + 1 < args.size()) {
      opt.window.until = std::stod(args[++i]);
    } else if (path.empty() && args[i].rfind("--", 0) != 0) {
      path = args[i];
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (path.empty() || opt.width < 8 || opt.window.empty())
    return usage(std::cerr, 2);
  return render_timeline(parse_json_file(path), opt);
}

// ---------------------------------------------------------------------------
// events / slo / watch

std::vector<obs::Event> load_events(const std::string& path) {
  std::ifstream is(path);
  GEOMAP_CHECK_MSG(is.good(), "cannot open " << path);
  return obs::read_events_jsonl(is);
}

struct EventFilter {
  std::string component;  // empty = any
  std::string name;       // empty = any
  obs::EventSeverity min_severity = obs::EventSeverity::kDebug;
  // Shares obs::TimeWindow with `timeline`: inclusive on both ends.
  obs::TimeWindow window;

  bool matches(const obs::Event& e) const {
    if (!component.empty() && e.component != component) return false;
    if (!name.empty() && e.name != name) return false;
    if (static_cast<int>(e.severity) < static_cast<int>(min_severity))
      return false;
    return window.contains(e.t);
  }
};

std::string format_event_fields(const obs::Event& e) {
  std::string out;
  for (const obs::EventField& f : e.fields) {
    if (!out.empty()) out += "  ";
    out += f.key + "=";
    switch (f.kind) {
      case obs::EventField::Kind::kInt:
        out += std::to_string(f.int_value);
        break;
      case obs::EventField::Kind::kDouble:
        out += format_double(f.double_value, 6);
        break;
      case obs::EventField::Kind::kString:
        out += f.string_value;
        break;
      case obs::EventField::Kind::kBool:
        out += f.bool_value ? "true" : "false";
        break;
    }
  }
  return out;
}

void print_event_line(const obs::Event& e) {
  std::cout << "#" << e.seq << "  t=" << format_double(e.t, 3) << "  ["
            << obs::to_string(e.severity) << "]  " << e.component << "/"
            << e.name << "  " << format_event_fields(e) << "\n";
}

int cmd_events(const std::vector<std::string>& args) {
  std::string path;
  EventFilter filter;
  bool as_json = false;
  bool follow = false;
  double interval = 2.0;
  int iterations = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--component" && i + 1 < args.size()) {
      filter.component = args[++i];
    } else if (args[i] == "--event" && i + 1 < args.size()) {
      filter.name = args[++i];
    } else if (args[i] == "--severity" && i + 1 < args.size()) {
      filter.min_severity = obs::parse_event_severity(args[++i]);
    } else if (args[i] == "--since" && i + 1 < args.size()) {
      filter.window.since = std::stod(args[++i]);
    } else if (args[i] == "--until" && i + 1 < args.size()) {
      filter.window.until = std::stod(args[++i]);
    } else if (args[i] == "--json") {
      as_json = true;
    } else if (args[i] == "--follow") {
      follow = true;
    } else if (args[i] == "--interval" && i + 1 < args.size()) {
      interval = std::stod(args[++i]);
    } else if (args[i] == "--iterations" && i + 1 < args.size()) {
      iterations = std::stoi(args[++i]);
    } else if (path.empty() && args[i].rfind("--", 0) != 0) {
      path = args[i];
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (path.empty() || filter.window.empty() || interval <= 0)
    return usage(std::cerr, 2);

  if (!follow) {
    const std::vector<obs::Event> events = load_events(path);
    std::size_t matched = 0;
    for (const obs::Event& e : events) {
      if (!filter.matches(e)) continue;
      ++matched;
      if (as_json) {
        std::cout << obs::event_to_json(e) << "\n";
      } else {
        print_event_line(e);
      }
    }
    if (!as_json) {
      std::cout << matched << " / " << events.size() << " events matched\n";
    }
    return 0;
  }

  // Follow mode: the exporter republishes the whole artifact atomically
  // (tmp + rename), so each poll re-reads it and the cursor keeps only
  // events past the last sequence number seen. A missing or half-born
  // file just means "nothing yet".
  obs::FollowCursor cursor;
  for (int tick = 1;; ++tick) {
    try {
      for (const obs::Event& e : cursor.take_new(load_events(path))) {
        if (!filter.matches(e)) continue;
        if (as_json) {
          std::cout << obs::event_to_json(e) << "\n";
        } else {
          print_event_line(e);
        }
      }
      std::cout.flush();
    } catch (const std::exception&) {
      // Not written yet (or mid-rename): keep polling.
    }
    if (iterations > 0 && tick >= iterations) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long long>(interval * 1000)));
  }
  return 0;
}

int cmd_slo(const std::vector<std::string>& args) {
  std::string path;
  std::string spec_path;
  bool as_json = false;
  bool gate = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--spec" && i + 1 < args.size()) {
      spec_path = args[++i];
    } else if (args[i] == "--json") {
      as_json = true;
    } else if (args[i] == "--gate") {
      gate = true;
    } else if (path.empty() && args[i].rfind("--", 0) != 0) {
      path = args[i];
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (path.empty()) return usage(std::cerr, 2);

  const std::vector<obs::Event> events = load_events(path);
  const std::vector<obs::SloSpec> specs =
      spec_path.empty() ? obs::default_slo_specs()
                        : obs::slo_specs_from_json(parse_json_file(spec_path));
  const obs::SloReport report = obs::evaluate_slos(events, specs);

  if (as_json) {
    obs::write_slo_json(std::cout, report);
    std::cout << "\n";
  } else {
    Table table({"slo", "objective", "threshold", "events", "good", "bad",
                 "compliance", "burn", "worst", "status"});
    for (const obs::SloResult& r : report.slos) {
      table.row()
          .cell(r.spec.name)
          .cell(r.spec.objective, 3)
          .cell(r.spec.threshold, 3)
          .cell(static_cast<long long>(r.events))
          .cell(static_cast<long long>(r.good))
          .cell(static_cast<long long>(r.bad))
          .cell(r.compliance, 4)
          .cell(r.burn, 3)
          .cell(r.worst, 3)
          .cell(r.ok ? "ok" : "BUDGET BLOWN");
    }
    table.print(std::cout);
    std::cout << (report.ok ? "all SLOs within budget"
                            : "error budget exceeded")
              << " (" << events.size() << " events evaluated)\n";
  }
  if (gate) return report.ok ? 0 : 1;
  return 0;
}

// ---------------------------------------------------------------------------
// incidents / explain

/// Resolved input for incidents/explain. The incident set always loads;
/// the event stream rides along when the input carries one (an SLO
/// target needs events to evaluate compliance).
struct IncidentInput {
  obs::IncidentsArtifact artifact;
  std::vector<obs::Event> events;
  bool has_events = false;
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// An obs-dir prefers its exported incidents.json (which carries the
/// attribution score) and falls back to deriving incidents from
/// events.jsonl; a bare .jsonl always derives. Deriving re-runs
/// build_incidents, so a multi-case stream whose per-case slices are no
/// longer contiguous is best-effort — the export is authoritative.
IncidentInput load_incident_input(const std::string& path) {
  IncidentInput in;
  if (std::filesystem::is_directory(path)) {
    const std::string ev = path + "/events.jsonl";
    if (std::filesystem::exists(ev)) {
      in.events = load_events(ev);
      in.has_events = true;
    }
    const std::string inc = path + "/incidents.json";
    if (std::filesystem::exists(inc)) {
      in.artifact = obs::incidents_from_json(parse_json_file(inc));
    } else if (in.has_events) {
      in.artifact.incidents = obs::build_incidents(in.events);
    } else {
      GEOMAP_CHECK_MSG(false, "no incidents.json or events.jsonl in "
                                  << path);
    }
    return in;
  }
  if (ends_with(path, ".jsonl")) {
    in.events = load_events(path);
    in.has_events = true;
    in.artifact.incidents = obs::build_incidents(in.events);
    return in;
  }
  in.artifact = obs::incidents_from_json(parse_json_file(path));
  return in;
}

std::string format_blame_site(const obs::BlameVerdict& b) {
  return b.site < 0 ? std::string("-") : "site " + std::to_string(b.site);
}

std::string format_blame_link(const obs::BlameVerdict& b) {
  return b.link_src < 0 ? std::string("-")
                        : std::to_string(b.link_src) + "->" +
                              std::to_string(b.link_dst);
}

void print_attribution(const obs::AttributionTotals& t) {
  print_banner(std::cout, "attribution vs seeded truth");
  std::cout << "precision: " << format_double(t.precision(), 3)
            << " (" << t.correctly_blamed << "/" << t.blamed
            << " verdicts corroborated)  recall: "
            << format_double(t.recall(), 3) << " (" << t.attributed << "/"
            << t.episodes << " episodes attributed)\n"
            << "mean onset error: "
            << format_double(t.mean_onset_error(), 3) << " s over "
            << t.onset_error_samples << " samples; " << t.cases
            << " cases, " << t.incidents << " incidents\n";
}

int cmd_incidents(const std::vector<std::string>& args) {
  std::string path;
  bool as_json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      as_json = true;
    } else if (path.empty() && args[i].rfind("--", 0) != 0) {
      path = args[i];
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (path.empty()) return usage(std::cerr, 2);

  const IncidentInput in = load_incident_input(path);
  if (as_json) {
    obs::write_incidents_json(
        std::cout, in.artifact.incidents,
        in.artifact.has_totals ? &in.artifact.totals : nullptr);
    std::cout << "\n";
    return 0;
  }

  Table table({"id", "seed", "start", "end", "dur s", "blame", "link",
               "tenant", "conf", "dominant", "slo burn", "violated"});
  for (const obs::Incident& inc : in.artifact.incidents) {
    std::string violated;
    for (const std::string& s : inc.violated_slos) {
      if (!violated.empty()) violated += ",";
      violated += s;
    }
    table.row()
        .cell(inc.id)
        .cell(inc.has_case_seed ? std::to_string(inc.case_seed)
                                : std::string("-"))
        .cell(inc.start, 3)
        .cell(inc.end, 3)
        .cell(inc.duration(), 3)
        .cell(format_blame_site(inc.blame))
        .cell(format_blame_link(inc.blame))
        .cell(inc.blame.tenant < 0 ? std::string("-")
                                   : std::to_string(inc.blame.tenant))
        .cell(inc.blame.confidence, 2)
        .cell(inc.blame.dominant_stage)
        .cell(inc.slo_burn, 3)
        .cell(violated);
  }
  print_banner(std::cout, std::to_string(in.artifact.incidents.size()) +
                              " incidents");
  table.print(std::cout);
  std::cout << "\n";
  if (in.artifact.has_totals) print_attribution(in.artifact.totals);
  return 0;
}

/// One incident's causal chain: a proportional stage bar (detect 'd',
/// queue 'q', migrate 'm', residual 'r'; the dominant stage upper-cased)
/// over the incident's [start, end], then the per-stage latency budget.
/// The stages telescope, so the budget rows re-fold to the duration.
void render_incident_chain(const obs::Incident& inc, int width) {
  std::cout << inc.id;
  if (inc.has_case_seed) std::cout << "  seed " << inc.case_seed;
  std::cout << "  t in [" << format_double(inc.start, 3) << ", "
            << format_double(inc.end, 3) << "]  ("
            << format_double(inc.duration(), 3) << " s)\n";
  std::cout << "  blame: " << format_blame_site(inc.blame);
  if (inc.blame.link_src >= 0)
    std::cout << "  link " << format_blame_link(inc.blame);
  if (inc.blame.tenant >= 0) std::cout << "  tenant " << inc.blame.tenant;
  std::cout << "  confidence " << format_double(inc.blame.confidence, 2)
            << "  dominant " << inc.blame.dominant_stage << "\n";

  const Seconds dur = inc.duration();
  if (dur > 0) {
    std::string bar(static_cast<std::size_t>(width), ' ');
    for (std::size_t c = 0; c < bar.size(); ++c) {
      const Seconds t =
          inc.start + (static_cast<double>(c) + 0.5) / width * dur;
      for (const obs::StageBudget& s : inc.stages) {
        if (t < s.start || t > s.end || s.seconds() <= 0) continue;
        char mark = s.name.empty() ? '?' : s.name[0];
        if (s.name == inc.blame.dominant_stage)
          mark = static_cast<char>(std::toupper(mark));
        bar[c] = mark;
        break;
      }
    }
    std::cout << "  |" << bar << "|\n";
  } else {
    std::cout << "  (zero-length incident: every stage collapsed onto "
                 "one instant)\n";
  }

  Table stages({"stage", "start", "end", "seconds", "share %", "metric",
                "events"});
  for (const obs::StageBudget& s : inc.stages) {
    const bool dominant = s.name == inc.blame.dominant_stage;
    stages.row()
        .cell(dominant ? s.name + " *" : s.name)
        .cell(s.start, 3)
        .cell(s.end, 3)
        .cell(s.seconds(), 3)
        .cell(dur > 0 ? 100.0 * s.seconds() / dur : 0.0, 1)
        .cell(s.metric, 3)
        .cell(static_cast<long long>(s.events));
  }
  stages.print(std::cout);
  std::cout << "  counts: " << inc.counts.onsets << " onsets, "
            << inc.counts.grants << " grants, " << inc.counts.requeues
            << " requeues, " << inc.counts.give_ups << " give-ups, "
            << inc.counts.commits << " commits, " << inc.counts.rollbacks
            << " rollbacks;  slo burn "
            << format_double(inc.slo_burn, 3) << "\n\n";
}

int cmd_explain(const std::vector<std::string>& args) {
  std::string path;
  std::string target;
  int width = 48;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--width" && i + 1 < args.size()) {
      width = std::stoi(args[++i]);
    } else if (args[i].rfind("--", 0) != 0) {
      if (path.empty()) {
        path = args[i];
      } else if (target.empty()) {
        target = args[i];
      } else {
        return usage(std::cerr, 2);
      }
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (path.empty() || target.empty() || width < 8)
    return usage(std::cerr, 2);

  const IncidentInput in = load_incident_input(path);

  // An incident id names exactly one chain.
  if (target.rfind("inc-", 0) == 0) {
    for (const obs::Incident& inc : in.artifact.incidents) {
      if (inc.id != target) continue;
      render_incident_chain(inc, width);
      return 0;
    }
    std::cerr << "geomap-obsctl: no incident '" << target << "' among "
              << in.artifact.incidents.size() << " incidents\n";
    return 2;
  }

  // An SLO name renders the chain of every incident implicated in it.
  // Compliance is evaluated over the event stream, so an incidents.json
  // alone cannot answer "did it blow?".
  if (!in.has_events) {
    std::cerr << "geomap-obsctl: explaining SLO '" << target
              << "' needs an event stream (pass an obs-dir or "
                 "events.jsonl)\n";
    return 2;
  }
  const obs::SloReport report =
      obs::evaluate_slos(in.events, obs::default_slo_specs());
  const obs::SloResult* result = nullptr;
  for (const obs::SloResult& r : report.slos) {
    if (r.spec.name == target) result = &r;
  }
  if (result == nullptr) {
    std::cerr << "geomap-obsctl: unknown SLO '" << target << "' (have:";
    for (const obs::SloResult& r : report.slos)
      std::cerr << " " << r.spec.name;
    std::cerr << ")\n";
    return 2;
  }

  print_banner(std::cout, "slo " + target);
  std::cout << "compliance " << format_double(result->compliance, 4)
            << " vs objective " << format_double(result->spec.objective, 3)
            << "  burn " << format_double(result->burn, 3) << "  "
            << (result->ok ? "ok" : "BUDGET BLOWN") << "\n\n";

  std::size_t implicated = 0;
  for (const obs::Incident& inc : in.artifact.incidents) {
    if (std::find(inc.violated_slos.begin(), inc.violated_slos.end(),
                  target) == inc.violated_slos.end())
      continue;
    ++implicated;
    render_incident_chain(inc, width);
  }
  if (implicated == 0) {
    std::cout << (result->ok
                      ? "no incident implicates this SLO (it held)\n"
                      : "no incident implicates this SLO — the incident "
                        "set may be stale relative to the events\n");
  }
  return result->ok ? 0 : 1;
}

int cmd_watch(const std::vector<std::string>& args) {
  std::string dir;
  double interval = 2.0;
  int iterations = 0;
  int tail = 8;
  // Same severity vocabulary and parser as `events --severity`.
  obs::EventSeverity min_severity = obs::EventSeverity::kDebug;
  TimelineOptions tl;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--interval" && i + 1 < args.size()) {
      interval = std::stod(args[++i]);
    } else if (args[i] == "--iterations" && i + 1 < args.size()) {
      iterations = std::stoi(args[++i]);
    } else if (args[i] == "--once") {
      // One render, no sleep — the form CI and the recovery quickstart
      // use to snapshot a directory without tailing it.
      iterations = 1;
    } else if (args[i] == "--series" && i + 1 < args.size()) {
      tl.series_name = args[++i];
    } else if (args[i] == "--width" && i + 1 < args.size()) {
      tl.width = std::stoi(args[++i]);
    } else if (args[i] == "--tail" && i + 1 < args.size()) {
      tail = std::stoi(args[++i]);
    } else if (args[i] == "--severity" && i + 1 < args.size()) {
      min_severity = obs::parse_event_severity(args[++i]);
    } else if (dir.empty() && args[i].rfind("--", 0) != 0) {
      dir = args[i];
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (dir.empty() || interval <= 0 || tl.width < 8 || tail < 0)
    return usage(std::cerr, 2);

  // Every tick re-reads whatever artifacts exist right now. The bench
  // side publishes via tmp + rename, so a read is all-or-nothing; each
  // artifact that is missing (or mid-checkpoint) renders as `pending`
  // on its own — one absent file never blanks the sections the other
  // artifacts can still fill.
  for (int tick = 1;; ++tick) {
    print_banner(std::cout, "watch " + dir + "  tick " +
                                std::to_string(tick));
    try {
      const std::vector<obs::Event> events =
          load_events(dir + "/events.jsonl");
      int by_severity[4] = {0, 0, 0, 0};
      for (const obs::Event& e : events)
        by_severity[static_cast<int>(e.severity)] += 1;
      std::cout << "events: " << events.size() << " retained ("
                << by_severity[3] << " error, " << by_severity[2]
                << " warn, " << by_severity[1] << " info, " << by_severity[0]
                << " debug)\n";
      std::vector<const obs::Event*> shown;
      for (const obs::Event& e : events) {
        if (static_cast<int>(e.severity) >= static_cast<int>(min_severity))
          shown.push_back(&e);
      }
      const std::size_t from =
          shown.size() > static_cast<std::size_t>(tail)
              ? shown.size() - static_cast<std::size_t>(tail)
              : 0;
      for (std::size_t i = from; i < shown.size(); ++i)
        print_event_line(*shown[i]);

      const obs::SloReport slo =
          obs::evaluate_slos(events, obs::default_slo_specs());
      std::cout << "slo:";
      for (const obs::SloResult& r : slo.slos) {
        std::cout << "  " << r.spec.name << " burn="
                  << format_double(r.burn, 2) << (r.ok ? "" : " BLOWN");
      }
      std::cout << "\n";
    } catch (const std::exception& e) {
      std::cout << "events.jsonl: pending (" << e.what() << ")\n";
    }
    try {
      std::ifstream prom(dir + "/metrics.prom");
      if (prom.good()) {
        int families = 0;
        std::string line;
        while (std::getline(prom, line))
          if (line.rfind("# TYPE ", 0) == 0) ++families;
        std::cout << "metrics.prom: " << families << " metric families\n";
      } else {
        std::cout << "metrics.prom: pending\n";
      }
    } catch (const std::exception&) {
      std::cout << "metrics.prom: pending\n";
    }
    try {
      render_timeline(parse_json_file(dir + "/timeline.json"), tl);
    } catch (const std::exception&) {
      std::cout << "timeline.json: pending\n";
    }
    try {
      const obs::IncidentsArtifact inc =
          obs::incidents_from_json(parse_json_file(dir + "/incidents.json"));
      std::cout << "incidents: " << inc.incidents.size();
      if (inc.has_totals) {
        std::cout << "  (precision "
                  << format_double(inc.totals.precision(), 3) << ", recall "
                  << format_double(inc.totals.recall(), 3) << ")";
      }
      std::cout << "\n";
      const std::size_t from =
          inc.incidents.size() > static_cast<std::size_t>(tail)
              ? inc.incidents.size() - static_cast<std::size_t>(tail)
              : 0;
      for (std::size_t i = from; i < inc.incidents.size(); ++i) {
        const obs::Incident& x = inc.incidents[i];
        std::cout << "  " << x.id << "  [" << format_double(x.start, 3)
                  << ", " << format_double(x.end, 3) << "]  "
                  << format_blame_site(x.blame) << "  dominant "
                  << x.blame.dominant_stage << "\n";
      }
    } catch (const std::exception&) {
      std::cout << "incidents.json: pending\n";
    }
    std::cout.flush();
    if (iterations > 0 && tick >= iterations) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long long>(interval * 1000)));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// wal

int cmd_wal(const std::vector<std::string>& args) {
  std::string dir;
  bool verify = false;
  bool json = false;
  int tail = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--verify") {
      verify = true;
    } else if (args[i] == "--json") {
      json = true;
    } else if (args[i] == "--tail" && i + 1 < args.size()) {
      tail = std::stoi(args[++i]);
    } else if (dir.empty() && args[i].rfind("--", 0) != 0) {
      dir = args[i];
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (dir.empty() || tail < 0) return usage(std::cerr, 2);

  recover::WalRecovery rec;
  recover::RecoveredControlPlane rcp;
  try {
    rec = recover::read_wal(dir);
    rcp = recover::replay_wal(rec.records);
  } catch (const recover::WalCorrupt& e) {
    // Same meaning as malformed JSON elsewhere: the artifact exists but
    // cannot be trusted.
    std::cerr << "geomap-obsctl: " << e.what() << "\n";
    return 3;
  }

  std::map<std::string, int> counts;
  for (const recover::WalRecord& r : rec.records)
    counts[recover::to_string(r.type)] += 1;
  const std::vector<std::string> violations =
      verify ? recover::check_recovery_invariants(rec.records)
             : std::vector<std::string>{};

  if (json) {
    JsonWriter w(std::cout);
    w.begin_object();
    w.field("dir", dir);
    w.field("records", static_cast<double>(rec.records.size()));
    w.field("segments_read", rec.segments_read);
    w.field("dropped_torn", rec.dropped_torn);
    w.field("next_lsn", static_cast<double>(rec.next_lsn));
    w.field("has_run", rcp.has_run);
    if (rcp.has_run) {
      w.key("run").begin_object();
      w.field("seed", static_cast<double>(rcp.run.seed));
      w.field("tenants", rcp.run.tenants);
      w.field("sites", rcp.run.sites);
      w.field("policy", rcp.run.policy);
      w.end_object();
    }
    w.field("run_complete", rcp.run_complete);
    w.field("recoveries", rcp.recoveries);
    w.field("grants", static_cast<double>(rcp.grants.size()));
    w.field("has_interrupted", rcp.has_interrupted);
    w.field("interrupted_prefix_records",
            static_cast<double>(rcp.interrupted_prefix.size()));
    w.key("counts").begin_object();
    for (const auto& [name, n] : counts) w.field(name, n);
    w.end_object();
    if (verify) {
      w.key("violations").begin_array();
      for (const std::string& v : violations) w.value(v);
      w.end_array();
    }
    w.end_object();
    std::cout << "\n";
  } else {
    std::cout << "wal " << dir << ": " << rec.records.size()
              << " records in " << rec.segments_read << " segment(s), "
              << rec.dropped_torn << " torn line(s) dropped, next lsn "
              << rec.next_lsn << "\n";
    if (rcp.has_run) {
      std::cout << "run: seed " << rcp.run.seed << ", " << rcp.run.tenants
                << " tenants, " << rcp.run.sites << " sites, policy "
                << rcp.run.policy << " — "
                << (rcp.run_complete ? "complete" : "incomplete") << ", "
                << rcp.recoveries << " prior recover"
                << (rcp.recoveries == 1 ? "y" : "ies") << ", "
                << rcp.grants.size() << " durable grant(s)\n";
    } else {
      std::cout << "run: none (empty or pre-run_begin log)\n";
    }
    if (rcp.has_interrupted) {
      std::cout << "interrupted: tenant "
                << rcp.grants.back().grant.tenant << " mid-grant with "
                << rcp.interrupted_prefix.size()
                << " durable journal record(s)\n";
    }
    std::cout << "records by type:\n";
    for (const auto& [name, n] : counts)
      std::cout << "  " << name << " " << n << "\n";
    if (tail > 0) {
      const std::size_t from =
          rec.records.size() > static_cast<std::size_t>(tail)
              ? rec.records.size() - static_cast<std::size_t>(tail)
              : 0;
      std::cout << "tail:\n";
      for (std::size_t i = from; i < rec.records.size(); ++i) {
        const recover::WalRecord& r = rec.records[i];
        std::string payload = r.payload;
        if (payload.size() > 96) payload = payload.substr(0, 93) + "...";
        std::cout << "  " << r.lsn << " " << recover::to_string(r.type)
                  << " t=" << format_double(r.t, 3) << " " << payload
                  << "\n";
      }
    }
    if (verify) {
      if (violations.empty()) {
        std::cout << "verify: clean\n";
      } else {
        std::cout << "verify: " << violations.size() << " violation(s)\n";
        for (const std::string& v : violations)
          std::cout << "  " << v << "\n";
      }
    }
  }
  return verify && !violations.empty() ? 1 : 0;
}

// ---------------------------------------------------------------------------
// diff / check

std::vector<std::string> split_patterns(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t from = 0;
  while (from <= csv.size()) {
    const std::size_t comma = csv.find(',', from);
    const std::string part = csv.substr(
        from, comma == std::string::npos ? std::string::npos : comma - from);
    if (!part.empty()) out.push_back(part);
    if (comma == std::string::npos) break;
    from = comma + 1;
  }
  return out;
}

int cmd_compare(const std::vector<std::string>& args, bool gate,
                std::vector<std::string> default_watch = {
                    "runs.*.analysis.makespan_seconds",
                    "runs.*.analysis.components.*"}) {
  std::vector<std::string> paths;
  obs::RegressOptions options;
  options.watch = std::move(default_watch);
  bool all_rows = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold" && i + 1 < args.size()) {
      options.threshold = std::stod(args[++i]) / 100.0;
    } else if (args[i] == "--watch" && i + 1 < args.size()) {
      options.watch = split_patterns(args[++i]);
    } else if (args[i] == "--all") {
      all_rows = true;
    } else if (args[i].rfind("--", 0) != 0) {
      paths.push_back(args[i]);
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (paths.size() != 2) return usage(std::cerr, 2);

  const JsonValue baseline = parse_json_file(paths[0]);
  const JsonValue current = parse_json_file(paths[1]);
  const obs::RegressReport report =
      obs::compare_artifacts(baseline, current, options);

  // One-side-only keys become rows too — with the value they have on the
  // side that knows it, looked up from the flattened leaves.
  const auto base_flat = obs::flatten_numeric(baseline);
  const auto cur_flat = obs::flatten_numeric(current);
  const auto lookup = [](const std::vector<std::pair<std::string, double>>& flat,
                         const std::string& key) {
    const auto it = std::lower_bound(
        flat.begin(), flat.end(), key,
        [](const std::pair<std::string, double>& leaf,
           const std::string& k) { return leaf.first < k; });
    return it != flat.end() && it->first == key ? it->second : 0.0;
  };

  Table table({"key", "baseline", "current", "delta", "delta %", "status"});
  for (const obs::RegressRow& row : report.rows) {
    if (!all_rows && row.delta == 0 && !row.regressed) continue;
    table.row()
        .cell(row.key)
        .cell(row.baseline, 6)
        .cell(row.current, 6)
        .cell(row.delta, 6)
        .cell(row.delta_pct, 2)
        .cell(row.regressed ? "REGRESSED" : (row.watched ? "ok" : "info"));
  }
  for (const std::string& key : report.missing) {
    table.row()
        .cell(key)
        .cell(lookup(base_flat, key), 6)
        .cell("-")
        .cell("-")
        .cell("-")
        .cell("removed");
  }
  for (const std::string& key : report.added) {
    table.row()
        .cell(key)
        .cell("-")
        .cell(lookup(cur_flat, key), 6)
        .cell("-")
        .cell("-")
        .cell("added");
  }
  if (table.num_rows() > 0) {
    table.print(std::cout);
  } else {
    std::cout << "no differences ("
              << report.rows.size() << " keys compared)\n";
  }

  if (gate) {
    if (report.failed) {
      std::cout << "FAIL: regression past "
                << format_double(options.threshold * 100.0, 1)
                << "% threshold\n";
      return 1;
    }
    std::cout << "PASS: no watched leaf regressed past "
              << format_double(options.threshold * 100.0, 1)
              << "% threshold\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// profile

struct ProfileNode {
  std::string name;
  double wall = 0, cpu = 0, excl = 0;
  std::uint64_t calls = 0;
  std::vector<std::pair<std::string, double>> counters;
  std::vector<ProfileNode> children;
};

ProfileNode parse_profile_node(const std::string& name, const JsonValue& v) {
  ProfileNode n;
  n.name = name;
  n.wall = v.number_or("wall_seconds", 0);
  n.cpu = v.number_or("cpu_seconds", 0);
  n.excl = v.number_or("exclusive_seconds", 0);
  n.calls = static_cast<std::uint64_t>(v.number_or("calls", 0));
  if (const JsonValue* cs = v.find("counters")) {
    for (const auto& [key, c] : cs->members())
      if (c.is_number()) n.counters.emplace_back(key, c.as_number());
  }
  if (const JsonValue* ch = v.find("children")) {
    for (const auto& [key, c] : ch->members())
      n.children.push_back(parse_profile_node(key, c));
  }
  return n;
}

bool profile_has_time(const ProfileNode& n) {
  if (n.wall > 0) return true;
  for (const ProfileNode& c : n.children)
    if (profile_has_time(c)) return true;
  return false;
}

void emit_collapsed(std::ostream& os, const ProfileNode& n,
                    const std::string& prefix, bool use_calls) {
  const std::string path = prefix.empty() ? n.name : prefix + ";" + n.name;
  const auto weight =
      use_calls ? static_cast<long long>(n.calls)
                : std::llround(std::max(0.0, n.excl) * 1e6);
  if (weight > 0) os << path << " " << weight << "\n";
  for (const ProfileNode& c : n.children)
    emit_collapsed(os, c, path, use_calls);
}

std::string format_bytes(double bytes) {
  if (bytes >= 1024.0 * 1024.0)
    return format_double(bytes / (1024.0 * 1024.0), 2) + " MiB";
  if (bytes >= 1024.0) return format_double(bytes / 1024.0, 1) + " KiB";
  return format_double(bytes, 0) + " B";
}

int cmd_profile(const std::vector<std::string>& args) {
  // `profile diff` is the generic regress engine pointed at profile
  // artifacts: the deterministic leaves (work counters, call counts,
  // instrumented peak bytes) are watched; wall/cpu seconds show as info
  // rows so timing noise never gates.
  if (!args.empty() && args[0] == "diff") {
    std::vector<std::string> rest;
    bool gate = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--gate") gate = true;
      else rest.push_back(args[i]);
    }
    return cmd_compare(rest, gate,
                       {"*.counters.*", "*.calls",
                        "memory.accounts.*.peak_bytes"});
  }

  std::string path;
  int top = 10;
  bool collapse = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top" && i + 1 < args.size()) {
      top = std::stoi(args[++i]);
    } else if (args[i] == "--collapse") {
      collapse = true;
    } else if (path.empty() && args[i].rfind("--", 0) != 0) {
      path = args[i];
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (path.empty()) return usage(std::cerr, 2);

  const JsonValue doc = parse_json_file(path);
  const JsonValue* tree = doc.find("tree");
  GEOMAP_CHECK_ARG(tree != nullptr && tree->is_object(),
                   "not a profile artifact (no top-level 'tree' object)");
  const ProfileNode root = parse_profile_node("run", *tree);
  const bool use_calls = !profile_has_time(root);

  if (collapse) {
    emit_collapsed(std::cout, root, "", use_calls);
    return 0;
  }

  const JsonValue* det = doc.find("deterministic");
  const bool deterministic =
      det != nullptr && det->is_bool() && det->as_bool();
  print_banner(std::cout, "phase tree (inclusive wall/cpu, exclusive wall)");
  if (deterministic)
    std::cout << "deterministic mode: clocks were zeroed; structure, calls "
                 "and counters are the signal\n\n";

  Table phases({"phase", "wall s", "cpu s", "excl s", "excl %", "calls",
                "counters"});
  const double root_wall = root.wall;
  const auto render = [&](const auto& self, const ProfileNode& n,
                          int depth) -> void {
    std::string counters;
    for (const auto& [key, value] : n.counters) {
      if (!counters.empty()) counters += "  ";
      counters += key + "=" + format_double(value, 0);
    }
    phases.row()
        .cell(std::string(static_cast<std::size_t>(depth) * 2, ' ') + n.name)
        .cell(n.wall, 6)
        .cell(n.cpu, 6)
        .cell(n.excl, 6)
        .cell(root_wall > 0 ? 100.0 * n.excl / root_wall : 0.0, 1)
        .cell(static_cast<long long>(n.calls))
        .cell(counters);
    for (const ProfileNode& c : n.children) self(self, c, depth + 1);
  };
  render(render, root, 0);
  phases.print(std::cout);

  // The telescoping invariant the profiler promises: per-node exclusive
  // times re-fold exactly to the root's measured wall.
  double refold = 0;
  const auto fold = [&](const auto& self, const ProfileNode& n) -> void {
    refold += n.excl;
    for (const ProfileNode& c : n.children) self(self, c);
  };
  fold(fold, root);
  const double delta_pct =
      root_wall > 0 ? 100.0 * (refold - root_wall) / root_wall : 0.0;
  std::cout << "\nre-fold: sum of exclusive = " << format_double(refold, 6)
            << " s vs run wall " << format_double(root_wall, 6)
            << " s (delta " << format_double(delta_pct, 3) << " %)\n\n";

  if (top > 0) {
    std::vector<std::pair<std::string, const ProfileNode*>> leaves;
    const auto collect = [&](const auto& self, const ProfileNode& n,
                             const std::string& prefix) -> void {
      const std::string p =
          prefix.empty() ? n.name : prefix + ";" + n.name;
      leaves.emplace_back(p, &n);
      for (const ProfileNode& c : n.children) self(self, c, p);
    };
    collect(collect, root, "");
    std::stable_sort(leaves.begin(), leaves.end(),
                     [&](const auto& x, const auto& y) {
                       return use_calls ? x.second->calls > y.second->calls
                                        : x.second->excl > y.second->excl;
                     });
    if (leaves.size() > static_cast<std::size_t>(top))
      leaves.resize(static_cast<std::size_t>(top));
    Table hot({"phase", "excl s", "excl %", "calls"});
    for (const auto& [p, n] : leaves) {
      hot.row()
          .cell(p)
          .cell(n->excl, 6)
          .cell(root_wall > 0 ? 100.0 * n->excl / root_wall : 0.0, 1)
          .cell(static_cast<long long>(n->calls));
    }
    print_banner(std::cout,
                 use_calls ? "hot phases (by calls)" : "hot phases");
    hot.print(std::cout);
    std::cout << "\n";
  }

  if (const JsonValue* memory = doc.find("memory")) {
    if (const JsonValue* accounts = memory->find("accounts")) {
      Table mem({"account", "current", "peak"});
      for (const auto& [name, a] : accounts->members()) {
        mem.row()
            .cell(name)
            .cell(format_bytes(a.number_or("current_bytes", 0)))
            .cell(format_bytes(a.number_or("peak_bytes", 0)));
      }
      print_banner(std::cout, "memory accounts");
      mem.print(std::cout);
    }
    const JsonValue* rss = memory->find("rss_peak_bytes");
    if (rss != nullptr && rss->is_number())
      std::cout << "process peak RSS: " << format_bytes(rss->as_number())
                << "\n";
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "timeline") return cmd_timeline(args);
    if (cmd == "events") return cmd_events(args);
    if (cmd == "slo") return cmd_slo(args);
    if (cmd == "watch") return cmd_watch(args);
    if (cmd == "wal") return cmd_wal(args);
    if (cmd == "incidents") return cmd_incidents(args);
    if (cmd == "explain") return cmd_explain(args);
    if (cmd == "profile") return cmd_profile(args);
    if (cmd == "diff") return cmd_compare(args, /*gate=*/false);
    if (cmd == "check") return cmd_compare(args, /*gate=*/true);
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
      return usage(std::cout, 0);
  } catch (const JsonParseError& e) {
    // The artifact exists but is not JSON — a half-written or corrupted
    // export. Distinct from "missing" (2) so CI can tell the two failure
    // modes apart without scraping stderr.
    std::cerr << "geomap-obsctl: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "geomap-obsctl: " << e.what() << "\n";
    return 2;
  }
  return usage(std::cerr, 2);
}
