#pragma once
// MG: an NPB Multi-Grid-style workload (beyond the paper's three pseudo-
// applications). A real geometric multigrid V-cycle for the 2D Poisson
// problem: damped-Jacobi smoothing with neighbour halo exchanges on the
// fine (distributed) levels, and a gather-to-root coarse solve once the
// per-rank blocks get too small — so the communication pattern combines
// LU-like grid locality with hub traffic into rank 0, the multilevel
// structure NPB MG is known for. run() returns the final global residual
// norm, which decreases with the number of V-cycles.

#include "apps/app.h"

namespace geomap::apps {

class MgApp : public App {
 public:
  std::string name() const override { return "MG"; }
  double run(runtime::Comm& comm, const AppConfig& config) const override;
  trace::CommMatrix synthetic_pattern(int num_ranks,
                                      const AppConfig& config) const override;
  AppConfig default_config(int num_ranks) const override;

  /// Smoothing sweeps before and after each coarse-grid correction.
  static constexpr int kSmoothSweeps = 2;
  /// Distributed levels stop when the local block edge would drop below
  /// this; the remaining grid is gathered to rank 0 and solved there.
  static constexpr int kMinLocalEdge = 4;
  /// Gauss-Seidel sweeps of the gathered coarse solve.
  static constexpr int kCoarseSweeps = 60;
};

}  // namespace geomap::apps
