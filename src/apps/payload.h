#pragma once
// Payload padding: the mini-apps run CLASS-C-like message sizes (what the
// mapping cost actually depends on) over laptop-sized local grids by
// padding halo payloads with zeros up to a target size. Receivers read
// only the leading `content.size()` values.

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace geomap::apps {

inline std::vector<double> pad_payload(std::span<const double> content,
                                       std::size_t target_elems) {
  std::vector<double> out(std::max(content.size(), target_elems), 0.0);
  std::copy(content.begin(), content.end(), out.begin());
  return out;
}

/// Elements needed so a payload of doubles reaches `bytes`.
inline std::size_t elems_for_bytes(double bytes) {
  return static_cast<std::size_t>(bytes / sizeof(double) + 0.5);
}

}  // namespace geomap::apps
