#include "apps/synthetic.h"

#include <cmath>

#include "common/error.h"

namespace geomap::apps {

void add_bcast_edges(trace::CommMatrix::Builder& builder, int p, int root,
                     Bytes bytes, double times) {
  GEOMAP_CHECK(p >= 1 && root >= 0 && root < p);
  if (p == 1) return;
  int mask = 1;
  while (mask < p) mask <<= 1;
  mask >>= 1;
  for (int vrank = 0; vrank < p; ++vrank) {
    bool received = (vrank == 0);
    for (int stride = mask; stride >= 1; stride >>= 1) {
      if (received) {
        if (vrank + stride < p && vrank % (stride << 1) == 0) {
          const int src = (vrank + root) % p;
          const int dst = (vrank + stride + root) % p;
          builder.add_message(src, dst, bytes * times, times);
        }
      } else if (vrank % (stride << 1) == stride) {
        received = true;
      }
    }
  }
}

void add_reduce_edges(trace::CommMatrix::Builder& builder, int p, int root,
                      Bytes bytes, double times) {
  GEOMAP_CHECK(p >= 1 && root >= 0 && root < p);
  for (int vrank = 0; vrank < p; ++vrank) {
    for (int stride = 1; stride < p; stride <<= 1) {
      if (vrank % (stride << 1) == 0) {
        continue;  // receiver side; edge added by the sender's iteration
      }
      if (vrank % (stride << 1) == stride) {
        const int src = (vrank + root) % p;
        const int dst = (vrank - stride + root) % p;
        builder.add_message(src, dst, bytes * times, times);
        break;
      }
    }
  }
}

void add_allreduce_edges(trace::CommMatrix::Builder& builder, int p,
                         Bytes bytes, double times) {
  // Mirrors Comm::allreduce: recursive doubling over the largest power
  // of two <= p, with fold/unfold edges for the remainder ranks.
  if (p == 1) return;
  int p2 = 1;
  while (p2 * 2 <= p) p2 *= 2;
  for (int r = p2; r < p; ++r) {
    builder.add_message(r, r - p2, bytes * times, times);  // fold
    builder.add_message(r - p2, r, bytes * times, times);  // result back
  }
  for (int r = 0; r < p2; ++r) {
    for (int mask = 1; mask < p2; mask <<= 1) {
      builder.add_message(r, r ^ mask, bytes * times, times);
    }
  }
}

void add_barrier_edges(trace::CommMatrix::Builder& builder, int p,
                       double times) {
  for (int r = 0; r < p; ++r) {
    for (int stride = 1; stride < p; stride <<= 1) {
      builder.add_message(r, (r + stride) % p, 0.0, times);
    }
  }
}

void add_scatter_edges(trace::CommMatrix::Builder& builder, int p, int root,
                       Bytes block_bytes, double times) {
  GEOMAP_CHECK(p >= 1 && root >= 0 && root < p);
  // Simulate Comm::scatter's block-count propagation per vrank.
  std::vector<int> count(static_cast<std::size_t>(p), 0);
  count[0] = p;
  int mask = 1;
  while (mask < p) mask <<= 1;
  for (int stride = mask; stride >= 1; stride >>= 1) {
    for (int vrank = 0; vrank < p; ++vrank) {
      if (count[static_cast<std::size_t>(vrank)] > stride &&
          vrank % (stride << 1) == 0 && vrank + stride < p) {
        const int nsend = count[static_cast<std::size_t>(vrank)] - stride;
        builder.add_message((vrank + root) % p, (vrank + stride + root) % p,
                            nsend * block_bytes * times, times);
        count[static_cast<std::size_t>(vrank)] = stride;
        count[static_cast<std::size_t>(vrank + stride)] = nsend;
      }
    }
  }
}

void add_gather_edges(trace::CommMatrix::Builder& builder, int p, int root,
                      Bytes block_bytes, double times) {
  GEOMAP_CHECK(p >= 1 && root >= 0 && root < p);
  // Simulate Comm::gather's accumulation per vrank.
  std::vector<int> count(static_cast<std::size_t>(p), 1);
  std::vector<char> done(static_cast<std::size_t>(p), 0);
  for (int stride = 1; stride < p; stride <<= 1) {
    for (int vrank = 0; vrank < p; ++vrank) {
      if (done[static_cast<std::size_t>(vrank)]) continue;
      if (vrank % (stride << 1) == stride) {
        builder.add_message(
            (vrank + root) % p, (vrank - stride + root) % p,
            count[static_cast<std::size_t>(vrank)] * block_bytes * times,
            times);
        count[static_cast<std::size_t>(vrank - stride)] +=
            count[static_cast<std::size_t>(vrank)];
        done[static_cast<std::size_t>(vrank)] = 1;
      }
    }
  }
}

void add_reduce_scatter_edges(trace::CommMatrix::Builder& builder, int p,
                              Bytes block_bytes, double times) {
  add_reduce_edges(builder, p, 0, block_bytes * p, times);
  add_scatter_edges(builder, p, 0, block_bytes, times);
}

void add_scan_edges(trace::CommMatrix::Builder& builder, int p, Bytes bytes,
                    double times) {
  for (int r = 0; r + 1 < p; ++r)
    builder.add_message(r, r + 1, bytes * times, times);
}

void add_allgather_edges(trace::CommMatrix::Builder& builder, int p,
                         Bytes block_bytes, double times) {
  if (p == 1) return;
  for (int r = 0; r < p; ++r) {
    builder.add_message(r, (r + 1) % p, times * block_bytes * (p - 1),
                        times * (p - 1));
  }
}

void add_alltoall_edges(trace::CommMatrix::Builder& builder, int p,
                        Bytes block_bytes, double times) {
  for (int r = 0; r < p; ++r) {
    for (int d = 0; d < p; ++d) {
      if (d == r) continue;
      builder.add_message(r, d, block_bytes * times, times);
    }
  }
}

void add_alltoall_bruck_edges(trace::CommMatrix::Builder& builder, int p,
                              Bytes block_bytes, double times) {
  if (p <= 1) return;
  for (int stride = 1; stride < p; stride <<= 1) {
    // Exactly the blocks Comm::alltoall_bruck forwards in this round:
    // indices in [0, p) with the stride bit set.
    int blocks = 0;
    for (int i = 0; i < p; ++i) {
      if (i & stride) ++blocks;
    }
    const double round_bytes = block_bytes * blocks;
    for (int r = 0; r < p; ++r) {
      builder.add_message(r, (r + stride) % p, round_bytes * times, times);
    }
  }
}

}  // namespace geomap::apps
