#include "apps/app.h"

#include <cmath>

#include "apps/bt.h"
#include "apps/cg.h"
#include "apps/dnn.h"
#include "apps/ft.h"
#include "apps/kmeans.h"
#include "apps/lu.h"
#include "apps/mg.h"
#include "apps/sp.h"
#include "common/error.h"

namespace geomap::apps {

AppConfig App::default_config(int num_ranks) const {
  AppConfig cfg;
  cfg.num_ranks = num_ranks;
  return cfg;
}

const std::vector<const App*>& all_apps() {
  static const BtApp bt;
  static const SpApp sp;
  static const LuApp lu;
  static const KMeansApp kmeans;
  static const DnnApp dnn;
  static const std::vector<const App*> kApps = {&bt, &sp, &lu, &kmeans, &dnn};
  return kApps;
}

const std::vector<const App*>& extended_apps() {
  static const CgApp cg;
  static const MgApp mg;
  static const FtApp ft;
  static const std::vector<const App*> kApps = [] {
    std::vector<const App*> apps = all_apps();
    apps.push_back(&cg);
    apps.push_back(&mg);
    apps.push_back(&ft);
    return apps;
  }();
  return kApps;
}

const App& app_by_name(const std::string& name) {
  for (const App* app : extended_apps()) {
    if (app->name() == name) return *app;
  }
  throw InvalidArgument("unknown application: " + name);
}

ProcessGrid make_process_grid(int p) {
  GEOMAP_CHECK_MSG(p >= 1, "p=" << p);
  int px = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (px > 1 && p % px != 0) --px;
  return ProcessGrid{px, p / px};
}

}  // namespace geomap::apps
