#include "apps/cg.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "apps/synthetic.h"
#include "common/error.h"
#include "common/rng.h"

namespace geomap::apps {

namespace {

constexpr int kTagNeedCount = 41;
constexpr int kTagNeedList = 42;
constexpr int kTagHalo = 43;

/// The global system: a virtual G x G 5-point Laplacian over
/// N = rows_per_rank * p unknowns (row-major), made strictly diagonally
/// dominant, plus `kRandomCouplingsPerRank * p` symmetric long-range
/// couplings drawn deterministically from the seed.
struct SystemShape {
  int n_global;
  int grid;  // G: virtual grid edge (ceil(sqrt(N)))
  std::vector<std::pair<int, int>> couplings;  // global (i, j), i < j

  SystemShape(int n, std::uint64_t seed, int couplings_per_rank, int p)
      : n_global(n) {
    grid = 1;
    while (grid * grid < n) ++grid;
    Rng rng(seed ^ 0xc6a4a7935bd1e995ULL);
    std::set<std::pair<int, int>> seen;
    const int want = couplings_per_rank * p;
    while (static_cast<int>(seen.size()) < want) {
      const int i = static_cast<int>(rng.uniform_index(n));
      const int j = static_cast<int>(rng.uniform_index(n));
      if (i == j) continue;
      seen.insert({std::min(i, j), std::max(i, j)});
    }
    couplings.assign(seen.begin(), seen.end());
  }

  /// Column indices of row i's off-diagonal entries (value -1 each; the
  /// random couplings use -0.5).
  void neighbours(int i, std::vector<std::pair<int, double>>& out) const {
    out.clear();
    const int gx = i % grid;
    if (i - grid >= 0) out.push_back({i - grid, -1.0});
    if (gx > 0 && i - 1 >= 0) out.push_back({i - 1, -1.0});
    if (gx + 1 < grid && i + 1 < n_global) out.push_back({i + 1, -1.0});
    if (i + grid < n_global) out.push_back({i + grid, -1.0});
    for (const auto& [a, b] : couplings) {
      if (a == i) out.push_back({b, -0.5});
      else if (b == i) out.push_back({a, -0.5});
    }
  }
};

int owner_of_row(int row, int n, int p) {
  // Contiguous blocks of n/p rows (n is a multiple of p by construction).
  return row / (n / p);
}

}  // namespace

double CgApp::run(runtime::Comm& comm, const AppConfig& config) const {
  const int p = comm.size();
  const int rank = comm.rank();
  const int rows = config.problem_size;  // rows per rank
  const int n = rows * p;
  const SystemShape shape(n, config.seed, kRandomCouplingsPerRank, p);
  const int lo = rank * rows;

  // Local CSR of the owned row block; diagonal barely dominant so CG
  // needs a realistic number of iterations.
  std::vector<std::vector<std::pair<int, double>>> row_entries(
      static_cast<std::size_t>(rows));
  std::vector<double> diag(static_cast<std::size_t>(rows));
  std::vector<std::pair<int, double>> scratch;
  for (int r = 0; r < rows; ++r) {
    shape.neighbours(lo + r, scratch);
    double dominance = 0;
    for (const auto& [col, val] : scratch) dominance += std::abs(val);
    row_entries[static_cast<std::size_t>(r)] = scratch;
    diag[static_cast<std::size_t>(r)] = dominance + 0.05;
  }

  // Remote columns needed per owner rank.
  std::map<int, std::vector<int>> need;  // owner -> sorted global cols
  for (const auto& entries : row_entries) {
    for (const auto& [col, val] : entries) {
      const int owner = owner_of_row(col, n, p);
      if (owner != rank) need[owner].push_back(col);
    }
  }
  for (auto& [owner, cols] : need) {
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  }

  // Tell every owner which of its entries we need (counts via alltoall,
  // lists via point-to-point).
  std::vector<double> counts(static_cast<std::size_t>(p), 0.0);
  for (const auto& [owner, cols] : need)
    counts[static_cast<std::size_t>(owner)] = static_cast<double>(cols.size());
  const std::vector<double> incoming = comm.alltoall(counts, 1);

  std::vector<runtime::Request> pending;
  for (const auto& [owner, cols] : need) {
    std::vector<double> msg(cols.begin(), cols.end());
    pending.push_back(comm.isend(owner, kTagNeedList, msg));
  }
  std::map<int, std::vector<int>> gives;  // peer -> my global cols to send
  for (int src = 0; src < p; ++src) {
    if (src == rank || incoming[static_cast<std::size_t>(src)] <= 0) continue;
    const std::vector<double> msg = comm.recv(src, kTagNeedList);
    std::vector<int>& cols = gives[src];
    cols.reserve(msg.size());
    for (const double c : msg) cols.push_back(static_cast<int>(c));
  }
  for (auto& req : pending) comm.wait(req);

  // Halo-exchange + matvec: y = A x (x is the local block; remote values
  // fetched per multiplication).
  std::map<int, std::map<int, double>> remote_cache;  // owner -> col -> val
  auto matvec = [&](const std::vector<double>& x, std::vector<double>& y) {
    // Ship requested entries, receive needed ones.
    std::vector<runtime::Request> sends;
    for (const auto& [peer, cols] : gives) {
      std::vector<double> payload;
      payload.reserve(cols.size());
      for (const int c : cols)
        payload.push_back(x[static_cast<std::size_t>(c - lo)]);
      sends.push_back(comm.isend(peer, kTagHalo, payload));
    }
    for (const auto& [owner, cols] : need) {
      const std::vector<double> payload = comm.recv(owner, kTagHalo);
      auto& cache = remote_cache[owner];
      for (std::size_t k = 0; k < cols.size(); ++k)
        cache[cols[k]] = payload[k];
    }
    for (auto& req : sends) comm.wait(req);

    for (int r = 0; r < rows; ++r) {
      double acc = diag[static_cast<std::size_t>(r)] *
                   x[static_cast<std::size_t>(r)];
      for (const auto& [col, val] : row_entries[static_cast<std::size_t>(r)]) {
        const int owner = owner_of_row(col, n, p);
        const double xv = owner == rank
                              ? x[static_cast<std::size_t>(col - lo)]
                              : remote_cache[owner][col];
        acc += val * xv;
      }
      y[static_cast<std::size_t>(r)] = acc;
    }
    comm.compute(10.0 * rows);  // ~2 flops per nonzero, modeled
  };

  auto dot = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double local = 0;
    for (std::size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
    std::vector<double> acc{local};
    comm.allreduce(acc, runtime::ReduceOp::kSum);
    return acc[0];
  };

  // CG on A x = b. b must not be constant: every row of A sums to the
  // same value by construction, so the ones vector is an eigenvector and
  // would converge in a single step.
  std::vector<double> x(static_cast<std::size_t>(rows), 0.0);
  std::vector<double> r(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i)
    r[static_cast<std::size_t>(i)] =
        1.0 + std::sin(0.37 * static_cast<double>(lo + i));  // b - A*0
  std::vector<double> d = r;
  std::vector<double> ad(static_cast<std::size_t>(rows));
  double rr = dot(r, r);
  for (int iter = 0; iter < config.iterations && rr > 1e-24; ++iter) {
    matvec(d, ad);
    const double alpha = rr / dot(d, ad);
    for (int i = 0; i < rows; ++i) {
      x[static_cast<std::size_t>(i)] += alpha * d[static_cast<std::size_t>(i)];
      r[static_cast<std::size_t>(i)] -= alpha * ad[static_cast<std::size_t>(i)];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    for (int i = 0; i < rows; ++i)
      d[static_cast<std::size_t>(i)] =
          r[static_cast<std::size_t>(i)] + beta * d[static_cast<std::size_t>(i)];
    rr = rr_new;
  }
  return std::sqrt(rr);
}

trace::CommMatrix CgApp::synthetic_pattern(int num_ranks,
                                           const AppConfig& config) const {
  // Reconstruct the halo relationships from the same system shape the
  // execution uses (the pattern is data-independent).
  const int p = num_ranks;
  const int rows = config.problem_size;
  const int n = rows * p;
  const SystemShape shape(n, config.seed, kRandomCouplingsPerRank, p);

  std::map<std::pair<int, int>, double> halo_values;  // (owner->needer)
  std::vector<std::pair<int, double>> scratch;
  // One shipped value per distinct (needer, owner, column) — the
  // execution dedupes its need lists the same way.
  std::set<std::tuple<int, int, int>> counted;
  for (int i = 0; i < n; ++i) {
    const int needer = owner_of_row(i, n, p);
    shape.neighbours(i, scratch);
    for (const auto& [col, val] : scratch) {
      const int owner = owner_of_row(col, n, p);
      if (owner != needer && counted.insert({needer, owner, col}).second)
        halo_values[{owner, needer}] += 1.0;
    }
  }

  trace::CommMatrix::Builder builder(p);
  const double iters = config.iterations;
  for (const auto& [link, values] : halo_values) {
    // One halo payload per matvec per iteration; plus the one-time
    // need-list exchange in the opposite direction.
    builder.add_message(link.first, link.second,
                        values * sizeof(double) * iters, iters);
    builder.add_message(link.second, link.first, values * sizeof(double), 1);
  }
  add_alltoall_bruck_edges(builder, p, sizeof(double), 1);  // counts
  // Two dot-product allreduces per iteration plus the initial one.
  add_allreduce_edges(builder, p, sizeof(double), 2.0 * iters + 1.0);
  return builder.build();
}

AppConfig CgApp::default_config(int num_ranks) const {
  AppConfig cfg;
  cfg.num_ranks = num_ranks;
  cfg.iterations = 12;
  cfg.problem_size = 64;  // rows per rank
  return cfg;
}

}  // namespace geomap::apps
