#include "apps/mg.h"

#include <cmath>

#include "apps/solvers.h"
#include "apps/synthetic.h"
#include "common/error.h"

namespace geomap::apps {

namespace {

constexpr int kTagHaloBase = 50;  // +level*4 + direction
constexpr int kTagGather = 90;
constexpr int kTagScatter = 91;

/// One distributed level: a local (edge x edge) interior block with a
/// one-deep halo, part of a (px*edge x py*edge) global grid.
struct Level {
  int edge = 0;
  std::vector<double> u;    // (edge+2)^2 with halo
  std::vector<double> rhs;  // edge^2
  double h2 = 1.0;          // grid spacing squared

  explicit Level(int e, double spacing_sq)
      : edge(e),
        u(static_cast<std::size_t>((e + 2) * (e + 2)), 0.0),
        rhs(static_cast<std::size_t>(e * e), 0.0),
        h2(spacing_sq) {}

  double& at(int i, int j) {
    return u[static_cast<std::size_t>(i * (edge + 2) + j)];
  }
  double at(int i, int j) const {
    return u[static_cast<std::size_t>(i * (edge + 2) + j)];
  }
};

struct MgContext {
  runtime::Comm* comm;
  ProcessGrid grid;
  int gx, gy;
  int north, south, west, east;

  explicit MgContext(runtime::Comm& c)
      : comm(&c), grid(make_process_grid(c.size())) {
    gx = grid.x(c.rank());
    gy = grid.y(c.rank());
    north = gy > 0 ? grid.rank_of(gx, gy - 1) : -1;
    south = gy + 1 < grid.py ? grid.rank_of(gx, gy + 1) : -1;
    west = gx > 0 ? grid.rank_of(gx - 1, gy) : -1;
    east = gx + 1 < grid.px ? grid.rank_of(gx + 1, gy) : -1;
  }

  /// Refresh all four halo sides of a level (deadlock-free: post the
  /// sends, then receive).
  void exchange_halo(Level& level, int level_idx) const {
    const int e = level.edge;
    const int tag = kTagHaloBase + level_idx;
    auto pack_row = [&](int i) {
      std::vector<double> out(static_cast<std::size_t>(e));
      for (int j = 1; j <= e; ++j)
        out[static_cast<std::size_t>(j - 1)] = level.at(i, j);
      return out;
    };
    auto pack_col = [&](int j) {
      std::vector<double> out(static_cast<std::size_t>(e));
      for (int i = 1; i <= e; ++i)
        out[static_cast<std::size_t>(i - 1)] = level.at(i, j);
      return out;
    };

    std::vector<runtime::Request> sends;
    if (north >= 0) sends.push_back(comm->isend(north, tag, pack_row(1)));
    if (south >= 0) sends.push_back(comm->isend(south, tag, pack_row(e)));
    if (west >= 0) sends.push_back(comm->isend(west, tag, pack_col(1)));
    if (east >= 0) sends.push_back(comm->isend(east, tag, pack_col(e)));
    if (north >= 0) {
      const std::vector<double> in = comm->recv(north, tag);
      for (int j = 1; j <= e; ++j) level.at(0, j) = in[static_cast<std::size_t>(j - 1)];
    }
    if (south >= 0) {
      const std::vector<double> in = comm->recv(south, tag);
      for (int j = 1; j <= e; ++j) level.at(e + 1, j) = in[static_cast<std::size_t>(j - 1)];
    }
    if (west >= 0) {
      const std::vector<double> in = comm->recv(west, tag);
      for (int i = 1; i <= e; ++i) level.at(i, 0) = in[static_cast<std::size_t>(i - 1)];
    }
    if (east >= 0) {
      const std::vector<double> in = comm->recv(east, tag);
      for (int i = 1; i <= e; ++i) level.at(i, e + 1) = in[static_cast<std::size_t>(i - 1)];
    }
    for (auto& s : sends) comm->wait(s);
  }
};

/// Damped Jacobi sweep (weight 0.8): u += w/4 (rhs h2 + neighbours - 4u).
void jacobi_sweep(Level& level) {
  const int e = level.edge;
  std::vector<double> next = level.u;
  for (int i = 1; i <= e; ++i) {
    for (int j = 1; j <= e; ++j) {
      const double r = level.rhs[static_cast<std::size_t>((i - 1) * e + (j - 1))] *
                           level.h2 +
                       level.at(i - 1, j) + level.at(i + 1, j) +
                       level.at(i, j - 1) + level.at(i, j + 1) -
                       4.0 * level.at(i, j);
      next[static_cast<std::size_t>(i * (e + 2) + j)] =
          level.at(i, j) + 0.2 * r;
    }
  }
  level.u = std::move(next);
}

/// Residual rhs - A u into `out` (edge^2), halo assumed fresh.
void residual(const Level& level, std::vector<double>& out) {
  const int e = level.edge;
  out.resize(static_cast<std::size_t>(e * e));
  for (int i = 1; i <= e; ++i) {
    for (int j = 1; j <= e; ++j) {
      out[static_cast<std::size_t>((i - 1) * e + (j - 1))] =
          level.rhs[static_cast<std::size_t>((i - 1) * e + (j - 1))] +
          (level.at(i - 1, j) + level.at(i + 1, j) + level.at(i, j - 1) +
           level.at(i, j + 1) - 4.0 * level.at(i, j)) /
              level.h2;
    }
  }
}

/// Full-weighting restriction of a fine residual (edge^2) to the coarse
/// rhs (edge/2)^2 by 2x2 averaging.
void restrict_to(const std::vector<double>& fine, int fine_edge,
                 std::vector<double>& coarse) {
  const int ce = fine_edge / 2;
  coarse.assign(static_cast<std::size_t>(ce * ce), 0.0);
  for (int i = 0; i < ce; ++i) {
    for (int j = 0; j < ce; ++j) {
      coarse[static_cast<std::size_t>(i * ce + j)] =
          0.25 * (fine[static_cast<std::size_t>((2 * i) * fine_edge + 2 * j)] +
                  fine[static_cast<std::size_t>((2 * i + 1) * fine_edge + 2 * j)] +
                  fine[static_cast<std::size_t>((2 * i) * fine_edge + 2 * j + 1)] +
                  fine[static_cast<std::size_t>((2 * i + 1) * fine_edge + 2 * j + 1)]);
    }
  }
}

/// Prolong a coarse correction into the fine solution with cell-centered
/// bilinear interpolation (9/16, 3/16, 3/16, 1/16 weights toward the
/// quadrant's coarse neighbours). Requires a fresh coarse halo; piecewise-
/// constant injection is too crude for a stable distributed V-cycle.
void prolong_add(Level& fine, const Level& coarse) {
  for (int i = 1; i <= coarse.edge; ++i) {
    for (int j = 1; j <= coarse.edge; ++j) {
      for (int di = 0; di < 2; ++di) {
        for (int dj = 0; dj < 2; ++dj) {
          const int ni = di == 0 ? i - 1 : i + 1;
          const int nj = dj == 0 ? j - 1 : j + 1;
          const double v = (9.0 * coarse.at(i, j) + 3.0 * coarse.at(ni, j) +
                            3.0 * coarse.at(i, nj) + coarse.at(ni, nj)) /
                           16.0;
          fine.at(2 * i - 1 + di, 2 * j - 1 + dj) += v;
        }
      }
    }
  }
}

/// Gathered coarse solve: every rank ships its block to rank 0, which
/// assembles the global coarse grid, runs Gauss-Seidel, and ships the
/// corrections back.
void coarse_solve(const MgContext& ctx, Level& level) {
  runtime::Comm& comm = *ctx.comm;
  const int e = level.edge;
  const int p = comm.size();

  if (comm.rank() != 0) {
    comm.send(0, kTagGather, level.rhs);
    const std::vector<double> sol = comm.recv(0, kTagScatter);
    for (int i = 1; i <= e; ++i)
      for (int j = 1; j <= e; ++j)
        level.at(i, j) = sol[static_cast<std::size_t>((i - 1) * e + (j - 1))];
    return;
  }

  // Rank 0: assemble the (px*e) x (py*e) global grid.
  const int gnx = ctx.grid.px * e;
  const int gny = ctx.grid.py * e;
  std::vector<double> grhs(static_cast<std::size_t>(gnx * gny), 0.0);
  auto place = [&](int rank, const std::vector<double>& block) {
    const int bx = ctx.grid.x(rank) * e;
    const int by = ctx.grid.y(rank) * e;
    for (int i = 0; i < e; ++i)
      for (int j = 0; j < e; ++j)
        grhs[static_cast<std::size_t>((by + i) * gnx + (bx + j))] =
            block[static_cast<std::size_t>(i * e + j)];
  };
  place(0, level.rhs);
  for (int src = 1; src < p; ++src) place(src, comm.recv(src, kTagGather));

  std::vector<double> gu(static_cast<std::size_t>((gny + 2) * (gnx + 2)), 0.0);
  for (int sweep = 0; sweep < MgApp::kCoarseSweeps; ++sweep)
    gauss_seidel_sweep(gu, grhs, gny, gnx, level.h2);
  comm.compute(10.0 * MgApp::kCoarseSweeps * gnx * gny);

  auto extract = [&](int rank) {
    const int bx = ctx.grid.x(rank) * e;
    const int by = ctx.grid.y(rank) * e;
    std::vector<double> block(static_cast<std::size_t>(e * e));
    for (int i = 0; i < e; ++i)
      for (int j = 0; j < e; ++j)
        block[static_cast<std::size_t>(i * e + j)] =
            gu[static_cast<std::size_t>((by + i + 1) * (gnx + 2) + (bx + j + 1))];
    return block;
  };
  {
    const std::vector<double> mine = extract(0);
    for (int i = 1; i <= e; ++i)
      for (int j = 1; j <= e; ++j)
        level.at(i, j) = mine[static_cast<std::size_t>((i - 1) * e + (j - 1))];
  }
  for (int dst = 1; dst < p; ++dst) comm.send(dst, kTagScatter, extract(dst));
}

/// One V-cycle from `level_idx` down.
void v_cycle(const MgContext& ctx, std::vector<Level>& levels,
             std::size_t level_idx) {
  Level& level = levels[level_idx];
  runtime::Comm& comm = *ctx.comm;

  if (level.edge < MgApp::kMinLocalEdge || level_idx + 1 == levels.size()) {
    coarse_solve(ctx, level);
    return;
  }

  for (int s = 0; s < MgApp::kSmoothSweeps; ++s) {
    ctx.exchange_halo(level, static_cast<int>(level_idx));
    jacobi_sweep(level);
  }
  comm.compute(8.0 * MgApp::kSmoothSweeps * level.edge * level.edge);

  ctx.exchange_halo(level, static_cast<int>(level_idx));
  std::vector<double> res;
  residual(level, res);

  Level& coarse = levels[level_idx + 1];
  std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
  restrict_to(res, level.edge, coarse.rhs);
  v_cycle(ctx, levels, level_idx + 1);
  ctx.exchange_halo(coarse, static_cast<int>(level_idx + 1));
  prolong_add(level, coarse);

  for (int s = 0; s < MgApp::kSmoothSweeps; ++s) {
    ctx.exchange_halo(level, static_cast<int>(level_idx));
    jacobi_sweep(level);
  }
  comm.compute(8.0 * MgApp::kSmoothSweeps * level.edge * level.edge);
}

}  // namespace

double MgApp::run(runtime::Comm& comm, const AppConfig& config) const {
  const MgContext ctx(comm);
  // Local fine edge: power of two >= problem_size.
  int edge = 1;
  while (edge < config.problem_size) edge <<= 1;

  // Level stack down to the coarse-solve threshold.
  std::vector<Level> levels;
  double h2 = 1.0 / static_cast<double>(edge * edge * comm.size());
  for (int e = edge; e >= 2; e /= 2) {
    levels.emplace_back(e, h2);
    h2 *= 4.0;
    if (e < kMinLocalEdge) break;
  }
  levels.front().rhs.assign(levels.front().rhs.size(), 1.0);  // f = 1

  double res_norm = 0.0;
  for (int cycle = 0; cycle < config.iterations; ++cycle) {
    v_cycle(ctx, levels, 0);
    ctx.exchange_halo(levels.front(), 0);
    std::vector<double> res;
    residual(levels.front(), res);
    double local = 0;
    for (const double v : res) local += v * v;
    std::vector<double> acc{local};
    comm.allreduce(acc, runtime::ReduceOp::kSum);
    res_norm = std::sqrt(acc[0]);
  }
  return res_norm;
}

trace::CommMatrix MgApp::synthetic_pattern(int num_ranks,
                                           const AppConfig& config) const {
  const ProcessGrid grid = make_process_grid(num_ranks);
  int edge = 1;
  while (edge < config.problem_size) edge <<= 1;

  trace::CommMatrix::Builder builder(num_ranks);
  const double iters = config.iterations;

  // Distributed levels: halo exchanges shrink with the level edge.
  // Per V-cycle and level: 2*kSmoothSweeps+1 exchanges down + the
  // post-smooth exchanges (folded into the same count on the way up),
  // plus the residual exchange at the top.
  for (int e = edge; e >= kMinLocalEdge; e /= 2) {
    const double exchanges =
        (e == edge ? 2.0 * kSmoothSweeps + 2.0 : 2.0 * kSmoothSweeps + 1.0) *
        iters;
    const double bytes = static_cast<double>(e) * sizeof(double) * exchanges;
    for (int r = 0; r < num_ranks; ++r) {
      const int gx = grid.x(r);
      const int gy = grid.y(r);
      if (gy > 0) builder.add_message(r, grid.rank_of(gx, gy - 1), bytes, exchanges);
      if (gy + 1 < grid.py)
        builder.add_message(r, grid.rank_of(gx, gy + 1), bytes, exchanges);
      if (gx > 0) builder.add_message(r, grid.rank_of(gx - 1, gy), bytes, exchanges);
      if (gx + 1 < grid.px)
        builder.add_message(r, grid.rank_of(gx + 1, gy), bytes, exchanges);
    }
  }
  // Coarse gather/scatter hub traffic to and from rank 0.
  int coarse_edge = edge;
  while (coarse_edge >= kMinLocalEdge) coarse_edge /= 2;
  const double block_bytes =
      static_cast<double>(coarse_edge * coarse_edge) * sizeof(double);
  for (int r = 1; r < num_ranks; ++r) {
    builder.add_message(r, 0, block_bytes * iters, iters);
    builder.add_message(0, r, block_bytes * iters, iters);
  }
  add_allreduce_edges(builder, num_ranks, sizeof(double), iters);
  return builder.build();
}

AppConfig MgApp::default_config(int num_ranks) const {
  AppConfig cfg;
  cfg.num_ranks = num_ranks;
  cfg.iterations = 5;
  cfg.problem_size = 32;  // local fine-grid edge (rounded up to 2^k)
  return cfg;
}

}  // namespace geomap::apps
