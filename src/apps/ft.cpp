#include "apps/ft.h"

#include <cmath>

#include "apps/synthetic.h"
#include "common/error.h"
#include "common/rng.h"

namespace geomap::apps {

void fft_radix2(std::vector<double>& a, bool inverse) {
  const std::size_t n = a.size() / 2;
  GEOMAP_CHECK_MSG(n >= 1 && (n & (n - 1)) == 0, "FFT size must be 2^k");

  // Bit-reversal permutation over complex pairs.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(a[2 * i], a[2 * j]);
      std::swap(a[2 * i + 1], a[2 * j + 1]);
    }
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * M_PI / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const double w_re = std::cos(angle);
    const double w_im = std::sin(angle);
    for (std::size_t i = 0; i < n; i += len) {
      double cur_re = 1.0, cur_im = 0.0;
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::size_t u = i + k;
        const std::size_t v = i + k + len / 2;
        const double v_re = a[2 * v] * cur_re - a[2 * v + 1] * cur_im;
        const double v_im = a[2 * v] * cur_im + a[2 * v + 1] * cur_re;
        a[2 * v] = a[2 * u] - v_re;
        a[2 * v + 1] = a[2 * u + 1] - v_im;
        a[2 * u] += v_re;
        a[2 * u + 1] += v_im;
        const double next_re = cur_re * w_re - cur_im * w_im;
        cur_im = cur_re * w_im + cur_im * w_re;
        cur_re = next_re;
      }
    }
  }
  if (inverse) {
    for (auto& v : a) v /= static_cast<double>(n);
  }
}

namespace {

constexpr int kTagTranspose = 31;

/// Row ownership: rank r holds rows [begin(r), begin(r+1)).
int row_begin(int rank, int n, int p) {
  return static_cast<int>(static_cast<std::int64_t>(rank) * n / p);
}

/// Distributed square transpose of an n x n complex matrix stored
/// row-block by rank (interleaved re/im). Pairwise exchange rounds keep
/// it deadlock-free for any rank count.
void transpose(runtime::Comm& comm, std::vector<double>& local, int n) {
  const int p = comm.size();
  const int rank = comm.rank();
  const int r0 = row_begin(rank, n, p);
  const int r1 = row_begin(rank + 1, n, p);
  const int my_rows = r1 - r0;

  std::vector<double> next(local.size());
  auto pack_block = [&](int c0, int c1) {
    // Transposed order: for each of my future rows (current columns),
    // the entries from my current rows.
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(2 * my_rows * (c1 - c0)));
    for (int c = c0; c < c1; ++c) {
      for (int r = 0; r < my_rows; ++r) {
        out.push_back(local[static_cast<std::size_t>(2 * (r * n + c))]);
        out.push_back(local[static_cast<std::size_t>(2 * (r * n + c) + 1)]);
      }
    }
    return out;
  };
  auto unpack_block = [&](const std::vector<double>& in, int peer) {
    // Block from `peer`: my rows x peer's column count, already
    // transposed; columns land at peer's row offsets.
    const int c0 = row_begin(peer, n, p);
    const int c1 = row_begin(peer + 1, n, p);
    std::size_t idx = 0;
    for (int r = 0; r < my_rows; ++r) {
      for (int c = c0; c < c1; ++c) {
        next[static_cast<std::size_t>(2 * (r * n + c))] = in[idx++];
        next[static_cast<std::size_t>(2 * (r * n + c) + 1)] = in[idx++];
      }
    }
  };

  // Own diagonal block transposes locally.
  unpack_block(pack_block(r0, r1), rank);
  // Pairwise rounds with every other rank.
  for (int step = 1; step < p; ++step) {
    const int to = (rank + step) % p;
    const int from = (rank - step + p) % p;
    const std::vector<double> out =
        pack_block(row_begin(to, n, p), row_begin(to + 1, n, p));
    const std::vector<double> in =
        comm.sendrecv(to, kTagTranspose, out, from, kTagTranspose);
    unpack_block(in, from);
  }
  local = std::move(next);
}

}  // namespace

double FtApp::run(runtime::Comm& comm, const AppConfig& config) const {
  const int p = comm.size();
  const int rank = comm.rank();
  // Grid edge: power of two, at least the rank count and problem size.
  int n = 1;
  while (n < std::max(config.problem_size, p)) n <<= 1;
  const int my_rows = row_begin(rank + 1, n, p) - row_begin(rank, n, p);

  // Deterministic pseudo-random initial field (NPB FT starts the same
  // way), identical across iterations.
  Rng rng(config.seed * 40503ULL + static_cast<std::uint64_t>(rank));
  std::vector<double> original(static_cast<std::size_t>(2 * my_rows * n));
  for (auto& v : original) v = rng.uniform(-1.0, 1.0);

  double max_error = 0.0;
  for (int iter = 0; iter < config.iterations; ++iter) {
    std::vector<double> field = original;
    auto fft_rows = [&](bool inverse) {
      for (int r = 0; r < my_rows; ++r) {
        std::vector<double> row(
            field.begin() + static_cast<std::ptrdiff_t>(2 * r * n),
            field.begin() + static_cast<std::ptrdiff_t>(2 * (r + 1) * n));
        fft_radix2(row, inverse);
        std::copy(row.begin(), row.end(),
                  field.begin() + static_cast<std::ptrdiff_t>(2 * r * n));
      }
      // ~5 n log2(n) flops per row.
      comm.compute(5.0 * my_rows * n * std::log2(static_cast<double>(n)));
    };

    // Forward 2D FFT: row transforms, transpose, row transforms.
    fft_rows(false);
    transpose(comm, field, n);
    fft_rows(false);
    // Inverse: undo both, restoring the original (up to round-off).
    fft_rows(true);
    transpose(comm, field, n);
    fft_rows(true);

    double err = 0.0;
    for (std::size_t i = 0; i < field.size(); ++i)
      err = std::max(err, std::abs(field[i] - original[i]));
    std::vector<double> acc{err};
    comm.allreduce(acc, runtime::ReduceOp::kMax);
    max_error = acc[0];
  }
  return max_error;
}

trace::CommMatrix FtApp::synthetic_pattern(int num_ranks,
                                           const AppConfig& config) const {
  // Dense transpose traffic: every ordered pair exchanges its
  // intersection block twice per iteration (forward + inverse
  // transpose). O(p^2) edges by nature — FT is not meant for the 8192-
  // process synthetic scale studies.
  int n = 1;
  while (n < std::max(config.problem_size, num_ranks)) n <<= 1;
  trace::CommMatrix::Builder builder(num_ranks);
  const double iters = config.iterations;
  for (int r = 0; r < num_ranks; ++r) {
    const int rows_r = row_begin(r + 1, n, num_ranks) - row_begin(r, n, num_ranks);
    for (int d = 0; d < num_ranks; ++d) {
      if (d == r) continue;
      const int rows_d =
          row_begin(d + 1, n, num_ranks) - row_begin(d, n, num_ranks);
      const double block_bytes =
          2.0 * rows_r * rows_d * sizeof(double);
      builder.add_message(r, d, block_bytes * 2.0 * iters, 2.0 * iters);
    }
  }
  add_allreduce_edges(builder, num_ranks, sizeof(double), iters);
  return builder.build();
}

AppConfig FtApp::default_config(int num_ranks) const {
  AppConfig cfg;
  cfg.num_ranks = num_ranks;
  cfg.iterations = 5;
  cfg.problem_size = 256;  // global grid edge (rounded up to 2^k)
  return cfg;
}

}  // namespace geomap::apps
