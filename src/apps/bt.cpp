#include "apps/bt.h"

#include <cmath>

#include "apps/adi_common.h"
#include "apps/solvers.h"

namespace geomap::apps {

namespace {

/// 3-component field on an n x n interior with one halo layer; component-
/// major within a point: idx(i, j, c) with i, j in [0, n+1].
struct BlockField {
  int n;
  std::vector<double> data;

  explicit BlockField(int size)
      : n(size),
        data(static_cast<std::size_t>((size + 2) * (size + 2) * 3), 0.0) {}

  double& at(int i, int j, int c) {
    return data[static_cast<std::size_t>((i * (n + 2) + j) * 3 + c)];
  }
  double at(int i, int j, int c) const {
    return data[static_cast<std::size_t>((i * (n + 2) + j) * 3 + c)];
  }
};

/// Pack one face (fixed i or fixed j line of 3-vectors).
std::vector<double> pack_face_row(const BlockField& u, int i) {
  std::vector<double> out(static_cast<std::size_t>(u.n * 3));
  for (int j = 1; j <= u.n; ++j)
    for (int c = 0; c < 3; ++c)
      out[static_cast<std::size_t>((j - 1) * 3 + c)] = u.at(i, j, c);
  return out;
}
std::vector<double> pack_face_col(const BlockField& u, int j) {
  std::vector<double> out(static_cast<std::size_t>(u.n * 3));
  for (int i = 1; i <= u.n; ++i)
    for (int c = 0; c < 3; ++c)
      out[static_cast<std::size_t>((i - 1) * 3 + c)] = u.at(i, j, c);
  return out;
}
void unpack_face_row(BlockField& u, int i, const std::vector<double>& in) {
  if (in.empty()) return;
  for (int j = 1; j <= u.n; ++j)
    for (int c = 0; c < 3; ++c)
      u.at(i, j, c) = in[static_cast<std::size_t>((j - 1) * 3 + c)];
}
void unpack_face_col(BlockField& u, int j, const std::vector<double>& in) {
  if (in.empty()) return;
  for (int i = 1; i <= u.n; ++i)
    for (int c = 0; c < 3; ++c)
      u.at(i, j, c) = in[static_cast<std::size_t>((i - 1) * 3 + c)];
}

/// Implicit line solve along x for row i: (B u*)_j - u*_{j-1} - u*_{j+1}
/// = rhs_j with B = 4I + 0.1 S (S symmetric coupling), rhs from the
/// previous iterate plus halo end contributions — a diagonally dominant
/// block-tridiagonal system solved with block Thomas.
void solve_line_x(BlockField& u, int i) {
  const int n = u.n;
  const std::size_t nb = static_cast<std::size_t>(n);
  std::vector<double> lower(nb * 9, 0.0), diag(nb * 9, 0.0),
      upper(nb * 9, 0.0), rhs(nb * 3, 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    // Diagonal block 4I + 0.1 on the off-diagonal couplings.
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c)
        diag[b * 9 + static_cast<std::size_t>(r * 3 + c)] =
            (r == c) ? 4.0 : 0.1;
    if (b > 0)
      for (int c = 0; c < 3; ++c)
        lower[b * 9 + static_cast<std::size_t>(c * 3 + c)] = -1.0;
    if (b + 1 < nb)
      for (int c = 0; c < 3; ++c)
        upper[b * 9 + static_cast<std::size_t>(c * 3 + c)] = -1.0;
    const int j = static_cast<int>(b) + 1;
    for (int c = 0; c < 3; ++c) {
      double r = u.at(i, j, c) + 0.5 * (u.at(i - 1, j, c) + u.at(i + 1, j, c));
      if (j == 1) r += u.at(i, 0, c);          // west halo
      if (j == n) r += u.at(i, n + 1, c);      // east halo
      rhs[b * 3 + static_cast<std::size_t>(c)] = r;
    }
  }
  const std::vector<double> x =
      solve_block_tridiagonal(lower, diag, upper, rhs);
  for (std::size_t b = 0; b < nb; ++b)
    for (int c = 0; c < 3; ++c)
      u.at(i, static_cast<int>(b) + 1, c) = x[b * 3 + static_cast<std::size_t>(c)];
}

/// Same along y for column j.
void solve_line_y(BlockField& u, int j) {
  const int n = u.n;
  const std::size_t nb = static_cast<std::size_t>(n);
  std::vector<double> lower(nb * 9, 0.0), diag(nb * 9, 0.0),
      upper(nb * 9, 0.0), rhs(nb * 3, 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c)
        diag[b * 9 + static_cast<std::size_t>(r * 3 + c)] =
            (r == c) ? 4.0 : 0.1;
    if (b > 0)
      for (int c = 0; c < 3; ++c)
        lower[b * 9 + static_cast<std::size_t>(c * 3 + c)] = -1.0;
    if (b + 1 < nb)
      for (int c = 0; c < 3; ++c)
        upper[b * 9 + static_cast<std::size_t>(c * 3 + c)] = -1.0;
    const int i = static_cast<int>(b) + 1;
    for (int c = 0; c < 3; ++c) {
      double r = u.at(i, j, c) + 0.5 * (u.at(i, j - 1, c) + u.at(i, j + 1, c));
      if (i == 1) r += u.at(0, j, c);
      if (i == n) r += u.at(n + 1, j, c);
      rhs[b * 3 + static_cast<std::size_t>(c)] = r;
    }
  }
  const std::vector<double> x =
      solve_block_tridiagonal(lower, diag, upper, rhs);
  for (std::size_t b = 0; b < nb; ++b)
    for (int c = 0; c < 3; ++c)
      u.at(static_cast<int>(b) + 1, j, c) = x[b * 3 + static_cast<std::size_t>(c)];
}

}  // namespace

double BtApp::run(runtime::Comm& comm, const AppConfig& config) const {
  using namespace detail;
  const ProcessGrid grid = make_process_grid(comm.size());
  const AdiNeighbors nb = adi_neighbors(grid, comm.rank());
  const int n = config.problem_size;
  BlockField u(n);

  // Rank-dependent smooth initial condition.
  for (int i = 1; i <= n; ++i)
    for (int j = 1; j <= n; ++j)
      for (int c = 0; c < 3; ++c)
        u.at(i, j, c) =
            std::sin(0.1 * (i + comm.rank())) * std::cos(0.1 * (j + c));

  const std::size_t target =
      elems_for_bytes(kFaceMsgBytes * config.payload_scale);

  // Per-iteration modeled work: the mini-grid's block solves stand in
  // for the CLASS-C-scale volume of the paper's runs (NPB BT is the most
  // compute-heavy of the trio).
  const double flops_per_phase = 5.0e8 * config.payload_scale;

  double change = 0.0;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const std::vector<double> prev = u.data;
    // x phase: exchange east/west faces, solve lines along x.
    {
      const FaceExchange faces =
          exchange_faces(comm, nb.west, nb.east, kTagX, pack_face_col(u, 1),
                         pack_face_col(u, n), target);
      unpack_face_col(u, 0, faces.from_low);
      unpack_face_col(u, n + 1, faces.from_high);
      for (int i = 1; i <= n; ++i) solve_line_x(u, i);
      comm.compute(flops_per_phase);
    }
    // y phase: exchange north/south faces, solve lines along y.
    {
      const FaceExchange faces =
          exchange_faces(comm, nb.north, nb.south, kTagY, pack_face_row(u, 1),
                         pack_face_row(u, n), target);
      unpack_face_row(u, 0, faces.from_low);
      unpack_face_row(u, n + 1, faces.from_high);
      for (int j = 1; j <= n; ++j) solve_line_y(u, j);
      comm.compute(flops_per_phase);
    }
    // Step-to-step change norm, reduced every kNormEvery steps (NPB
    // checks norms periodically, not every step).
    change = 0.0;
    for (std::size_t idx = 0; idx < u.data.size(); ++idx) {
      const double d = u.data[idx] - prev[idx];
      change += d * d;
    }
    if ((iter + 1) % kNormEvery == 0) {
      std::vector<double> acc{change};
      comm.allreduce(acc, runtime::ReduceOp::kSum);
    }
  }
  std::vector<double> acc{change};
  comm.allreduce(acc, runtime::ReduceOp::kSum);
  return acc[0];
}

trace::CommMatrix BtApp::synthetic_pattern(int num_ranks,
                                           const AppConfig& config) const {
  const double bytes =
      static_cast<double>(std::max(
          elems_for_bytes(kFaceMsgBytes * config.payload_scale),
          static_cast<std::size_t>(config.problem_size * 3))) *
      sizeof(double);
  return detail::adi_pattern(num_ranks, config.iterations, bytes, kNormEvery);
}

AppConfig BtApp::default_config(int num_ranks) const {
  AppConfig cfg;
  cfg.num_ranks = num_ranks;
  cfg.iterations = 10;
  cfg.problem_size = 16;
  return cfg;
}

}  // namespace geomap::apps
