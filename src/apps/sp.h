#pragma once
// SP: the NPB Scalar Penta-diagonal pseudo-application. Same ADI skeleton
// as BT but each directional phase solves scalar pentadiagonal systems
// along grid lines (NPB SP's factored form), with slightly smaller face
// messages — near-diagonal communication with a different weight profile
// than BT.

#include "apps/app.h"

namespace geomap::apps {

class SpApp : public App {
 public:
  std::string name() const override { return "SP"; }
  double run(runtime::Comm& comm, const AppConfig& config) const override;
  trace::CommMatrix synthetic_pattern(int num_ranks,
                                      const AppConfig& config) const override;
  AppConfig default_config(int num_ranks) const override;

  static constexpr double kFaceMsgBytes = 38.0 * 1024;
  /// The change-norm allreduce runs every kNormEvery time steps.
  static constexpr int kNormEvery = 5;
};

}  // namespace geomap::apps
