#pragma once
// FT: an NPB Fourier Transform-style workload (beyond the paper's three
// pseudo-applications — included because its communication is the
// opposite extreme of BT/SP/LU: each iteration performs a distributed 2D
// FFT whose transpose step is one large personalized all-to-all, so the
// pattern matrix is dense and uniform. Bandwidth-greedy and
// locality-greedy mappers have almost nothing to exploit; only balancing
// traffic across the fast site pairs helps.
//
// The numeric kernel is a real radix-2 complex FFT; run() returns the
// forward+inverse round-trip error (machine-precision small when the
// transform is correct — a correctness metric rather than a convergence
// metric).

#include "apps/app.h"

namespace geomap::apps {

class FtApp : public App {
 public:
  std::string name() const override { return "FT"; }
  double run(runtime::Comm& comm, const AppConfig& config) const override;
  trace::CommMatrix synthetic_pattern(int num_ranks,
                                      const AppConfig& config) const override;
  AppConfig default_config(int num_ranks) const override;
};

/// In-place iterative radix-2 FFT over interleaved (re, im) pairs.
/// `n` complex points (n must be a power of two); inverse applies the
/// conjugate transform and 1/n scaling.
void fft_radix2(std::vector<double>& interleaved, bool inverse);

}  // namespace geomap::apps
