#pragma once
// DNN: deep neural network training with parallelized stochastic gradient
// descent (paper Section 5.1, references [4, 52] — Zinkevich et al.'s
// parameter-averaging scheme). Each rank trains a small MLP on its local
// shard for an epoch, then all ranks average their weights with one
// allreduce. Computation dominates communication — the paper's Figure 3
// shows DNN's total message volume is small — so mapping gains on total
// time are modest while the communication part still benefits.

#include "apps/app.h"

namespace geomap::apps {

class DnnApp : public App {
 public:
  std::string name() const override { return "DNN"; }
  double run(runtime::Comm& comm, const AppConfig& config) const override;
  trace::CommMatrix synthetic_pattern(int num_ranks,
                                      const AppConfig& config) const override;
  AppConfig default_config(int num_ranks) const override;

  /// Layer sizes of the MLP (input ... output).
  static const std::vector<int>& layers();
  static int num_parameters();
};

}  // namespace geomap::apps
