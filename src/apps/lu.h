#pragma once
// LU: the NPB Lower-Upper Gauss-Seidel pseudo-application (paper Section
// 5.1). The real NPB LU performs SSOR sweeps whose data dependencies form
// diagonal wavefronts across a 2D process grid: each process receives
// from its north and west neighbours, relaxes its local block, and
// forwards to south and east; the backward sweep reverses the direction.
// The communication matrix is therefore near-diagonal with two message
// sizes (the paper reports 43 KB and 83 KB at 64 processes) — exactly the
// structure our mini-LU reproduces, on top of a genuine Gauss-Seidel
// relaxation of a Poisson problem so convergence is testable.

#include "apps/app.h"

namespace geomap::apps {

class LuApp : public App {
 public:
  std::string name() const override { return "LU"; }
  double run(runtime::Comm& comm, const AppConfig& config) const override;
  trace::CommMatrix synthetic_pattern(int num_ranks,
                                      const AppConfig& config) const override;
  AppConfig default_config(int num_ranks) const override;

  /// Paper-reported LU message sizes at 64 processes.
  static constexpr double kRowMsgBytes = 43.0 * 1024;  // east-west
  static constexpr double kColMsgBytes = 83.0 * 1024;  // north-south
  /// A residual allreduce runs every kResidualEvery iterations.
  static constexpr int kResidualEvery = 5;
};

}  // namespace geomap::apps
