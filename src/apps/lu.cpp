#include "apps/lu.h"

#include <cmath>

#include "apps/payload.h"
#include "apps/solvers.h"
#include "apps/synthetic.h"
#include "common/error.h"

namespace geomap::apps {

namespace {

constexpr int kTagRow = 1;  // halo travelling east/west (column data)
constexpr int kTagCol = 2;  // halo travelling north/south (row data)

/// Reverse-order Gauss-Seidel sweep (the SSOR backward half).
double gauss_seidel_sweep_reverse(std::vector<double>& u,
                                  std::span<const double> f, int nx, int ny,
                                  double h2) {
  const int stride = ny + 2;
  double residual_sq = 0.0;
  for (int i = nx; i >= 1; --i) {
    for (int j = ny; j >= 1; --j) {
      const std::size_t c = static_cast<std::size_t>(i * stride + j);
      const double fij = f[static_cast<std::size_t>((i - 1) * ny + (j - 1))];
      const double r = fij * h2 + u[c - static_cast<std::size_t>(stride)] +
                       u[c + static_cast<std::size_t>(stride)] + u[c - 1] +
                       u[c + 1] - 4.0 * u[c];
      residual_sq += r * r;
      u[c] += 0.25 * r;
    }
  }
  return residual_sq;
}

struct Halos {
  std::vector<double> row_buf;  // ny interior values of a boundary row
  std::vector<double> col_buf;  // nx interior values of a boundary column
};

}  // namespace

double LuApp::run(runtime::Comm& comm, const AppConfig& config) const {
  const ProcessGrid grid = make_process_grid(comm.size());
  const int gx = grid.x(comm.rank());
  const int gy = grid.y(comm.rank());
  const int n = config.problem_size;  // local interior edge
  const int stride = n + 2;

  // Poisson problem -lap(u) = f with unit source, zero initial guess and
  // zero physical boundaries; halos couple neighbouring blocks.
  std::vector<double> u(static_cast<std::size_t>(stride * stride), 0.0);
  std::vector<double> f(static_cast<std::size_t>(n * n), 1.0);
  const double h2 = 1.0 / static_cast<double>(n * n * grid.px * grid.py);

  const std::size_t row_elems =
      elems_for_bytes(kRowMsgBytes * config.payload_scale);
  const std::size_t col_elems =
      elems_for_bytes(kColMsgBytes * config.payload_scale);

  // Modeled CLASS-C-scale SSOR work per sweep.
  const double flops_per_sweep = 1.0e8 * config.payload_scale;

  const int north = gy > 0 ? grid.rank_of(gx, gy - 1) : -1;
  const int south = gy + 1 < grid.py ? grid.rank_of(gx, gy + 1) : -1;
  const int west = gx > 0 ? grid.rank_of(gx - 1, gy) : -1;
  const int east = gx + 1 < grid.px ? grid.rank_of(gx + 1, gy) : -1;

  auto pack_row = [&](int i) {
    std::vector<double> row(static_cast<std::size_t>(n));
    for (int j = 1; j <= n; ++j)
      row[static_cast<std::size_t>(j - 1)] = u[static_cast<std::size_t>(i * stride + j)];
    return row;
  };
  auto pack_col = [&](int j) {
    std::vector<double> col(static_cast<std::size_t>(n));
    for (int i = 1; i <= n; ++i)
      col[static_cast<std::size_t>(i - 1)] = u[static_cast<std::size_t>(i * stride + j)];
    return col;
  };
  auto unpack_row = [&](int i, const std::vector<double>& row) {
    for (int j = 1; j <= n; ++j)
      u[static_cast<std::size_t>(i * stride + j)] = row[static_cast<std::size_t>(j - 1)];
  };
  auto unpack_col = [&](int j, const std::vector<double>& col) {
    for (int i = 1; i <= n; ++i)
      u[static_cast<std::size_t>(i * stride + j)] = col[static_cast<std::size_t>(i - 1)];
  };

  double residual = 0.0;
  for (int iter = 0; iter < config.iterations; ++iter) {
    // Forward wavefront: consume fresh halos from north and west, sweep,
    // forward to south and east. (Rows travel north-south, columns
    // east-west; the two halo kinds carry the paper's two message sizes.)
    if (north >= 0) unpack_row(0, comm.recv(north, kTagCol));
    if (west >= 0) unpack_col(0, comm.recv(west, kTagRow));
    residual = gauss_seidel_sweep(u, f, n, n, h2);
    comm.compute(flops_per_sweep);
    if (south >= 0)
      comm.send(south, kTagCol, pad_payload(pack_row(n), col_elems));
    if (east >= 0)
      comm.send(east, kTagRow, pad_payload(pack_col(n), row_elems));

    // Backward wavefront (SSOR second half): from south-east corner.
    if (south >= 0) unpack_row(n + 1, comm.recv(south, kTagCol));
    if (east >= 0) unpack_col(n + 1, comm.recv(east, kTagRow));
    residual += gauss_seidel_sweep_reverse(u, f, n, n, h2);
    comm.compute(flops_per_sweep);
    if (north >= 0)
      comm.send(north, kTagCol, pad_payload(pack_row(1), col_elems));
    if (west >= 0)
      comm.send(west, kTagRow, pad_payload(pack_col(1), row_elems));

    if ((iter + 1) % kResidualEvery == 0) {
      std::vector<double> r{residual};
      comm.allreduce(r, runtime::ReduceOp::kSum);
    }
  }
  // Final global residual: the convergence metric returned to callers.
  std::vector<double> r{residual};
  comm.allreduce(r, runtime::ReduceOp::kSum);
  return r[0];
}

trace::CommMatrix LuApp::synthetic_pattern(int num_ranks,
                                           const AppConfig& config) const {
  const ProcessGrid grid = make_process_grid(num_ranks);
  trace::CommMatrix::Builder builder(num_ranks);
  // Mirror run(): payloads are padded to the target but never truncated
  // below the natural halo size.
  const auto n_elems = static_cast<std::size_t>(config.problem_size);
  const double row_bytes =
      static_cast<double>(std::max(
          elems_for_bytes(kRowMsgBytes * config.payload_scale), n_elems)) *
      sizeof(double);
  const double col_bytes =
      static_cast<double>(std::max(
          elems_for_bytes(kColMsgBytes * config.payload_scale), n_elems)) *
      sizeof(double);
  const double iters = config.iterations;

  for (int r = 0; r < num_ranks; ++r) {
    const int gx = grid.x(r);
    const int gy = grid.y(r);
    // Forward sweep sends south/east, backward sends north/west; one
    // message per direction per iteration.
    if (gy + 1 < grid.py)
      builder.add_message(r, grid.rank_of(gx, gy + 1), col_bytes * iters, iters);
    if (gx + 1 < grid.px)
      builder.add_message(r, grid.rank_of(gx + 1, gy), row_bytes * iters, iters);
    if (gy > 0)
      builder.add_message(r, grid.rank_of(gx, gy - 1), col_bytes * iters, iters);
    if (gx > 0)
      builder.add_message(r, grid.rank_of(gx - 1, gy), row_bytes * iters, iters);
  }
  // Periodic residual reductions plus the final one run() always does.
  const int reductions = config.iterations / kResidualEvery + 1;
  add_allreduce_edges(builder, num_ranks, sizeof(double), reductions);
  return builder.build();
}

AppConfig LuApp::default_config(int num_ranks) const {
  AppConfig cfg;
  cfg.num_ranks = num_ranks;
  cfg.iterations = 10;
  cfg.problem_size = 24;
  return cfg;
}

}  // namespace geomap::apps
