#pragma once
// Shared scaffolding for the ADI-style NPB apps (BT and SP): both sweep a
// 2D process grid alternating x- and y-direction implicit line solves,
// exchanging face halos with the four grid neighbours each phase — the
// communication skeleton that makes their pattern matrices near-diagonal
// (paper Figure 3). The apps differ in their field width (BT: 3-component
// blocks, SP: scalar) and line solver (block-tridiagonal vs
// pentadiagonal).

#include <vector>

#include "apps/app.h"
#include "apps/payload.h"
#include "apps/synthetic.h"
#include "runtime/comm.h"

namespace geomap::apps::detail {

constexpr int kTagX = 11;
constexpr int kTagY = 12;

struct AdiNeighbors {
  int west = -1, east = -1, north = -1, south = -1;
};

inline AdiNeighbors adi_neighbors(const ProcessGrid& grid, int rank) {
  AdiNeighbors nb;
  const int gx = grid.x(rank);
  const int gy = grid.y(rank);
  if (gx > 0) nb.west = grid.rank_of(gx - 1, gy);
  if (gx + 1 < grid.px) nb.east = grid.rank_of(gx + 1, gy);
  if (gy > 0) nb.north = grid.rank_of(gx, gy - 1);
  if (gy + 1 < grid.py) nb.south = grid.rank_of(gx, gy + 1);
  return nb;
}

/// Exchange one face (content) with a neighbour pair; returns the two
/// received faces (empty when the neighbour does not exist). Messages are
/// padded to `target_elems`.
struct FaceExchange {
  std::vector<double> from_low;   // from west (x) / north (y)
  std::vector<double> from_high;  // from east (x) / south (y)
};

inline FaceExchange exchange_faces(runtime::Comm& comm, int low, int high,
                                   int tag, std::span<const double> to_low,
                                   std::span<const double> to_high,
                                   std::size_t target_elems) {
  FaceExchange result;
  // Deadlock-free symmetric exchange: post both sends, then receive.
  runtime::Request send_low, send_high;
  if (low >= 0)
    send_low = comm.isend(low, tag, pad_payload(to_low, target_elems));
  if (high >= 0)
    send_high = comm.isend(high, tag, pad_payload(to_high, target_elems));
  if (low >= 0) result.from_low = comm.recv(low, tag);
  if (high >= 0) result.from_high = comm.recv(high, tag);
  if (low >= 0) comm.wait(send_low);
  if (high >= 0) comm.wait(send_high);
  return result;
}

/// Synthetic pattern of an ADI app: one message per directed grid edge
/// per iteration in each direction's phase, plus the periodic
/// change-norm allreduce (every `norm_every` steps, and once at the
/// end — mirroring BtApp/SpApp::run).
inline trace::CommMatrix adi_pattern(int num_ranks, int iterations,
                                     double msg_bytes, int norm_every) {
  const ProcessGrid grid = make_process_grid(num_ranks);
  trace::CommMatrix::Builder builder(num_ranks);
  const double iters = iterations;
  for (int r = 0; r < num_ranks; ++r) {
    const AdiNeighbors nb = adi_neighbors(grid, r);
    for (const int peer : {nb.west, nb.east, nb.north, nb.south}) {
      if (peer >= 0) builder.add_message(r, peer, msg_bytes * iters, iters);
    }
  }
  const int reductions = iterations / norm_every + 1;
  add_allreduce_edges(builder, num_ranks, sizeof(double), reductions);
  return builder.build();
}

}  // namespace geomap::apps::detail
