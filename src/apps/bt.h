#pragma once
// BT: the NPB Block Tri-diagonal pseudo-application. Alternating-
// direction implicit time stepping where each directional phase solves
// block-tridiagonal systems along grid lines (our mini version uses
// 3x3 blocks instead of NPB's 5x5), with face halo exchanges between the
// four 2D-grid neighbours before each phase and a per-step norm
// reduction. The resulting pattern matrix is near-diagonal.

#include "apps/app.h"

namespace geomap::apps {

class BtApp : public App {
 public:
  std::string name() const override { return "BT"; }
  double run(runtime::Comm& comm, const AppConfig& config) const override;
  trace::CommMatrix synthetic_pattern(int num_ranks,
                                      const AppConfig& config) const override;
  AppConfig default_config(int num_ranks) const override;

  static constexpr double kFaceMsgBytes = 58.0 * 1024;
  /// The change-norm allreduce runs every kNormEvery time steps.
  static constexpr int kNormEvery = 5;
};

}  // namespace geomap::apps
