#pragma once
// Synthetic communication-pattern construction.
//
// The scale experiments (paper Section 5.4, up to 8192 processes) need
// CG/AG matrices without executing thread-per-rank runs. These helpers
// emit the exact edges the minimpi collectives produce — same binomial
// trees, same ring, same pairwise exchange — so a synthetic pattern for
// N ranks matches what profiling a real run would capture (asserted by
// the integration tests at small N).

#include "common/types.h"
#include "trace/comm_matrix.h"

namespace geomap::apps {

/// Edges of a binomial-tree broadcast of `bytes` from `root`, repeated
/// `times`.
void add_bcast_edges(trace::CommMatrix::Builder& builder, int p, int root,
                     Bytes bytes, double times = 1.0);

/// Edges of a binomial-tree reduction of `bytes` to `root`.
void add_reduce_edges(trace::CommMatrix::Builder& builder, int p, int root,
                      Bytes bytes, double times = 1.0);

/// Recursive-doubling allreduce with non-power-of-two fold (mirrors the
/// runtime's allreduce).
void add_allreduce_edges(trace::CommMatrix::Builder& builder, int p,
                         Bytes bytes, double times = 1.0);

/// Dissemination barrier edges (zero-byte messages, latency-only cost).
void add_barrier_edges(trace::CommMatrix::Builder& builder, int p,
                       double times = 1.0);

/// Binomial scatter from `root` of p blocks of `block_bytes` (payloads
/// halve down the tree, mirroring Comm::scatter).
void add_scatter_edges(trace::CommMatrix::Builder& builder, int p, int root,
                       Bytes block_bytes, double times = 1.0);

/// Binomial gather to `root` (payloads grow up the tree, mirroring
/// Comm::gather).
void add_gather_edges(trace::CommMatrix::Builder& builder, int p, int root,
                      Bytes block_bytes, double times = 1.0);

/// reduce-to-0 + scatter (the runtime's reduce_scatter).
void add_reduce_scatter_edges(trace::CommMatrix::Builder& builder, int p,
                              Bytes block_bytes, double times = 1.0);

/// Linear-chain inclusive scan (mirrors Comm::scan).
void add_scan_edges(trace::CommMatrix::Builder& builder, int p, Bytes bytes,
                    double times = 1.0);

/// Ring allgather: each rank forwards p-1 blocks to its right neighbour.
void add_allgather_edges(trace::CommMatrix::Builder& builder, int p,
                         Bytes block_bytes, double times = 1.0);

/// Pairwise-exchange all-to-all: every ordered pair once per round.
/// Matches the runtime's alltoall but produces O(p^2) edges — use only
/// at executable scales.
void add_alltoall_edges(trace::CommMatrix::Builder& builder, int p,
                        Bytes block_bytes, double times = 1.0);

/// Bruck-algorithm all-to-all: ceil(log2 p) rounds of (p/2)-block
/// exchanges with power-of-two-distant partners. O(p log p) edges and the
/// same total traffic order — the representation the large-N synthetic
/// patterns use, since an 8192-process pairwise pattern would hold 67M
/// edges.
void add_alltoall_bruck_edges(trace::CommMatrix::Builder& builder, int p,
                              Bytes block_bytes, double times = 1.0);

}  // namespace geomap::apps
