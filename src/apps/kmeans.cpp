#include "apps/kmeans.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "apps/synthetic.h"
#include "common/error.h"
#include "common/rng.h"

namespace geomap::apps {

namespace {

constexpr int kTagCounts = 21;
constexpr int kTagPoints = 22;

using Point = std::array<double, KMeansApp::kDims>;

double dist_sq(const Point& a, std::span<const double> centroid) {
  double d = 0;
  for (int c = 0; c < KMeansApp::kDims; ++c) {
    const double diff = a[static_cast<std::size_t>(c)] - centroid[static_cast<std::size_t>(c)];
    d += diff * diff;
  }
  return d;
}

/// True blob centers: well separated on a simplex-ish layout.
Point true_center(int cluster) {
  Point p{};
  for (int c = 0; c < KMeansApp::kDims; ++c)
    p[static_cast<std::size_t>(c)] =
        10.0 * std::cos(1.7 * cluster + 0.9 * c) +
        ((cluster >> c) & 1 ? 8.0 : -8.0);
  return p;
}

/// Owner ranks of a cluster: the contiguous region [c*p/k, (c+1)*p/k).
int owner_of(int cluster, std::uint64_t point_hash, int p) {
  const int k = KMeansApp::kClusters;
  const int base = static_cast<int>(
      static_cast<std::int64_t>(cluster) * p / k);
  const int width = std::max(
      1, static_cast<int>(static_cast<std::int64_t>(cluster + 1) * p / k) -
             base);
  return base + static_cast<int>(point_hash % static_cast<std::uint64_t>(width));
}

}  // namespace

double KMeansApp::run(runtime::Comm& comm, const AppConfig& config) const {
  const int p = comm.size();
  const int rank = comm.rank();
  const int k = kClusters;
  const int d = kDims;

  // Geo-skewed blobs: each rank draws points preferring the clusters
  // "resident" near it (data locality, as in geo-distributed storage).
  Rng rng(config.seed * 1000003ULL + static_cast<std::uint64_t>(rank));
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(config.problem_size));
  for (int i = 0; i < config.problem_size; ++i) {
    const int local_cluster = (rank * k) / std::max(1, p);
    const int cluster = rng.uniform() < 0.7
                            ? local_cluster % k
                            : static_cast<int>(rng.uniform_index(k));
    Point pt = true_center(cluster);
    for (int c = 0; c < d; ++c) pt[static_cast<std::size_t>(c)] += rng.normal() * 1.5;
    points.push_back(pt);
  }

  // Initial centroids broadcast from rank 0.
  std::vector<double> centroids(static_cast<std::size_t>(k * d), 0.0);
  if (rank == 0) {
    Rng crng(config.seed);
    for (int c = 0; c < k; ++c) {
      const Point t = true_center(c);
      for (int j = 0; j < d; ++j)
        centroids[static_cast<std::size_t>(c * d + j)] =
            t[static_cast<std::size_t>(j)] + crng.normal() * 4.0;
    }
  }
  comm.bcast(centroids, 0);

  double global_inertia = 0.0;
  for (int iter = 0; iter < config.iterations; ++iter) {
    // 1. Assign points to the nearest centroid (real compute).
    std::vector<int> assignment(points.size());
    double inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        const double dd = dist_sq(
            points[i],
            std::span<const double>(centroids.data() + c * d,
                                    static_cast<std::size_t>(d)));
        if (dd < best_d) {
          best_d = dd;
          best = c;
        }
      }
      assignment[i] = best;
      inertia += best_d;
    }
    // Assignment flops, modeled at the paper's full-dataset scale (the
    // public n-body dataset is ~10^7 points; we hold problem_size).
    comm.compute(2e9);

    // 2. Global centroid update: allreduce of per-cluster sums + counts.
    std::vector<double> sums(static_cast<std::size_t>(k * (d + 1)), 0.0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const int c = assignment[i];
      for (int j = 0; j < d; ++j)
        sums[static_cast<std::size_t>(c * (d + 1) + j)] +=
            points[i][static_cast<std::size_t>(j)];
      sums[static_cast<std::size_t>(c * (d + 1) + d)] += 1.0;
    }
    comm.allreduce(sums, runtime::ReduceOp::kSum);
    for (int c = 0; c < k; ++c) {
      const double count = sums[static_cast<std::size_t>(c * (d + 1) + d)];
      if (count > 0) {
        for (int j = 0; j < d; ++j)
          centroids[static_cast<std::size_t>(c * d + j)] =
              sums[static_cast<std::size_t>(c * (d + 1) + j)] / count;
      }
    }

    // 3. Cluster-major repartition: ship each point toward its cluster's
    // owner region (move computation to data locality). Counts first
    // (fixed-block alltoall), then point payloads peer-to-peer.
    std::vector<std::vector<double>> outbound(static_cast<std::size_t>(p));
    std::vector<Point> keep;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::uint64_t h =
          static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL +
          static_cast<std::uint64_t>(rank);
      const int dst = owner_of(assignment[i], h, p);
      if (dst == rank) {
        keep.push_back(points[i]);
      } else {
        auto& buf = outbound[static_cast<std::size_t>(dst)];
        for (int j = 0; j < d; ++j)
          buf.push_back(points[i][static_cast<std::size_t>(j)]);
      }
    }
    std::vector<double> counts(static_cast<std::size_t>(p), 0.0);
    for (int dst = 0; dst < p; ++dst)
      counts[static_cast<std::size_t>(dst)] =
          static_cast<double>(outbound[static_cast<std::size_t>(dst)].size());
    const std::vector<double> incoming_counts = comm.alltoall(counts, 1);

    std::vector<runtime::Request> pending;
    for (int dst = 0; dst < p; ++dst) {
      if (dst == rank || outbound[static_cast<std::size_t>(dst)].empty())
        continue;
      pending.push_back(
          comm.isend(dst, kTagPoints, outbound[static_cast<std::size_t>(dst)]));
    }
    for (int src = 0; src < p; ++src) {
      if (src == rank || incoming_counts[static_cast<std::size_t>(src)] <= 0)
        continue;
      const std::vector<double> in = comm.recv(src, kTagPoints);
      for (std::size_t off = 0; off + d <= in.size(); off += d) {
        Point pt{};
        for (int j = 0; j < d; ++j)
          pt[static_cast<std::size_t>(j)] = in[off + static_cast<std::size_t>(j)];
        keep.push_back(pt);
      }
    }
    for (auto& req : pending) comm.wait(req);
    points = std::move(keep);

    // 4. Convergence bookkeeping.
    std::vector<double> gi{inertia};
    comm.allreduce(gi, runtime::ReduceOp::kSum);
    global_inertia = gi[0];
  }
  return global_inertia;
}

trace::CommMatrix KMeansApp::synthetic_pattern(int num_ranks,
                                               const AppConfig& config) const {
  const int p = num_ranks;
  const int k = kClusters;
  const int d = kDims;
  trace::CommMatrix::Builder builder(p);
  const double iters = config.iterations;

  // Centroid-sum + inertia allreduces, counts alltoall, initial bcast.
  add_bcast_edges(builder, p, 0, static_cast<double>(k * d) * sizeof(double));
  add_allreduce_edges(builder, p, static_cast<double>(k * (d + 1)) * sizeof(double), iters);
  add_allreduce_edges(builder, p, sizeof(double), iters);
  // Counts exchange, Bruck-modeled so the pattern stays O(p log p) at
  // the 8192-process simulation scales.
  add_alltoall_bruck_edges(builder, p, sizeof(double), iters);

  // Repartition flows: ~30% of each rank's points leave for their
  // cluster's owner region each iteration. As in run()'s data
  // generation, 70% of a rank's points belong to the locally resident
  // cluster (whose owners are nearby ranks) and the rest are spread —
  // volumes are deterministic in the seed but irregular across rank
  // pairs: the "complex" pattern with a data-locality backbone.
  Rng rng(config.seed ^ 0xabcdef12345ULL);
  const double bytes_per_point = static_cast<double>(d) * sizeof(double);
  for (int r = 0; r < p; ++r) {
    const int flows = std::min(p - 1, 3 * k);
    const int local_cluster = (r * k) / std::max(1, p) % k;
    for (int f = 0; f < flows; ++f) {
      const int cluster = rng.uniform() < 0.7
                              ? local_cluster
                              : static_cast<int>(rng.uniform_index(k));
      const int dst = owner_of(cluster,
                               rng(), p);
      if (dst == r) continue;
      const double pts =
          0.3 * config.problem_size / flows * (0.25 + 3.0 * rng.uniform());
      builder.add_message(r, dst, pts * bytes_per_point * iters, iters);
    }
  }
  return builder.build();
}

AppConfig KMeansApp::default_config(int num_ranks) const {
  AppConfig cfg;
  cfg.num_ranks = num_ranks;
  cfg.iterations = 10;
  cfg.problem_size = 8192;  // points per rank (stands in for the paper's GB-scale n-body data)
  return cfg;
}

}  // namespace geomap::apps
