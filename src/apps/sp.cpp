#include "apps/sp.h"

#include <cmath>

#include "apps/adi_common.h"
#include "apps/solvers.h"

namespace geomap::apps {

namespace {

/// Scalar field with a two-deep halo (the pentadiagonal stencil reaches
/// two points out; we keep one halo layer and fold the second into the
/// system's boundary, which preserves diagonal dominance).
struct ScalarField {
  int n;
  std::vector<double> data;

  explicit ScalarField(int size)
      : n(size), data(static_cast<std::size_t>((size + 2) * (size + 2)), 0.0) {}

  double& at(int i, int j) {
    return data[static_cast<std::size_t>(i * (n + 2) + j)];
  }
  double at(int i, int j) const {
    return data[static_cast<std::size_t>(i * (n + 2) + j)];
  }
};

/// Pentadiagonal implicit solve along x for row i: diagonally dominant
/// bands (6, -2, -2, 0.5, 0.5), rhs from the previous iterate plus halo
/// end contributions.
void solve_line_x(ScalarField& u, int i) {
  const int n = u.n;
  const auto nn = static_cast<std::size_t>(n);
  std::vector<double> d2(nn, 0.5), d1(nn, -2.0), d0(nn, 6.0), u1(nn, -2.0),
      u2(nn, 0.5), rhs(nn, 0.0);
  for (int j = 1; j <= n; ++j) {
    double r = u.at(i, j) + 0.5 * (u.at(i - 1, j) + u.at(i + 1, j));
    if (j == 1) r += 2.0 * u.at(i, 0);
    if (j == n) r += 2.0 * u.at(i, n + 1);
    rhs[static_cast<std::size_t>(j - 1)] = r;
  }
  const std::vector<double> x = solve_pentadiagonal(d2, d1, d0, u1, u2, rhs);
  for (int j = 1; j <= n; ++j) u.at(i, j) = x[static_cast<std::size_t>(j - 1)];
}

void solve_line_y(ScalarField& u, int j) {
  const int n = u.n;
  const auto nn = static_cast<std::size_t>(n);
  std::vector<double> d2(nn, 0.5), d1(nn, -2.0), d0(nn, 6.0), u1(nn, -2.0),
      u2(nn, 0.5), rhs(nn, 0.0);
  for (int i = 1; i <= n; ++i) {
    double r = u.at(i, j) + 0.5 * (u.at(i, j - 1) + u.at(i, j + 1));
    if (i == 1) r += 2.0 * u.at(0, j);
    if (i == n) r += 2.0 * u.at(n + 1, j);
    rhs[static_cast<std::size_t>(i - 1)] = r;
  }
  const std::vector<double> x = solve_pentadiagonal(d2, d1, d0, u1, u2, rhs);
  for (int i = 1; i <= n; ++i) u.at(i, j) = x[static_cast<std::size_t>(i - 1)];
}

std::vector<double> pack_row(const ScalarField& u, int i) {
  std::vector<double> out(static_cast<std::size_t>(u.n));
  for (int j = 1; j <= u.n; ++j) out[static_cast<std::size_t>(j - 1)] = u.at(i, j);
  return out;
}
std::vector<double> pack_col(const ScalarField& u, int j) {
  std::vector<double> out(static_cast<std::size_t>(u.n));
  for (int i = 1; i <= u.n; ++i) out[static_cast<std::size_t>(i - 1)] = u.at(i, j);
  return out;
}
void unpack_row(ScalarField& u, int i, const std::vector<double>& in) {
  if (in.empty()) return;
  for (int j = 1; j <= u.n; ++j) u.at(i, j) = in[static_cast<std::size_t>(j - 1)];
}
void unpack_col(ScalarField& u, int j, const std::vector<double>& in) {
  if (in.empty()) return;
  for (int i = 1; i <= u.n; ++i) u.at(i, j) = in[static_cast<std::size_t>(i - 1)];
}

}  // namespace

double SpApp::run(runtime::Comm& comm, const AppConfig& config) const {
  using namespace detail;
  const ProcessGrid grid = make_process_grid(comm.size());
  const AdiNeighbors nb = adi_neighbors(grid, comm.rank());
  const int n = config.problem_size;
  ScalarField u(n);

  for (int i = 1; i <= n; ++i)
    for (int j = 1; j <= n; ++j)
      u.at(i, j) = std::sin(0.05 * (i * j + comm.rank()));

  const std::size_t target =
      elems_for_bytes(kFaceMsgBytes * config.payload_scale);

  // Modeled CLASS-C-scale line-solve work per directional phase.
  const double flops_per_phase = 3.0e8 * config.payload_scale;

  double change = 0.0;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const std::vector<double> prev = u.data;
    {
      const FaceExchange faces = exchange_faces(
          comm, nb.west, nb.east, kTagX, pack_col(u, 1), pack_col(u, n),
          target);
      unpack_col(u, 0, faces.from_low);
      unpack_col(u, n + 1, faces.from_high);
      for (int i = 1; i <= n; ++i) solve_line_x(u, i);
      comm.compute(flops_per_phase);
    }
    {
      const FaceExchange faces = exchange_faces(
          comm, nb.north, nb.south, kTagY, pack_row(u, 1), pack_row(u, n),
          target);
      unpack_row(u, 0, faces.from_low);
      unpack_row(u, n + 1, faces.from_high);
      for (int j = 1; j <= n; ++j) solve_line_y(u, j);
      comm.compute(flops_per_phase);
    }
    change = 0.0;
    for (std::size_t idx = 0; idx < u.data.size(); ++idx) {
      const double d = u.data[idx] - prev[idx];
      change += d * d;
    }
    if ((iter + 1) % kNormEvery == 0) {
      std::vector<double> acc{change};
      comm.allreduce(acc, runtime::ReduceOp::kSum);
    }
  }
  std::vector<double> acc{change};
  comm.allreduce(acc, runtime::ReduceOp::kSum);
  return acc[0];
}

trace::CommMatrix SpApp::synthetic_pattern(int num_ranks,
                                           const AppConfig& config) const {
  const double bytes =
      static_cast<double>(std::max(
          elems_for_bytes(kFaceMsgBytes * config.payload_scale),
          static_cast<std::size_t>(config.problem_size))) *
      sizeof(double);
  return detail::adi_pattern(num_ranks, config.iterations, bytes, kNormEvery);
}

AppConfig SpApp::default_config(int num_ranks) const {
  AppConfig cfg;
  cfg.num_ranks = num_ranks;
  cfg.iterations = 10;
  cfg.problem_size = 24;
  return cfg;
}

}  // namespace geomap::apps
