#include "common/rng.h"

#include <cmath>

namespace geomap {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_normal_ = false;
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) return 0;
  const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

Rng Rng::split() {
  const std::uint64_t derived = (*this)() ^ 0xa0761d6478bd642fULL;
  return Rng(derived);
}

}  // namespace geomap
