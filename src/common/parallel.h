#pragma once
// Shared-memory parallel primitives.
//
// geomap parallelizes embarrassingly-parallel inner loops — the κ! group
// order search, Monte Carlo sampling, and batched cost evaluation — over a
// lazily created pool of std::jthread workers. On a single-core host the
// pool degenerates to serial execution with no thread overhead.

#include <cstddef>
#include <functional>

namespace geomap {

/// Number of workers parallel_for will use (hardware_concurrency, >= 1).
std::size_t parallel_workers();

/// Override the worker count (0 restores the hardware default). Intended
/// for tests and benchmarks; not thread-safe against concurrent
/// parallel_for calls.
void set_parallel_workers(std::size_t n);

/// Invoke fn(i) for every i in [begin, end), possibly concurrently.
/// fn must be safe to call from multiple threads; iteration order is
/// unspecified. Exceptions thrown by fn are rethrown (first one wins).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Chunked variant: fn(chunk_begin, chunk_end) over contiguous chunks.
/// Prefer this for tight numeric loops where per-index std::function call
/// overhead would dominate.
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace geomap
