#pragma once
// Small row-major dense matrix used for the M×M site-level latency and
// bandwidth matrices (M is at most a few dozen sites, so dense storage is
// the right tool; process-level communication matrices are sparse and live
// in trace/comm_matrix.h).

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace geomap {

template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;

  DenseMatrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static DenseMatrix square(std::size_t n, T init = T{}) {
    return DenseMatrix(n, n, init);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    GEOMAP_CHECK_MSG(r < rows_ && c < cols_,
                     "index (" << r << "," << c << ") out of " << rows_ << "x"
                               << cols_);
    return data_[r * cols_ + c];
  }

  const T& operator()(std::size_t r, std::size_t c) const {
    GEOMAP_CHECK_MSG(r < rows_ && c < cols_,
                     "index (" << r << "," << c << ") out of " << rows_ << "x"
                               << cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked access for hot loops.
  T& at_unchecked(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& at_unchecked(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

  void fill(T value) { data_.assign(data_.size(), value); }

  bool operator==(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using Matrix = DenseMatrix<double>;

}  // namespace geomap
