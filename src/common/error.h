#pragma once
// Checked error handling for geomap.
//
// Library code throws geomap::Error (an std::runtime_error) on contract
// violations; the GEOMAP_CHECK* macros build a message with the failing
// expression and source location.

#include <sstream>
#include <stdexcept>
#include <string>

namespace geomap {

/// Base exception for all geomap errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a mapping violates capacity or pin constraints.
class ConstraintViolation : public Error {
 public:
  explicit ConstraintViolation(const std::string& what) : Error(what) {}
};

namespace detail {
inline std::string check_failure_message(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "geomap check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  throw Error(check_failure_message(expr, file, line, msg));
}

[[noreturn]] inline void throw_invalid_argument(const char* expr,
                                                const char* file, int line,
                                                const std::string& msg) {
  throw InvalidArgument(check_failure_message(expr, file, line, msg));
}
}  // namespace detail

}  // namespace geomap

#define GEOMAP_CHECK(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::geomap::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define GEOMAP_CHECK_MSG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream geomap_os_;                                     \
      geomap_os_ << msg;                                                 \
      ::geomap::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                            geomap_os_.str());           \
    }                                                                    \
  } while (0)

/// Precondition check on caller-supplied arguments: throws
/// geomap::InvalidArgument (an Error) instead of plain Error so callers
/// can distinguish bad input from internal invariant failures.
#define GEOMAP_CHECK_ARG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream geomap_os_;                                        \
      geomap_os_ << msg;                                                    \
      ::geomap::detail::throw_invalid_argument(#expr, __FILE__, __LINE__,   \
                                               geomap_os_.str());           \
    }                                                                       \
  } while (0)
