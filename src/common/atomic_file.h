#pragma once
// Atomic file replacement: write to `<path>.tmp`, then rename over the
// destination. A reader (or a crash) never sees a half-written artifact
// — the same pattern the --obs-dir exporters use for events.jsonl, made
// shared so every artifact writer (and the WAL snapshot path) does the
// same thing instead of hand-rolling an ofstream.

#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.h"

namespace geomap {

/// Open `<path>.tmp`, hand the stream to `fn`, then atomically rename
/// onto `path`. Throws geomap::Error when the temporary cannot be
/// opened; filesystem rename errors propagate as std::filesystem errors.
template <typename Fn>
void write_file_atomic(const std::string& path, Fn&& fn) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    GEOMAP_CHECK_MSG(os.good(), "cannot open " << tmp << " for writing");
    fn(os);
    GEOMAP_CHECK_MSG(os.good(), "write to " << tmp << " failed");
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace geomap
