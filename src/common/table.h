#pragma once
// Aligned text tables and CSV output for the benchmark harnesses. Every
// bench binary prints the rows of the paper table / the series of the paper
// figure through this writer so outputs are uniform and diffable.

#include <iosfwd>
#include <string>
#include <vector>

namespace geomap {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell; doubles use fixed precision.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& cell(const std::string& s);
    RowBuilder& cell(double v, int precision = 2);
    RowBuilder& cell(long long v);
    RowBuilder& cell(int v) { return cell(static_cast<long long>(v)); }
    RowBuilder& cell(std::size_t v) {
      return cell(static_cast<long long>(v));
    }
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  std::size_t num_rows() const { return rows_.size(); }

  /// Render as an aligned, pipe-separated text table.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180-ish; cells with commas/quotes get quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for ad-hoc cells).
std::string format_double(double v, int precision = 2);

/// Print a section banner ("== title ==") used by bench binaries.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace geomap
