#pragma once
// Streaming JSON emitter shared by the bench harnesses and the
// observability exporters: handles escaping, nesting, comma placement,
// and round-trip double formatting so no caller hand-rolls `{\"...\"`
// string concatenation. Misuse (value without a key inside an object,
// unbalanced end_*) throws geomap::Error at the offending call, not at
// parse time downstream.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace geomap {

class JsonWriter {
 public:
  /// Writes to `os` (not owned; must outlive the writer). `pretty`
  /// inserts newlines and two-space indentation.
  explicit JsonWriter(std::ostream& os, bool pretty = true);

  // -- Structure --
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next member (only valid directly inside an object).
  JsonWriter& key(std::string_view k);

  // -- Scalars --
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splice a preformatted JSON value verbatim (caller guarantees it is
  /// itself valid JSON).
  JsonWriter& raw(std::string_view json);

  // -- key + scalar in one call --
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// True once the single top-level value is complete and balanced.
  bool done() const;

  /// JSON string escaping of `s` (without the surrounding quotes).
  static std::string escape(std::string_view s);

  /// Shortest decimal form of `v` that parses back to the same double
  /// (non-finite values are not representable in JSON; callers get "null"
  /// via value(double)).
  static std::string format_double(double v);

 private:
  enum class Scope { kObject, kArray };

  void before_value();
  void newline_indent();

  std::ostream* os_;
  bool pretty_;
  struct Level {
    Scope scope;
    bool has_members = false;
  };
  std::vector<Level> stack_;
  bool pending_key_ = false;
  bool root_written_ = false;
};

}  // namespace geomap
