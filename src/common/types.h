#pragma once
// Fundamental index and unit types shared across geomap libraries.

#include <cstdint>
#include <vector>

namespace geomap {

/// Index of a parallel process (paper: vertex of the communication graph G).
using ProcessId = std::int32_t;

/// Index of a cloud site / region (paper: vertex of the network graph T).
using SiteId = std::int32_t;

/// Index of a site group produced by the k-means grouping optimization.
using GroupId = std::int32_t;

/// A process→site assignment; element i is the site hosting process i
/// (paper: the vector P). kUnmapped marks a not-yet-placed process.
using Mapping = std::vector<SiteId>;

inline constexpr SiteId kUnmapped = -1;

/// Constraint vector (paper: C). kUnconstrained (== kUnmapped) means the
/// process may be placed anywhere; any other value pins it to that site.
inline constexpr SiteId kUnconstrained = -1;
using ConstraintVector = std::vector<SiteId>;

/// Bytes of communication volume.
using Bytes = double;

/// Seconds of (virtual or wall) time.
using Seconds = double;

/// Bandwidth in bytes per second.
using BytesPerSecond = double;

inline constexpr double kMiB = 1024.0 * 1024.0;

}  // namespace geomap
