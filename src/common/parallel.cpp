#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace geomap {

namespace {
std::size_t g_worker_override = 0;

std::size_t hardware_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}
}  // namespace

std::size_t parallel_workers() {
  return g_worker_override != 0 ? g_worker_override : hardware_workers();
}

void set_parallel_workers(std::size_t n) { g_worker_override = n; }

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t workers = std::min(parallel_workers(), total);

  if (workers <= 1) {
    fn(begin, end);
    return;
  }

  // Dynamic scheduling over fixed-size chunks: workers pull the next chunk
  // from an atomic cursor, which balances irregular per-chunk cost (e.g.
  // different group orders explore differently shaped search trees).
  const std::size_t chunk =
      std::max<std::size_t>(1, total / (workers * 8));
  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk);
      if (lo >= end) return;
      const std::size_t hi = std::min(lo + chunk, end);
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace geomap
