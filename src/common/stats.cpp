#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace geomap {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::vector<double> sample, double pct) {
  GEOMAP_CHECK_ARG(!sample.empty(), "percentile of empty sample");
  // Rejects NaN too: !(NaN >= 0) is true.
  GEOMAP_CHECK_ARG(pct >= 0.0 && pct <= 100.0,
                   "percentile pct must be in [0, 100], got " << pct);
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double pos = pct / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  GEOMAP_CHECK_MSG(!sorted_.empty(), "CDF over empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  GEOMAP_CHECK_MSG(q >= 0.0 && q <= 1.0, "q=" << q);
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double EmpiricalCdf::min() const { return sorted_.front(); }
double EmpiricalCdf::max() const { return sorted_.back(); }

}  // namespace geomap
