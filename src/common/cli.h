#pragma once
// Minimal command-line flag parser for the example and bench binaries.
//
// Supports --name=value, --name value, and boolean --flag forms. Unknown
// flags are an error so typos fail fast; "--help" prints registered flags.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace geomap {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Register flags with defaults before calling parse().
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parse argv. Returns false (after printing usage) when --help was
  /// given; throws InvalidArgument on unknown flags or bad values.
  bool parse(int argc, char** argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True when `name` is a registered flag (of any kind).
  bool has(const std::string& name) const;

  /// Basename of argv[0] as seen by parse() — the producing binary's
  /// name, stamped into exported artifacts as run metadata.
  std::string program_name() const;

  void print_usage(std::ostream& os) const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string value;  // canonical textual value
    std::string help;
  };

  const Flag& find(const std::string& name, Kind kind) const;

  std::string description_;
  std::string program_name_;
  std::map<std::string, Flag> flags_;
};

}  // namespace geomap
