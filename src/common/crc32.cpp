#include "common/crc32.h"

#include <array>

namespace geomap {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, std::string_view data) {
  const auto& t = table();
  for (const char ch : data) {
    state = t[(state ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::string_view data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace geomap
