#pragma once
// Wall-clock timing for the optimization-overhead experiments (Figure 4)
// and the micro benchmarks.

#include <chrono>

namespace geomap {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace geomap
