#pragma once
// Descriptive statistics used by the calibration, evaluation, and Monte
// Carlo components: running accumulators, percentiles, and empirical CDFs.

#include <cstddef>
#include <vector>

namespace geomap {

/// Welford-style running accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance (0 for n < 2).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean (paper error bars), 0 for n < 2.
  double stderr_mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample by linear interpolation over the sorted copy
/// (pct 0 = min, 100 = max). Throws InvalidArgument on an empty sample or
/// when `pct` is outside [0, 100] (NaN included) — out-of-range requests
/// are caller bugs, never clamped silently.
double percentile(std::vector<double> sample, double pct);

/// Empirical cumulative distribution function over a fixed sample.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> sample);

  /// P(X <= x) over the sample.
  double at(double x) const;

  /// Inverse CDF (quantile), q in [0,1].
  double quantile(double q) const;

  double min() const;
  double max() const;
  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace geomap
