#include "common/cli.h"

#include <iostream>
#include <ostream>

#include "common/error.h"

namespace geomap {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kInt, std::to_string(default_value), help};
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  flags_[name] = Flag{Kind::kDouble, std::to_string(default_value), help};
}

void CliParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  flags_[name] = Flag{Kind::kString, default_value, help};
}

void CliParser::add_bool(const std::string& name, bool default_value,
                         const std::string& help) {
  flags_[name] = Flag{Kind::kBool, default_value ? "true" : "false", help};
}

bool CliParser::parse(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    }
    GEOMAP_CHECK_MSG(arg.rfind("--", 0) == 0, "unexpected argument: " << arg);
    arg = arg.substr(2);

    std::string name;
    std::string value;
    bool has_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      name = arg;
    }

    auto it = flags_.find(name);
    if (it == flags_.end())
      throw InvalidArgument("unknown flag --" + name + " (try --help)");

    if (!has_value) {
      if (it->second.kind == Kind::kBool) {
        value = "true";
      } else {
        GEOMAP_CHECK_MSG(i + 1 < argc, "flag --" << name << " needs a value");
        value = argv[++i];
      }
    }

    // Validate eagerly so bad input fails at parse time.
    try {
      switch (it->second.kind) {
        case Kind::kInt:
          (void)std::stoll(value);
          break;
        case Kind::kDouble:
          (void)std::stod(value);
          break;
        case Kind::kBool:
          GEOMAP_CHECK(value == "true" || value == "false" || value == "1" ||
                       value == "0");
          break;
        case Kind::kString:
          break;
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw InvalidArgument("bad value '" + value + "' for flag --" + name);
    }
    it->second.value = value;
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name,
                                       Kind kind) const {
  auto it = flags_.find(name);
  GEOMAP_CHECK_MSG(it != flags_.end(), "flag --" << name << " not registered");
  GEOMAP_CHECK_MSG(it->second.kind == kind,
                   "flag --" << name << " accessed with wrong type");
  return it->second;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::kInt).value);
}

double CliParser::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::kDouble).value);
}

std::string CliParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string& v = find(name, Kind::kBool).value;
  return v == "true" || v == "1";
}

bool CliParser::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliParser::program_name() const {
  const auto slash = program_name_.find_last_of('/');
  return slash == std::string::npos ? program_name_
                                    : program_name_.substr(slash + 1);
}

void CliParser::print_usage(std::ostream& os) const {
  os << description_ << "\n\nUsage: " << program_name_ << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.value << ")\n      "
       << flag.help << "\n";
  }
}

}  // namespace geomap
