#pragma once
// Deterministic pseudo-random number generation.
//
// geomap pins every stochastic component (calibration noise, random
// baseline mappings, Monte Carlo sampling, workload synthesis) to an
// explicitly seeded xoshiro256** stream so experiments are reproducible
// bit-for-bit across runs. Streams can be split for parallel use.

#include <array>
#include <cstdint>
#include <vector>

namespace geomap {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, adapted). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize state from a 64-bit seed via splitmix64 expansion.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// A new independent stream (jump-equivalent: derived by hashing).
  Rng split();

  /// Fisher–Yates in-place shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace geomap
