#include "common/json_reader.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace geomap {

bool JsonValue::as_bool() const {
  GEOMAP_CHECK_ARG(is_bool(), "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  GEOMAP_CHECK_ARG(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  GEOMAP_CHECK_ARG(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  GEOMAP_CHECK_ARG(is_array(), "JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  GEOMAP_CHECK_ARG(is_object(), "JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  GEOMAP_CHECK_ARG(v != nullptr,
                   "JSON object has no member '" << std::string(key) << "'");
  return *v;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.items_ = std::move(items);
  return out;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(members);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue document() {
    const JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    // Line/column are recomputed only on the error path — the hot loop
    // stays a plain byte scan.
    int line = 1;
    int column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream os;
    os << "JSON: " << what << " at byte " << pos_ << " (line " << line
       << ", column " << column << ")";
    throw JsonParseError(os.str(), pos_, line, column);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue value() {
    const char c = peek();
    switch (c) {
      case '{':
        if (depth_ >= kJsonMaxDepth) fail("nesting too deep");
        return object();
      case '[':
        if (depth_ >= kJsonMaxDepth) fail("nesting too deep");
        return array();
      case '"':
        return JsonValue::make_string(string());
      case 't':
        if (literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (literal("null")) return JsonValue::make_null();
        fail("invalid literal");
      default:
        return JsonValue::make_number(number());
    }
  }

  JsonValue object() {
    expect('{');
    ++depth_;
    std::vector<std::pair<std::string, JsonValue>> members;
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      expect(':');
      members.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    --depth_;
    return JsonValue::make_object(std::move(members));
  }

  JsonValue array() {
    expect('[');
    ++depth_;
    std::vector<JsonValue> items;
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    --depth_;
    return JsonValue::make_array(std::move(items));
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (the writer only escapes
          // control characters, so surrogate pairs do not occur in our
          // own artifacts; lone surrogates are passed through encoded).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape");
      }
    }
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("invalid number");
    }
    if (!std::isfinite(v)) {
      // Overflowing literals (1e999) fold to infinity under strtod;
      // downstream arithmetic would propagate it silently. Reject.
      pos_ = start;
      fail("number out of range");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GEOMAP_CHECK_ARG(in.good(), "cannot open " << path << " for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_json(buffer.str());
  } catch (const JsonParseError& e) {
    throw JsonParseError(path + ": " + e.what(), e.offset(), e.line(),
                         e.column());
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(path + ": " + e.what());
  }
}

}  // namespace geomap
