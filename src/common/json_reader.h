#pragma once
// Minimal recursive-descent JSON parser — the read side of
// common/json_writer. Parses exactly the RFC 8259 grammar the repo's
// exporters emit into an owning JsonValue tree. Used by the obsctl
// toolkit to load metrics / critpath artifacts back; it is not a
// general-purpose streaming parser (documents are a few MB at most).
//
// Malformed input throws geomap::JsonParseError (an InvalidArgument)
// carrying the byte offset plus 1-based line/column, so a truncated or
// corrupted artifact fails loudly at load time — with a pointable
// location — instead of producing a silently partial analysis. The
// parser is hardened against hostile input: nesting is capped (a
// deep-bracket bomb cannot overflow the stack), numbers must be finite
// (1e999 is rejected, not folded to infinity), and every escape and
// truncation path throws instead of reading past the buffer.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"

namespace geomap {

/// Malformed JSON: InvalidArgument plus the parse position. `offset` is
/// the byte index into the document; `line`/`column` are 1-based.
class JsonParseError : public InvalidArgument {
 public:
  JsonParseError(const std::string& what, std::size_t offset, int line,
                 int column)
      : InvalidArgument(what), offset_(offset), line_(line), column_(column) {}

  std::size_t offset() const { return offset_; }
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  std::size_t offset_;
  int line_;
  int column_;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw InvalidArgument on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  /// Object members in document order (duplicate keys are kept as-is).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Member lookup (first match); nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Member lookup that throws InvalidArgument when the key is absent.
  const JsonValue& at(std::string_view key) const;

  /// `find(key)->as_number()` with a default when absent.
  double number_or(std::string_view key, double fallback) const;
  /// `find(key)->as_string()` with a default when absent.
  std::string string_or(std::string_view key,
                        const std::string& fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Containers deeper than this throw JsonParseError ("nesting too
/// deep") instead of recursing toward a stack overflow.
inline constexpr int kJsonMaxDepth = 256;

/// Parse one complete JSON document (trailing whitespace allowed, any
/// other trailing content throws JsonParseError).
JsonValue parse_json(std::string_view text);

/// Read and parse `path`; throws InvalidArgument when the file cannot be
/// opened and JsonParseError (prefixed with the path) when it does not
/// contain one valid JSON document.
JsonValue parse_json_file(const std::string& path);

}  // namespace geomap
