#include "common/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/error.h"

namespace geomap {

JsonWriter::JsonWriter(std::ostream& os, bool pretty)
    : os_(&os), pretty_(pretty) {}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  // Integers (common for counts) print without an exponent or trailing
  // fraction; everything else gets the shortest round-trip form.
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return std::string(buf) + ".0";
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  *os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) *os_ << "  ";
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    GEOMAP_CHECK_MSG(!root_written_,
                     "JsonWriter: more than one top-level value");
    root_written_ = true;
    return;
  }
  Level& level = stack_.back();
  if (level.scope == Scope::kObject) {
    GEOMAP_CHECK_MSG(pending_key_,
                     "JsonWriter: value inside an object needs a key() first");
    pending_key_ = false;
  } else {
    GEOMAP_CHECK_MSG(!pending_key_, "JsonWriter: key() inside an array");
    if (level.has_members) *os_ << ',';
    newline_indent();
  }
  level.has_members = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  *os_ << '{';
  stack_.push_back({Scope::kObject});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  GEOMAP_CHECK_MSG(!stack_.empty() && stack_.back().scope == Scope::kObject,
                   "JsonWriter: end_object without matching begin_object");
  GEOMAP_CHECK_MSG(!pending_key_, "JsonWriter: dangling key at end_object");
  const bool had_members = stack_.back().has_members;
  stack_.pop_back();
  if (had_members) newline_indent();
  *os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  *os_ << '[';
  stack_.push_back({Scope::kArray});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  GEOMAP_CHECK_MSG(!stack_.empty() && stack_.back().scope == Scope::kArray,
                   "JsonWriter: end_array without matching begin_array");
  const bool had_members = stack_.back().has_members;
  stack_.pop_back();
  if (had_members) newline_indent();
  *os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  GEOMAP_CHECK_MSG(!stack_.empty() && stack_.back().scope == Scope::kObject,
                   "JsonWriter: key() outside an object");
  GEOMAP_CHECK_MSG(!pending_key_, "JsonWriter: two keys in a row");
  if (stack_.back().has_members) *os_ << ',';
  newline_indent();
  *os_ << '"' << escape(k) << (pretty_ ? "\": " : "\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  *os_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v))
    *os_ << "null";  // JSON has no Infinity/NaN
  else
    *os_ << format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  *os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  *os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  *os_ << json;
  return *this;
}

bool JsonWriter::done() const { return root_written_ && stack_.empty(); }

}  // namespace geomap
