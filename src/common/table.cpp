#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace geomap {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GEOMAP_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  GEOMAP_CHECK_MSG(row.size() == header_.size(),
                   "row width " << row.size() << " != header width "
                                << header_.size());
  rows_.push_back(std::move(row));
}

Table::RowBuilder& Table::RowBuilder::cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  cells_.push_back(format_double(v, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << " |\n";
  };

  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) -> std::string {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace geomap
