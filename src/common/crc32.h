#pragma once
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. Used as the
// per-record self-check in the write-ahead log (src/recover/wal.h) and
// for cheap content digests: a torn or bit-flipped WAL line must fail
// its checksum rather than replay as a plausible record.

#include <cstdint>
#include <string_view>

namespace geomap {

/// Incremental update: feed successive buffers with the running value
/// (start from crc32_init()) and finalize with crc32_final().
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, std::string_view data);
std::uint32_t crc32_final(std::uint32_t state);

/// One-shot checksum of `data`.
std::uint32_t crc32(std::string_view data);

}  // namespace geomap
