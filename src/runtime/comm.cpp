#include "runtime/comm.h"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>

#include "common/error.h"
#include "obs/collector.h"

namespace geomap::runtime {

namespace {
void apply_op(std::vector<double>& acc, const std::vector<double>& in,
              ReduceOp op) {
  GEOMAP_CHECK_MSG(acc.size() == in.size(), "reduce size mismatch");
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::max(acc[i], in[i]);
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::min(acc[i], in[i]);
      break;
  }
}
}  // namespace

Request Comm::isend(int dst, int tag, std::span<const double> data) {
  GEOMAP_CHECK_MSG(dst >= 0 && dst < size_, "bad destination " << dst);
  GEOMAP_CHECK_MSG(dst != rank_, "self-send not supported");
  const Bytes bytes = static_cast<Bytes>(data.size() * sizeof(double));
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.payload.assign(data.begin(), data.end());
  m.sender_ready = now_;
  m.sender_event = crit_last_;
  m.rendezvous = std::make_shared<RendezvousState>();
  Request request(m.rendezvous, sends_posted_++);

  stats_.messages_sent += 1;
  stats_.bytes_sent += bytes;
  if (runtime_->collector_ != nullptr) {
    runtime_->obs_.messages->add();
    runtime_->obs_.bytes->add(static_cast<std::uint64_t>(bytes));
  }
  if (runtime_->profile_ != nullptr) {
    runtime_->profile_->recorder(rank_).record_send(dst, bytes);
  }
  if (runtime_->ops_ != nullptr) {
    runtime_->ops_->rank(rank_).push_back(trace::Op::send(dst, tag, bytes));
  }
  runtime_->mailboxes_[static_cast<std::size_t>(dst)].deposit(std::move(m));
  return request;
}

void Comm::wait(Request& request) {
  GEOMAP_CHECK_MSG(request.valid(), "wait on invalid request");
  if (runtime_->ops_ != nullptr) {
    runtime_->ops_->rank(rank_).push_back(
        trace::Op::wait(request.send_index()));
  }
  const Seconds completion = request.wait();
  const Seconds before = now_;
  now_ = std::max(now_, completion);
  stats_.comm_seconds += now_ - before;
  // The clock now depends on the remote recv that completed the
  // rendezvous; chain it so later events on this rank point at it.
  if (request.completion_event() >= 0) crit_last_ = request.completion_event();
}

void Comm::send(int dst, int tag, std::span<const double> data) {
  Request r = isend(dst, tag, data);
  wait(r);
}

std::vector<double> Comm::recv(int src, int tag) {
  GEOMAP_CHECK_MSG(src >= 0 && src < size_, "bad source " << src);
  if (runtime_->ops_ != nullptr) {
    runtime_->ops_->rank(rank_).push_back(trace::Op::recv(src, tag));
  }
  Message m = runtime_->mailboxes_[static_cast<std::size_t>(rank_)].match(src, tag);
  const Bytes bytes = static_cast<Bytes>(m.payload.size() * sizeof(double));
  const Seconds ready = std::max(m.sender_ready, now_);
  const SiteId src_site = runtime_->site_of(src);
  const SiteId dst_site = runtime_->site_of(rank_);
  Seconds start = ready;
  Seconds wire = runtime_->transfer_time(src, rank_, bytes);
  const Seconds healthy_wire = wire;
  const bool crit =
      runtime_->collector_ != nullptr && runtime_->crit_run_ >= 0;
  const std::int64_t crit_id =
      crit ? runtime_->collector_->critpath().next_id() : -1;
  std::int64_t link_pred = -1;
  if (runtime_->fault_plan_ != nullptr && src_site != dst_site) {
    // Inter-site transfers consult the fault plan at their virtual issue
    // time. A lost (or outage-blocked) attempt costs detect_timeout plus
    // exponential backoff; the decision is a pure hash of (plan seed,
    // link, receive stream, attempt), so reruns are bit-identical. After
    // max_retries the transfer is forced through — runs always terminate;
    // surviving a permanent outage is the remap policy's job, not the
    // transport's — and accounted as a timeout.
    const fault::FaultPlan& plan = *runtime_->fault_plan_;
    const fault::RetryPolicy& policy = runtime_->retry_policy_;
    const std::uint64_t seq = recv_seq_[static_cast<std::size_t>(src)]++;
    const std::uint64_t stream =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 42) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank_)) << 21) ^
        seq;
    for (int attempt = 0;; ++attempt) {
      const bool down =
          plan.site_down(src_site, start) || plan.site_down(dst_site, start);
      const bool lost =
          down || plan.message_lost(src_site, dst_site, start, stream,
                                    static_cast<std::uint64_t>(attempt));
      if (!lost) break;
      if (attempt >= policy.max_retries) {
        stats_.timeouts += 1;
        if (runtime_->collector_ != nullptr) {
          runtime_->obs_.timeouts->add();
          runtime_
              ->timeline_series(runtime_->tl_timeout_, "link.timeout",
                                src_site, dst_site)
              .record(start, 1.0);
          runtime_->collector_->events().emit(
              start, obs::EventSeverity::kError, "runtime", "timeout",
              {obs::field("src_site", src_site),
               obs::field("dst_site", dst_site), obs::field("rank", rank_),
               obs::field("peer", src),
               obs::field("attempts", attempt)});
        }
        break;
      }
      const Seconds delay = policy.detect_timeout + policy.backoff(attempt);
      if (runtime_->collector_ != nullptr) {
        runtime_->obs_.retries->add();
        if (down)
          runtime_->obs_.outage_blocks->add();
        else
          runtime_->obs_.losses->add();
        runtime_->obs_.backoff_seconds->record(delay);
        runtime_
            ->timeline_series(runtime_->tl_retry_, "link.retry", src_site,
                              dst_site)
            .record(start, 1.0);
        runtime_->collector_->tracer().record_virtual(
            rank_, down ? "outage-stall" : "retry", "fault", start,
            start + delay,
            "{\"src\":" + std::to_string(src) +
                ",\"attempt\":" + std::to_string(attempt) + "}");
        runtime_->collector_->events().emit(
            start, obs::EventSeverity::kWarn, "runtime", "retry",
            {obs::field("src_site", src_site), obs::field("dst_site", dst_site),
             obs::field("rank", rank_), obs::field("peer", src),
             obs::field("attempt", attempt),
             obs::field("cause", down ? "outage" : "loss"),
             obs::field("delay", delay)});
      }
      start += delay;
      stats_.retries += 1;
      stats_.fault_seconds += delay;
    }
    const fault::LinkCondition cond =
        plan.link_condition(src_site, dst_site, start);
    if (cond.latency_factor != 1.0 || cond.bandwidth_factor != 1.0) {
      const Seconds degraded =
          runtime_->model_.latency(src_site, dst_site) * cond.latency_factor +
          bytes / (runtime_->model_.bandwidth(src_site, dst_site) *
                   cond.bandwidth_factor);
      stats_.fault_seconds += degraded - wire;
      if (runtime_->collector_ != nullptr)
        runtime_->obs_.degraded_extra_seconds->record(degraded - wire);
      wire = degraded;
    }
  }
  if (runtime_->collector_ != nullptr && src_site != dst_site) {
    // Observed-vs-calibrated wire inflation at the transfer's issue time:
    // exactly 1.0 on a healthy link, so the degradation detector needs no
    // oracle baseline.
    runtime_
        ->timeline_series(runtime_->tl_latency_, "link.latency_ratio",
                          src_site, dst_site)
        .record(start, wire / healthy_wire);
  }
  const Seconds completion =
      src_site == dst_site
          ? start + wire  // intra-site LAN: full bisection, no queueing
          : runtime_->acquire_link(src_site, dst_site, start, wire, crit_id,
                                   crit ? &link_pred : nullptr);
  const Seconds before = now_;
  now_ = completion;
  stats_.comm_seconds += now_ - before;
  if (crit) {
    // Happened-before node for this delivery with the exact decomposition
    // of end − ready: retry/backoff delays and degraded wire extra are
    // fault stall, link queueing is contention stall, the healthy wire
    // time splits into its latency (alpha) and volume (beta) terms.
    obs::CritEvent e;
    e.id = crit_id;
    e.run = runtime_->crit_run_;
    e.seq = crit_seq_++;
    e.kind = "recv";
    e.rank = rank_;
    e.peer = src;
    e.src_site = src_site;
    e.dst_site = dst_site;
    e.messages = 1;
    e.bytes = bytes;
    e.ready = ready;
    e.start = completion - wire;
    e.end = completion;
    e.alpha_seconds = runtime_->model_.latency(src_site, dst_site);
    e.beta_seconds = healthy_wire - e.alpha_seconds;
    e.fault_stall_seconds = (start - ready) + (wire - healthy_wire);
    e.contention_stall_seconds = completion - start - wire;
    e.pred_program = crit_last_;
    e.pred_message = m.sender_event;
    e.pred_link = link_pred;
    runtime_->collector_->critpath().add(std::move(e));
    crit_last_ = crit_id;
  }
  if (runtime_->collector_ != nullptr && src_site != dst_site) {
    // One WAN transfer on the receiver's virtual timeline; retry and
    // outage-stall spans recorded above nest inside [before, completion].
    runtime_->collector_->tracer().record_virtual(
        rank_, "recv", "comm", before, completion,
        "{\"src\":" + std::to_string(src) +
            ",\"bytes\":" + std::to_string(static_cast<long long>(bytes)) +
            "}");
  }
  m.rendezvous->complete(completion, crit_id);
  return std::move(m.payload);
}

std::vector<double> Comm::sendrecv(int dst, int send_tag,
                                   std::span<const double> data, int src,
                                   int recv_tag) {
  Request r = isend(dst, send_tag, data);
  std::vector<double> in = recv(src, recv_tag);
  wait(r);
  return in;
}

void Comm::compute(double flops) {
  GEOMAP_CHECK_MSG(flops >= 0, "negative flops");
  const Seconds t = flops / (runtime_->gflops_ * 1e9);
  if (runtime_->ops_ != nullptr && t > 0) {
    runtime_->ops_->rank(rank_).push_back(trace::Op::compute(t));
  }
  now_ += t;
  stats_.compute_seconds += t;
}

void Comm::advance(Seconds seconds) {
  GEOMAP_CHECK_MSG(seconds >= 0, "negative advance");
  now_ += seconds;
}

void Comm::barrier() {
  // Dissemination barrier: ceil(log2 p) rounds of symmetric exchange.
  const int tag = collective_tag();
  for (int stride = 1; stride < size_; stride <<= 1) {
    const int to = (rank_ + stride) % size_;
    const int from = (rank_ - stride % size_ + size_) % size_;
    (void)sendrecv(to, tag, {}, from, tag);
  }
}

void Comm::bcast(std::vector<double>& data, int root) {
  GEOMAP_CHECK_MSG(root >= 0 && root < size_, "bad root " << root);
  const int tag = collective_tag();
  // Binomial tree on ranks relative to root.
  const int vrank = (rank_ - root + size_) % size_;
  int mask = 1;
  while (mask < size_) mask <<= 1;
  mask >>= 1;
  // Receive once from the parent, then forward down the tree.
  bool received = (vrank == 0);
  for (int stride = mask; stride >= 1; stride >>= 1) {
    if (received) {
      if (vrank + stride < size_ && vrank % (stride << 1) == 0) {
        const int dst = (vrank + stride + root) % size_;
        send(dst, tag, data);
      }
    } else if (vrank % (stride << 1) == stride) {
      const int src = (vrank - stride + root) % size_;
      data = recv(src, tag);
      received = true;
    }
  }
}

void Comm::reduce(std::vector<double>& data, ReduceOp op, int root) {
  GEOMAP_CHECK_MSG(root >= 0 && root < size_, "bad root " << root);
  const int tag = collective_tag();
  const int vrank = (rank_ - root + size_) % size_;
  // Binomial tree, leaves inward.
  for (int stride = 1; stride < size_; stride <<= 1) {
    if (vrank % (stride << 1) == 0) {
      if (vrank + stride < size_) {
        const int src = (vrank + stride + root) % size_;
        const std::vector<double> in = recv(src, tag);
        apply_op(data, in, op);
      }
    } else if (vrank % (stride << 1) == stride) {
      const int dst = (vrank - stride + root) % size_;
      send(dst, tag, data);
      break;  // contributed; done with this reduction
    }
  }
}

void Comm::allreduce(std::vector<double>& data, ReduceOp op) {
  // Recursive doubling with the standard non-power-of-two fold: extra
  // ranks fold into partners below the largest power of two, the doubling
  // runs there, and results are returned. log2(p)+2 rounds; low strides
  // stay intra-site under block-style mappings, which is exactly the
  // structure mapping optimization exploits.
  const int tag = collective_tag();
  int p2 = 1;
  while (p2 * 2 <= size_) p2 *= 2;
  const int rem = size_ - p2;

  if (rank_ >= p2) {
    send(rank_ - p2, tag, data);
    data = recv(rank_ - p2, tag);  // result arrives after the doubling
    return;
  }
  if (rank_ < rem) {
    const std::vector<double> in = recv(rank_ + p2, tag);
    apply_op(data, in, op);
  }
  for (int mask = 1; mask < p2; mask <<= 1) {
    const int partner = rank_ ^ mask;
    const std::vector<double> in = sendrecv(partner, tag, data, partner, tag);
    apply_op(data, in, op);
  }
  if (rank_ < rem) send(rank_ + p2, tag, data);
}

std::vector<double> Comm::scatter(std::span<const double> sendbuf,
                                  std::size_t block_elems, int root) {
  GEOMAP_CHECK_MSG(root >= 0 && root < size_, "bad root " << root);
  const int tag = collective_tag();
  const int p = size_;
  const int vrank = (rank_ - root + p) % p;

  // `held` carries the blocks for vranks [vrank, vrank + count).
  std::vector<double> held;
  int count = 0;
  if (vrank == 0) {
    GEOMAP_CHECK_MSG(sendbuf.size() ==
                         static_cast<std::size_t>(p) * block_elems,
                     "scatter buffer size mismatch");
    held.resize(sendbuf.size());
    for (int v = 0; v < p; ++v) {
      const auto r = static_cast<std::size_t>((v + root) % p);
      std::copy(sendbuf.begin() + static_cast<std::ptrdiff_t>(r * block_elems),
                sendbuf.begin() +
                    static_cast<std::ptrdiff_t>((r + 1) * block_elems),
                held.begin() + static_cast<std::ptrdiff_t>(
                                   static_cast<std::size_t>(v) * block_elems));
    }
    count = p;
  }

  int mask = 1;
  while (mask < p) mask <<= 1;
  for (int stride = mask; stride >= 1; stride >>= 1) {
    if (count > 0) {
      if (vrank % (stride << 1) == 0 && vrank + stride < p &&
          count > stride) {
        const int nsend = count - stride;
        const std::span<const double> out(
            held.data() + static_cast<std::size_t>(stride) * block_elems,
            static_cast<std::size_t>(nsend) * block_elems);
        send((vrank + stride + root) % p, tag, out);
        count = stride;
      }
    } else if (vrank % (stride << 1) == stride) {
      held = recv((vrank - stride + root) % p, tag);
      count = static_cast<int>(held.size() / block_elems);
    }
  }
  return std::vector<double>(held.begin(),
                             held.begin() + static_cast<std::ptrdiff_t>(
                                                block_elems));
}

std::vector<double> Comm::gather(std::span<const double> mine, int root) {
  GEOMAP_CHECK_MSG(root >= 0 && root < size_, "bad root " << root);
  const int tag = collective_tag();
  const int p = size_;
  const int vrank = (rank_ - root + p) % p;
  const std::size_t block = mine.size();

  // Blocks for vranks [vrank, vrank + count) accumulate bottom-up.
  std::vector<double> held(mine.begin(), mine.end());
  for (int stride = 1; stride < p; stride <<= 1) {
    if (vrank % (stride << 1) == stride) {
      send((vrank - stride + root) % p, tag, held);
      break;
    }
    if (vrank % (stride << 1) == 0 && vrank + stride < p) {
      const std::vector<double> in = recv((vrank + stride + root) % p, tag);
      held.insert(held.end(), in.begin(), in.end());
    }
  }
  if (vrank != 0) return {};

  // Rotate vrank order back to rank order.
  std::vector<double> out(static_cast<std::size_t>(p) * block);
  for (int v = 0; v < p; ++v) {
    const auto r = static_cast<std::size_t>((v + root) % p);
    std::copy(held.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(v) * block),
              held.begin() + static_cast<std::ptrdiff_t>(
                                 (static_cast<std::size_t>(v) + 1) * block),
              out.begin() + static_cast<std::ptrdiff_t>(r * block));
  }
  return out;
}

std::vector<double> Comm::reduce_scatter(std::span<const double> data,
                                         std::size_t block_elems,
                                         ReduceOp op) {
  GEOMAP_CHECK_MSG(data.size() == static_cast<std::size_t>(size_) * block_elems,
                   "reduce_scatter buffer size mismatch");
  // reduce-to-0 + scatter: correct for any rank count; a recursive-
  // halving variant would halve bandwidth for power-of-two sizes.
  std::vector<double> acc(data.begin(), data.end());
  reduce(acc, op, 0);
  return scatter(acc, block_elems, 0);
}

void Comm::scan(std::vector<double>& data, ReduceOp op) {
  // Inclusive prefix over the rank chain.
  const int tag = collective_tag();
  if (rank_ > 0) {
    const std::vector<double> in = recv(rank_ - 1, tag);
    apply_op(data, in, op);
  }
  if (rank_ + 1 < size_) send(rank_ + 1, tag, data);
}

std::vector<double> Comm::allgather(std::span<const double> mine) {
  // Ring algorithm: p-1 steps, each forwarding the block received last.
  const int tag = collective_tag();
  const std::size_t block = mine.size();
  std::vector<double> all(static_cast<std::size_t>(size_) * block);
  std::copy(mine.begin(), mine.end(),
            all.begin() + static_cast<std::ptrdiff_t>(
                              static_cast<std::size_t>(rank_) * block));
  const int right = (rank_ + 1) % size_;
  const int left = (rank_ - 1 + size_) % size_;
  int have = rank_;  // index of the block forwarded next
  for (int step = 0; step < size_ - 1; ++step) {
    const std::span<const double> out(
        all.data() + static_cast<std::size_t>(have) * block, block);
    const std::vector<double> in = sendrecv(right, tag, out, left, tag);
    have = (have - 1 + size_) % size_;
    std::copy(in.begin(), in.end(),
              all.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(have) * block));
  }
  return all;
}

std::vector<double> Comm::alltoall(std::span<const double> sendbuf,
                                   std::size_t block_elems) {
  GEOMAP_CHECK_MSG(sendbuf.size() ==
                       static_cast<std::size_t>(size_) * block_elems,
                   "alltoall buffer size mismatch");
  // Small blocks at scale: Bruck's algorithm (ceil(log2 p) rounds) —
  // p-1 pairwise rounds of tiny messages would be pure latency.
  if (block_elems * sizeof(double) <= kBruckThresholdBytes && size_ >= 8)
    return alltoall_bruck(sendbuf, block_elems);
  const int tag = collective_tag();
  std::vector<double> recvbuf(sendbuf.size());
  // Own block copies locally.
  std::copy(sendbuf.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(rank_) * block_elems),
            sendbuf.begin() + static_cast<std::ptrdiff_t>(
                                  (static_cast<std::size_t>(rank_) + 1) *
                                  block_elems),
            recvbuf.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(rank_) * block_elems));
  // Pairwise exchange: at step s, swap blocks with (rank + s) mod p /
  // (rank - s) mod p.
  for (int step = 1; step < size_; ++step) {
    const int to = (rank_ + step) % size_;
    const int from = (rank_ - step + size_) % size_;
    const std::vector<double> in = sendrecv(
        to, tag,
        sendbuf.subspan(static_cast<std::size_t>(to) * block_elems,
                        block_elems),
        from, tag);
    std::copy(in.begin(), in.end(),
              recvbuf.begin() + static_cast<std::ptrdiff_t>(
                                    static_cast<std::size_t>(from) *
                                    block_elems));
  }
  return recvbuf;
}

std::vector<double> Comm::alltoall_bruck(std::span<const double> sendbuf,
                                         std::size_t block_elems) {
  const int tag = collective_tag();
  const int p = size_;
  const std::size_t block = block_elems;

  // Phase 1: local rotation — temp[i] holds my block for (rank + i) % p.
  std::vector<double> temp(sendbuf.size());
  for (int i = 0; i < p; ++i) {
    const auto src = static_cast<std::size_t>((rank_ + i) % p);
    std::copy(sendbuf.begin() + static_cast<std::ptrdiff_t>(src * block),
              sendbuf.begin() + static_cast<std::ptrdiff_t>((src + 1) * block),
              temp.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(i) * block));
  }

  // Phase 2: log rounds — forward every block whose index has bit k set.
  for (int pof2 = 1; pof2 < p; pof2 <<= 1) {
    std::vector<std::size_t> indices;
    for (int i = 0; i < p; ++i) {
      if (i & pof2) indices.push_back(static_cast<std::size_t>(i));
    }
    std::vector<double> out;
    out.reserve(indices.size() * block);
    for (const std::size_t i : indices) {
      out.insert(out.end(),
                 temp.begin() + static_cast<std::ptrdiff_t>(i * block),
                 temp.begin() + static_cast<std::ptrdiff_t>((i + 1) * block));
    }
    const int to = (rank_ + pof2) % p;
    const int from = (rank_ - pof2 + p) % p;
    const std::vector<double> in = sendrecv(to, tag, out, from, tag);
    for (std::size_t n = 0; n < indices.size(); ++n) {
      std::copy(in.begin() + static_cast<std::ptrdiff_t>(n * block),
                in.begin() + static_cast<std::ptrdiff_t>((n + 1) * block),
                temp.begin() + static_cast<std::ptrdiff_t>(indices[n] * block));
    }
  }

  // Phase 3: inverse rotation — the block received from rank j sits at
  // temp[(rank - j + p) % p].
  std::vector<double> recvbuf(sendbuf.size());
  for (int j = 0; j < p; ++j) {
    const auto i = static_cast<std::size_t>((rank_ - j + p) % p);
    std::copy(temp.begin() + static_cast<std::ptrdiff_t>(i * block),
              temp.begin() + static_cast<std::ptrdiff_t>((i + 1) * block),
              recvbuf.begin() + static_cast<std::ptrdiff_t>(
                                    static_cast<std::size_t>(j) * block));
  }
  return recvbuf;
}

Runtime::Runtime(net::NetworkModel model, Mapping rank_to_site, double gflops,
                 trace::ApplicationProfile* profile)
    : model_(std::move(model)),
      rank_to_site_(std::move(rank_to_site)),
      gflops_(gflops),
      profile_(profile),
      mailboxes_(rank_to_site_.size()) {
  GEOMAP_CHECK_MSG(!rank_to_site_.empty(), "empty rank mapping");
  for (const SiteId s : rank_to_site_) {
    GEOMAP_CHECK_MSG(s >= 0 && s < model_.num_sites(),
                     "rank mapped to invalid site " << s);
  }
  GEOMAP_CHECK_MSG(profile_ == nullptr ||
                       profile_->num_ranks() == num_ranks(),
                   "profile rank count mismatch");
  const auto m = static_cast<std::size_t>(model_.num_sites());
  links_.reserve(m * m);
  for (std::size_t i = 0; i < m * m; ++i)
    links_.push_back(std::make_unique<LinkState>());
}

void Runtime::set_collector(obs::Collector* collector) {
  collector_ = collector;
  if (collector_ == nullptr) {
    obs_ = ObsHandles{};
    tl_latency_.clear();
    tl_retry_.clear();
    tl_timeout_.clear();
    return;
  }
  const std::size_t pairs =
      static_cast<std::size_t>(model_.num_sites()) *
      static_cast<std::size_t>(model_.num_sites());
  tl_latency_ = TimelineCache(pairs);
  tl_retry_ = TimelineCache(pairs);
  tl_timeout_ = TimelineCache(pairs);
  obs::MetricsRegistry& m = collector_->metrics();
  obs_.messages = &m.counter("comm.messages_sent");
  obs_.bytes = &m.counter("comm.bytes_sent");
  obs_.retries = &m.counter("comm.retries");
  obs_.timeouts = &m.counter("comm.timeouts");
  obs_.losses = &m.counter("fault.losses");
  obs_.outage_blocks = &m.counter("fault.outage_blocks");
  obs_.backoff_seconds = &m.histogram("comm.backoff_seconds");
  obs_.degraded_extra_seconds = &m.histogram("fault.degraded_extra_seconds");
  obs_.rank_finish_seconds = &m.histogram("runtime.rank_finish_seconds");
  obs_.rank_comm_seconds = &m.histogram("runtime.rank_comm_seconds");
}

obs::TimeSeries& Runtime::timeline_series(TimelineCache& cache,
                                          const char* name, SiteId src_site,
                                          SiteId dst_site) {
  const std::size_t idx =
      static_cast<std::size_t>(src_site) *
          static_cast<std::size_t>(model_.num_sites()) +
      static_cast<std::size_t>(dst_site);
  obs::TimeSeries* s = cache[idx].load(std::memory_order_acquire);
  if (s == nullptr) {
    s = &collector_->timeline().series(name,
                                       obs::link_label(src_site, dst_site));
    cache[idx].store(s, std::memory_order_release);
  }
  return *s;
}

Seconds Runtime::acquire_link(SiteId src_site, SiteId dst_site, Seconds ready,
                              Seconds wire_seconds, std::int64_t event_id,
                              std::int64_t* pred_out) {
  LinkState& link =
      *links_[static_cast<std::size_t>(src_site) *
                  static_cast<std::size_t>(model_.num_sites()) +
              static_cast<std::size_t>(dst_site)];
  std::lock_guard<std::mutex> lock(link.mutex);

  // First-fit gap search over the sorted busy list.
  Seconds start = ready;
  std::int64_t pred = -1;
  std::size_t insert_at = 0;
  for (; insert_at < link.busy.size(); ++insert_at) {
    const BusyInterval& b = link.busy[insert_at];
    if (start + wire_seconds <= b.start) break;  // fits before this one
    if (b.end > start) pred = b.event;  // this occupancy pushed us back
    start = std::max(start, b.end);
  }
  const Seconds completion = start + wire_seconds;
  link.busy.insert(link.busy.begin() + static_cast<std::ptrdiff_t>(insert_at),
                   BusyInterval{start, completion, event_id});
  if (pred_out != nullptr) *pred_out = (start > ready) ? pred : -1;
  return completion;
}

RunResult Runtime::run(const std::function<void(Comm&)>& body) {
  const int p = num_ranks();
  obs::Span run_span;
  if (collector_ != nullptr) {
    run_span = collector_->tracer().span("runtime/run", "runtime");
    run_span.set_args_json("{\"ranks\":" + std::to_string(p) + "}");
    // Per-message event recording is a forensic recorder; a disabled
    // critpath leaves crit_run_ at -1, which every record site checks.
    crit_run_ = collector_->critpath_enabled()
                    ? collector_->critpath().begin_run("runtime/run")
                    : -1;
  } else {
    crit_run_ = -1;
  }
  // Each run starts at virtual time zero with idle links and mailboxes.
  for (auto& link : links_) link->busy.clear();
  for (auto& mailbox : mailboxes_) mailbox.reset();
  std::vector<RankStats> stats(static_cast<std::size_t>(p));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(this, r, p);
      try {
        body(comm);
        comm.stats_.finish_time = comm.now_;
        stats[static_cast<std::size_t>(r)] = comm.stats();
        if (collector_ != nullptr && crit_run_ >= 0) {
          // Zero-length terminal marker: trailing compute after the last
          // message lands in the path's local component, and the latest
          // finish event's end is exactly the run's makespan.
          obs::CritEvent e;
          e.id = collector_->critpath().next_id();
          e.run = crit_run_;
          e.seq = comm.crit_seq_++;
          e.kind = "finish";
          e.rank = r;
          e.ready = e.start = e.end = comm.now_;
          e.pred_program = comm.crit_last_;
          collector_->critpath().add(std::move(e));
        }
      } catch (const RankAborted&) {
        // Teardown signal from a peer's failure: nothing to record.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Release every peer blocked in recv/wait/collectives so the run
        // terminates instead of hanging on the dead rank.
        for (auto& mailbox : mailboxes_) mailbox.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < p; ++r) {
    const auto& e = errors[static_cast<std::size_t>(r)];
    if (!e) continue;
    const std::string prefix = "rank " + std::to_string(r) + ": ";
    try {
      std::rethrow_exception(e);
    } catch (const InvalidArgument& ex) {
      throw InvalidArgument(prefix + ex.what());
    } catch (const ConstraintViolation& ex) {
      throw ConstraintViolation(prefix + ex.what());
    } catch (const Error& ex) {
      throw Error(prefix + ex.what());
    } catch (const std::exception& ex) {
      // Foreign exception type: keep the original reachable via the nested
      // pointer while still reporting which rank failed.
      std::throw_with_nested(Error(prefix + ex.what()));
    } catch (...) {
      throw Error(prefix + "unknown exception");
    }
  }

  RunResult result;
  result.ranks = std::move(stats);
  for (const RankStats& rs : result.ranks) {
    result.makespan = std::max(result.makespan, rs.finish_time);
    result.max_comm_seconds = std::max(result.max_comm_seconds, rs.comm_seconds);
    result.total_comm_seconds += rs.comm_seconds;
    result.total_retries += rs.retries;
    result.total_timeouts += rs.timeouts;
    result.total_fault_seconds += rs.fault_seconds;
  }
  if (collector_ != nullptr) {
    collector_->metrics().counter("runtime.runs").add();
    for (int r = 0; r < p; ++r) {
      const RankStats& rs = result.ranks[static_cast<std::size_t>(r)];
      obs_.rank_finish_seconds->record(rs.finish_time);
      obs_.rank_comm_seconds->record(rs.comm_seconds);
      // Per-rank envelope on the virtual timeline: every transfer/retry
      // span recorded during the run nests inside it.
      collector_->tracer().record_virtual(r, "rank", "runtime", 0,
                                          rs.finish_time);
    }
  }
  return result;
}

}  // namespace geomap::runtime
