#pragma once
// Message envelope and rendezvous synchronization state for the minimpi
// runtime (see runtime/comm.h for the execution model).

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace geomap::runtime {

/// Internal teardown signal: thrown out of blocking runtime calls when a
/// peer rank's body failed and the run is being aborted. Runtime::run
/// swallows it on peer ranks and rethrows the originating rank's error.
class RankAborted : public Error {
 public:
  RankAborted() : Error("rank aborted: a peer rank's body threw") {}
};

/// Rendezvous handshake shared between one send and its matching recv:
/// the receiver computes the virtual completion time and hands it back so
/// the sender's clock advances identically (synchronous-send semantics).
struct RendezvousState {
  std::mutex mutex;
  std::condition_variable cv;
  bool completed = false;
  bool aborted = false;
  Seconds completion_time = 0;
  /// Causal id of the recv event that completed the rendezvous (-1 when
  /// critical-path recording is off): the sender's clock jump at wait()
  /// is a happened-before edge from that event.
  std::int64_t completion_event = -1;

  void complete(Seconds time, std::int64_t event = -1) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      completed = true;
      completion_time = time;
      completion_event = event;
    }
    cv.notify_all();
  }

  /// Release a sender blocked in wait() during run teardown.
  void abort() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      aborted = true;
    }
    cv.notify_all();
  }

  Seconds wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return completed || aborted; });
    if (!completed) throw RankAborted();
    return completion_time;
  }
};

struct Message {
  int src = -1;
  int tag = 0;
  std::vector<double> payload;
  /// Sender's virtual clock when the send was posted.
  Seconds sender_ready = 0;
  /// Causal id of the sender rank's last event when the send was posted
  /// (-1 when critical-path recording is off): the matching recv's
  /// message predecessor in the happened-before DAG.
  std::int64_t sender_event = -1;
  std::shared_ptr<RendezvousState> rendezvous;
};

/// Handle of an in-flight isend; wait() blocks until the matching recv
/// ran and returns the virtual completion time.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RendezvousState> state,
                   std::int64_t send_index = -1)
      : state_(std::move(state)), send_index_(send_index) {}

  bool valid() const { return state_ != nullptr; }

  /// Index of the originating send in its rank's posting order (used by
  /// operation-level trace capture).
  std::int64_t send_index() const { return send_index_; }

  Seconds wait() {
    Seconds t = state_->wait();
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      completion_event_ = state_->completion_event;
    }
    state_.reset();
    return t;
  }

  /// Causal id of the recv event that completed this request; valid after
  /// wait(), -1 when critical-path recording is off.
  std::int64_t completion_event() const { return completion_event_; }

 private:
  std::shared_ptr<RendezvousState> state_;
  std::int64_t send_index_ = -1;
  std::int64_t completion_event_ = -1;
};

}  // namespace geomap::runtime
