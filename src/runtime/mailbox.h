#pragma once
// Per-rank mailbox: senders deposit messages, the owning rank blocks on
// (src, tag) matches. FIFO per (src, tag) key — combined with one thread
// per sender this yields MPI's non-overtaking guarantee, and with it a
// deterministic virtual-time execution.

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <utility>

#include "runtime/message.h"

namespace geomap::runtime {

class Mailbox {
 public:
  void deposit(Message message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (aborted_) {
        // Run teardown in progress: fail the sender instead of queueing.
        if (message.rendezvous) message.rendezvous->abort();
        return;
      }
      queues_[{message.src, message.tag}].push_back(std::move(message));
    }
    cv_.notify_all();
  }

  /// Block until a message from `src` with `tag` is available; pop it.
  /// Throws RankAborted if the run is torn down while blocked (or after).
  Message match(int src, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::pair<int, int> key{src, tag};
    cv_.wait(lock, [&] {
      if (aborted_) return true;
      const auto it = queues_.find(key);
      return it != queues_.end() && !it->second.empty();
    });
    if (aborted_) throw RankAborted();
    auto it = queues_.find(key);
    Message m = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) queues_.erase(it);
    return m;
  }

  /// Tear down: wake the owner if blocked in match(), fail every queued
  /// (and future) sender's rendezvous. Called when any rank body throws so
  /// peers blocked in recv/barrier cannot hang forever.
  void abort() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
      for (auto& [key, q] : queues_) {
        for (Message& m : q) {
          if (m.rendezvous) m.rendezvous->abort();
        }
      }
      queues_.clear();
    }
    cv_.notify_all();
  }

  /// Fresh state for the next run (clears the aborted flag and leftovers).
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = false;
    queues_.clear();
  }

  /// Count of undelivered messages (test/diagnostic hook).
  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto& [key, q] : queues_) total += q.size();
    return total;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool aborted_ = false;
  std::map<std::pair<int, int>, std::deque<Message>> queues_;
};

}  // namespace geomap::runtime
