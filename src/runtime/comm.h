#pragma once
// minimpi: an in-process message-passing runtime with virtual time.
//
// This substrate replaces "MPI on EC2" in the paper's real-cloud
// experiments. Ranks are threads; every point-to-point operation advances
// virtual clocks by the alpha-beta transfer time of the mapped site pair:
//
//   completion = max(sender_ready, receiver_clock) + LT(s,d) + n/BT(s,d)
//
// (synchronous-send rendezvous semantics; both clocks jump to
// completion). Collectives are built from point-to-point with standard
// algorithms (binomial trees, dissemination, ring, pairwise), so their
// cost reacts to the process mapping exactly as real MPI trees would.
// Executions are deterministic: matching is FIFO per (src, tag) and
// virtual time depends only on program order, never on host scheduling.
//
// Inter-site transfers contend: each ordered site pair is a serializing
// WAN link (its calibrated BT is a pair bandwidth, and the regions'
// cross-section is shared), so a mapping that pushes many flows onto one
// pair pays queueing delay — the effect that makes volume-minimizing
// mappings fast in practice. Intra-site transfers never queue (full
// bisection LAN). Executions whose concurrent transfers share an
// inter-site link acquire it in host scheduling order, so their virtual
// times are reproducible only up to queueing order; single-site (or
// contention-free) executions are exactly deterministic.
//
// An optional tracer (trace::ApplicationProfile) records every
// point-to-point send — the dynamic trace CYPRESS would capture — from
// which CG/AG are profiled.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.h"
#include "fault/fault_plan.h"
#include "net/network_model.h"
#include "runtime/mailbox.h"
#include "trace/optrace.h"
#include "trace/profile.h"

namespace geomap::obs {
class Collector;
class Counter;
class Histogram;
class TimeSeries;
}  // namespace geomap::obs

namespace geomap::runtime {

/// Reduction operators for reduce/allreduce.
enum class ReduceOp { kSum, kMax, kMin };

/// Per-rank accounting reported after a run.
struct RankStats {
  Seconds finish_time = 0;   // final virtual clock
  Seconds comm_seconds = 0;  // clock advanced inside communication calls
  Seconds compute_seconds = 0;
  std::uint64_t messages_sent = 0;
  Bytes bytes_sent = 0;
  /// Fault accounting (receiver side; zero when no FaultPlan is attached):
  /// reattempts after deterministic message loss, transfers that exhausted
  /// the retry budget, and virtual seconds lost to faults (loss detection
  /// + backoff delays plus degraded-minus-healthy wire time).
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  Seconds fault_seconds = 0;
};

class Runtime;

/// The per-rank communicator handed to application bodies.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Current virtual time of this rank.
  Seconds now() const { return now_; }

  /// Blocking synchronous send (completes when the receiver matched).
  void send(int dst, int tag, std::span<const double> data);

  /// Post a send and return immediately; wait() on the Request completes
  /// it. Required for deadlock-free symmetric exchanges.
  Request isend(int dst, int tag, std::span<const double> data);

  /// Blocking receive from a specific source and tag.
  std::vector<double> recv(int src, int tag);

  /// Complete an isend, advancing this rank's clock.
  void wait(Request& request);

  /// Simultaneous exchange (deadlock-free): send `data` to dst, receive
  /// from src.
  std::vector<double> sendrecv(int dst, int send_tag,
                               std::span<const double> data, int src,
                               int recv_tag);

  /// Model `flops` floating-point operations of local work: advances the
  /// clock by flops / instance compute rate.
  void compute(double flops);

  /// Advance the clock by raw seconds (I/O or fixed-cost phases).
  void advance(Seconds seconds);

  // -- Collectives (all ranks must call in the same program order) --
  void barrier();
  void bcast(std::vector<double>& data, int root);
  void reduce(std::vector<double>& data, ReduceOp op, int root);
  void allreduce(std::vector<double>& data, ReduceOp op);
  std::vector<double> allgather(std::span<const double> mine);
  /// Scatter from root: root's `sendbuf` holds size() blocks of
  /// `block_elems` doubles; every rank returns its own block. Binomial
  /// tree, halving payloads down the levels.
  std::vector<double> scatter(std::span<const double> sendbuf,
                              std::size_t block_elems, int root);

  /// Gather to root: every rank contributes `mine`; root returns the
  /// rank-ordered concatenation (others return empty). Binomial tree.
  std::vector<double> gather(std::span<const double> mine, int root);

  /// Reduce-scatter: element-wise reduction of `data` (size() blocks of
  /// `block_elems`); each rank returns its own reduced block.
  std::vector<double> reduce_scatter(std::span<const double> data,
                                     std::size_t block_elems, ReduceOp op);

  /// Inclusive prefix scan over ranks (linear chain).
  void scan(std::vector<double>& data, ReduceOp op);

  /// Personalized all-to-all: `sendbuf` holds size() blocks of
  /// `block_elems` doubles; returns the same layout gathered from peers.
  /// Uses pairwise exchange (p-1 rounds), switching to Bruck's algorithm
  /// (ceil(log2 p) rounds, blocks re-forwarded) for small blocks at
  /// p >= 8 where latency dominates.
  std::vector<double> alltoall(std::span<const double> sendbuf,
                               std::size_t block_elems);

  /// Block size at or below which alltoall uses Bruck's algorithm.
  static constexpr std::size_t kBruckThresholdBytes = 1024;

  RankStats stats() const { return stats_; }

  /// Maximum tag usable by applications; larger tags are reserved for
  /// collectives.
  static constexpr int kMaxUserTag = (1 << 20) - 1;

 private:
  friend class Runtime;
  Comm(Runtime* runtime, int rank, int size)
      : runtime_(runtime),
        rank_(rank),
        size_(size),
        recv_seq_(static_cast<std::size_t>(size), 0) {}

  int collective_tag() { return (1 << 20) + collective_seq_++; }

  std::vector<double> alltoall_bruck(std::span<const double> sendbuf,
                                     std::size_t block_elems);

  Runtime* runtime_;
  int rank_;
  int size_;
  Seconds now_ = 0;
  int collective_seq_ = 0;
  std::int64_t sends_posted_ = 0;
  /// Critical-path recording state (used only with a collector attached):
  /// the id of the last event this rank's clock depends on — its own
  /// previous recv, or the remote recv a wait() jumped the clock to — and
  /// the per-rank program-order sequence for canonical export.
  std::int64_t crit_last_ = -1;
  std::int64_t crit_seq_ = 0;
  /// Per-source receive sequence numbers: the deterministic stream key for
  /// fault-plan loss decisions (program order, independent of host
  /// scheduling).
  std::vector<std::uint64_t> recv_seq_;
  RankStats stats_;
};

/// Result of one application run.
struct RunResult {
  std::vector<RankStats> ranks;
  /// Maximum finish time over ranks — the modeled job execution time.
  Seconds makespan = 0;
  /// Maximum per-rank communication time — the paper's simulated
  /// communication-only metric (Figure 6).
  Seconds max_comm_seconds = 0;
  Seconds total_comm_seconds = 0;
  /// Fault accounting summed over ranks (all zero without a FaultPlan).
  std::uint64_t total_retries = 0;
  std::uint64_t total_timeouts = 0;
  Seconds total_fault_seconds = 0;
};

class Runtime {
 public:
  /// `rank_to_site` maps each rank to its hosting site under the chosen
  /// process mapping; `model` provides LT/BT (copied — the runtime owns
  /// its network view). `gflops` is the per-node compute rate for
  /// Comm::compute. `profile`, when given, receives every p2p send for
  /// CG/AG profiling and must outlive the runtime.
  Runtime(net::NetworkModel model, Mapping rank_to_site, double gflops = 50.0,
          trace::ApplicationProfile* profile = nullptr);

  /// Capture an operation-level trace of the next run() into `ops`
  /// (pre-sized to the rank count); replayable under any mapping with
  /// sim::replay_ops. Pass nullptr to stop capturing.
  void capture_ops(trace::OpTraceLog* ops) { ops_ = ops; }

  /// Inject faults: inter-site transfers consult `plan` at their virtual
  /// issue time — degraded links pay the inflated alpha-beta cost, lost
  /// messages are retried with exponential backoff in virtual time per
  /// `policy` (down links behave as lossy until the outage ends). The
  /// plan must outlive the runtime; pass nullptr to detach. An empty plan
  /// reproduces the fault-free execution exactly.
  void set_fault_plan(const fault::FaultPlan* plan,
                      fault::RetryPolicy policy = {}) {
    fault_plan_ = (plan != nullptr && plan->empty()) ? nullptr : plan;
    retry_policy_ = policy;
  }

  /// Observability (opt-in, not owned; pass nullptr to detach): transfers
  /// bump comm/fault counters, retry backoffs and outage stalls become
  /// virtual-time spans on the receiving rank's timeline, and run() wraps
  /// itself in a wall span and exports per-rank finish/comm histograms.
  /// Metric handles are resolved here, once — the per-message hot path
  /// only dereferences cached pointers. Without a collector the runtime
  /// executes the exact uninstrumented path (virtual times and RunResult
  /// are bit-identical).
  void set_collector(obs::Collector* collector);

  /// Execute `body` on `num_ranks` rank threads. Rank count must match
  /// the mapping size. If any rank body throws, the run is aborted —
  /// peers blocked in recv/wait/collectives are released, never left
  /// hanging — and the lowest-ranked failure is rethrown as a
  /// geomap::Error prefixed with its rank id.
  RunResult run(const std::function<void(Comm&)>& body);

  int num_ranks() const { return static_cast<int>(rank_to_site_.size()); }

 private:
  friend class Comm;

  SiteId site_of(int rank) const {
    return rank_to_site_[static_cast<std::size_t>(rank)];
  }

  Seconds transfer_time(int src, int dst, Bytes bytes) const {
    return model_.transfer_time(site_of(src), site_of(dst), bytes);
  }

  /// Serialize an inter-site transfer of `wire_seconds` on link
  /// (src_site, dst_site), earliest start `ready`: returns completion.
  /// `event_id` labels the reserved interval for critical-path recording
  /// (-1 when off); when the transfer had to queue, `*pred_out` receives
  /// the id of the transfer it queued behind.
  Seconds acquire_link(SiteId src_site, SiteId dst_site, Seconds ready,
                       Seconds wire_seconds, std::int64_t event_id = -1,
                       std::int64_t* pred_out = nullptr);

  net::NetworkModel model_;
  Mapping rank_to_site_;
  double gflops_;
  trace::ApplicationProfile* profile_;
  trace::OpTraceLog* ops_ = nullptr;
  const fault::FaultPlan* fault_plan_ = nullptr;
  fault::RetryPolicy retry_policy_;
  std::vector<Mailbox> mailboxes_;

  obs::Collector* collector_ = nullptr;
  /// CritGraph run id of the in-progress run() (-1 outside a collected
  /// run; one begin_run per Runtime::run call).
  int crit_run_ = -1;
  /// Metric handles cached by set_collector (valid while collector_ set).
  struct ObsHandles {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* losses = nullptr;
    obs::Counter* outage_blocks = nullptr;
    obs::Histogram* backoff_seconds = nullptr;
    obs::Histogram* degraded_extra_seconds = nullptr;
    obs::Histogram* rank_finish_seconds = nullptr;
    obs::Histogram* rank_comm_seconds = nullptr;
  };
  ObsHandles obs_;

  /// Per-link timeline series ("link.latency_ratio" / "link.retry" /
  /// "link.timeout" labeled "src->dst"), resolved lazily on first traffic
  /// so untouched links do not export empty series. The caches are m*m
  /// atomic pointer slots; racing first-touchers resolve the same
  /// registry reference, so the benign double-store is idempotent.
  using TimelineCache = std::vector<std::atomic<obs::TimeSeries*>>;
  obs::TimeSeries& timeline_series(TimelineCache& cache, const char* name,
                                   SiteId src_site, SiteId dst_site);
  TimelineCache tl_latency_;
  TimelineCache tl_retry_;
  TimelineCache tl_timeout_;

  /// Busy intervals of one inter-site link, kept sorted by start time.
  /// Transfers reserve the first gap that fits at or after their ready
  /// time — so a transfer that is early in *virtual* time is never queued
  /// behind one that merely executed earlier in *host* time (threads
  /// reach the link in arbitrary real order when their virtual clocks
  /// diverge).
  struct BusyInterval {
    Seconds start = 0;
    Seconds end = 0;
    std::int64_t event = -1;  // critical-path event id of the transfer
  };
  struct LinkState {
    std::mutex mutex;
    std::vector<BusyInterval> busy;
  };
  std::vector<std::unique_ptr<LinkState>> links_;  // m*m ordered pairs
};

}  // namespace geomap::runtime
