#include "migrate/soak.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/geodist_mapper.h"
#include "core/remap.h"
#include "fault/attribution.h"
#include "fault/chaos.h"
#include "fault/fault_plan.h"
#include "mapping/problem.h"
#include "net/cloud.h"
#include "net/network_model.h"
#include "obs/collector.h"
#include "obs/detector.h"
#include "runtime/comm.h"
#include "trace/comm_matrix.h"

namespace geomap::migrate {

void SoakOptions::validate() const {
  GEOMAP_CHECK_ARG(ranks >= 2, "soak needs >= 2 ranks, got " << ranks);
  GEOMAP_CHECK_ARG(num_sites >= 3,
                   "soak needs >= 3 sites (one dies and migrations must "
                   "still have a choice), got "
                       << num_sites);
  GEOMAP_CHECK_ARG(app_rounds >= 1,
                   "soak needs >= 1 application round, got " << app_rounds);
  GEOMAP_CHECK_ARG(constraint_ratio >= 0.0 && constraint_ratio < 1.0,
                   "constraint_ratio must be in [0, 1), got "
                       << constraint_ratio);
  GEOMAP_CHECK_ARG(bytes_per_process >= 0,
                   "bytes_per_process must be >= 0, got " << bytes_per_process);
  GEOMAP_CHECK_ARG(chunk_bytes > 0,
                   "chunk_bytes must be > 0, got " << chunk_bytes);
}

namespace {

/// Synthesize the deployment for one case: a synthetic multi-region
/// cloud with enough survivor capacity to absorb the primary outage, a
/// ring plus random sparse extra traffic, optional pins.
mapping::MappingProblem make_problem(std::uint64_t seed,
                                     const SoakOptions& options) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  // Capacity sizing: after one permanent site outage the survivors alone
  // must host every rank, with one spare slot so replans have freedom.
  const int survivors = options.num_sites - 1;
  const int nodes_per_site = (options.ranks + survivors - 1) / survivors + 1;
  const net::CloudTopology topo(
      net::synthetic_profile(options.num_sites, nodes_per_site, seed));

  mapping::MappingProblem p;
  trace::CommMatrix::Builder b(options.ranks);
  for (ProcessId i = 0; i < options.ranks; ++i) {
    const auto ring = static_cast<ProcessId>((i + 1) % options.ranks);
    b.add_message(i, ring, rng.uniform(64.0 * 1024, 512.0 * 1024),
                  static_cast<double>(rng.uniform_int(2, 20)));
    const auto j = static_cast<ProcessId>(rng.uniform_index(
        static_cast<std::size_t>(options.ranks)));
    if (j != i) {
      b.add_message(i, j, rng.uniform(16.0 * 1024, 256.0 * 1024),
                    static_cast<double>(rng.uniform_int(1, 10)));
    }
  }
  p.comm = b.build();
  p.network = net::NetworkModel::from_ground_truth(topo);
  p.capacities = topo.capacities();
  p.site_coords = topo.coordinates();
  if (options.constraint_ratio > 0) {
    p.constraints = mapping::make_random_constraints(
        options.ranks, p.capacities, options.constraint_ratio, rng);
  }
  p.validate();
  return p;
}

/// The synthetic application body: allreduce + ring exchange + compute,
/// `rounds` times. Identical for the healthy calibration run and the
/// faulted telemetry run.
runtime::RunResult run_app(const mapping::MappingProblem& problem,
                           const Mapping& mapping, int rounds,
                           const fault::FaultPlan* plan,
                           obs::Collector* collector) {
  runtime::Runtime rt(problem.network, mapping);
  if (plan != nullptr) rt.set_fault_plan(plan);
  if (collector != nullptr) rt.set_collector(collector);
  return rt.run([rounds](runtime::Comm& c) {
    std::vector<double> v(256, 1.0);
    for (int r = 0; r < rounds; ++r) {
      c.allreduce(v, runtime::ReduceOp::kSum);
      const int to = (c.rank() + 1) % c.size();
      const int from = (c.rank() + c.size() - 1) % c.size();
      v = c.sendrecv(to, r, v, from, r);
      c.compute(1e7);
    }
  });
}

}  // namespace

SoakCase run_soak_case(std::uint64_t seed, const SoakOptions& options) {
  options.validate();
  SoakCase result;
  result.seed = seed;

  obs::Collector* coll = options.collector != nullptr
                             ? options.collector
                             : options.migrate.collector;
  obs::EventLog* elog = coll != nullptr ? &coll->events() : nullptr;
  const std::uint64_t seq0 = elog != nullptr ? elog->total() : 0;

  const mapping::MappingProblem problem = make_problem(seed, options);
  core::GeoDistMapper mapper(options.migrate.mapper);
  const Mapping initial = mapper.map(problem);

  // 1. Healthy run calibrates the virtual horizon the faults land in.
  result.healthy_makespan =
      run_app(problem, initial, options.app_rounds, nullptr, nullptr).makespan;

  // 2. Draw the chaos plan for that horizon. The migration window is
  //    anchored at the primary outage (recovery starts there) and spans
  //    1.5 healthy horizons — roughly where the executor will be copying.
  fault::ChaosOptions chaos = options.chaos;
  chaos.num_sites = options.num_sites;
  chaos.horizon = result.healthy_makespan;
  if (chaos.migration_window_length <= 0) {
    chaos.migration_window_length = 1.5 * result.healthy_makespan;
    if (chaos.migration_window_faults == 0) chaos.migration_window_faults = 2;
  }
  const fault::ChaosPlan chaos_plan = fault::make_chaos_plan(seed, chaos);
  result.primary_site = chaos_plan.primary_site;
  result.outage_time = chaos_plan.primary_outage_time;
  if (elog != nullptr) {
    elog->emit(0, obs::EventSeverity::kInfo, "soak", "case_start",
               {obs::field("seed", seed), obs::field("ranks", options.ranks)});
  }

  // 3. Rerun under the chaos plan with telemetry on. Transfers forced
  //    through after retry exhaustion keep the run terminating even with
  //    the primary site permanently dead.
  obs::Collector telemetry;
  run_app(problem, initial, options.app_rounds, &chaos_plan.plan, &telemetry);

  // 4. Detect and remap. Detection can fail in two honest ways: no down
  //    events at all (the dead site carried no observed traffic), or the
  //    wrong site accused (the post-remap replay crosses the real outage
  //    and throws). Both fall back to the oracle policy — the soak's
  //    subject is the migration executor, which must survive either path.
  core::RemapOptions ropts;
  ropts.mapper = options.migrate.mapper;
  ropts.bytes_per_process = options.bytes_per_process;

  obs::DegradationDetector detector;
  detector.set_event_log(elog);
  detector.scan(telemetry.timeline());

  Mapping target;
  SiteId suspect = -1;
  try {
    const core::DetectionRemapResult detection = core::remap_on_detection(
        problem, initial, detector.events(), chaos_plan.plan, ropts);
    result.detected = true;
    result.suspected_correct =
        detection.suspected_site == chaos_plan.primary_site;
    suspect = detection.suspected_site;
    result.remap_time = detection.detection_time;
    target = detection.remap.mapping;
  } catch (const Error&) {
    const core::RemapResult oracle = core::remap_on_outage(
        problem, initial, chaos_plan.plan, chaos_plan.primary_site,
        chaos_plan.primary_outage_time, ropts);
    result.remap_time = chaos_plan.primary_outage_time;
    target = oracle.mapping;
  }
  if (elog != nullptr) {
    elog->emit(result.remap_time,
               result.suspected_correct ? obs::EventSeverity::kInfo
                                        : obs::EventSeverity::kWarn,
               "soak", "detect",
               {obs::field("detected", result.detected),
                obs::field("suspected_correct", result.suspected_correct),
                obs::field("suspect", suspect),
                obs::field("failed_site", chaos_plan.primary_site),
                obs::field("outage_time", chaos_plan.primary_outage_time)});
  }

  // 5. Execute the recovery under the same chaos plan and certify the
  //    journal.
  MigrationOptions mopts = options.migrate;
  mopts.bytes_per_process = options.bytes_per_process;
  mopts.chunk_bytes = options.chunk_bytes;
  mopts.record_events = true;
  if (mopts.collector == nullptr) mopts.collector = coll;
  result.report = execute_migration(problem, initial, target, chaos_plan.plan,
                                    result.remap_time, mopts);

  fault::MigrationInvariantOptions inv;
  inv.planned_bytes_per_process = options.bytes_per_process;
  inv.chunk_bytes = options.chunk_bytes;
  inv.max_retries = mopts.retry.max_retries;
  // Replans and emergency placements consume copy attempts beyond the
  // per-process budget; the checker's bound must cover the executor's
  // true worst case.
  inv.max_copy_attempts =
      mopts.max_copy_attempts + mopts.max_replans + mopts.max_emergency_attempts;
  inv.horizon = result.report.finish_time;
  result.violations = fault::check_migration_invariants(
      result.report.events, initial, problem.capacities, chaos_plan.plan, inv);

  // 6. Fold the case's event slice into incidents, grade the blame
  //    verdicts against the seeded truth, and hand both to the collector
  //    for the incidents.json export.
  if (elog != nullptr) {
    elog->emit(result.report.finish_time,
               result.violations.empty() ? obs::EventSeverity::kInfo
                                         : obs::EventSeverity::kError,
               "soak", "case_done",
               {obs::field("seed", seed),
                obs::field("committed", result.report.processes_committed),
                obs::field("rollbacks", result.report.rollbacks),
                obs::field("replans", result.report.replans),
                obs::field("abandoned", result.report.processes_abandoned),
                obs::field("violations", result.violations.size())});
    result.incidents = obs::build_incidents(elog->events_since(seq0));
    // Only links between sites hosting ranks can produce evidence; an
    // outage of an idle site is honestly unobservable and is excluded
    // from recall, matching detection scoring's observable_links.
    fault::AttributionScoreOptions sopt;
    std::vector<bool> used(static_cast<std::size_t>(options.num_sites), false);
    for (const SiteId s : initial) {
      if (s >= 0) used[static_cast<std::size_t>(s)] = true;
    }
    for (SiteId a = 0; a < options.num_sites; ++a) {
      for (SiteId b = a + 1; b < options.num_sites; ++b) {
        if (used[static_cast<std::size_t>(a)] &&
            used[static_cast<std::size_t>(b)])
          sopt.observable_links.push_back({a, b});
      }
    }
    result.attribution = fault::score_attribution(
        result.incidents, chaos_plan.plan.truth_windows(options.num_sites),
        sopt);
    result.attribution_scored = true;
    coll->incidents().add(result.incidents);
    coll->incidents().add_totals(result.attribution);
  }
  return result;
}

SoakReport run_chaos_soak(const std::vector<std::uint64_t>& seeds,
                          const SoakOptions& options) {
  SoakReport report;
  report.cases.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    report.cases.push_back(run_soak_case(seed, options));
    const SoakCase& c = report.cases.back();
    report.total_violations += static_cast<int>(c.violations.size());
    if (c.detected) {
      ++report.detected_cases;
    } else {
      ++report.fallback_cases;
    }
    report.total_committed += c.report.processes_committed;
    report.total_rollbacks += c.report.rollbacks;
    report.total_replans += c.report.replans;
    report.total_abandoned += c.report.processes_abandoned;
    if (c.attribution_scored) report.attribution.merge(c.attribution);
  }
  return report;
}

}  // namespace geomap::migrate
