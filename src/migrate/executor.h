#pragma once
// Virtual-time migration executor: actually carry out a remap plan.
//
// core/remap.h *prices* a recovery (bytes moved × alpha-beta time) and
// assumes the cutover is instantaneous and failure-free. This executor
// retires that assumption: given the mapping in effect and the mapping a
// remap chose, it schedules every process's state transfer as real flows
// on the degraded network — chunked, alpha-beta priced, contending with
// the application's own traffic on the same serializing links, bounded
// per-link concurrency — and drives each process through a two-phase
// protocol:
//
//   prepare — reserve one capacity slot on the destination site (the
//             process transiently occupies both its source slot and the
//             reservation; commits release the source, rollbacks release
//             the reservation, so residents + reservations never exceed
//             capacity);
//   copy    — resumable chunked transfer with the fault substrate's
//             loss/retry/backoff accounting (PR 1); a permanently dead
//             source switches to the cheapest surviving replica site and
//             resumes where it left off;
//   commit  — atomic cutover: the committed home flips source →
//             destination in one event. The commit handshake retries
//             lost control messages and is idempotent — a retried commit
//             cannot double-apply.
//
// When a destination dies *mid-copy* the transfer rolls back (reservation
// released, partial state discarded, source placement still committed)
// and re-prepares once the outage clears; when the fault is permanent the
// executor replans — re-invokes the geo-distributed mapper over the
// surviving sites as of that instant — and redirects the affected flows.
// Every protocol transition is journaled as a fault::MigrationEvent so
// fault::check_migration_invariants can certify the run afterwards.
//
// The executor is single-threaded, discrete-event, and deterministic:
// identical inputs produce identical reports bit-for-bit. The collector
// is opt-in; with nullptr the report is bit-identical to an
// uninstrumented run (asserted by tests).

#include <string>
#include <vector>

#include "common/types.h"
#include "core/geodist_mapper.h"
#include "fault/chaos.h"
#include "fault/fault_plan.h"
#include "mapping/problem.h"

namespace geomap::obs {
class Collector;
}

namespace geomap::recover {
class Wal;
}

namespace geomap::migrate {

struct MigrationOptions {
  /// Application state shipped per relocated process, and the chunk size
  /// it is broken into (each chunk is one resumable flow).
  Bytes bytes_per_process = 64.0 * kMiB;
  Bytes chunk_bytes = 8.0 * kMiB;

  /// Migration flows admitted concurrently per ordered site link; the
  /// link itself still serializes, so this bounds how much migration
  /// traffic may queue ahead of application traffic.
  int link_concurrency = 2;

  /// Loss detection / backoff for chunk and commit messages (PR 1
  /// accounting: a lost message costs detect_timeout to notice, then
  /// exponential backoff per reattempt; max_retries exhausted = timeout).
  fault::RetryPolicy retry;

  /// Whole-copy restarts a process may consume across rollbacks before
  /// it gives up and stays at its source.
  int max_copy_attempts = 4;

  /// Mapper re-invocations on permanent faults before the executor falls
  /// back to direct emergency placement.
  int max_replans = 4;

  /// Direct (mapper-less) placement attempts for a process stranded on a
  /// dead site after its copy budget ran out; exhausted → kAbandoned.
  /// The worst-case wire bytes per process are bounded by
  /// ceil(bytes_per_process / chunk_bytes) · chunk_bytes ·
  /// (1 + retry.max_retries) · (max_copy_attempts + max_replans +
  /// max_emergency_attempts) — the bound the invariant checker enforces.
  int max_emergency_attempts = 3;

  /// How long a prepare may wait for destination capacity before the
  /// migration rolls back (breaks reservation deadlocks between swapping
  /// processes).
  Seconds prepare_timeout = 120.0;

  /// Mapper configuration for replanning.
  core::GeoDistOptions mapper;

  /// Observability (opt-in, not owned): migration.* metrics, per-process
  /// virtual spans, and migration.bytes timeline series. nullptr runs
  /// the exact uninstrumented path with a bit-identical report.
  obs::Collector* collector = nullptr;

  /// Prepended to the per-link labels of the timeline series this
  /// executor records ("migration.bytes", "link.latency_ratio"). A
  /// multi-tenant run sets "t<k>:" per tenant (obs::tenant_link_label) so
  /// overlapping migrations render as separate lanes on one shared
  /// timeline; empty keeps the plain "src->dst" labels.
  std::string timeline_label_prefix;

  /// Journal protocol transitions into MigrationReport::events (the
  /// invariant checker's input). Off saves the allocation in benches
  /// that do not audit.
  bool record_events = true;

  /// Opt-in crash consistency (not owned): with a WAL attached every
  /// protocol transition is appended as a mig_* record tagged with
  /// `wal_tenant`, and non-chunk transitions sync before the executor
  /// proceeds — the write-ahead discipline recovery's no-double-commit
  /// check relies on. nullptr keeps the exact unlogged path
  /// bit-identical.
  recover::Wal* wal = nullptr;
  int wal_tenant = -1;

  void validate() const;
};

enum class ProcessOutcome {
  kStayed,      // plan never moved it and no fault forced a move
  kCommitted,   // cut over to its final destination
  kRolledBack,  // copy abandoned; still committed at its (live) source
  kAbandoned,   // no feasible placement found — stranded (complete=false)
};

const char* to_string(ProcessOutcome outcome);

struct ProcessMigrationRecord {
  ProcessId process = -1;
  /// Committed home when execution began / when it ended.
  SiteId source = -1;
  SiteId final_home = -1;
  /// The target mapping's request (-1: the plan kept it in place).
  SiteId planned_dest = -1;
  ProcessOutcome outcome = ProcessOutcome::kStayed;
  int copy_attempts = 0;
  int rollbacks = 0;
  /// Serving-source switches to a surviving replica (source died).
  int source_switches = 0;
  int chunk_retries = 0;
  int chunk_timeouts = 0;
  int commit_retries = 0;
  /// Commit control retries exhausted — cutover forced through.
  bool commit_forced = false;
  Bytes bytes_sent = 0;
  Seconds prepare_time = -1;  // first reservation grant (-1: never)
  Seconds commit_time = -1;   // final cutover (-1: never committed)
  /// Cutover blackout: final chunk start → commit.
  Seconds downtime = 0;
};

struct MigrationReport {
  /// Committed home of every process when the executor finished.
  Mapping final_mapping;
  std::vector<ProcessMigrationRecord> processes;

  int processes_planned = 0;  // moves the target mapping requested
  int processes_committed = 0;
  int processes_rolled_back = 0;
  int processes_abandoned = 0;
  int rollbacks = 0;
  int replans = 0;
  int source_switches = 0;
  int chunk_retries = 0;
  int chunk_timeouts = 0;
  Bytes bytes_planned = 0;
  Bytes bytes_sent = 0;

  Seconds start_time = 0;
  /// Last event (application or migration) processed.
  Seconds finish_time = 0;
  /// Last migration activity minus start_time (0: nothing moved).
  Seconds migration_seconds = 0;
  /// Application replay duration from start_time, migration contention
  /// included — the makespan-with-migration the benches report.
  Seconds app_makespan = 0;
  /// Virtual seconds application flows spent parked because an endpoint's
  /// committed home was permanently dead (released at that endpoint's
  /// commit).
  Seconds app_blocked_seconds = 0;
  Seconds max_downtime = 0;
  Seconds total_downtime = 0;

  /// False when any process ended kAbandoned.
  bool complete = true;

  /// Protocol journal (time-ordered) when record_events was set — feed
  /// to fault::check_migration_invariants.
  std::vector<fault::MigrationEvent> events;
};

/// Carry out `target` starting from `current` at virtual time
/// `start_time`, under `plan`. The application's communication
/// (problem.comm) replays concurrently on the same links, each process
/// transmitting from its *committed* home as of each edge's issue time.
/// Throws InvalidArgument on malformed mappings or options.
MigrationReport execute_migration(const mapping::MappingProblem& problem,
                                  const Mapping& current, const Mapping& target,
                                  const fault::FaultPlan& plan,
                                  Seconds start_time,
                                  const MigrationOptions& options = {});

}  // namespace geomap::migrate
