#pragma once
// Chaos soak for the full recovery loop: observe → detect → remap →
// migrate, end to end, across many seeded random fault plans.
//
// One soak case is one complete story:
//
//   1. synthesize a deployment (synthetic multi-region cloud, random
//      sparse communication pattern, optional pins) and map it with the
//      geo-distributed mapper;
//   2. run the application once healthy on the threaded runtime to
//      calibrate the virtual horizon;
//   3. draw a chaos plan (fault/chaos.h) for that horizon — one primary
//      permanent site outage plus brownouts, transient outages, message
//      loss, and faults aimed into the expected migration window — and
//      rerun the application under it with telemetry on;
//   4. feed the recorded timeline to the degradation detector and
//      recover with core::remap_on_detection (falling back to the oracle
//      remap_on_outage when detection saw nothing actionable or
//      implicated the wrong site);
//   5. execute the chosen plan with migrate::execute_migration under the
//      same chaos plan — so the recovery itself is hit by the faults —
//      and certify the journal with fault::check_migration_invariants.
//
// A soak over N seeds passing with zero violations is the repo's
// evidence that recovery is itself recoverable. Virtual times in the
// threaded runs vary up to link-queueing order, so soak results are
// statistical, not byte-stable — the deterministic bench mode
// (bench_fault_recovery --migrate) is the regression baseline, this is
// the safety net.

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "fault/chaos.h"
#include "migrate/executor.h"
#include "obs/incident.h"

namespace geomap::migrate {

struct SoakOptions {
  int ranks = 12;
  int num_sites = 4;
  /// Rounds of the synthetic application body (allreduce + ring exchange
  /// + compute) — sizes the virtual horizon.
  int app_rounds = 24;
  /// Fraction of processes pinned by data-movement constraints.
  double constraint_ratio = 0.15;
  /// Migrated state per process; kept small so a soak case's migration
  /// finishes within a few horizons.
  Bytes bytes_per_process = 4.0 * kMiB;
  Bytes chunk_bytes = 1.0 * kMiB;
  /// Chaos shape (num_sites / horizon / migration window are filled in
  /// per case; the counts and severities are taken from here).
  fault::ChaosOptions chaos;
  /// Executor knobs (bytes_per_process / chunk_bytes above win).
  MigrationOptions migrate;

  /// Opt-in external observability. With a collector attached the case
  /// streams lifecycle events (soak/case_start, soak/detect,
  /// soak/case_done) next to the detector onsets and migration protocol
  /// transitions, then reconstructs the case's incidents
  /// (obs::build_incidents), scores their blame against the chaos plan's
  /// truth windows (fault::score_attribution), and appends both to the
  /// collector's incident log. nullptr — the default — keeps the
  /// historical behavior bit-identical. Wins over migrate.collector when
  /// both are set.
  obs::Collector* collector = nullptr;

  void validate() const;
};

struct SoakCase {
  std::uint64_t seed = 0;
  SiteId primary_site = -1;
  Seconds outage_time = 0;
  Seconds healthy_makespan = 0;
  /// Detection produced an actionable, consistent recovery; false = the
  /// oracle fallback ran (nothing detected, or the wrong site accused).
  bool detected = false;
  /// The detector's suspect matched the site that actually died.
  bool suspected_correct = false;
  Seconds remap_time = 0;
  MigrationReport report;
  std::vector<fault::InvariantViolation> violations;

  /// Incident reconstruction over the case's event slice (empty without
  /// a collector) and its truth-scored attribution (cases == 1 when
  /// scored; see SoakOptions::collector).
  std::vector<obs::Incident> incidents;
  obs::AttributionTotals attribution;
  bool attribution_scored = false;
};

struct SoakReport {
  std::vector<SoakCase> cases;
  int total_violations = 0;
  int detected_cases = 0;
  int fallback_cases = 0;
  int total_committed = 0;
  int total_rollbacks = 0;
  int total_replans = 0;
  int total_abandoned = 0;
  /// Attribution totals merged over every scored case (zeros when the
  /// soak ran without a collector).
  obs::AttributionTotals attribution;

  bool ok() const { return total_violations == 0; }
};

/// Run one seeded case of the full loop. Deterministic up to the
/// threaded runtime's link-queueing order (the invariants must hold for
/// every ordering; the checker runs on the actual journal).
SoakCase run_soak_case(std::uint64_t seed, const SoakOptions& options = {});

/// Run the loop for every seed and aggregate.
SoakReport run_chaos_soak(const std::vector<std::uint64_t>& seeds,
                          const SoakOptions& options = {});

}  // namespace geomap::migrate
